//! Facade crate re-exporting the full public API.

#![forbid(unsafe_code)]
pub use tcp_advisor as advisor;
pub use tcp_batch as batch;
pub use tcp_calibrate as calibrate;
pub use tcp_cloudsim as cloudsim;
pub use tcp_core as model;
pub use tcp_dists as dists;
pub use tcp_lint as lint;
pub use tcp_numerics as numerics;
pub use tcp_obs as obs;
pub use tcp_policy as policy;
pub use tcp_scenarios as scenarios;
pub use tcp_serve as serve;
pub use tcp_trace as trace;
pub use tcp_workloads as workloads;
