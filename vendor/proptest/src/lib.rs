//! Offline vendored stand-in for `proptest`.
//!
//! Supports the subset of the proptest surface the workspace's property tests use: the
//! [`proptest!`] macro with `arg in strategy` bindings over range strategies, a case-count
//! configuration, and `prop_assert!`.  Cases are generated deterministically from a fixed
//! seed, so failures reproduce; there is no shrinking.

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of random cases to run per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Creates a configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of random values for one property argument.
pub trait Strategy {
    /// The generated type.
    type Value;
    /// Draws one value.
    fn pick(&self, rng: &mut StdRng) -> Self::Value;
}

impl Strategy for std::ops::Range<f64> {
    type Value = f64;
    fn pick(&self, rng: &mut StdRng) -> f64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl Strategy for std::ops::Range<usize> {
    type Value = usize;
    fn pick(&self, rng: &mut StdRng) -> usize {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl Strategy for std::ops::Range<i64> {
    type Value = i64;
    fn pick(&self, rng: &mut StdRng) -> i64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

impl Strategy for std::ops::Range<u64> {
    type Value = u64;
    fn pick(&self, rng: &mut StdRng) -> u64 {
        rand::Rng::gen_range(rng, self.clone())
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// Strategy producing `Vec`s of a given element strategy and length range.
    pub struct VecStrategy<S> {
        element: S,
        size: std::ops::Range<usize>,
    }

    /// `Vec` strategy: each case draws a length from `size`, then that many elements.
    pub fn vec<S: Strategy>(element: S, size: std::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn pick(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rand::Rng::gen_range(rng, self.size.clone());
            (0..len).map(|_| self.element.pick(rng)).collect()
        }
    }
}

/// Deterministic per-property RNG: every property function gets the same stream given the
/// same name, so failures reproduce across runs and thread counts.
pub fn rng_for_property(name: &str) -> StdRng {
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(seed)
}

/// Defines deterministic random-case property tests.
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn holds(x in 0.0f64..1.0) { prop_assert!(x < 1.0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $(
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::rng_for_property(stringify!($name));
                for case in 0..config.cases {
                    $(let $arg = $crate::Strategy::pick(&($strategy), &mut rng);)*
                    let run = || -> () { $body };
                    let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run));
                    if let Err(panic) = outcome {
                        eprintln!(
                            "proptest case {case} failed with inputs: {}",
                            [$(format!(concat!(stringify!($arg), " = {:?}"), $arg)),*].join(", ")
                        );
                        ::std::panic::resume_unwind(panic);
                    }
                }
            }
        )*
    };
    (
        $(
            #[test]
            fn $name:ident($($arg:ident in $strategy:expr),* $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                #[test]
                fn $name($($arg in $strategy),*) $body
            )*
        }
    };
}

/// Asserts a condition inside a property body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*);
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b);
    };
}

/// Everything the tests import.
pub mod prelude {
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, Strategy};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in 0.5f64..2.5, n in 1usize..10) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((1..10).contains(&n));
        }

        #[test]
        fn deterministic_streams(_x in 0.0f64..1.0) {
            // Two fresh streams for the same property name agree.
            let mut a = super::rng_for_property("p");
            let mut b = super::rng_for_property("p");
            prop_assert_eq!(rand::RngCore::next_u64(&mut a), rand::RngCore::next_u64(&mut b));
        }
    }
}
