//! Offline vendored stand-in for the `rand` crate.
//!
//! The build environment has no access to crates.io, so this crate re-implements the
//! small, deterministic subset of the `rand` 0.8 API the workspace actually uses:
//!
//! * [`RngCore`] / [`SeedableRng`] / the [`Rng`] extension trait (`gen`, `gen_range`);
//! * [`rngs::StdRng`] — a xoshiro256++ generator seeded through SplitMix64.
//!
//! The generator is *not* the upstream `StdRng` (ChaCha12), so absolute random streams
//! differ from upstream, but every property the workspace relies on holds: determinism
//! given a seed, independence of streams seeded differently, and high-quality uniform
//! output. Nothing here reads OS entropy — all randomness is explicitly seeded.

#![deny(missing_docs)]

use std::ops::Range;

/// The core of a random number generator: a source of uniformly random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest)
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator that can be instantiated from a seed.
pub trait SeedableRng: Sized {
    /// The raw seed type.
    type Seed: Default + AsMut<[u8]>;

    /// Creates a generator from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Creates a generator from a `u64` seed (SplitMix64 expansion, as upstream does).
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            // SplitMix64 (public domain), the same expansion upstream rand uses.
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Types that can be sampled uniformly from a generator's raw bits (the `Standard`
/// distribution of upstream rand).
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl SampleStandard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl SampleStandard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Sized {
    /// Draws one value uniformly from `[range.start, range.end)`.
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

impl SampleUniform for f64 {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
        assert!(range.start < range.end, "gen_range requires start < end");
        let u = f64::sample_standard(rng);
        range.start + u * (range.end - range.start)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self {
                assert!(range.start < range.end, "gen_range requires start < end");
                let span = range.end.wrapping_sub(range.start) as u64;
                // Rejection sampling to avoid modulo bias.
                let zone = u64::MAX - (u64::MAX % span);
                loop {
                    let v = rng.next_u64();
                    if v < zone {
                        return range.start.wrapping_add((v % span) as $t);
                    }
                }
            }
        }
    )*};
}

impl_sample_uniform_int!(usize, u64, u32, i64, i32);

/// Extension methods available on every generator (the upstream `Rng` trait).
pub trait Rng: RngCore {
    /// Draws a value of type `T` from its standard (uniform) distribution.
    fn gen<T: SampleStandard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a value uniformly from `[range.start, range.end)`.
    fn gen_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    /// Draws `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        self.gen::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    ///
    /// Not the upstream ChaCha12-based `StdRng` (absolute streams differ), but a
    /// high-quality, fast, seedable generator with a 256-bit state.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        #[inline]
        fn rotl(x: u64, k: u32) -> u64 {
            x.rotate_left(k)
        }
    }

    impl RngCore for StdRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++ by Blackman & Vigna (public domain reference implementation).
            let result = Self::rotl(self.s[0].wrapping_add(self.s[3]), 23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = Self::rotl(self.s[3], 45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // A xoshiro state must not be all zero.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    1,
                ];
            }
            StdRng { s }
        }
    }

    /// Alias kept for API compatibility: a small, fast generator.
    pub type SmallRng = StdRng;
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean = {mean}");
    }

    #[test]
    fn gen_range_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x = rng.gen_range(-2.5f64..7.5);
            assert!((-2.5..7.5).contains(&x));
            let i = rng.gen_range(3usize..17);
            assert!((3..17).contains(&i));
        }
    }

    #[test]
    fn gen_range_integers_cover_span() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            seen[rng.gen_range(0usize..10)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn works_through_dyn_rng_core() {
        let mut rng = StdRng::seed_from_u64(5);
        let dyn_rng: &mut dyn RngCore = &mut rng;
        let u: f64 = Rng::gen::<f64>(dyn_rng);
        assert!((0.0..1.0).contains(&u));
    }

    #[test]
    fn fill_bytes_fills_every_byte_eventually() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        // With 13 random bytes the chance of all zero is negligible.
        assert!(buf.iter().any(|&b| b != 0));
    }
}
