//! Offline vendored JSON front-end for the workspace's serde stand-in.
//!
//! Provides the `serde_json` functions the workspace uses — [`to_string`],
//! [`to_string_pretty`], [`from_str`] — implemented over [`serde::Value`].  Output is
//! byte-deterministic: map entries keep insertion order and floats use Rust's shortest
//! round-trip formatting.

#![deny(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Serialize, Value};

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    // Start with a line-sized buffer: most workspace values are NDJSON lines, and
    // growing from empty costs several reallocations per line on the serving path.
    let mut out = String::with_capacity(256);
    write_value(&mut out, &value.serialize(), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable JSON (two-space indent).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.serialize(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text and deserializes it.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_value(text)?;
    T::deserialize(&value)
}

// ---------------------------------------------------------------------------
// Printer
// ---------------------------------------------------------------------------

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(x) => {
            use std::fmt::Write;
            write!(out, "{x}").expect("writing to a String cannot fail");
        }
        Value::UInt(x) => {
            use std::fmt::Write;
            write!(out, "{x}").expect("writing to a String cannot fail");
        }
        Value::Float(x) => write_float(out, *x),
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => write_compound(
            out,
            indent,
            depth,
            items.len(),
            '[',
            ']',
            |out, i, depth| write_value(out, &items[i], indent, depth),
        ),
        Value::Map(entries) => write_compound(
            out,
            indent,
            depth,
            entries.len(),
            '{',
            '}',
            |out, i, depth| {
                let (k, v) = &entries[i];
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, v, indent, depth)
            },
        ),
    }
}

fn write_compound(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i, depth + 1);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_float(out: &mut String, x: f64) {
    if !x.is_finite() {
        // JSON has no NaN/inf; follow upstream serde_json and emit null.
        out.push_str("null");
        return;
    }
    // `{:?}` is the shortest representation that round-trips, and always contains a
    // `.`, `e`, or is integral-looking — all valid JSON number syntax.
    use std::fmt::Write;
    write!(out, "{x:?}").expect("writing to a String cannot fail");
}

/// Whether a character must be escaped in a JSON string.
fn needs_escape(c: char) -> bool {
    matches!(c, '"' | '\\') || (c as u32) < 0x20
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    // Fast path: copy maximal escape-free spans in one `push_str` — field names and
    // most payload strings contain no escapes at all.
    let mut rest = s;
    while let Some(split) = rest.find(needs_escape) {
        out.push_str(&rest[..split]);
        let c = rest[split..].chars().next().expect("split is a char start");
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c => {
                use std::fmt::Write;
                write!(out, "\\u{:04x}", c as u32).expect("writing to a String cannot fail");
            }
        }
        rest = &rest[split + c.len_utf8()..];
    }
    out.push_str(rest);
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

/// Parses JSON text into a [`Value`].
pub fn parse_value(text: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at byte {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn literal(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::custom(format!(
                "invalid literal at byte {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(Error::custom(format!(
                "unexpected {other:?} at byte {}",
                self.pos
            ))),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                other => {
                    return Err(Error::custom(format!(
                        "expected `,` or `}}`, got {other:?}"
                    )))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                other => return Err(Error::custom(format!("expected `,` or `]`, got {other:?}"))),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            // Bulk-copy the maximal span free of quotes and escapes; almost every
            // string (field names included) is one such span.
            let rest = &self.bytes[self.pos..];
            let span = rest
                .iter()
                .position(|&b| b == b'"' || b == b'\\')
                .unwrap_or(rest.len());
            if span > 0 {
                let text = std::str::from_utf8(&rest[..span])
                    .map_err(|_| Error::custom("invalid UTF-8"))?;
                if out.is_empty() && rest.get(span) == Some(&b'"') {
                    // The whole string is a single clean span: size the allocation
                    // exactly once.
                    out.reserve_exact(span);
                }
                out.push_str(text);
                self.pos += span;
            }
            let rest = &self.bytes[self.pos..];
            let Some(&b) = rest.first() else {
                return Err(Error::custom("unterminated string"));
            };
            match b {
                b'"' => {
                    self.pos += 1;
                    return Ok(out);
                }
                b'\\' => {
                    let esc = rest
                        .get(1)
                        .copied()
                        .ok_or_else(|| Error::custom("dangling escape"))?;
                    self.pos += 2;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| Error::custom("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| Error::custom("bad \\u escape"))?;
                            self.pos += 4;
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape \\{}",
                                other as char
                            )))
                        }
                    }
                }
                _ => unreachable!("the span scan stops only at quotes and escapes"),
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ASCII number");
        if is_float {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        } else if let Ok(x) = text.parse::<i64>() {
            Ok(Value::Int(x))
        } else if let Ok(x) = text.parse::<u64>() {
            Ok(Value::UInt(x))
        } else {
            text.parse::<f64>()
                .map(Value::Float)
                .map_err(|_| Error::custom(format!("bad number `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_value() {
        let v = Value::Map(vec![
            ("name".into(), Value::Str("sweep \"q\"".into())),
            ("trials".into(), Value::Int(20)),
            ("mean".into(), Value::Float(0.125)),
            ("ok".into(), Value::Bool(true)),
            (
                "items".into(),
                Value::Seq(vec![Value::Int(1), Value::Float(2.5), Value::Null]),
            ),
        ]);
        let compact = to_string(&v).unwrap();
        assert_eq!(parse_value(&compact).unwrap(), v);
        let pretty = to_string_pretty(&v).unwrap();
        assert_eq!(parse_value(&pretty).unwrap(), v);
        assert!(pretty.contains('\n'));
    }

    #[test]
    fn floats_are_shortest_round_trip() {
        assert_eq!(to_string(&0.1f64).unwrap(), "0.1");
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn typed_round_trip() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Point {
            x: f64,
            label: String,
        }
        let p = Point {
            x: -3.5,
            label: "a\nb".into(),
        };
        let json = to_string_pretty(&p).unwrap();
        assert_eq!(from_str::<Point>(&json).unwrap(), p);
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(parse_value("{").is_err());
        assert!(parse_value("[1,]").is_err());
        assert!(parse_value("1 2").is_err());
        assert!(from_str::<f64>("\"nope\"").is_err());
    }

    #[test]
    fn unicode_and_escapes() {
        let v = parse_value(r#""café \t ok""#).unwrap();
        assert_eq!(v, Value::Str("café \t ok".into()));
    }
}
