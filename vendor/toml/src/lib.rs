//! Offline vendored TOML front-end for the workspace's serde stand-in.
//!
//! Parses the practical subset of TOML the scenario specs use into a
//! [`serde::Value`] tree and deserializes from there:
//!
//! * key/value pairs with bare, quoted, and dotted keys;
//! * `[table]` and `[table.sub]` headers, `[[array-of-tables]]` headers;
//! * strings (basic and literal), integers (with `_` separators), floats, booleans;
//! * arrays (including multi-line with trailing commas) and inline tables;
//! * `#` comments.
//!
//! Unsupported TOML (multi-line strings, dates) produces a descriptive error rather than
//! a silent misparse.

#![deny(missing_docs)]

pub use serde::Error;
use serde::{Deserialize, Value};

/// Parses TOML text and deserializes it.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    let value = parse_document(text)?;
    T::deserialize(&value)
}

/// Parses TOML text into the [`Value`] data model (root is always a map).
pub fn parse_document(text: &str) -> Result<Value, Error> {
    let mut root = Vec::new();
    // Path of the table the current key/value lines belong to.
    let mut current_path: Vec<String> = Vec::new();

    let mut lines = Lines {
        text,
        pos: 0,
        line_no: 0,
    };
    while let Some((line_no, line)) = lines.next_logical_line()? {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix("[[") {
            let header = rest
                .strip_suffix("]]")
                .ok_or_else(|| err_at(line_no, "unterminated `[[` table header"))?;
            let path = parse_key_path(header, line_no)?;
            let array = lookup_array(&mut root, &path, line_no)?;
            array.push(Value::Map(Vec::new()));
            // Key/value lines that follow land in the just-pushed table: descending the
            // path hits the Seq and `ensure_table`/`insert` walk into its last element.
            current_path = path;
        } else if let Some(rest) = line.strip_prefix('[') {
            let header = rest
                .strip_suffix(']')
                .ok_or_else(|| err_at(line_no, "unterminated `[` table header"))?;
            let path = parse_key_path(header, line_no)?;
            ensure_table(&mut root, &path, line_no)?;
            current_path = path;
        } else {
            let (key_part, value_part) = split_key_value(line, line_no)?;
            let mut path = current_path.clone();
            path.extend(parse_key_path(key_part, line_no)?);
            let value = parse_toml_value(value_part.trim(), line_no)?;
            insert(&mut root, &path, value, line_no)?;
        }
    }
    Ok(Value::Map(root))
}

fn err_at(line_no: usize, msg: impl std::fmt::Display) -> Error {
    Error::custom(format!("TOML line {line_no}: {msg}"))
}

// ---------------------------------------------------------------------------
// Logical lines: a `key = [` array may span several physical lines.
// ---------------------------------------------------------------------------

struct Lines<'a> {
    text: &'a str,
    pos: usize,
    line_no: usize,
}

impl<'a> Lines<'a> {
    /// Returns the next logical line: physical lines are joined while an array `[` or
    /// inline table `{` remains open outside of strings.
    fn next_logical_line(&mut self) -> Result<Option<(usize, String)>, Error> {
        if self.pos >= self.text.len() {
            return Ok(None);
        }
        let start_line = self.line_no + 1;
        let mut logical = String::new();
        let mut depth = 0i32;
        loop {
            let rest = &self.text[self.pos..];
            if rest.is_empty() {
                if depth > 0 {
                    return Err(err_at(start_line, "unterminated array or inline table"));
                }
                break;
            }
            let line_end = rest
                .find('\n')
                .map(|i| self.pos + i)
                .unwrap_or(self.text.len());
            let physical = &self.text[self.pos..line_end];
            self.pos = (line_end + 1).min(self.text.len());
            if line_end == self.text.len() {
                self.pos = self.text.len();
            }
            self.line_no += 1;
            let stripped = strip_comment(physical, start_line)?;
            depth += bracket_delta(&stripped, start_line)?;
            if depth < 0 {
                return Err(err_at(self.line_no, "unbalanced `]` or `}`"));
            }
            if !logical.is_empty() {
                logical.push(' ');
            }
            logical.push_str(stripped.trim());
            if depth == 0 {
                break;
            }
        }
        Ok(Some((start_line, logical)))
    }
}

/// Removes a trailing `#`-comment, respecting strings.
fn strip_comment(line: &str, line_no: usize) -> Result<String, Error> {
    let mut out = String::new();
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '#' => break,
            '"' | '\'' => {
                out.push(c);
                let quote = c;
                loop {
                    let Some(inner) = chars.next() else {
                        return Err(err_at(line_no, "unterminated string"));
                    };
                    out.push(inner);
                    if inner == '\\' && quote == '"' {
                        if let Some(esc) = chars.next() {
                            out.push(esc);
                        }
                        continue;
                    }
                    if inner == quote {
                        break;
                    }
                }
            }
            c => out.push(c),
        }
    }
    Ok(out)
}

/// Net `[`/`{` minus `]`/`}` count outside strings.
fn bracket_delta(line: &str, line_no: usize) -> Result<i32, Error> {
    let mut delta = 0;
    let mut chars = line.chars();
    while let Some(c) = chars.next() {
        match c {
            '[' | '{' => delta += 1,
            ']' | '}' => delta -= 1,
            '"' | '\'' => {
                let quote = c;
                loop {
                    let Some(inner) = chars.next() else {
                        return Err(err_at(line_no, "unterminated string"));
                    };
                    if inner == '\\' && quote == '"' {
                        chars.next();
                        continue;
                    }
                    if inner == quote {
                        break;
                    }
                }
            }
            _ => {}
        }
    }
    Ok(delta)
}

// ---------------------------------------------------------------------------
// Keys and tree insertion
// ---------------------------------------------------------------------------

/// Splits `key = value`, respecting `=` inside quoted keys.
fn split_key_value(line: &str, line_no: usize) -> Result<(&str, &str), Error> {
    let mut in_quote: Option<char> = None;
    for (i, c) in line.char_indices() {
        match (c, in_quote) {
            ('"' | '\'', None) => in_quote = Some(c),
            (c, Some(q)) if c == q => in_quote = None,
            ('=', None) => return Ok((&line[..i], &line[i + 1..])),
            _ => {}
        }
    }
    Err(err_at(
        line_no,
        format!("expected `key = value`, got `{line}`"),
    ))
}

/// Parses a dotted key path such as `sweep.name` or `"quoted key"`.
fn parse_key_path(text: &str, line_no: usize) -> Result<Vec<String>, Error> {
    let mut path = Vec::new();
    let mut rest = text.trim();
    loop {
        if rest.is_empty() {
            return Err(err_at(line_no, "empty key"));
        }
        let (segment, remainder) = if let Some(stripped) = rest.strip_prefix('"') {
            let end = stripped
                .find('"')
                .ok_or_else(|| err_at(line_no, "unterminated quoted key"))?;
            (
                stripped[..end].to_string(),
                stripped[end + 1..].trim_start(),
            )
        } else if let Some(stripped) = rest.strip_prefix('\'') {
            let end = stripped
                .find('\'')
                .ok_or_else(|| err_at(line_no, "unterminated quoted key"))?;
            (
                stripped[..end].to_string(),
                stripped[end + 1..].trim_start(),
            )
        } else {
            let end = rest.find('.').unwrap_or(rest.len());
            (rest[..end].trim().to_string(), &rest[end..])
        };
        if segment.is_empty() {
            return Err(err_at(line_no, "empty key segment"));
        }
        path.push(segment);
        let remainder = remainder.trim_start();
        if remainder.is_empty() {
            return Ok(path);
        }
        rest = remainder
            .strip_prefix('.')
            .ok_or_else(|| err_at(line_no, format!("unexpected `{remainder}` after key")))?
            .trim_start();
    }
}

fn ensure_table(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    line_no: usize,
) -> Result<(), Error> {
    let mut entries = root;
    for segment in path {
        if !entries.iter().any(|(k, _)| k == segment) {
            entries.push((segment.clone(), Value::Map(Vec::new())));
        }
        let pos = entries
            .iter()
            .position(|(k, _)| k == segment)
            .expect("just ensured");
        match &mut entries[pos].1 {
            Value::Map(inner) => entries = inner,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(inner)) => entries = inner,
                _ => return Err(err_at(line_no, format!("`{segment}` is not a table"))),
            },
            _ => return Err(err_at(line_no, format!("`{segment}` is not a table"))),
        }
    }
    Ok(())
}

fn lookup_array<'v>(
    root: &'v mut Vec<(String, Value)>,
    path: &[String],
    line_no: usize,
) -> Result<&'v mut Vec<Value>, Error> {
    let (parents, last) = path.split_at(path.len() - 1);
    ensure_table(root, parents, line_no)?;
    let mut entries = root;
    for segment in parents {
        let pos = entries
            .iter()
            .position(|(k, _)| k == segment)
            .expect("ensured above");
        match &mut entries[pos].1 {
            Value::Map(inner) => entries = inner,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(inner)) => entries = inner,
                _ => return Err(err_at(line_no, format!("`{segment}` is not a table"))),
            },
            _ => return Err(err_at(line_no, format!("`{segment}` is not a table"))),
        }
    }
    let key = &last[0];
    if !entries.iter().any(|(k, _)| k == key) {
        entries.push((key.clone(), Value::Seq(Vec::new())));
    }
    let pos = entries
        .iter()
        .position(|(k, _)| k == key)
        .expect("just ensured");
    match &mut entries[pos].1 {
        Value::Seq(items) => Ok(items),
        _ => Err(err_at(
            line_no,
            format!("`{key}` is not an array of tables"),
        )),
    }
}

fn insert(
    root: &mut Vec<(String, Value)>,
    path: &[String],
    value: Value,
    line_no: usize,
) -> Result<(), Error> {
    let (parents, last) = path.split_at(path.len() - 1);
    ensure_table(root, parents, line_no)?;
    let mut entries = root;
    for segment in parents {
        let pos = entries
            .iter()
            .position(|(k, _)| k == segment)
            .expect("ensured above");
        match &mut entries[pos].1 {
            Value::Map(inner) => entries = inner,
            Value::Seq(items) => match items.last_mut() {
                Some(Value::Map(inner)) => entries = inner,
                _ => return Err(err_at(line_no, format!("`{segment}` is not a table"))),
            },
            _ => return Err(err_at(line_no, format!("`{segment}` is not a table"))),
        }
    }
    let key = &last[0];
    if entries.iter().any(|(k, _)| k == key) {
        return Err(err_at(line_no, format!("duplicate key `{key}`")));
    }
    entries.push((key.clone(), value));
    Ok(())
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

/// Parses a single TOML value (string / number / bool / array / inline table).
fn parse_toml_value(text: &str, line_no: usize) -> Result<Value, Error> {
    let text = text.trim();
    if text.is_empty() {
        return Err(err_at(line_no, "missing value"));
    }
    if text.starts_with("\"\"\"") || text.starts_with("'''") {
        return Err(err_at(
            line_no,
            "multi-line strings are not supported by the vendored toml",
        ));
    }
    if let Some(rest) = text.strip_prefix('"') {
        let inner = rest
            .strip_suffix('"')
            .ok_or_else(|| err_at(line_no, "unterminated basic string"))?;
        return Ok(Value::Str(unescape_basic(inner, line_no)?));
    }
    if let Some(rest) = text.strip_prefix('\'') {
        let inner = rest
            .strip_suffix('\'')
            .ok_or_else(|| err_at(line_no, "unterminated literal string"))?;
        return Ok(Value::Str(inner.to_string()));
    }
    if text == "true" {
        return Ok(Value::Bool(true));
    }
    if text == "false" {
        return Ok(Value::Bool(false));
    }
    if text.starts_with('[') {
        let inner = text
            .strip_prefix('[')
            .and_then(|t| t.strip_suffix(']'))
            .ok_or_else(|| err_at(line_no, "unterminated array"))?;
        let mut items = Vec::new();
        for part in split_top_level(inner, line_no)? {
            items.push(parse_toml_value(&part, line_no)?);
        }
        return Ok(Value::Seq(items));
    }
    if text.starts_with('{') {
        let inner = text
            .strip_prefix('{')
            .and_then(|t| t.strip_suffix('}'))
            .ok_or_else(|| err_at(line_no, "unterminated inline table"))?;
        let mut entries = Vec::new();
        for part in split_top_level(inner, line_no)? {
            let (k, v) = split_key_value(&part, line_no)?;
            let path = parse_key_path(k, line_no)?;
            if path.len() != 1 {
                return Err(err_at(
                    line_no,
                    "dotted keys inside inline tables are not supported",
                ));
            }
            entries.push((path[0].clone(), parse_toml_value(v, line_no)?));
        }
        return Ok(Value::Map(entries));
    }
    // Numbers.
    let cleaned: String = text.chars().filter(|&c| c != '_').collect();
    let looks_float = cleaned.contains('.') || cleaned.contains('e') || cleaned.contains('E');
    if looks_float {
        if let Ok(x) = cleaned.parse::<f64>() {
            return Ok(Value::Float(x));
        }
    } else if let Ok(x) = cleaned.parse::<i64>() {
        return Ok(Value::Int(x));
    } else if let Ok(x) = cleaned.parse::<u64>() {
        return Ok(Value::UInt(x));
    }
    Err(err_at(
        line_no,
        format!("unsupported value `{text}` (dates and exotic syntax are not supported)"),
    ))
}

fn unescape_basic(s: &str, line_no: usize) -> Result<String, Error> {
    let mut out = String::with_capacity(s.len());
    let mut chars = s.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next() {
            Some('"') => out.push('"'),
            Some('\\') => out.push('\\'),
            Some('n') => out.push('\n'),
            Some('r') => out.push('\r'),
            Some('t') => out.push('\t'),
            Some('u') => {
                let hex: String = chars.by_ref().take(4).collect();
                let code =
                    u32::from_str_radix(&hex, 16).map_err(|_| err_at(line_no, "bad \\u escape"))?;
                out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
            }
            other => return Err(err_at(line_no, format!("unknown escape \\{other:?}"))),
        }
    }
    Ok(out)
}

/// Splits `a, b, c` at top-level commas (outside strings / nested brackets), dropping a
/// trailing empty segment so `[1, 2,]` parses.
fn split_top_level(text: &str, line_no: usize) -> Result<Vec<String>, Error> {
    let mut parts = Vec::new();
    let mut current = String::new();
    let mut depth = 0i32;
    let mut chars = text.chars();
    while let Some(c) = chars.next() {
        match c {
            '[' | '{' => {
                depth += 1;
                current.push(c);
            }
            ']' | '}' => {
                depth -= 1;
                current.push(c);
            }
            '"' | '\'' => {
                let quote = c;
                current.push(c);
                loop {
                    let Some(inner) = chars.next() else {
                        return Err(err_at(line_no, "unterminated string in array"));
                    };
                    current.push(inner);
                    if inner == '\\' && quote == '"' {
                        if let Some(esc) = chars.next() {
                            current.push(esc);
                        }
                        continue;
                    }
                    if inner == quote {
                        break;
                    }
                }
            }
            ',' if depth == 0 => {
                parts.push(std::mem::take(&mut current));
                current.clear();
            }
            c => current.push(c),
        }
    }
    if !current.trim().is_empty() {
        parts.push(current);
    }
    Ok(parts
        .into_iter()
        .map(|p| p.trim().to_string())
        .filter(|p| !p.is_empty())
        .collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_tables_and_scalars() {
        let doc = r#"
# top comment
title = "demo"   # trailing comment
count = 12
ratio = 0.5
big = 1_000_000
flag = true

[sweep]
name = "paper"
trials = 8

[sweep.nested]
x = 1.5
"#;
        let v = parse_document(doc).unwrap();
        assert_eq!(v.get("title").unwrap().as_str(), Some("demo"));
        assert_eq!(v.get("count").unwrap().as_i64(), Some(12));
        assert_eq!(v.get("big").unwrap().as_i64(), Some(1_000_000));
        assert_eq!(v.get("flag").unwrap().as_bool(), Some(true));
        let sweep = v.get("sweep").unwrap();
        assert_eq!(sweep.get("name").unwrap().as_str(), Some("paper"));
        assert_eq!(
            sweep.get("nested").unwrap().get("x").unwrap().as_f64(),
            Some(1.5)
        );
    }

    #[test]
    fn parses_arrays_including_multiline() {
        let doc = "
sizes = [8, 16, 32]
names = [
  \"a\",   # comment inside
  \"b\",
]
mixed = [1.5, 2]
";
        let v = parse_document(doc).unwrap();
        assert_eq!(
            v.get("sizes")
                .unwrap()
                .as_seq()
                .unwrap()
                .iter()
                .map(|x| x.as_i64().unwrap())
                .collect::<Vec<_>>(),
            vec![8, 16, 32]
        );
        assert_eq!(v.get("names").unwrap().as_seq().unwrap().len(), 2);
    }

    #[test]
    fn parses_array_of_tables() {
        let doc = r#"
[[regime]]
name = "exp"
kind = "exponential"

[[regime]]
name = "phased"
kind = "phased"
"#;
        let v = parse_document(doc).unwrap();
        let regimes = v.get("regime").unwrap().as_seq().unwrap();
        assert_eq!(regimes.len(), 2);
        assert_eq!(regimes[0].get("name").unwrap().as_str(), Some("exp"));
        assert_eq!(regimes[1].get("kind").unwrap().as_str(), Some("phased"));
    }

    #[test]
    fn parses_inline_tables_and_dotted_keys() {
        let doc = "
point = { x = 1, y = 2.5 }
a.b = \"deep\"
";
        let v = parse_document(doc).unwrap();
        assert_eq!(
            v.get("point").unwrap().get("y").unwrap().as_f64(),
            Some(2.5)
        );
        assert_eq!(v.get("a").unwrap().get("b").unwrap().as_str(), Some("deep"));
    }

    #[test]
    fn typed_deserialization() {
        #[derive(Debug, PartialEq, serde::Serialize, serde::Deserialize)]
        struct Spec {
            name: String,
            trials: usize,
            sizes: Vec<usize>,
            jitter: Option<f64>,
        }
        let spec: Spec = from_str("name = \"s\"\ntrials = 4\nsizes = [1, 2]\n").unwrap();
        assert_eq!(
            spec,
            Spec {
                name: "s".into(),
                trials: 4,
                sizes: vec![1, 2],
                jitter: None
            }
        );
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(parse_document("x = ").is_err());
        assert!(parse_document("x = 1\nx = 2").is_err());
        assert!(parse_document("[unclosed").is_err());
        assert!(parse_document("d = 1979-05-27").is_err());
        let err = parse_document("s = \"\"\"multi\"\"\"")
            .unwrap_err()
            .to_string();
        assert!(err.contains("multi-line"), "{err}");
    }
}
