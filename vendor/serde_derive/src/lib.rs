//! Offline vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros.
//!
//! The build environment has no access to crates.io, so these derives are implemented
//! directly on `proc_macro::TokenStream` (no `syn`/`quote`).  They target the
//! workspace's `serde` stand-in, whose data model is a self-describing `Value` tree:
//!
//! * named structs    -> `Value::Map` keyed by field name;
//! * tuple structs    -> `Value::Seq` in field order;
//! * unit-only enums  -> `Value::Str` holding the variant name (kebab-case accepted on
//!   deserialization);
//!
//! Enums with payloads and generic types are not supported — the workspace does not use
//! them — and produce a compile error naming the limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// What the parsed `derive` input turned out to be.
enum Shape {
    /// A struct with named fields.
    Named { name: String, fields: Vec<String> },
    /// A tuple struct with `arity` unnamed fields.
    Tuple { name: String, arity: usize },
    /// A unit struct.
    Unit { name: String },
    /// An enum whose variants all carry no data.
    UnitEnum { name: String, variants: Vec<String> },
}

/// Derives the workspace `serde::Serialize` trait.
///
/// `#[serde(...)]` helper attributes are accepted but ignored: this derive always
/// rejects unknown fields, so `deny_unknown_fields` is implicit.  Declaring the
/// attribute keeps types source-compatible with upstream serde.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_serialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives the workspace `serde::Deserialize` trait.
///
/// `#[serde(...)]` helper attributes are accepted but ignored (see
/// [`derive_serialize`]); unknown fields are always rejected.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse(input) {
        Ok(shape) => gen_deserialize(&shape)
            .parse()
            .expect("generated impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({:?});", msg)
        .parse()
        .expect("compile_error parses")
}

// ---------------------------------------------------------------------------
// Input parsing
// ---------------------------------------------------------------------------

fn parse(input: TokenStream) -> Result<Shape, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    skip_attrs_and_vis(&tokens, &mut i);

    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => {
            return Err(format!(
                "serde derive: expected `struct` or `enum`, got {other:?}"
            ))
        }
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("serde derive: expected a type name, got {other:?}")),
    };
    i += 1;

    if matches!(tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "serde derive: generic type `{name}` is not supported by the vendored serde"
        ));
    }

    match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::Named {
                name,
                fields: parse_named_fields(g.stream())?,
            }),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Ok(Shape::Tuple {
                    name,
                    arity: count_tuple_fields(g.stream()),
                })
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Ok(Shape::Unit { name }),
            other => Err(format!("serde derive: unexpected struct body {other:?}")),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Shape::UnitEnum {
                name: name.clone(),
                variants: parse_unit_variants(&name, g.stream())?,
            }),
            other => Err(format!("serde derive: unexpected enum body {other:?}")),
        },
        other => Err(format!("serde derive: cannot derive for `{other}` items")),
    }
}

/// Advances `i` past any `#[...]` attributes and a `pub` / `pub(...)` visibility prefix.
fn skip_attrs_and_vis(tokens: &[TokenTree], i: &mut usize) {
    loop {
        match tokens.get(*i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                *i += 1; // the attribute body group
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Bracket)
                {
                    *i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                *i += 1;
                if matches!(tokens.get(*i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
                {
                    *i += 1;
                }
            }
            _ => return,
        }
    }
}

/// Parses `a: T, b: U, ...` field lists, returning the field names in declaration order.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let field = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive: expected a field name, got {other:?}"
                ))
            }
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => {
                return Err(format!(
                    "serde derive: expected `:` after field `{field}`, got {other:?}"
                ))
            }
        }
        fields.push(field);
        // Skip the type: everything up to a comma at angle-bracket depth zero.  Groups
        // (`[f64; 3]`, `(A, B)`) are single opaque tokens, so only `<`/`>` need tracking.
        let mut angle_depth: i32 = 0;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
    }
    Ok(fields)
}

/// Counts the fields of a tuple struct body (top-level comma-separated segments).
fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut angle_depth: i32 = 0;
    for t in &tokens {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => angle_depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => angle_depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && angle_depth == 0 => count += 1,
            _ => {}
        }
    }
    count
}

/// Parses the variants of an enum, requiring every variant to carry no data.
fn parse_unit_variants(enum_name: &str, stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs_and_vis(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let variant = match &tokens[i] {
            TokenTree::Ident(id) => id.to_string(),
            other => {
                return Err(format!(
                    "serde derive: expected a variant name in `{enum_name}`, got {other:?}"
                ))
            }
        };
        i += 1;
        if matches!(tokens.get(i), Some(TokenTree::Group(_))) {
            return Err(format!(
                "serde derive: variant `{enum_name}::{variant}` carries data, which the vendored serde does not support"
            ));
        }
        variants.push(variant);
        // Skip an optional `= <discriminant>` and the trailing comma.
        while i < tokens.len() {
            if matches!(&tokens[i], TokenTree::Punct(p) if p.as_char() == ',') {
                i += 1;
                break;
            }
            i += 1;
        }
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// Kebab-case form of a variant name (`ModelDriven` -> `model-driven`), accepted as an
/// alias when deserializing so configuration files can use conventional spelling.
fn kebab(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 4);
    for (i, c) in name.chars().enumerate() {
        if c.is_ascii_uppercase() {
            if i > 0 {
                out.push('-');
            }
            out.push(c.to_ascii_lowercase());
        } else {
            out.push(c);
        }
    }
    out
}

fn gen_serialize(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let entries: String = fields
                .iter()
                .map(|f| {
                    format!(
                        "(::std::string::String::from({f:?}), ::serde::Serialize::serialize(&self.{f})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Map(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            let entries: String = (0..*arity)
                .map(|i| format!("::serde::Serialize::serialize(&self.{i}),"))
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         ::serde::Value::Seq(::std::vec![{entries}])\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Serialize for {name} {{\n\
                 fn serialize(&self) -> ::serde::Value {{ ::serde::Value::Null }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    format!(
                        "{name}::{v} => ::serde::Value::Str(::std::string::String::from({v:?})),"
                    )
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn serialize(&self) -> ::serde::Value {{\n\
                         match self {{ {arms} }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}

fn gen_deserialize(shape: &Shape) -> String {
    match shape {
        Shape::Named { name, fields } => {
            let known: String = fields.iter().map(|f| format!("{f:?},")).collect();
            let inits: String = fields
                .iter()
                .map(|f| format!("{f}: ::serde::de::field(__map, {name:?}, {f:?})?,"))
                .collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __map = ::serde::de::as_map(__value, {name:?})?;\n\
                         ::serde::de::reject_unknown_fields({name:?}, __map, &[{known}])?;\n\
                         ::std::result::Result::Ok({name} {{ {inits} }})\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Tuple { name, arity } => {
            let inits: String =
                (0..*arity).map(|i| format!("::serde::de::element(__seq, {name:?}, {i})?,")).collect();
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __seq = ::serde::de::as_seq(__value, {name:?}, {arity})?;\n\
                         ::std::result::Result::Ok({name}({inits}))\n\
                     }}\n\
                 }}"
            )
        }
        Shape::Unit { name } => format!(
            "impl ::serde::Deserialize for {name} {{\n\
                 fn deserialize(_: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                     ::std::result::Result::Ok({name})\n\
                 }}\n\
             }}"
        ),
        Shape::UnitEnum { name, variants } => {
            let arms: String = variants
                .iter()
                .map(|v| {
                    let k = kebab(v);
                    if k == *v {
                        format!("{v:?} => ::std::result::Result::Ok({name}::{v}),")
                    } else {
                        format!("{v:?} | {k:?} => ::std::result::Result::Ok({name}::{v}),")
                    }
                })
                .collect();
            let expected: String = variants.iter().map(|v| kebab(v)).collect::<Vec<_>>().join(", ");
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn deserialize(__value: &::serde::Value) -> ::std::result::Result<Self, ::serde::Error> {{\n\
                         let __s = ::serde::de::as_str(__value, {name:?})?;\n\
                         match __s {{\n\
                             {arms}\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(::std::format!(\n\
                                 \"unknown {name} variant `{{other}}` (expected one of: {expected})\"))),\n\
                         }}\n\
                     }}\n\
                 }}"
            )
        }
    }
}
