//! Offline vendored stand-in for `criterion`.
//!
//! Implements the small API surface the workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`, the
//! `criterion_group!`/`criterion_main!` macros — as a minimal wall-clock harness: each
//! benchmark is warmed up, timed over a fixed measurement budget, and reported as the
//! median iteration time on stdout.  No statistics beyond that; good enough to compare
//! runs by eye and to keep `cargo bench` working offline.

#![deny(missing_docs)]

use std::fmt::Display;
use std::hint;
use std::time::{Duration, Instant};

/// Prevents the optimizer from deleting a computed value.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measure_for: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 30,
            measure_for: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(5);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(self, name, f);
        self
    }
}

/// A named group of benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl<'c> BenchmarkGroup<'c> {
    /// Sets the number of timing samples for benchmarks in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(5);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F>(&mut self, id: impl Display, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, &mut f);
        self
    }

    /// Runs one benchmark parameterised by an input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Finishes the group (kept for API compatibility).
    pub fn finish(self) {}
}

/// Identifier of a parameterised benchmark: `name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            label: format!("{name}/{parameter}"),
        }
    }

    /// Creates an id from a parameter value alone.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label)
    }
}

/// Times closures handed to it by a benchmark body.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    measure_for: Duration,
}

impl Bencher {
    /// Times `f`, storing per-iteration samples.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up and batch-size calibration: aim for ~1 ms per sample batch.
        let start = Instant::now();
        black_box(f());
        let once = start.elapsed().max(Duration::from_nanos(50));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000) as u32;

        let deadline = Instant::now() + self.measure_for;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            self.samples.push(start.elapsed() / batch);
            if Instant::now() > deadline {
                break;
            }
        }
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(criterion: &Criterion, name: &str, mut f: F) {
    let mut bencher = Bencher {
        samples: Vec::new(),
        sample_size: criterion.sample_size,
        measure_for: criterion.measure_for,
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{name:<60} (no samples)");
        return;
    }
    bencher.samples.sort();
    let median = bencher.samples[bencher.samples.len() / 2];
    let min = bencher.samples[0];
    let max = *bencher.samples.last().expect("non-empty");
    println!(
        "{name:<60} median {:>12} (min {}, max {}, {} samples)",
        format_duration(median),
        format_duration(min),
        format_duration(max),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let nanos = d.as_nanos();
    if nanos < 1_000 {
        format!("{nanos} ns")
    } else if nanos < 1_000_000 {
        format!("{:.2} µs", nanos as f64 / 1_000.0)
    } else if nanos < 1_000_000_000 {
        format!("{:.2} ms", nanos as f64 / 1_000_000.0)
    } else {
        format!("{:.2} s", nanos as f64 / 1_000_000_000.0)
    }
}

/// Declares a benchmark group function, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark binary's `main`, criterion-style.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn benchmarks_run_and_report() {
        let mut c = Criterion::default();
        c.sample_size(5);
        let mut group = c.benchmark_group("demo");
        group.bench_function("sum", |b| b.iter(|| (0..100u64).sum::<u64>()));
        group.bench_with_input(BenchmarkId::new("scaled", 7), &7u64, |b, &n| {
            b.iter(|| (0..n).product::<u64>())
        });
        group.finish();
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(format_duration(Duration::from_nanos(500)), "500 ns");
        assert!(format_duration(Duration::from_micros(12)).contains("µs"));
        assert!(format_duration(Duration::from_millis(12)).contains("ms"));
        assert!(format_duration(Duration::from_secs(2)).contains(" s"));
    }
}
