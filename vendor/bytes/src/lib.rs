//! Offline vendored stand-in for the `bytes` crate.
//!
//! Provides [`Bytes`]: an immutable, cheaply clonable byte buffer (an `Arc<[u8]>` under
//! the hood) with the subset of the upstream API the workspace uses — construction from
//! `Vec<u8>`, `Deref` to `[u8]`, length, and equality.

#![deny(missing_docs)]

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply clonable byte buffer.
#[derive(Clone, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Bytes {
            data: Arc::from(&[][..]),
        }
    }

    /// Creates a buffer by copying `data`.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: Arc::from(data),
        }
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the bytes into a fresh `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes {
            data: Arc::from(data.into_boxed_slice()),
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(data: &[u8]) -> Self {
        Bytes::copy_from_slice(data)
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

impl std::fmt::Debug for Bytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bytes({} bytes)", self.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert!(!b.is_empty());
        assert_eq!(&b[..2], &[1, 2]);
        assert_eq!(b.to_vec(), vec![1, 2, 3]);
        let c = b.clone();
        assert_eq!(b, c);
        assert!(Bytes::new().is_empty());
    }

    #[test]
    fn slicing_via_deref() {
        let b = Bytes::from((0u8..32).collect::<Vec<_>>());
        let head: [u8; 8] = b[0..8].try_into().unwrap();
        assert_eq!(head[7], 7);
    }
}
