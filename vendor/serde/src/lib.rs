//! Offline vendored stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate provides the subset of
//! serde the workspace uses, built around a simple self-describing data model:
//!
//! * [`Value`] — the data model (null/bool/int/float/string/sequence/map);
//! * [`Serialize`] — convert a value into a [`Value`] tree;
//! * [`Deserialize`] — reconstruct a value from a [`Value`] tree;
//! * `#[derive(Serialize, Deserialize)]` — re-exported from the vendored `serde_derive`.
//!
//! Format crates (`serde_json`, `toml`) parse text into a [`Value`] and print a [`Value`]
//! back out, so every type only needs the two trait impls above.  Maps preserve insertion
//! order, which keeps emitted reports byte-deterministic.

#![deny(missing_docs)]

// Let the generated `impl ::serde::...` code resolve inside this crate's own tests.
extern crate self as serde;

use std::collections::BTreeMap;
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// The self-describing data model every format reads and writes.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Absent / null.
    Null,
    /// A boolean.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer too large for `i64`.
    UInt(u64),
    /// A float.
    Float(f64),
    /// A string.
    Str(String),
    /// An ordered sequence.
    Seq(Vec<Value>),
    /// An ordered map with string keys (insertion order preserved).
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short name of the value's kind, used in error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Seq(_) => "sequence",
            Value::Map(_) => "map",
        }
    }

    /// The entries when this is a map.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(entries) => Some(entries),
            _ => None,
        }
    }

    /// The elements when this is a sequence.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(items) => Some(items),
            _ => None,
        }
    }

    /// The string when this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Numeric coercion to `f64` (integers are accepted).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Float(x) => Some(*x),
            Value::Int(x) => Some(*x as f64),
            Value::UInt(x) => Some(*x as f64),
            _ => None,
        }
    }

    /// Numeric coercion to `i64`.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(x) => Some(*x),
            Value::UInt(x) => i64::try_from(*x).ok(),
            _ => None,
        }
    }

    /// Numeric coercion to `u64`.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(x) => u64::try_from(*x).ok(),
            Value::UInt(x) => Some(*x),
            _ => None,
        }
    }

    /// The boolean when this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// `true` for `Value::Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Looks up a key when this is a map.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_map()
            .and_then(|m| m.iter().find(|(k, _)| k == key).map(|(_, v)| v))
    }
}

/// Error produced by deserialization (and by format front-ends).
#[derive(Debug, Clone, PartialEq)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error with an arbitrary message.
    pub fn custom(msg: impl Into<String>) -> Self {
        Error { msg: msg.into() }
    }

    /// Creates a "expected X while deserializing Y, found Z" error.
    pub fn expected(what: &str, while_deserializing: &str, found: &Value) -> Self {
        Error::custom(format!(
            "expected {what} while deserializing {while_deserializing}, found {}",
            found.kind()
        ))
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

/// Convert a value into the [`Value`] data model.
pub trait Serialize {
    /// Builds the data-model representation of `self`.
    fn serialize(&self) -> Value;
}

/// Reconstruct a value from the [`Value`] data model.
pub trait Deserialize: Sized {
    /// Parses `value` into `Self`.
    fn deserialize(value: &Value) -> Result<Self, Error>;
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                value
                    .as_f64()
                    .map(|x| x as $t)
                    .ok_or_else(|| Error::expected("a number", stringify!($t), value))
            }
        }
    )*};
}

impl_float!(f64, f32);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_i64()
                    .ok_or_else(|| Error::expected("an integer", stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize(&self) -> Value {
                let wide = *self as u64;
                match i64::try_from(wide) {
                    Ok(narrow) => Value::Int(narrow),
                    Err(_) => Value::UInt(wide),
                }
            }
        }
        impl Deserialize for $t {
            fn deserialize(value: &Value) -> Result<Self, Error> {
                let raw = value
                    .as_u64()
                    .ok_or_else(|| Error::expected("a non-negative integer", stringify!($t), value))?;
                <$t>::try_from(raw)
                    .map_err(|_| Error::custom(format!("{raw} out of range for {}", stringify!($t))))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

impl Serialize for bool {
    fn serialize(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_bool()
            .ok_or_else(|| Error::expected("a boolean", "bool", value))
    }
}

impl Serialize for String {
    fn serialize(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        value
            .as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::expected("a string", "String", value))
    }
}

impl Serialize for str {
    fn serialize(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for &'static str {
    /// Deserializing into `&'static str` leaks the string; it exists only so that
    /// constant-table types (e.g. application profiles) can derive `Deserialize`.
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let s = value
            .as_str()
            .ok_or_else(|| Error::expected("a string", "&'static str", value))?;
        Ok(Box::leak(s.to_string().into_boxed_str()))
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize(&self) -> Value {
        match self {
            Some(inner) => inner.serialize(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        if value.is_null() {
            Ok(None)
        } else {
            T::deserialize(value).map(Some)
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(T::serialize).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("a sequence", "Vec", value))?;
        items.iter().map(T::deserialize).collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(T::serialize).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize(&self) -> Value {
        Value::Seq(self.iter().map(T::serialize).collect())
    }
}

impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let items = value
            .as_seq()
            .ok_or_else(|| Error::expected("a sequence", "array", value))?;
        if items.len() != N {
            return Err(Error::custom(format!(
                "expected an array of length {N}, found {}",
                items.len()
            )));
        }
        let parsed: Vec<T> = items.iter().map(T::deserialize).collect::<Result<_, _>>()?;
        Ok(parsed.try_into().expect("length checked above"))
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        T::deserialize(value).map(Box::new)
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize(&self) -> Value {
        (**self).serialize()
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn serialize(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (k.clone(), v.serialize()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        let entries = value
            .as_map()
            .ok_or_else(|| Error::expected("a map", "BTreeMap", value))?;
        entries
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::deserialize(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn serialize(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn deserialize(value: &Value) -> Result<Self, Error> {
        Ok(value.clone())
    }
}

/// Helpers used by the generated `Deserialize` impls.
pub mod de {
    use super::{Deserialize, Error, Value};

    /// Requires `value` to be a map.
    pub fn as_map<'v>(value: &'v Value, type_name: &str) -> Result<&'v [(String, Value)], Error> {
        value
            .as_map()
            .ok_or_else(|| Error::expected("a map", type_name, value))
    }

    /// Requires `value` to be a sequence of exactly `arity` elements.
    pub fn as_seq<'v>(
        value: &'v Value,
        type_name: &str,
        arity: usize,
    ) -> Result<&'v [Value], Error> {
        let seq = value
            .as_seq()
            .ok_or_else(|| Error::expected("a sequence", type_name, value))?;
        if seq.len() != arity {
            return Err(Error::custom(format!(
                "expected {arity} elements for {type_name}, found {}",
                seq.len()
            )));
        }
        Ok(seq)
    }

    /// Requires `value` to be a string.
    pub fn as_str<'v>(value: &'v Value, type_name: &str) -> Result<&'v str, Error> {
        value
            .as_str()
            .ok_or_else(|| Error::expected("a string", type_name, value))
    }

    /// Deserializes one named field; a missing key behaves like an explicit null (so
    /// `Option` fields default to `None` and everything else reports a missing field).
    pub fn field<T: Deserialize>(
        map: &[(String, Value)],
        type_name: &str,
        field_name: &str,
    ) -> Result<T, Error> {
        match map.iter().find(|(k, _)| k == field_name) {
            Some((_, v)) => T::deserialize(v)
                .map_err(|e| Error::custom(format!("{type_name}.{field_name}: {e}"))),
            None => T::deserialize(&Value::Null)
                .map_err(|_| Error::custom(format!("missing field `{field_name}` in {type_name}"))),
        }
    }

    /// Deserializes one positional element of a tuple struct.
    pub fn element<T: Deserialize>(
        seq: &[Value],
        type_name: &str,
        index: usize,
    ) -> Result<T, Error> {
        T::deserialize(&seq[index]).map_err(|e| Error::custom(format!("{type_name}.{index}: {e}")))
    }

    /// Rejects map keys that name no field — the typo guard for configuration files.
    pub fn reject_unknown_fields(
        type_name: &str,
        map: &[(String, Value)],
        known: &[&str],
    ) -> Result<(), Error> {
        for (key, _) in map {
            if !known.contains(&key.as_str()) {
                return Err(Error::custom(format!(
                    "unknown field `{key}` in {type_name} (expected one of: {})",
                    known.join(", ")
                )));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitive_round_trips() {
        assert_eq!(f64::deserialize(&(1.5f64).serialize()).unwrap(), 1.5);
        assert_eq!(u64::deserialize(&(7u64).serialize()).unwrap(), 7);
        assert_eq!(usize::deserialize(&Value::Int(3)).unwrap(), 3);
        assert!(bool::deserialize(&true.serialize()).unwrap());
        assert_eq!(String::deserialize(&"hi".serialize()).unwrap(), "hi");
        assert_eq!(
            f64::deserialize(&Value::Int(2)).unwrap(),
            2.0,
            "ints coerce to floats"
        );
    }

    #[test]
    fn big_u64_round_trips_through_uint() {
        let big = u64::MAX - 3;
        let v = big.serialize();
        assert_eq!(v, Value::UInt(big));
        assert_eq!(u64::deserialize(&v).unwrap(), big);
        assert!(i64::deserialize(&v).is_err());
    }

    #[test]
    fn option_and_vec() {
        assert_eq!(Option::<f64>::deserialize(&Value::Null).unwrap(), None);
        assert_eq!(
            Option::<f64>::deserialize(&Value::Float(1.0)).unwrap(),
            Some(1.0)
        );
        let v = vec![1.0f64, 2.0].serialize();
        assert_eq!(Vec::<f64>::deserialize(&v).unwrap(), vec![1.0, 2.0]);
    }

    #[test]
    fn arrays_check_length() {
        let ok = [1.0f64, 2.0, 3.0].serialize();
        assert_eq!(<[f64; 3]>::deserialize(&ok).unwrap(), [1.0, 2.0, 3.0]);
        assert!(<[f64; 2]>::deserialize(&ok).is_err());
    }

    #[test]
    fn map_lookup_preserves_order() {
        let v = Value::Map(vec![
            ("b".into(), Value::Int(1)),
            ("a".into(), Value::Int(2)),
        ]);
        assert_eq!(v.get("a"), Some(&Value::Int(2)));
        assert_eq!(v.as_map().unwrap()[0].0, "b");
    }

    #[test]
    fn unknown_field_rejected() {
        let map = vec![("typo".to_string(), Value::Int(1))];
        let err = de::reject_unknown_fields("Demo", &map, &["real"]).unwrap_err();
        assert!(err.to_string().contains("typo"));
        assert!(err.to_string().contains("real"));
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Demo {
        x: f64,
        label: String,
        maybe: Option<u32>,
        seq: Vec<bool>,
    }

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    struct Pair(u64, f64);

    #[derive(Debug, PartialEq, Serialize, Deserialize)]
    enum Mode {
        ModelDriven,
        YoungDaly,
        None,
    }

    #[test]
    fn derived_struct_round_trip() {
        let d = Demo {
            x: 2.5,
            label: "hello".into(),
            maybe: None,
            seq: vec![true, false],
        };
        let v = d.serialize();
        assert_eq!(Demo::deserialize(&v).unwrap(), d);
    }

    #[test]
    fn derived_tuple_struct_round_trip() {
        let p = Pair(9, -1.5);
        assert_eq!(Pair::deserialize(&p.serialize()).unwrap(), p);
    }

    #[test]
    fn derived_enum_accepts_kebab_case() {
        assert_eq!(
            Mode::deserialize(&Value::Str("ModelDriven".into())).unwrap(),
            Mode::ModelDriven
        );
        assert_eq!(
            Mode::deserialize(&Value::Str("model-driven".into())).unwrap(),
            Mode::ModelDriven
        );
        assert_eq!(
            Mode::deserialize(&Value::Str("young-daly".into())).unwrap(),
            Mode::YoungDaly
        );
        assert_eq!(
            Mode::deserialize(&Value::Str("none".into())).unwrap(),
            Mode::None
        );
        assert!(Mode::deserialize(&Value::Str("bogus".into())).is_err());
    }

    #[test]
    fn derived_struct_rejects_unknown_and_missing_fields() {
        let mut v = Demo {
            x: 1.0,
            label: "a".into(),
            maybe: Some(1),
            seq: vec![],
        }
        .serialize();
        if let Value::Map(entries) = &mut v {
            entries.push(("extra".to_string(), Value::Int(1)));
        }
        assert!(Demo::deserialize(&v).is_err());
        let missing = Value::Map(vec![("x".to_string(), Value::Float(1.0))]);
        let err = Demo::deserialize(&missing).unwrap_err().to_string();
        assert!(
            err.contains("missing field") || err.contains("unknown"),
            "{err}"
        );
    }
}
