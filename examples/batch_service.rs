//! End-to-end cost experiment: run a bag of scientific jobs through the batch service on
//! preemptible VMs and compare the cost per job against conventional on-demand VMs
//! (Section 6.3 / Figure 9a).
//!
//! Run with: `cargo run --release --example batch_service`

use constrained_preemption::batch::{BatchService, ServiceConfig};
use constrained_preemption::model::BathtubModel;
use constrained_preemption::workloads::profiles::PAPER_APPLICATIONS;

fn main() {
    let model = BathtubModel::paper_representative();
    let cluster_size = 16;
    let jobs_per_bag = 100;

    println!(
        "cost per job, preemptible (our service) vs on-demand, {jobs_per_bag} jobs per bag:\n"
    );
    println!(
        "  application        ours       on-demand   savings   preemptions   runtime increase"
    );
    for (i, profile) in PAPER_APPLICATIONS.iter().enumerate() {
        let bag = profile.bag(jobs_per_bag, 40 + i as u64).expect("bag");

        let ours = BatchService::new(
            ServiceConfig {
                cluster_size,
                ..ServiceConfig::paper_cost_experiment(10 + i as u64)
            },
            std::sync::Arc::new(model),
        )
        .expect("service")
        .run_bag(&bag)
        .expect("run");

        let on_demand = BatchService::new(
            ServiceConfig {
                cluster_size,
                ..ServiceConfig::on_demand_comparator(10 + i as u64)
            },
            std::sync::Arc::new(model),
        )
        .expect("service")
        .run_bag(&bag)
        .expect("run");

        println!(
            "  {:<16} ${:<9.3} ${:<10.3} {:>5.1}x   {:>8}      {:>6.1}%",
            profile.name,
            ours.cost_per_job(),
            on_demand.cost_per_job(),
            on_demand.cost_per_job() / ours.cost_per_job(),
            ours.preemptions,
            ours.percent_increase_in_running_time(),
        );
    }
}
