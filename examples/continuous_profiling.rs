//! Continuous profiling: arm the wall-clock sampler and the allocation
//! profiler, answer a batch of advisory queries under spans, and export the
//! folded stacks as inferno-style collapsed text plus a standalone flamegraph
//! SVG — no external tooling needed to look at either.
//!
//! The same profiler runs inside `advise listen` (`--profile-file` /
//! `--profile-hz`), `calibrate fit --profile-file`, and `sweep --profile-file`;
//! a running server also answers the `!profile` control line with the same
//! snapshot as sorted-key JSON.
//!
//! Run with: `cargo run --release --example continuous_profiling`

use constrained_preemption::advisor::{
    generate_requests, requests_to_ndjson, respond_line, AdvisorHandle,
};
use constrained_preemption::advisor::{MultiAdvisor, PackBuilder};
use constrained_preemption::obs::profile;
use constrained_preemption::scenarios::SweepSpec;

/// Attribute allocations to the innermost active span site; counting is off
/// (one relaxed load per alloc) until `set_counting(true)` below.
#[global_allocator]
static ALLOC: profile::CountingAlloc = profile::CountingAlloc::new();

fn main() {
    let spec = SweepSpec::from_toml(
        r#"
[sweep]
name = "profiling-demo"

[[regime]]
name = "exp8"
kind = "exponential"
mean_hours = 8.0

[workload]
dp_step_minutes = 30.0
"#,
    )
    .expect("sweep spec");
    let pack = PackBuilder {
        age_points: 121,
        checkpoint_age_points: 3,
        checkpoint_job_points: 4,
        max_checkpoint_job_hours: 4.0,
        ..Default::default()
    }
    .build_from_spec(&spec)
    .expect("pack");
    let advisor = MultiAdvisor::from_pack(pack).expect("advisor");
    let corpus = requests_to_ndjson(&generate_requests(advisor.pooled().pack(), 20_000, 7));
    let handle = AdvisorHandle::new(advisor);

    // Arm both halves: a 997 Hz wall-clock sampler over every thread's span
    // stack, and per-site allocation counting in the global allocator.
    profile::set_counting(true);
    profile::arm(997);
    for (ordinal, request) in corpus.lines().enumerate() {
        let _root = constrained_preemption::obs::root_span!("example.request", ordinal as u64);
        let _span = constrained_preemption::obs::span!("example.respond");
        let _response = respond_line(&handle.current(), request);
    }
    profile::disarm();

    let snapshot = profile::snapshot();
    println!(
        "sampled {} ticks -> {} stack samples ({} torn), {} distinct stacks",
        snapshot.ticks,
        snapshot.samples,
        snapshot.torn,
        snapshot.stacks.len()
    );
    println!(
        "allocation: {} allocs / {} bytes total, peak live {} bytes",
        snapshot.alloc.allocs, snapshot.alloc.bytes, snapshot.alloc.peak_bytes
    );

    // Hot sites: self samples (innermost frame) vs total (anywhere on stack).
    println!("\nhot sites (what `advise top` shows as its hot-sites panel):");
    for site in profile::hot_sites(&snapshot.stacks).iter().take(5) {
        println!(
            "  {:<24} self {:>4}  total {:>4}",
            site.name, site.self_samples, site.total_samples
        );
    }

    // Collapsed text is the `folded` format flamegraph tooling consumes; the
    // SVG is self-rendered and opens in any browser.
    let collapsed = profile::collapsed(&snapshot);
    let svg = profile::flamegraph_svg(&snapshot);
    println!(
        "\nexports: {} bytes collapsed, {} bytes standalone SVG",
        collapsed.len(),
        svg.len()
    );
    println!("!profile JSON:\n{}", profile::profile_json(&snapshot));
}
