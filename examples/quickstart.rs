//! Quickstart: generate a synthetic preemption study, fit the constrained-bathtub model,
//! and compare it against the classical failure distributions (the Figure 1 pipeline).
//!
//! Run with: `cargo run --release --example quickstart`

use constrained_preemption::model::{fit_model_comparison, BathtubModel};
use constrained_preemption::trace::{ConfigKey, TraceGenerator};

fn main() {
    // 1. "Measure" preemptions: 800 n1-highcpu-16 VMs in us-east1-b (synthetic stand-in
    //    for the paper's two-month empirical study).
    let mut generator = TraceGenerator::new(2020);
    let records = generator
        .generate_for(ConfigKey::figure1(), 800)
        .expect("trace generation");
    let lifetimes: Vec<f64> = records.iter().map(|r| r.lifetime_hours).collect();
    println!("collected {} preemption events", lifetimes.len());

    // 2. Fit every candidate distribution to the empirical CDF.
    let comparison = fit_model_comparison(&lifetimes, 24.0).expect("model fitting");
    println!("\nFigure 1 goodness of fit (higher R² is better):");
    for family in &comparison.families {
        println!(
            "  {:<22} R² = {:.4}   RMSE = {:.4}",
            family.label, family.r_squared, family.rmse
        );
    }

    // 3. Inspect the fitted bathtub model.
    let model: BathtubModel = comparison.bathtub.model;
    let p = model.params();
    println!("\nfitted constrained-bathtub parameters (Equation 1):");
    println!(
        "  A = {:.3}, tau1 = {:.3} h, tau2 = {:.3} h, b = {:.2} h",
        p.a, p.tau1, p.tau2, p.b
    );
    println!(
        "  expected VM lifetime: {:.2} h (vs 24 h maximum)",
        model.expected_lifetime()
    );
    let (early_end, deadline_start) = model.phase_boundaries();
    println!("  phases: early failures until ~{early_end:.1} h, deadline spike from ~{deadline_start:.1} h");
}
