//! Request-scoped tracing: arm the flight recorder, answer a batch of advisory
//! queries under per-request root spans, and export the result as Chrome trace-event
//! JSON (loadable in `chrome://tracing` or Perfetto) plus a per-site summary.
//!
//! The same recorder runs inside `advise listen` (`--trace-file` / `--trace-sample` /
//! `--trace-slow-us`), where traces are seeded by request ordinals so sampling is
//! deterministic: the same corpus always retains the same traces.
//!
//! Run with: `cargo run --release --example request_tracing`

use constrained_preemption::advisor::{
    generate_requests, requests_to_ndjson, respond_line, AdvisorHandle,
};
use constrained_preemption::advisor::{MultiAdvisor, PackBuilder};
use constrained_preemption::obs::trace;
use constrained_preemption::scenarios::SweepSpec;

fn main() {
    let spec = SweepSpec::from_toml(
        r#"
[sweep]
name = "tracing-demo"

[[regime]]
name = "exp8"
kind = "exponential"
mean_hours = 8.0

[workload]
dp_step_minutes = 30.0
"#,
    )
    .expect("sweep spec");
    let pack = PackBuilder {
        age_points: 121,
        checkpoint_age_points: 3,
        checkpoint_job_points: 4,
        max_checkpoint_job_hours: 4.0,
        ..Default::default()
    }
    .build_from_spec(&spec)
    .expect("pack");
    let advisor = MultiAdvisor::from_pack(pack).expect("advisor");
    let corpus = requests_to_ndjson(&generate_requests(advisor.pooled().pack(), 64, 7));
    let requests: Vec<&str> = corpus.lines().collect();
    let handle = AdvisorHandle::new(advisor);

    // Sample 1 in 4 requests deterministically (hash of the request ordinal), and
    // force-retain anything slower than 200us regardless of sampling.
    trace::configure(4, 200_000);
    for (ordinal, request) in requests.iter().enumerate() {
        let _root = constrained_preemption::obs::root_span!(
            "example.request",
            ordinal as u64,
            ordinal as u64
        );
        let _response = respond_line(&handle.current(), request);
    }

    let spans = trace::recent_spans();
    println!(
        "retained {} spans from {} requests:",
        spans.len(),
        requests.len()
    );
    let roots = spans.iter().filter(|s| s.parent_id == 0).count();
    println!("  {} root spans (sampled 1/4 + slow-log)", roots);

    // Per-site rollup: count, total time, self time (total minus child time).
    println!("\nper-site summary (also what `advise listen` serves for `!trace`):");
    println!("{}", trace::summary_json(&spans));

    // The Chrome export: write this string to a file and load it in chrome://tracing.
    let chrome = trace::chrome_trace_json(&spans);
    println!(
        "\nchrome trace export: {} bytes, {} events (load in chrome://tracing)",
        chrome.len(),
        spans.len()
    );
}
