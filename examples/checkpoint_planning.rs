//! Checkpoint planning: compute the model-driven (non-uniform) checkpoint schedule for a
//! job and compare its expected overhead against the Young–Daly periodic baseline
//! (Section 4.3 / Figure 8).
//!
//! Run with: `cargo run --release --example checkpoint_planning`

use constrained_preemption::model::BathtubModel;
use constrained_preemption::policy::checkpoint::simulate::{
    simulate_checkpointed_job, SimulationOptions,
};
use constrained_preemption::policy::{CheckpointConfig, DpCheckpointPolicy, YoungDalyPolicy};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = BathtubModel::paper_representative();
    let policy =
        DpCheckpointPolicy::new(model, CheckpointConfig::paper_defaults()).expect("policy");

    // The paper's running example: a 5-hour job launched on a fresh VM.
    let schedule = policy.schedule(5.0, 0.0).expect("schedule");
    println!("model-driven checkpoint schedule for a 5 h job on a fresh VM:");
    for (i, interval) in schedule.intervals_hours.iter().enumerate() {
        println!(
            "  segment {}: {:.0} minutes of work",
            i + 1,
            interval * 60.0
        );
    }
    println!(
        "  expected makespan: {:.2} h ({:.1}% overhead)",
        schedule.expected_makespan,
        100.0 * schedule.expected_overhead_fraction()
    );

    // Compare simulated overhead against Young–Daly for a 4-hour job at various VM ages.
    let young_daly = YoungDalyPolicy::paper_baseline();
    let options = SimulationOptions {
        trials: 300,
        ..SimulationOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(7);
    println!("\nsimulated % increase in running time for a 4 h job (Figure 8a):");
    println!("  start age    our policy    young-daly");
    for start in [0.0, 4.0, 8.0, 12.0] {
        let ours = simulate_checkpointed_job(&policy, model.dist(), 4.0, start, &options, &mut rng)
            .expect("sim");
        let yd =
            simulate_checkpointed_job(&young_daly, model.dist(), 4.0, start, &options, &mut rng)
                .expect("sim");
        println!(
            "  {:>6.1} h   {:>8.1}%     {:>8.1}%",
            start,
            100.0 * ours.mean_overhead_fraction,
            100.0 * yd.mean_overhead_fraction
        );
    }
}
