//! Runs the three checkpointable scientific kernels directly and demonstrates that
//! checkpoint/restore preserves their trajectories exactly — the property the batch
//! service relies on when it restarts preempted jobs.
//!
//! Run with: `cargo run --release --example workload_kernels`

use constrained_preemption::workloads::hydro::HydroParams;
use constrained_preemption::workloads::md::MdParams;
use constrained_preemption::workloads::shapes::ShapesParams;
use constrained_preemption::workloads::{
    CheckpointableJob, HydroJob, NanoconfinementJob, ShapesJob,
};

fn exercise(name: &str, job: &mut dyn CheckpointableJob, halfway: u64) {
    job.run_steps(halfway);
    let checkpoint = job.checkpoint();
    let fingerprint_at_checkpoint = job.state_fingerprint();
    job.run_to_completion();
    let final_fingerprint = job.state_fingerprint();

    println!(
        "{name:<18} steps: {:>5}/{:<5}  checkpoint: {:>7} bytes  fingerprint: {:.6}",
        job.progress().completed_steps,
        job.progress().total_steps,
        checkpoint.len(),
        final_fingerprint,
    );
    println!(
        "                   (state fingerprint at the checkpoint was {fingerprint_at_checkpoint:.6}; a preempted run restored from it would resume there)"
    );
}

fn main() {
    println!("running the three scientific kernels with a mid-run checkpoint:\n");

    let mut md = NanoconfinementJob::new(
        MdParams {
            particles: 64,
            total_steps: 400,
            ..MdParams::default()
        },
        1,
    )
    .expect("md job");
    exercise("nanoconfinement", &mut md, 200);

    let mut shapes = ShapesJob::new(ShapesParams {
        total_steps: 1000,
        ..ShapesParams::default()
    })
    .expect("shapes job");
    exercise("shapes", &mut shapes, 500);

    let mut hydro = HydroJob::new(HydroParams {
        zones: 200,
        total_steps: 800,
        ..HydroParams::default()
    })
    .expect("hydro job");
    exercise("lulesh-proxy", &mut hydro, 400);
}
