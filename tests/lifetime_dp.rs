//! Property tests for the model-generic lifetime API: the generic-hazard DP must
//! reproduce the bathtub closed-form DP within tolerance across the whole grid
//! (deadline crossing included), and the DP value function must be monotone in the
//! checkpoint cost for every lifetime family.

use constrained_preemption::model::{BathtubModel, LifetimeModel, TabulatedLifetime};
use constrained_preemption::policy::{CheckpointConfig, DpCheckpointPolicy};
use proptest::prelude::*;
use std::sync::Arc;

/// The acceptance tolerance of the redesign: tabulated-vs-closed-form agreement.
const DP_TOLERANCE: f64 = 5e-3;

fn coarse(cost_minutes: f64) -> CheckpointConfig {
    CheckpointConfig {
        checkpoint_cost_hours: cost_minutes / 60.0,
        step_hours: 0.25,
        restart_overhead_hours: 1.0 / 60.0,
    }
}

/// One lifetime model per family, horizon 24 h, tabulated where the family needs it.
fn family_models() -> Vec<Arc<dyn LifetimeModel>> {
    use constrained_preemption::dists::{EmpiricalLifetime, Exponential, PhasedHazard, Weibull};
    vec![
        Arc::new(BathtubModel::paper_representative()),
        Arc::new(
            TabulatedLifetime::from_distribution(
                "exponential",
                &Exponential::new(1.0 / 8.0).unwrap(),
                24.0,
                361,
            )
            .unwrap(),
        ),
        Arc::new(
            TabulatedLifetime::from_distribution(
                "weibull",
                &Weibull::new(0.1, 1.5).unwrap(),
                24.0,
                361,
            )
            .unwrap(),
        ),
        Arc::new(
            TabulatedLifetime::from_distribution(
                "phased",
                &PhasedHazard::representative(),
                24.0,
                361,
            )
            .unwrap(),
        ),
        Arc::new(
            TabulatedLifetime::from_distribution(
                "empirical",
                &EmpiricalLifetime::new(
                    &[0.3, 0.9, 1.8, 2.6, 4.0, 6.5, 9.0, 13.0, 18.0, 22.5, 24.0],
                    Some(24.0),
                )
                .unwrap(),
                24.0,
                361,
            )
            .unwrap(),
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    // The generic-hazard DP (bathtub tabulated by quadrature, the exact path every
    // non-bathtub winner takes) reproduces the closed-form DP within 5e-3 across the
    // grid — including start ages whose planning windows cross the 24 h deadline.
    #[test]
    fn generic_dp_matches_bathtub_closed_form(
        a in 0.35f64..0.55,
        tau1 in 0.6f64..1.6,
        job in 1.0f64..6.0,
        age in 0.0f64..23.0,
    ) {
        let model = BathtubModel::from_parts(a, tau1, 0.8, 24.0).unwrap();
        let closed = DpCheckpointPolicy::new(model, coarse(1.0)).unwrap();
        let tabulated = TabulatedLifetime::from_distribution(
            "bathtub",
            model.dist(),
            model.horizon(),
            1441,
        )
        .unwrap();
        let generic = DpCheckpointPolicy::from_model(Arc::new(tabulated), coarse(1.0)).unwrap();
        let v_closed = closed.expected_makespan(job, age).unwrap();
        let v_generic = generic.expected_makespan(job, age).unwrap();
        prop_assert!(
            (v_closed - v_generic).abs() <= DP_TOLERANCE * v_closed.max(1.0),
            "a={a} tau1={tau1} job={job} age={age}: closed {v_closed} generic {v_generic}"
        );
        // The deadline-crossing corner explicitly: starting late enough that the job
        // cannot fit before the horizon.
        let late_age = (24.0 - 0.5 * job).min(23.5);
        let v_closed = closed.expected_makespan(job, late_age).unwrap();
        let v_generic = generic.expected_makespan(job, late_age).unwrap();
        prop_assert!(
            (v_closed - v_generic).abs() <= DP_TOLERANCE * v_closed.max(1.0),
            "deadline crossing at age {late_age}: closed {v_closed} generic {v_generic}"
        );
    }

    // A more expensive checkpoint can never shrink the optimal expected makespan —
    // for the bathtub closed form and for every tabulated family alike.
    #[test]
    fn dp_value_monotone_in_checkpoint_cost_for_every_family(
        low in 0.25f64..4.0,
        factor in 1.0f64..8.0,
        job in 1.0f64..6.0,
        age in 0.0f64..20.0,
    ) {
        let high = low * factor;
        for model in family_models() {
            let family = model.family().to_string();
            let cheap = DpCheckpointPolicy::from_model(model.clone(), coarse(low)).unwrap();
            let dear = DpCheckpointPolicy::from_model(model.clone(), coarse(high)).unwrap();
            let v_cheap = cheap.expected_makespan(job, age).unwrap();
            let v_dear = dear.expected_makespan(job, age).unwrap();
            prop_assert!(
                v_dear >= v_cheap - 1e-9,
                "{family}: cost {low}->{high} min, job {job} age {age}: {v_cheap} -> {v_dear}"
            );
            // The DP quantises the job to 15-minute steps, so the planned job may sit
            // up to half a step below the requested length.
            prop_assert!(
                v_cheap >= job - 0.126,
                "{family}: makespan {v_cheap} below quantised job length {job}"
            );
        }
    }
}
