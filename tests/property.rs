//! Property-based tests of the core invariants, using proptest.

use constrained_preemption::dists::{
    ConstrainedBathtub, Exponential, GompertzMakeham, LifetimeDistribution, UniformLifetime,
    Weibull,
};
use constrained_preemption::model::analysis::{expected_makespan, expected_wasted_work};
use constrained_preemption::model::BathtubModel;
use constrained_preemption::policy::{
    CheckpointConfig, DpCheckpointPolicy, ModelDrivenScheduler, SchedulerPolicy,
};
use proptest::prelude::*;

fn check_cdf_invariants(dist: &dyn LifetimeDistribution) {
    let hi = dist.upper_bound();
    let mut prev = 0.0;
    for i in 0..=100 {
        let t = i as f64 * hi / 100.0;
        let f = dist.cdf(t);
        prop_assert_simple(f.is_finite());
        prop_assert_simple((-1e-9..=1.0 + 1e-9).contains(&f));
        prop_assert_simple(f + 1e-9 >= prev);
        prop_assert_simple(dist.pdf(t) >= 0.0);
        prev = f;
    }
}

/// proptest's `prop_assert!` only works inside proptest closures; this helper panics with a
/// plain assert so it can be shared by the per-distribution check.
fn prop_assert_simple(cond: bool) {
    assert!(cond);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn exponential_cdf_invariants(rate in 0.01f64..5.0) {
        let d = Exponential::new(rate).unwrap();
        check_cdf_invariants(&d);
        // quantile inverts cdf
        for &u in &[0.1, 0.5, 0.9] {
            let t = d.quantile(u);
            prop_assert!((d.cdf(t) - u).abs() < 1e-6);
        }
    }

    #[test]
    fn weibull_cdf_invariants(rate in 0.01f64..2.0, shape in 0.3f64..5.0) {
        let d = Weibull::new(rate, shape).unwrap();
        check_cdf_invariants(&d);
    }

    #[test]
    fn gompertz_makeham_cdf_invariants(lambda in 0.0f64..1.0, alpha in 1e-6f64..0.5, beta in 0.01f64..2.0) {
        let d = GompertzMakeham::new(lambda, alpha, beta).unwrap();
        check_cdf_invariants(&d);
    }

    #[test]
    fn bathtub_cdf_invariants(a in 0.2f64..0.9, tau1 in 0.2f64..4.0, tau2 in 0.2f64..2.0, b in 20.0f64..26.0) {
        let d = ConstrainedBathtub::from_parts(a, tau1, tau2, b).unwrap();
        check_cdf_invariants(&d);
        // the temporal constraint is always respected
        prop_assert!((d.cdf(24.0) - 1.0).abs() < 1e-9);
        prop_assert!(d.mean() > 0.0 && d.mean() <= 24.0 + 1e-9);
    }

    #[test]
    fn wasted_work_bounded_by_job_length(a in 0.3f64..0.6, tau1 in 0.5f64..2.0, job in 0.5f64..23.0) {
        let d = ConstrainedBathtub::from_parts(a, tau1, 0.8, 24.0).unwrap();
        let w = expected_wasted_work(&d, job);
        prop_assert!(w >= 0.0 && w <= job + 1e-9);
        let makespan = expected_makespan(&d, job);
        prop_assert!(makespan >= job);
        prop_assert!(makespan <= 2.0 * job + 24.0);
    }

    #[test]
    fn uniform_wasted_work_is_half_job(job in 0.1f64..24.0) {
        let u = UniformLifetime::new(24.0).unwrap();
        let w = expected_wasted_work(&u, job);
        prop_assert!((w - job / 2.0).abs() < 1e-6);
    }

    #[test]
    fn scheduler_decisions_are_consistent(age in 0.0f64..23.9, job in 0.5f64..12.0) {
        // the decision must agree with the explicit makespan comparison it is defined by
        let model = BathtubModel::paper_representative();
        let sched = ModelDrivenScheduler::new(model);
        let decision = sched.decide(age, job);
        let reuse_cost = sched.expected_makespan(age, job);
        let fresh_cost = sched.expected_makespan(0.0, job);
        match decision {
            constrained_preemption::policy::SchedulingDecision::ReuseExisting => prop_assert!(reuse_cost <= fresh_cost + 1e-9),
            constrained_preemption::policy::SchedulingDecision::LaunchFresh => prop_assert!(reuse_cost > fresh_cost - 1e-9),
        }
    }

    #[test]
    fn checkpoint_schedules_cover_the_job(job in 0.5f64..6.0, start in 0.0f64..20.0) {
        let model = BathtubModel::paper_representative();
        let policy = DpCheckpointPolicy::new(model, CheckpointConfig::coarse()).unwrap();
        let schedule = policy.schedule(job, start).unwrap();
        let total: f64 = schedule.intervals_hours.iter().sum();
        prop_assert!((total - schedule.job_len).abs() < 1e-6);
        prop_assert!(schedule.intervals_hours.iter().all(|&i| i > 0.0));
        prop_assert!(schedule.expected_makespan >= schedule.job_len - 1e-9);
    }
}
