//! Integration tests spanning the whole pipeline: synthetic trace -> model fit -> policies
//! -> batch service, checking the paper's headline qualitative results.

use constrained_preemption::batch::{BatchService, ServiceConfig};
use constrained_preemption::model::analysis::running_time_analysis;
use constrained_preemption::model::{fit_model_comparison, ModelRegistry};
use constrained_preemption::policy::checkpoint::simulate::{
    simulate_checkpointed_job, SimulationOptions,
};
use constrained_preemption::policy::{
    average_failure_probability, CheckpointConfig, DpCheckpointPolicy, MemorylessScheduler,
    ModelDrivenScheduler, YoungDalyPolicy,
};
use constrained_preemption::trace::{ConfigKey, TraceGenerator};
use constrained_preemption::workloads::profiles::PAPER_APPLICATIONS;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn fitted_model() -> constrained_preemption::model::BathtubModel {
    let mut generator = TraceGenerator::new(77);
    let records = generator.generate_for(ConfigKey::figure1(), 600).unwrap();
    let lifetimes: Vec<f64> = records.iter().map(|r| r.lifetime_hours).collect();
    constrained_preemption::model::fit_bathtub_model(&lifetimes, 24.0)
        .unwrap()
        .model
}

#[test]
fn figure1_bathtub_model_fits_best_end_to_end() {
    let mut generator = TraceGenerator::new(1);
    let records = generator.generate_for(ConfigKey::figure1(), 700).unwrap();
    let lifetimes: Vec<f64> = records.iter().map(|r| r.lifetime_hours).collect();
    let cmp = fit_model_comparison(&lifetimes, 24.0).unwrap();
    assert_eq!(cmp.best_family(), "Our Model");
    assert!(cmp.bathtub.r_squared > 0.97);
}

#[test]
fn registry_built_from_full_study_serves_policies() {
    let mut generator = TraceGenerator::new(5);
    let records = generator.generate_paper_study().unwrap();
    let registry = ModelRegistry::from_records(&records).unwrap();
    assert!(!registry.is_empty());
    let model = registry.lookup(&ConfigKey::figure1());
    // the fitted model's expected lifetime should be well inside the 24 h constraint
    let lifetime = model.expected_lifetime();
    assert!(
        lifetime > 4.0 && lifetime < 20.0,
        "expected lifetime = {lifetime}"
    );
}

#[test]
fn figure4_crossover_and_benefit_from_fitted_model() {
    let model = fitted_model();
    let analysis = running_time_analysis(model.dist(), 24.0, 96).unwrap();
    let crossover = analysis.crossover_job_len.expect("crossover exists");
    assert!(
        crossover > 1.0 && crossover < 12.0,
        "crossover at {crossover} h"
    );
    assert!(analysis.max_uniform_to_bathtub_ratio > 2.0);
}

#[test]
fn figure6_scheduling_policy_roughly_halves_failures() {
    let model = fitted_model();
    let ours = ModelDrivenScheduler::new(model);
    let memoryless = MemorylessScheduler;
    let p_ours = average_failure_probability(&ours, &model, 6.0, 96).unwrap();
    let p_memoryless = average_failure_probability(&memoryless, &model, 6.0, 96).unwrap();
    assert!(
        p_ours < 0.8 * p_memoryless,
        "ours {p_ours} vs memoryless {p_memoryless}"
    );
}

#[test]
fn figure8_checkpointing_policy_beats_young_daly_with_fitted_model() {
    let model = fitted_model();
    let dp = DpCheckpointPolicy::new(model, CheckpointConfig::coarse()).unwrap();
    let yd = YoungDalyPolicy::from_initial_failure_rate(&model, 1.0 / 60.0).unwrap();
    let options = SimulationOptions {
        trials: 200,
        ..SimulationOptions::default()
    };
    let mut rng = StdRng::seed_from_u64(3);
    let ours = simulate_checkpointed_job(&dp, model.dist(), 4.0, 6.0, &options, &mut rng).unwrap();
    let baseline =
        simulate_checkpointed_job(&yd, model.dist(), 4.0, 6.0, &options, &mut rng).unwrap();
    assert!(
        ours.mean_overhead_fraction < baseline.mean_overhead_fraction,
        "ours {} vs young-daly {}",
        ours.mean_overhead_fraction,
        baseline.mean_overhead_fraction
    );
}

#[test]
fn figure9_service_cost_advantage_with_fitted_model() {
    let model = fitted_model();
    let profile = &PAPER_APPLICATIONS[0];
    let bag = profile.bag(50, 9).unwrap();
    let ours = BatchService::new(
        ServiceConfig {
            cluster_size: 8,
            ..ServiceConfig::paper_cost_experiment(21)
        },
        std::sync::Arc::new(model),
    )
    .unwrap()
    .run_bag(&bag)
    .unwrap();
    let on_demand = BatchService::new(
        ServiceConfig {
            cluster_size: 8,
            ..ServiceConfig::on_demand_comparator(21)
        },
        std::sync::Arc::new(model),
    )
    .unwrap()
    .run_bag(&bag)
    .unwrap();
    assert_eq!(ours.jobs, 50);
    assert_eq!(on_demand.jobs, 50);
    let ratio = on_demand.cost_per_job() / ours.cost_per_job();
    assert!(ratio > 3.0, "cost ratio = {ratio}");
}
