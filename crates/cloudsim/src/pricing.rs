//! Cloud pricing model.
//!
//! Figure 9a of the paper compares the cost of running bags of jobs on preemptible VMs
//! (through the batch service) against conventional on-demand VMs and reports a ~5×
//! saving.  The default prices below follow the published GCP `n1-highcpu` list prices at
//! the time of the study: preemptible capacity is billed at roughly one fifth of the
//! on-demand rate.

use serde::{Deserialize, Serialize};
use tcp_numerics::{NumericsError, Result};
use tcp_trace::VmType;

use crate::vm::BillingClass;

/// Per-vCPU-hour pricing for on-demand and preemptible capacity (USD).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PricingModel {
    /// On-demand price per vCPU-hour.
    pub on_demand_per_vcpu_hour: f64,
    /// Preemptible price per vCPU-hour.
    pub preemptible_per_vcpu_hour: f64,
}

impl PricingModel {
    /// GCP-like default prices for the `n1-highcpu` family (USD/vCPU-hour):
    /// $0.0354 on-demand vs $0.0071 preemptible, a 5.0× discount.
    pub fn gcp_n1_highcpu() -> Self {
        PricingModel {
            on_demand_per_vcpu_hour: 0.035_42,
            preemptible_per_vcpu_hour: 0.007_08,
        }
    }

    /// Creates a custom pricing model.
    pub fn new(on_demand_per_vcpu_hour: f64, preemptible_per_vcpu_hour: f64) -> Result<Self> {
        if !(on_demand_per_vcpu_hour > 0.0) || !(preemptible_per_vcpu_hour > 0.0) {
            return Err(NumericsError::invalid("prices must be positive"));
        }
        if preemptible_per_vcpu_hour > on_demand_per_vcpu_hour {
            return Err(NumericsError::invalid(
                "preemptible price must not exceed the on-demand price",
            ));
        }
        Ok(PricingModel {
            on_demand_per_vcpu_hour,
            preemptible_per_vcpu_hour,
        })
    }

    /// The discount factor (on-demand / preemptible price).
    pub fn discount_factor(&self) -> f64 {
        self.on_demand_per_vcpu_hour / self.preemptible_per_vcpu_hour
    }

    /// Hourly price of one VM of the given type under the given billing class.
    pub fn hourly_rate(&self, vm_type: VmType, billing: BillingClass) -> f64 {
        let per_vcpu = match billing {
            BillingClass::OnDemand => self.on_demand_per_vcpu_hour,
            BillingClass::Preemptible => self.preemptible_per_vcpu_hour,
        };
        per_vcpu * vm_type.vcpus() as f64
    }

    /// Cost of running one VM of the given type for `hours`.
    pub fn cost(&self, vm_type: VmType, billing: BillingClass, hours: f64) -> f64 {
        self.hourly_rate(vm_type, billing) * hours.max(0.0)
    }
}

impl Default for PricingModel {
    fn default() -> Self {
        PricingModel::gcp_n1_highcpu()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_discount_close_to_five_x() {
        let p = PricingModel::default();
        let d = p.discount_factor();
        assert!(d > 4.5 && d < 5.5, "discount = {d}");
    }

    #[test]
    fn validation() {
        assert!(PricingModel::new(0.0, 0.01).is_err());
        assert!(PricingModel::new(0.03, 0.0).is_err());
        assert!(PricingModel::new(0.01, 0.02).is_err());
        assert!(PricingModel::new(0.03, 0.01).is_ok());
    }

    #[test]
    fn rates_scale_with_vcpus() {
        let p = PricingModel::gcp_n1_highcpu();
        let small = p.hourly_rate(VmType::N1HighCpu2, BillingClass::Preemptible);
        let large = p.hourly_rate(VmType::N1HighCpu32, BillingClass::Preemptible);
        assert!((large / small - 16.0).abs() < 1e-9);
        assert!(
            p.hourly_rate(VmType::N1HighCpu16, BillingClass::OnDemand)
                > p.hourly_rate(VmType::N1HighCpu16, BillingClass::Preemptible)
        );
    }

    #[test]
    fn cost_is_linear_in_hours_and_clamps_negative() {
        let p = PricingModel::gcp_n1_highcpu();
        let one = p.cost(VmType::N1HighCpu8, BillingClass::OnDemand, 1.0);
        let three = p.cost(VmType::N1HighCpu8, BillingClass::OnDemand, 3.0);
        assert!((three - 3.0 * one).abs() < 1e-12);
        assert_eq!(
            p.cost(VmType::N1HighCpu8, BillingClass::OnDemand, -1.0),
            0.0
        );
    }

    #[test]
    fn paper_cluster_cost_sanity() {
        // 32 × n1-highcpu-32 for one hour: preemptible should cost ≈ $7.3, on-demand ≈ $36.
        let p = PricingModel::gcp_n1_highcpu();
        let preemptible: f64 = 32.0 * p.hourly_rate(VmType::N1HighCpu32, BillingClass::Preemptible);
        let on_demand: f64 = 32.0 * p.hourly_rate(VmType::N1HighCpu32, BillingClass::OnDemand);
        assert!(
            preemptible > 5.0 && preemptible < 10.0,
            "preemptible = {preemptible}"
        );
        assert!(
            on_demand > 30.0 && on_demand < 40.0,
            "on_demand = {on_demand}"
        );
    }
}
