//! Time-ordered event queue for discrete-event simulation.
//!
//! The queue is generic over the event payload so the batch-service controller can define
//! its own event vocabulary (job arrivals, preemption notices, checkpoint completions, …)
//! without this crate knowing about it.  Events at equal timestamps are delivered in
//! insertion order, which keeps simulations deterministic.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Simulation time in hours since the start of the experiment.
pub type SimTime = f64;

#[derive(Debug)]
struct QueuedEvent<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for QueuedEvent<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl<E> Eq for QueuedEvent<E> {}

impl<E> PartialOrd for QueuedEvent<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for QueuedEvent<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest time (then lowest seq) pops first.
        other
            .time
            .partial_cmp(&self.time)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic, time-ordered event queue.
#[derive(Debug)]
pub struct EventQueue<E> {
    heap: BinaryHeap<QueuedEvent<E>>,
    next_seq: u64,
    now: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            now: 0.0,
        }
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// The current simulation time (the timestamp of the most recently popped event).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Schedules an event at an absolute time.  Events scheduled in the past are clamped
    /// to the current time (they will be delivered next).
    pub fn schedule_at(&mut self, time: SimTime, payload: E) {
        let time = if time.is_finite() {
            time.max(self.now)
        } else {
            self.now
        };
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(QueuedEvent { time, seq, payload });
    }

    /// Schedules an event `delay` hours after the current time.
    pub fn schedule_after(&mut self, delay: SimTime, payload: E) {
        self.schedule_at(self.now + delay.max(0.0), payload);
    }

    /// Pops the next event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let ev = self.heap.pop()?;
        self.now = ev.time;
        Some((ev.time, ev.payload))
    }

    /// Peeks at the timestamp of the next event without popping it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_pop_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule_at(5.0, "c");
        q.schedule_at(1.0, "a");
        q.schedule_at(3.0, "b");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some((1.0, "a")));
        assert_eq!(q.pop(), Some((3.0, "b")));
        assert_eq!(q.pop(), Some((5.0, "c")));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let mut q = EventQueue::new();
        q.schedule_at(2.0, 1);
        q.schedule_at(2.0, 2);
        q.schedule_at(2.0, 3);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert_eq!(q.pop().unwrap().1, 3);
    }

    #[test]
    fn clock_advances_with_pops() {
        let mut q = EventQueue::new();
        assert_eq!(q.now(), 0.0);
        q.schedule_at(4.0, ());
        q.schedule_after(1.5, ());
        assert_eq!(q.peek_time(), Some(1.5));
        q.pop();
        assert_eq!(q.now(), 1.5);
        q.pop();
        assert_eq!(q.now(), 4.0);
    }

    #[test]
    fn past_events_clamp_to_now() {
        let mut q = EventQueue::new();
        q.schedule_at(10.0, "later");
        q.pop();
        assert_eq!(q.now(), 10.0);
        q.schedule_at(2.0, "stale");
        let (t, p) = q.pop().unwrap();
        assert_eq!(t, 10.0);
        assert_eq!(p, "stale");
        // non-finite times are also clamped
        q.schedule_at(f64::NAN, "nan");
        assert_eq!(q.pop().unwrap().0, 10.0);
    }

    #[test]
    fn schedule_after_with_negative_delay_clamps() {
        let mut q = EventQueue::new();
        q.schedule_at(3.0, ());
        q.pop();
        q.schedule_after(-5.0, ());
        assert_eq!(q.pop().unwrap().0, 3.0);
    }
}
