//! Virtual machine instances and their lifecycle.

use serde::{Deserialize, Serialize};
use tcp_trace::{VmType, Zone};

/// Unique identifier of a VM instance within one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct VmId(pub u64);

impl std::fmt::Display for VmId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "vm-{}", self.0)
    }
}

/// Lifecycle state of a VM instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum VmState {
    /// The VM is running and usable.
    Running,
    /// The VM was preempted by the provider.
    Preempted,
    /// The VM was terminated by the user.
    Terminated,
}

/// Whether a VM is billed as preemptible or on-demand.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BillingClass {
    /// Preemptible (transient) VM: cheap, may be reclaimed at any time, 24 h max lifetime.
    Preemptible,
    /// Conventional on-demand VM: never preempted by the provider.
    OnDemand,
}

/// A VM instance inside the simulation.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmInstance {
    /// Instance identifier.
    pub id: VmId,
    /// Machine type.
    pub vm_type: VmType,
    /// Zone the VM runs in.
    pub zone: Zone,
    /// Billing class (preemptible vs on-demand).
    pub billing: BillingClass,
    /// Simulation time at which the VM became usable.
    pub launch_time: f64,
    /// Scheduled preemption time (absolute simulation time); `None` for on-demand VMs.
    /// The user of the simulator cannot observe this — it models the provider's hidden
    /// reclamation decision.
    pub preemption_time: Option<f64>,
    /// Current lifecycle state.
    pub state: VmState,
    /// Time at which the VM stopped running (preempted or terminated), if it has.
    pub stop_time: Option<f64>,
}

impl VmInstance {
    /// VM age (hours) at simulation time `now` (zero before launch).
    pub fn age_at(&self, now: f64) -> f64 {
        (now - self.launch_time).max(0.0)
    }

    /// Whether the VM is still running at time `now` (based on its hidden preemption time
    /// and recorded stop time).
    pub fn running_at(&self, now: f64) -> bool {
        if self.state != VmState::Running {
            return self.stop_time.map(|t| now < t).unwrap_or(false);
        }
        match self.preemption_time {
            Some(p) => now < p,
            None => true,
        }
    }

    /// Wall-clock hours the VM was (or has been) running as of `now`.
    pub fn billed_hours_at(&self, now: f64) -> f64 {
        let end = self.stop_time.unwrap_or(now).min(now);
        (end - self.launch_time).max(0.0)
    }
}

/// A lightweight handle the controller keeps for a VM it owns.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VmHandle {
    /// Instance identifier.
    pub id: VmId,
    /// Machine type.
    pub vm_type: VmType,
    /// Zone.
    pub zone: Zone,
    /// Launch time.
    pub launch_time: f64,
}

impl From<&VmInstance> for VmHandle {
    fn from(vm: &VmInstance) -> Self {
        VmHandle {
            id: vm.id,
            vm_type: vm.vm_type,
            zone: vm.zone,
            launch_time: vm.launch_time,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn instance() -> VmInstance {
        VmInstance {
            id: VmId(7),
            vm_type: VmType::N1HighCpu16,
            zone: Zone::UsEast1B,
            billing: BillingClass::Preemptible,
            launch_time: 2.0,
            preemption_time: Some(10.0),
            state: VmState::Running,
            stop_time: None,
        }
    }

    #[test]
    fn display_and_age() {
        let vm = instance();
        assert_eq!(vm.id.to_string(), "vm-7");
        assert_eq!(vm.age_at(5.0), 3.0);
        assert_eq!(vm.age_at(1.0), 0.0);
    }

    #[test]
    fn running_state_uses_hidden_preemption_time() {
        let vm = instance();
        assert!(vm.running_at(5.0));
        assert!(!vm.running_at(10.0));
        assert!(!vm.running_at(12.0));
        let mut ondemand = instance();
        ondemand.billing = BillingClass::OnDemand;
        ondemand.preemption_time = None;
        assert!(ondemand.running_at(1e6));
    }

    #[test]
    fn stopped_vm_not_running() {
        let mut vm = instance();
        vm.state = VmState::Terminated;
        vm.stop_time = Some(6.0);
        assert!(vm.running_at(5.0));
        assert!(!vm.running_at(6.5));
        assert_eq!(vm.billed_hours_at(8.0), 4.0);
    }

    #[test]
    fn billed_hours_for_running_vm_accrue() {
        let vm = instance();
        assert_eq!(vm.billed_hours_at(2.0), 0.0);
        assert_eq!(vm.billed_hours_at(4.5), 2.5);
    }

    #[test]
    fn handle_from_instance() {
        let vm = instance();
        let h = VmHandle::from(&vm);
        assert_eq!(h.id, vm.id);
        assert_eq!(h.vm_type, vm.vm_type);
        assert_eq!(h.launch_time, vm.launch_time);
    }
}
