//! Parallel Monte-Carlo experiment driver.
//!
//! Policy evaluations (Figures 8 and 9) average over many independent simulation trials.
//! This module fans trials out across worker threads with crossbeam's scoped threads, one
//! deterministic RNG stream per trial, and merges the per-trial metrics with the
//! numerically stable Welford reduction.

use serde::{Deserialize, Serialize};
use tcp_numerics::stats::Welford;
use tcp_numerics::{NumericsError, Result};

/// Summary of a Monte-Carlo experiment over a scalar metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloSummary {
    /// Number of trials that produced a value.
    pub trials: usize,
    /// Mean of the metric.
    pub mean: f64,
    /// Unbiased standard deviation across trials.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

/// Runs `trials` independent trials of `trial_fn` in parallel and summarises the scalar
/// metric each returns.
///
/// `trial_fn(trial_index)` must be deterministic given the index (seed its RNG from the
/// index) so experiments are reproducible regardless of thread scheduling.  `threads = 0`
/// selects the number of available CPUs.
pub fn run_monte_carlo<F>(trials: usize, threads: usize, trial_fn: F) -> Result<MonteCarloSummary>
where
    F: Fn(usize) -> f64 + Send + Sync,
{
    if trials == 0 {
        return Err(NumericsError::invalid("need at least one trial"));
    }
    let threads = if threads == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        threads
    };
    let threads = threads.min(trials).max(1);

    let next = std::sync::atomic::AtomicUsize::new(0);
    let results: Vec<std::sync::Mutex<(Welford, f64, f64)>> = (0..threads)
        .map(|_| std::sync::Mutex::new((Welford::new(), f64::INFINITY, f64::NEG_INFINITY)))
        .collect();

    crossbeam::thread::scope(|scope| {
        for worker in 0..threads {
            let next = &next;
            let results = &results;
            let trial_fn = &trial_fn;
            scope.spawn(move |_| {
                loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    if idx >= trials {
                        break;
                    }
                    let value = trial_fn(idx);
                    if !value.is_finite() {
                        continue;
                    }
                    let mut slot = results[worker].lock().expect("worker slot");
                    slot.0.add(value);
                    slot.1 = slot.1.min(value);
                    slot.2 = slot.2.max(value);
                }
            });
        }
    })
    .map_err(|_| NumericsError::invalid("a Monte-Carlo worker thread panicked"))?;

    let mut merged = Welford::new();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for slot in &results {
        let guard = slot.lock().expect("worker slot");
        merged.merge(&guard.0);
        min = min.min(guard.1);
        max = max.max(guard.2);
    }
    if merged.count() == 0 {
        return Err(NumericsError::invalid("all trials returned non-finite values"));
    }
    Ok(MonteCarloSummary {
        trials: merged.count() as usize,
        mean: merged.mean(),
        std_dev: merged.std_dev(),
        std_error: merged.std_error(),
        min,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_metric_summary() {
        let summary = run_monte_carlo(100, 4, |i| i as f64).unwrap();
        assert_eq!(summary.trials, 100);
        assert!((summary.mean - 49.5).abs() < 1e-9);
        assert_eq!(summary.min, 0.0);
        assert_eq!(summary.max, 99.0);
        assert!(summary.std_dev > 0.0);
        assert!(summary.std_error > 0.0);
    }

    #[test]
    fn result_independent_of_thread_count() {
        let f = |i: usize| {
            let mut rng = StdRng::seed_from_u64(i as u64);
            rng.gen::<f64>() * 10.0
        };
        let one = run_monte_carlo(500, 1, f).unwrap();
        let many = run_monte_carlo(500, 8, f).unwrap();
        assert!((one.mean - many.mean).abs() < 1e-9);
        assert!((one.std_dev - many.std_dev).abs() < 1e-9);
        assert_eq!(one.min, many.min);
        assert_eq!(one.max, many.max);
    }

    #[test]
    fn zero_threads_selects_available_parallelism() {
        let summary = run_monte_carlo(64, 0, |i| (i % 7) as f64).unwrap();
        assert_eq!(summary.trials, 64);
    }

    #[test]
    fn non_finite_trials_are_dropped() {
        let summary = run_monte_carlo(10, 2, |i| if i % 2 == 0 { f64::NAN } else { 1.0 }).unwrap();
        assert_eq!(summary.trials, 5);
        assert_eq!(summary.mean, 1.0);
    }

    #[test]
    fn argument_validation() {
        assert!(run_monte_carlo(0, 1, |_| 0.0).is_err());
        assert!(run_monte_carlo(4, 2, |_| f64::NAN).is_err());
    }

    #[test]
    fn monte_carlo_estimates_a_known_expectation() {
        // E[U^2] for U ~ Uniform(0,1) is 1/3.
        let summary = run_monte_carlo(20_000, 0, |i| {
            let mut rng = StdRng::seed_from_u64(i as u64 ^ 0xBEEF);
            let u: f64 = rng.gen();
            u * u
        })
        .unwrap();
        assert!((summary.mean - 1.0 / 3.0).abs() < 0.01, "mean = {}", summary.mean);
    }
}
