//! Parallel experiment drivers.
//!
//! Policy evaluations (Figures 8 and 9) average over many independent simulation trials,
//! and scenario sweeps fan whole grids of configurations out over the same machinery.
//! [`run_tasks`] is the shared work-stealing driver: it executes `count` independent
//! tasks on scoped `std::thread` workers (stable since Rust 1.63 — no external
//! dependency), pulling task indices from a shared atomic counter so threads steal work
//! from a common queue, and returns the results **in task order**.  Because every task is
//! seeded from its index and the reduction happens sequentially over the ordered results,
//! every aggregate is bit-identical regardless of thread count or scheduling.
//!
//! [`run_monte_carlo`] keeps the original trial-averaging interface on top: one
//! deterministic RNG stream per trial, merged with the numerically stable Welford
//! reduction.

use serde::{Deserialize, Serialize};
use tcp_numerics::stats::Welford;
use tcp_numerics::{NumericsError, Result};

/// Summary of a Monte-Carlo experiment over a scalar metric.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonteCarloSummary {
    /// Number of trials that produced a value.
    pub trials: usize,
    /// Mean of the metric.
    pub mean: f64,
    /// Unbiased standard deviation across trials.
    pub std_dev: f64,
    /// Standard error of the mean.
    pub std_error: f64,
    /// Minimum observed value.
    pub min: f64,
    /// Maximum observed value.
    pub max: f64,
}

/// Resolves a `threads` argument: `0` selects the number of available CPUs, and the
/// worker count never exceeds the task count.
pub fn resolve_threads(threads: usize, tasks: usize) -> usize {
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    };
    threads.min(tasks).max(1)
}

/// Runs `count` independent tasks on `threads` scoped worker threads and returns their
/// results in task order.
///
/// Workers pull the next task index from a shared atomic counter (work stealing), so a
/// handful of slow tasks cannot serialise the rest of the batch.  `task(index)` must be
/// deterministic given the index for results to be reproducible; because results are
/// returned in index order, any sequential reduction over them is bit-identical for every
/// thread count.  `threads = 0` selects the number of available CPUs.
pub fn run_tasks<T, F>(count: usize, threads: usize, task: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Send + Sync,
{
    let threads = resolve_threads(threads, count);
    if count == 0 {
        return Vec::new();
    }
    if threads == 1 {
        return (0..count).map(task).collect();
    }

    let next = std::sync::atomic::AtomicUsize::new(0);
    let slots: Vec<std::sync::Mutex<Option<T>>> =
        (0..count).map(|_| std::sync::Mutex::new(None)).collect();

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // lint:allow(ordering-audit) work-stealing index: atomicity alone guarantees each task runs once; result order comes from the slots
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if idx >= count {
                    break;
                }
                let value = task(idx);
                *slots[idx].lock().expect("task slot") = Some(value);
            });
        }
    });

    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("task slot")
                .expect("every index ran")
        })
        .collect()
}

/// Runs `trials` independent trials of `trial_fn` in parallel and summarises the scalar
/// metric each returns.
///
/// `trial_fn(trial_index)` must be deterministic given the index (seed its RNG from the
/// index) so experiments are reproducible regardless of thread scheduling.  Non-finite
/// trial values are dropped from the summary.  `threads = 0` selects the number of
/// available CPUs.
pub fn run_monte_carlo<F>(trials: usize, threads: usize, trial_fn: F) -> Result<MonteCarloSummary>
where
    F: Fn(usize) -> f64 + Send + Sync,
{
    if trials == 0 {
        return Err(NumericsError::invalid("need at least one trial"));
    }
    // Convert trial panics into an Err instead of unwinding through the public Result
    // API (run_tasks itself re-raises worker panics on join).
    let values = run_tasks(trials, threads, |i| {
        std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| trial_fn(i)))
    });

    let mut welford = Welford::new();
    let mut min = f64::INFINITY;
    let mut max = f64::NEG_INFINITY;
    for value in values {
        let Ok(value) = value else {
            return Err(NumericsError::invalid("a Monte-Carlo trial panicked"));
        };
        if !value.is_finite() {
            continue;
        }
        welford.add(value);
        min = min.min(value);
        max = max.max(value);
    }
    if welford.count() == 0 {
        return Err(NumericsError::invalid(
            "all trials returned non-finite values",
        ));
    }
    Ok(MonteCarloSummary {
        trials: welford.count() as usize,
        mean: welford.mean(),
        std_dev: welford.std_dev(),
        std_error: welford.std_error(),
        min,
        max,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn deterministic_metric_summary() {
        let summary = run_monte_carlo(100, 4, |i| i as f64).unwrap();
        assert_eq!(summary.trials, 100);
        assert!((summary.mean - 49.5).abs() < 1e-9);
        assert_eq!(summary.min, 0.0);
        assert_eq!(summary.max, 99.0);
        assert!(summary.std_dev > 0.0);
        assert!(summary.std_error > 0.0);
    }

    #[test]
    fn result_independent_of_thread_count() {
        let f = |i: usize| {
            let mut rng = StdRng::seed_from_u64(i as u64);
            rng.gen::<f64>() * 10.0
        };
        let one = run_monte_carlo(500, 1, f).unwrap();
        let many = run_monte_carlo(500, 8, f).unwrap();
        // Sequential reduction over index-ordered results makes this exact, not
        // approximate: the float operations happen in the same order for any thread count.
        assert_eq!(one, many);
    }

    #[test]
    fn zero_threads_selects_available_parallelism() {
        let summary = run_monte_carlo(64, 0, |i| (i % 7) as f64).unwrap();
        assert_eq!(summary.trials, 64);
    }

    #[test]
    fn non_finite_trials_are_dropped() {
        let summary = run_monte_carlo(10, 2, |i| if i % 2 == 0 { f64::NAN } else { 1.0 }).unwrap();
        assert_eq!(summary.trials, 5);
        assert_eq!(summary.mean, 1.0);
    }

    #[test]
    fn argument_validation() {
        assert!(run_monte_carlo(0, 1, |_| 0.0).is_err());
        assert!(run_monte_carlo(4, 2, |_| f64::NAN).is_err());
    }

    #[test]
    fn panicking_trial_becomes_an_error() {
        let result = run_monte_carlo(8, 2, |i| {
            assert!(i != 3, "simulated trial failure");
            1.0
        });
        let err = result.expect_err("panic must surface as Err");
        assert!(err.to_string().contains("panicked"), "{err}");
    }

    #[test]
    fn monte_carlo_estimates_a_known_expectation() {
        // E[U^2] for U ~ Uniform(0,1) is 1/3.
        let summary = run_monte_carlo(20_000, 0, |i| {
            let mut rng = StdRng::seed_from_u64(i as u64 ^ 0xBEEF);
            let u: f64 = rng.gen();
            u * u
        })
        .unwrap();
        assert!(
            (summary.mean - 1.0 / 3.0).abs() < 0.01,
            "mean = {}",
            summary.mean
        );
    }

    #[test]
    fn run_tasks_returns_results_in_task_order() {
        let results = run_tasks(257, 8, |i| i * 3);
        assert_eq!(results.len(), 257);
        for (i, v) in results.iter().enumerate() {
            assert_eq!(*v, i * 3);
        }
        assert!(run_tasks(0, 4, |i| i).is_empty());
    }

    #[test]
    fn run_tasks_handles_non_copy_results_and_more_threads_than_tasks() {
        let results = run_tasks(3, 64, |i| format!("task-{i}"));
        assert_eq!(results, vec!["task-0", "task-1", "task-2"]);
    }

    #[test]
    fn resolve_threads_bounds() {
        assert_eq!(resolve_threads(4, 100), 4);
        assert_eq!(resolve_threads(16, 3), 3);
        assert!(resolve_threads(0, 1000) >= 1);
    }
}
