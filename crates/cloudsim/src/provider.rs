//! The simulated cloud provider.
//!
//! The provider owns every VM instance in a simulation: it assigns hidden preemption times
//! to preemptible VMs (drawn from the ground-truth process of the VM's configuration),
//! processes user launch/terminate requests, answers "is this VM still alive at time t?"
//! queries, and keeps the usage ledger from which costs are computed.

use crate::pricing::PricingModel;
use crate::vm::{BillingClass, VmId, VmInstance, VmState};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use tcp_dists::LifetimeDistribution;
use tcp_numerics::{NumericsError, Result};
use tcp_trace::{ConfigKey, TimeOfDay, TraceCatalog, VmType, WorkloadKind, Zone};

/// Provider configuration.
#[derive(Debug, Clone)]
pub struct ProviderConfig {
    /// Pricing used for the usage ledger.
    pub pricing: PricingModel,
    /// Time (hours) between a launch request and the VM becoming usable.
    pub provisioning_delay_hours: f64,
    /// Maximum lifetime of preemptible VMs, hours (the temporal constraint).
    pub max_preemptible_lifetime_hours: f64,
}

impl Default for ProviderConfig {
    fn default() -> Self {
        ProviderConfig {
            pricing: PricingModel::default(),
            provisioning_delay_hours: 1.0 / 60.0,
            max_preemptible_lifetime_hours: 24.0,
        }
    }
}

/// Aggregate usage and cost report for one simulation.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct UsageReport {
    /// Total VM-hours billed on preemptible capacity.
    pub preemptible_vm_hours: f64,
    /// Total VM-hours billed on on-demand capacity.
    pub on_demand_vm_hours: f64,
    /// Total cost in USD.
    pub total_cost: f64,
    /// Number of VMs launched.
    pub vms_launched: usize,
    /// Number of preemptions that actually hit running VMs.
    pub preemptions: usize,
}

/// A reusable recipe for building identically configured providers that differ only in
/// their RNG seed — the building block scenario sweeps use to run one provider
/// configuration across many deterministic trials.
#[derive(Clone)]
pub struct ProviderTemplate {
    /// Provider configuration (pricing, provisioning delay, lifetime cap).
    pub config: ProviderConfig,
    /// Preemption process override: when set, every preemptible VM draws its lifetime
    /// from this distribution instead of the trace catalog.
    pub ground_truth: Option<Arc<dyn LifetimeDistribution>>,
    /// Ambient conditions selecting the catalog's ground-truth process (ignored when
    /// `ground_truth` is set).
    pub time_of_day: TimeOfDay,
    /// Ambient workload kind (ignored when `ground_truth` is set).
    pub workload: WorkloadKind,
    /// Extra multiplicative hazard scale applied to catalog-drawn processes, preserving
    /// the catalog's per-(VM type, zone) structure (ignored when `ground_truth` is set).
    pub catalog_scale: f64,
}

impl Default for ProviderTemplate {
    fn default() -> Self {
        ProviderTemplate {
            config: ProviderConfig::default(),
            ground_truth: None,
            time_of_day: TimeOfDay::Day,
            workload: WorkloadKind::NonIdle,
            catalog_scale: 1.0,
        }
    }
}

impl ProviderTemplate {
    /// A template drawing preemptions from an explicit lifetime distribution.
    pub fn from_distribution(dist: Arc<dyn LifetimeDistribution>) -> Self {
        ProviderTemplate {
            ground_truth: Some(dist),
            ..ProviderTemplate::default()
        }
    }

    /// A template drawing preemptions from the default catalog under the given ambient
    /// conditions.
    pub fn from_conditions(time_of_day: TimeOfDay, workload: WorkloadKind) -> Self {
        ProviderTemplate {
            time_of_day,
            workload,
            ..ProviderTemplate::default()
        }
    }

    /// Instantiates a provider with this template's configuration and the given seed.
    pub fn build(&self, seed: u64) -> CloudProvider {
        let mut provider = CloudProvider::new(self.config.clone(), seed);
        provider.set_conditions(self.time_of_day, self.workload);
        provider.override_truth = self.ground_truth.clone();
        provider.catalog_scale = self.catalog_scale;
        provider
    }
}

impl std::fmt::Debug for ProviderTemplate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProviderTemplate")
            .field("config", &self.config)
            .field(
                "ground_truth",
                &self.ground_truth.as_ref().map(|d| d.name()),
            )
            .field("time_of_day", &self.time_of_day)
            .field("workload", &self.workload)
            .field("catalog_scale", &self.catalog_scale)
            .finish()
    }
}

/// The simulated IaaS provider.
pub struct CloudProvider {
    config: ProviderConfig,
    catalog: TraceCatalog,
    override_truth: Option<Arc<dyn LifetimeDistribution>>,
    catalog_scale: f64,
    rng: StdRng,
    // BTreeMap, not HashMap: `usage_report` sums costs while iterating, and the random
    // per-process hash seed would make those float sums differ between runs in the last
    // ulp, breaking byte-identical sweep reports.
    vms: BTreeMap<VmId, VmInstance>,
    next_id: u64,
    workload_kind: WorkloadKind,
    time_of_day: TimeOfDay,
}

impl CloudProvider {
    /// Creates a provider with the default trace catalog as its hidden preemption process.
    pub fn new(config: ProviderConfig, seed: u64) -> Self {
        CloudProvider {
            config,
            catalog: TraceCatalog::new(),
            override_truth: None,
            catalog_scale: 1.0,
            rng: StdRng::seed_from_u64(seed),
            vms: BTreeMap::new(),
            next_id: 0,
            workload_kind: WorkloadKind::NonIdle,
            time_of_day: TimeOfDay::Day,
        }
    }

    /// Creates a provider over a custom catalog (used by tests and ablations).
    pub fn with_catalog(config: ProviderConfig, catalog: TraceCatalog, seed: u64) -> Self {
        CloudProvider {
            catalog,
            ..CloudProvider::new(config, seed)
        }
    }

    /// Creates a provider whose preemptible VMs draw lifetimes from an explicit
    /// distribution (the hook scenario sweeps use for synthetic preemption regimes).
    pub fn with_ground_truth(
        config: ProviderConfig,
        ground_truth: Arc<dyn LifetimeDistribution>,
        seed: u64,
    ) -> Self {
        CloudProvider {
            override_truth: Some(ground_truth),
            ..CloudProvider::new(config, seed)
        }
    }

    /// Sets the ambient conditions (time of day, workload) used to select the ground-truth
    /// preemption process for newly launched VMs.
    pub fn set_conditions(&mut self, time_of_day: TimeOfDay, workload: WorkloadKind) {
        self.time_of_day = time_of_day;
        self.workload_kind = workload;
    }

    /// The provider configuration.
    pub fn config(&self) -> &ProviderConfig {
        &self.config
    }

    /// Number of VMs ever launched.
    pub fn vm_count(&self) -> usize {
        self.vms.len()
    }

    /// Launches a VM at simulation time `now`.  Returns the new instance.
    ///
    /// For preemptible VMs a hidden preemption time is drawn from the ground-truth process
    /// of the `(type, zone, time-of-day, workload)` configuration, truncated to the
    /// 24-hour constraint.
    pub fn launch(
        &mut self,
        vm_type: VmType,
        zone: Zone,
        billing: BillingClass,
        now: f64,
    ) -> Result<VmInstance> {
        if !now.is_finite() || now < 0.0 {
            return Err(NumericsError::invalid(
                "launch time must be finite and non-negative",
            ));
        }
        let id = VmId(self.next_id);
        self.next_id += 1;
        let launch_time = now + self.config.provisioning_delay_hours;
        let preemption_time = match billing {
            BillingClass::OnDemand => None,
            BillingClass::Preemptible => {
                let lifetime = match &self.override_truth {
                    Some(truth) => truth.sample(&mut self.rng),
                    None => {
                        let key = ConfigKey {
                            vm_type,
                            zone,
                            time_of_day: self.time_of_day,
                            workload: self.workload_kind,
                        };
                        let truth = self.catalog.ground_truth(&key)?;
                        let truth = if self.catalog_scale == 1.0 {
                            truth
                        } else {
                            truth.scale_rates(self.catalog_scale)?
                        };
                        truth.sample(&mut self.rng)
                    }
                };
                Some(launch_time + lifetime.clamp(0.0, self.config.max_preemptible_lifetime_hours))
            }
        };
        let vm = VmInstance {
            id,
            vm_type,
            zone,
            billing,
            launch_time,
            preemption_time,
            state: VmState::Running,
            stop_time: None,
        };
        self.vms.insert(id, vm);
        Ok(vm)
    }

    /// Looks up a VM by id.
    pub fn get(&self, id: VmId) -> Option<&VmInstance> {
        self.vms.get(&id)
    }

    /// The hidden preemption time of a VM (used by simulation drivers to schedule the
    /// preemption event; a real controller would only receive the advance warning).
    pub fn preemption_time(&self, id: VmId) -> Option<f64> {
        self.vms.get(&id).and_then(|vm| vm.preemption_time)
    }

    /// Marks a VM as preempted at time `now` (no-op if it is not running).
    /// Returns true when the VM transitioned from running to preempted.
    pub fn preempt(&mut self, id: VmId, now: f64) -> bool {
        if let Some(vm) = self.vms.get_mut(&id) {
            if vm.state == VmState::Running {
                vm.state = VmState::Preempted;
                vm.stop_time = Some(now.max(vm.launch_time));
                return true;
            }
        }
        false
    }

    /// Terminates a VM at the user's request.
    /// Returns true when the VM transitioned from running to terminated.
    pub fn terminate(&mut self, id: VmId, now: f64) -> bool {
        if let Some(vm) = self.vms.get_mut(&id) {
            if vm.state == VmState::Running {
                vm.state = VmState::Terminated;
                vm.stop_time = Some(now.max(vm.launch_time));
                return true;
            }
        }
        false
    }

    /// Whether the VM is running (not yet preempted/terminated) at time `now`.
    pub fn is_running(&self, id: VmId, now: f64) -> bool {
        self.vms
            .get(&id)
            .map(|vm| vm.running_at(now))
            .unwrap_or(false)
    }

    /// Builds the usage/cost report as of time `now` (running VMs are billed up to `now`).
    pub fn usage_report(&self, now: f64) -> UsageReport {
        let mut report = UsageReport {
            vms_launched: self.vms.len(),
            ..UsageReport::default()
        };
        for vm in self.vms.values() {
            let hours = vm.billed_hours_at(now);
            let cost = self.config.pricing.cost(vm.vm_type, vm.billing, hours);
            report.total_cost += cost;
            match vm.billing {
                BillingClass::Preemptible => report.preemptible_vm_hours += hours,
                BillingClass::OnDemand => report.on_demand_vm_hours += hours,
            }
            if vm.state == VmState::Preempted {
                report.preemptions += 1;
            }
        }
        report
    }
}

impl std::fmt::Debug for CloudProvider {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CloudProvider")
            .field("vm_count", &self.vms.len())
            .field("config", &self.config)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn provider(seed: u64) -> CloudProvider {
        CloudProvider::new(ProviderConfig::default(), seed)
    }

    #[test]
    fn launch_assigns_preemption_times_within_constraint() {
        let mut p = provider(1);
        for i in 0..50 {
            let vm = p
                .launch(
                    VmType::N1HighCpu16,
                    Zone::UsEast1B,
                    BillingClass::Preemptible,
                    i as f64 * 0.1,
                )
                .unwrap();
            let lifetime = vm.preemption_time.unwrap() - vm.launch_time;
            assert!(
                (0.0..=24.0 + 1e-9).contains(&lifetime),
                "lifetime = {lifetime}"
            );
        }
        assert_eq!(p.vm_count(), 50);
    }

    #[test]
    fn on_demand_vms_never_preempt() {
        let mut p = provider(2);
        let vm = p
            .launch(
                VmType::N1HighCpu8,
                Zone::UsWest1A,
                BillingClass::OnDemand,
                0.0,
            )
            .unwrap();
        assert!(vm.preemption_time.is_none());
        assert!(p.is_running(vm.id, 1e5));
    }

    #[test]
    fn launch_validation_and_lookup() {
        let mut p = provider(3);
        assert!(p
            .launch(
                VmType::N1HighCpu2,
                Zone::UsWest1A,
                BillingClass::Preemptible,
                f64::NAN
            )
            .is_err());
        assert!(p
            .launch(
                VmType::N1HighCpu2,
                Zone::UsWest1A,
                BillingClass::Preemptible,
                -1.0
            )
            .is_err());
        let vm = p
            .launch(
                VmType::N1HighCpu2,
                Zone::UsWest1A,
                BillingClass::Preemptible,
                0.0,
            )
            .unwrap();
        assert!(p.get(vm.id).is_some());
        assert!(p.get(VmId(999)).is_none());
        assert_eq!(p.preemption_time(vm.id), vm.preemption_time);
    }

    #[test]
    fn preempt_and_terminate_transitions() {
        let mut p = provider(4);
        let vm = p
            .launch(
                VmType::N1HighCpu4,
                Zone::UsCentral1C,
                BillingClass::Preemptible,
                0.0,
            )
            .unwrap();
        assert!(p.is_running(vm.id, 0.5));
        assert!(p.preempt(vm.id, 2.0));
        assert!(!p.preempt(vm.id, 2.5), "double preemption is a no-op");
        assert!(!p.is_running(vm.id, 3.0));

        let vm2 = p
            .launch(
                VmType::N1HighCpu4,
                Zone::UsCentral1C,
                BillingClass::Preemptible,
                0.0,
            )
            .unwrap();
        assert!(p.terminate(vm2.id, 1.0));
        assert!(!p.terminate(vm2.id, 1.5));
        assert!(!p.preempt(VmId(12345), 0.0));
    }

    #[test]
    fn usage_report_accumulates_cost_and_preemptions() {
        let mut p = provider(5);
        let vm1 = p
            .launch(
                VmType::N1HighCpu16,
                Zone::UsEast1B,
                BillingClass::Preemptible,
                0.0,
            )
            .unwrap();
        let vm2 = p
            .launch(
                VmType::N1HighCpu16,
                Zone::UsEast1B,
                BillingClass::OnDemand,
                0.0,
            )
            .unwrap();
        p.preempt(vm1.id, 2.0);
        p.terminate(vm2.id, 4.0);
        let report = p.usage_report(5.0);
        assert_eq!(report.vms_launched, 2);
        assert_eq!(report.preemptions, 1);
        assert!(report.preemptible_vm_hours > 1.9 && report.preemptible_vm_hours < 2.1);
        assert!(report.on_demand_vm_hours > 3.9 && report.on_demand_vm_hours < 4.1);
        let expected_cost = PricingModel::default().cost(
            VmType::N1HighCpu16,
            BillingClass::Preemptible,
            report.preemptible_vm_hours,
        ) + PricingModel::default().cost(
            VmType::N1HighCpu16,
            BillingClass::OnDemand,
            report.on_demand_vm_hours,
        );
        assert!((report.total_cost - expected_cost).abs() < 1e-9);
    }

    #[test]
    fn conditions_affect_sampled_lifetimes_statistically() {
        // Idle/night VMs should live longer on average than busy/day VMs.
        let mut day = provider(6);
        day.set_conditions(TimeOfDay::Day, WorkloadKind::NonIdle);
        let mut night = provider(6);
        night.set_conditions(TimeOfDay::Night, WorkloadKind::Idle);
        let mean_lifetime = |p: &mut CloudProvider| {
            let mut total = 0.0;
            for _ in 0..300 {
                let vm = p
                    .launch(
                        VmType::N1HighCpu16,
                        Zone::UsEast1B,
                        BillingClass::Preemptible,
                        0.0,
                    )
                    .unwrap();
                total += vm.preemption_time.unwrap() - vm.launch_time;
            }
            total / 300.0
        };
        let day_mean = mean_lifetime(&mut day);
        let night_mean = mean_lifetime(&mut night);
        assert!(night_mean > day_mean, "night {night_mean} day {day_mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = provider(42);
        let mut b = provider(42);
        for _ in 0..10 {
            let va = a
                .launch(
                    VmType::N1HighCpu8,
                    Zone::UsEast1B,
                    BillingClass::Preemptible,
                    0.0,
                )
                .unwrap();
            let vb = b
                .launch(
                    VmType::N1HighCpu8,
                    Zone::UsEast1B,
                    BillingClass::Preemptible,
                    0.0,
                )
                .unwrap();
            assert_eq!(va.preemption_time, vb.preemption_time);
        }
    }

    #[test]
    fn catalog_scale_shortens_lifetimes_but_preserves_vm_type_structure() {
        let mean_lifetime = |scale: f64, vm_type: VmType| {
            let template = ProviderTemplate {
                catalog_scale: scale,
                ..ProviderTemplate::default()
            };
            let mut p = template.build(9);
            let mut total = 0.0;
            for _ in 0..200 {
                let vm = p
                    .launch(vm_type, Zone::UsEast1B, BillingClass::Preemptible, 0.0)
                    .unwrap();
                total += vm.preemption_time.unwrap() - vm.launch_time;
            }
            total / 200.0
        };
        // A higher hazard scale shortens lifetimes...
        assert!(mean_lifetime(3.0, VmType::N1HighCpu16) < mean_lifetime(1.0, VmType::N1HighCpu16));
        // ...while the catalog's per-VM-type structure (Observation 4) still applies.
        assert!(mean_lifetime(2.0, VmType::N1HighCpu32) < mean_lifetime(2.0, VmType::N1HighCpu2));
    }
}
