//! Discrete-event cloud simulator with preemptible VMs.
//!
//! The paper evaluates its policies against the real Google Cloud Platform; this crate is
//! the stand-in substrate: a discrete-event simulation of an IaaS provider that offers
//! both on-demand (never preempted) and preemptible VMs whose time-to-preemption is drawn
//! from any [`LifetimeDistribution`](tcp_dists::LifetimeDistribution) — in the experiments,
//! the same three-phase ground truth that generated the synthetic empirical dataset.
//!
//! * [`events`] — a generic time-ordered event queue.
//! * [`vm`] — VM instances, their lifecycle states, and provisioning metadata.
//! * [`pricing`] — GCP-style on-demand vs preemptible pricing (the ~5× discount that
//!   drives Figure 9a).
//! * [`provider`] — the cloud provider: launch/terminate/preempt VMs, track accounting.
//! * [`montecarlo`] — a parallel Monte-Carlo experiment driver built on crossbeam scoped
//!   threads (each trial runs an independent simulation with its own RNG stream).

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod events;
pub mod montecarlo;
pub mod pricing;
pub mod provider;
pub mod vm;

pub use events::EventQueue;
pub use montecarlo::{run_monte_carlo, MonteCarloSummary};
pub use pricing::PricingModel;
pub use provider::{CloudProvider, ProviderConfig, UsageReport};
pub use vm::{BillingClass, VmHandle, VmId, VmInstance, VmState};
