//! Discrete-event cloud simulator with preemptible VMs.
//!
//! The paper evaluates its policies against the real Google Cloud Platform; this crate is
//! the stand-in substrate: a discrete-event simulation of an IaaS provider that offers
//! both on-demand (never preempted) and preemptible VMs whose time-to-preemption is drawn
//! from any [`LifetimeDistribution`](tcp_dists::LifetimeDistribution) — in the experiments,
//! the same three-phase ground truth that generated the synthetic empirical dataset.
//!
//! * [`events`] — a generic time-ordered event queue.
//! * [`vm`] — VM instances, their lifecycle states, and provisioning metadata.
//! * [`pricing`] — GCP-style on-demand vs preemptible pricing (the ~5× discount that
//!   drives Figure 9a).
//! * [`provider`] — the cloud provider: launch/terminate/preempt VMs, track accounting.
//! * [`montecarlo`] — parallel experiment drivers built on `std::thread::scope` (each
//!   trial runs an independent simulation with its own RNG stream; results are reduced
//!   in task order so aggregates are bit-identical for every thread count).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` style comparisons are used deliberately throughout: unlike `x <= 0.0`
// they are false for NaN, which is exactly the validation we want for config values.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod events;
pub mod montecarlo;
pub mod pricing;
pub mod provider;
pub mod vm;

pub use events::EventQueue;
pub use montecarlo::{resolve_threads, run_monte_carlo, run_tasks, MonteCarloSummary};
pub use pricing::PricingModel;
pub use provider::{CloudProvider, ProviderConfig, ProviderTemplate, UsageReport};
pub use vm::{BillingClass, VmHandle, VmId, VmInstance, VmState};
