//! The worker-pool TCP server.
//!
//! Architecture: one accept thread pushes connections onto a bounded queue; a fixed
//! pool of worker threads pops connections and serves each one to completion with a
//! per-connection [`Session`] — the same line-level engine as the file front end, so
//! the response bytes for a request stream are identical to batch-mode `advise serve`.
//!
//! Inside a connection, lines are read into adaptive batches (as many lines as the
//! read buffer already holds, up to `max_batch`) and answered through the session,
//! which fans request runs over the workspace's work-stealing driver when
//! `batch_threads > 1`.  Admission control is a global in-flight request budget: a
//! request line that cannot get a permit is answered *in place* with a typed
//! 503-style [`OverloadLine`] — responses are never silently dropped, and output
//! order always matches input order.
//!
//! Control lines: `!reload <path>`, `!stats`, and `!metrics` are handled by the
//! shared session engine (any connection is an admin connection); `!shutdown` is
//! handled here — it acknowledges, stops the accept loop, lets every worker drain the
//! requests already read, and unblocks [`Server::join`].
//!
//! Observability: the server publishes connection, queue-depth, in-flight, served and
//! shed counters/gauges into the process-global [`tcp_obs::Registry`] (`serve.*`
//! metric names).  Metrics are strictly out-of-band — they never touch the response
//! stream, so served bytes stay identical for any worker/thread configuration.

use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};
use tcp_advisor::{AdvisorHandle, MultiAdvisor, Session};
use tcp_obs::{Counter, Gauge};

/// How long a worker blocks in a read before re-checking the shutdown flag.
const READ_POLL: Duration = Duration::from_millis(50);

/// Configuration of a [`Server`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServeOptions {
    /// Address to bind (`host:port`; port `0` picks a free port).
    pub addr: String,
    /// Fixed worker-pool size (each worker serves one connection at a time).
    pub workers: usize,
    /// Global in-flight request budget: requests admitted but not yet answered.
    /// Requests beyond the budget get typed overload responses.
    pub max_inflight: usize,
    /// Largest batch of lines answered per session flush.  Keep it below
    /// `max_inflight / workers` (the defaults are) so well-behaved connections never
    /// shed; a burst larger than the remaining budget gets typed overload lines.
    pub max_batch: usize,
    /// Worker threads the session fans each request batch over (`1` keeps batches
    /// single-threaded so scaling comes from the connection workers).
    pub batch_threads: usize,
    /// Most connections allowed to wait for a worker; beyond it new connections are
    /// refused with a typed overload line instead of queueing unboundedly.
    pub max_pending: usize,
}

impl Default for ServeOptions {
    fn default() -> Self {
        ServeOptions {
            addr: "127.0.0.1:0".to_string(),
            workers: 4,
            max_inflight: 4096,
            max_batch: 256,
            batch_threads: 1,
            max_pending: 1024,
        }
    }
}

impl ServeOptions {
    fn validate(&self) -> Result<(), String> {
        if self.workers == 0 {
            return Err("workers must be at least 1".to_string());
        }
        if self.max_inflight == 0 {
            return Err("max-inflight must be at least 1".to_string());
        }
        if self.max_batch == 0 {
            return Err("max-batch must be at least 1".to_string());
        }
        if self.max_pending == 0 {
            return Err("max-pending must be at least 1".to_string());
        }
        Ok(())
    }
}

/// The typed 503-style response emitted when the in-flight budget (or the pending
/// connection queue) is exhausted.  Emitted in place of the response the request
/// would have received, so clients can count on one output line per input line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OverloadLine {
    /// What was shed and why, including the configured limit.
    pub error: String,
    /// HTTP-style status code (always 503).
    pub code: u32,
    /// Correlation id (never parsed on the overload path — always `null`; the
    /// shedding path must stay cheaper than the serving path).
    pub id: Option<u64>,
}

/// The acknowledgement emitted for a `!shutdown` control line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ShutdownLine {
    /// The control verb (`shutdown`).
    pub control: String,
    /// Connections still queued or being served that will be drained.
    pub draining: usize,
}

/// Serving totals reported by [`Server::join`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServerReport {
    /// Connections accepted and served.
    pub connections: u64,
    /// Request lines answered by the advisor (parse errors included; they produce
    /// typed error lines through the same path).
    pub requests: u64,
    /// Request lines answered with a typed overload response.
    pub overload_responses: u64,
    /// Connections refused because the pending queue was full.
    pub refused_connections: u64,
}

#[derive(Default)]
struct Counters {
    connections: AtomicU64,
    requests: AtomicU64,
    overloads: AtomicU64,
    refused: AtomicU64,
}

/// Registry handles for the server's `serve.*` metrics, resolved once at startup so
/// hot paths never take the registry lock.  All instances of [`Server`] in a process
/// share these (the registry is global); counters aggregate across servers, gauges
/// report the most recent writer.
struct ServerMetrics {
    connections_accepted: &'static Counter,
    connections_refused: &'static Counter,
    connections_active: &'static Gauge,
    queue_depth: &'static Gauge,
    inflight: &'static Gauge,
    requests_served: &'static Counter,
    requests_shed: &'static Counter,
}

impl ServerMetrics {
    fn new() -> Self {
        ServerMetrics {
            connections_accepted: tcp_obs::counter("serve.connections.accepted"),
            connections_refused: tcp_obs::counter("serve.connections.refused"),
            connections_active: tcp_obs::gauge("serve.connections.active"),
            queue_depth: tcp_obs::gauge("serve.queue.depth"),
            inflight: tcp_obs::gauge("serve.inflight"),
            requests_served: tcp_obs::counter("serve.requests.served"),
            requests_shed: tcp_obs::counter("serve.requests.shed"),
        }
    }
}

/// A connection waiting for a worker, stamped at accept time so the worker can
/// attribute the queue wait to the connection's trace.
struct QueuedConnection {
    stream: TcpStream,
    /// When the accept loop enqueued it (the start of the queue-wait span).
    enqueued_at: Instant,
    /// Accept-order ordinal: the deterministic trace-sampling seed for the
    /// connection (`--trace-sample 1/N` picks the same connections every run of the
    /// same arrival order).
    ordinal: u64,
}

struct Shared {
    handle: AdvisorHandle,
    options: ServeOptions,
    queue: Mutex<VecDeque<QueuedConnection>>,
    queue_cv: Condvar,
    shutdown: AtomicBool,
    inflight: AtomicUsize,
    counters: Counters,
    metrics: ServerMetrics,
    addr: SocketAddr,
    /// Accept-order allocator behind [`QueuedConnection::ordinal`].
    connection_seq: AtomicU64,
}

impl Shared {
    /// Grabs one in-flight permit if the budget allows.
    fn try_admit(&self) -> bool {
        match self
            .inflight
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |n| {
                if n < self.options.max_inflight {
                    Some(n + 1)
                } else {
                    None
                }
            }) {
            Ok(previous) => {
                self.metrics.inflight.set((previous + 1) as f64);
                true
            }
            Err(_) => false,
        }
    }

    /// Returns `count` permits to the budget.
    fn release(&self, count: usize) {
        if count > 0 {
            let previous = self.inflight.fetch_sub(count, Ordering::AcqRel);
            self.metrics
                .inflight
                .set(previous.saturating_sub(count) as f64);
        }
    }

    /// Initiates shutdown: stops the accept loop and wakes every idle worker.  The
    /// accept thread may be blocked in `accept()`, so poke it with a throwaway
    /// connection — through loopback when the server bound a wildcard address,
    /// which is not connectable on every platform.
    fn trigger_shutdown(&self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        let mut poke = self.addr;
        if poke.ip().is_unspecified() {
            match poke {
                SocketAddr::V4(_) => poke.set_ip(std::net::Ipv4Addr::LOCALHOST.into()),
                SocketAddr::V6(_) => poke.set_ip(std::net::Ipv6Addr::LOCALHOST.into()),
            }
        }
        let _ = TcpStream::connect(poke);
        self.queue_cv.notify_all();
    }
}

/// One queued output slot of a connection batch, in input order.
enum Slot {
    /// A line for the session engine (request or control); `bool` says whether it
    /// holds an in-flight permit (control lines do not).
    Line(String, bool),
    /// A request line shed by admission control.
    Overloaded,
}

/// A running advisor server.  Dropping the handle does **not** stop the server; call
/// [`Server::shutdown`] (or send a `!shutdown` control line) and then
/// [`Server::join`].
pub struct Server {
    shared: Arc<Shared>,
    accept: Option<std::thread::JoinHandle<()>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Server {
    /// Binds `options.addr` and starts the accept loop and the worker pool.
    pub fn start(advisor: MultiAdvisor, options: ServeOptions) -> Result<Server, String> {
        options.validate()?;
        let listener = TcpListener::bind(&options.addr)
            .map_err(|e| format!("cannot bind {}: {e}", options.addr))?;
        let addr = listener
            .local_addr()
            .map_err(|e| format!("cannot read bound address: {e}"))?;
        let shared = Arc::new(Shared {
            handle: AdvisorHandle::new(advisor),
            options: options.clone(),
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            shutdown: AtomicBool::new(false),
            inflight: AtomicUsize::new(0),
            counters: Counters::default(),
            metrics: ServerMetrics::new(),
            addr,
            connection_seq: AtomicU64::new(0),
        });

        let accept = {
            let shared = Arc::clone(&shared);
            std::thread::spawn(move || accept_loop(listener, &shared))
        };
        let workers = (0..options.workers)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        Ok(Server {
            shared,
            accept: Some(accept),
            workers,
        })
    }

    /// The address the server actually bound (resolves port `0`).
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.addr
    }

    /// The hot-reload slot behind the served packs (shared with every connection).
    pub fn handle(&self) -> &AdvisorHandle {
        &self.shared.handle
    }

    /// Initiates a graceful shutdown: stop accepting, drain requests already read,
    /// then let [`Server::join`] return.  Idempotent; `!shutdown` calls this too.
    pub fn shutdown(&self) {
        self.shared.trigger_shutdown();
    }

    /// Waits for the accept loop and every worker to finish, returning the totals.
    pub fn join(mut self) -> ServerReport {
        if let Some(accept) = self.accept.take() {
            let _ = accept.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        let c = &self.shared.counters;
        ServerReport {
            // lint:allow(ordering-audit) every writer thread was joined above; these loads cannot race
            connections: c.connections.load(Ordering::Relaxed),
            requests: c.requests.load(Ordering::Relaxed), // lint:allow(ordering-audit) post-join load
            // lint:allow(ordering-audit) post-join load
            overload_responses: c.overloads.load(Ordering::Relaxed),
            refused_connections: c.refused.load(Ordering::Relaxed), // lint:allow(ordering-audit) post-join load
        }
    }
}

fn accept_loop(listener: TcpListener, shared: &Shared) {
    for stream in listener.incoming() {
        if shared.shutdown.load(Ordering::SeqCst) {
            // A real client racing the shutdown poke still gets a typed goodbye
            // instead of a silent hang-up.
            if let Ok(stream) = stream {
                refuse(stream, "server is shutting down".to_string());
            }
            break;
        }
        let Ok(stream) = stream else {
            // Transient accept failures (EMFILE under fd pressure, aborted
            // handshakes) must not busy-spin a core exactly when the host is
            // already starved.
            std::thread::sleep(Duration::from_millis(10));
            continue;
        };
        // A worker can only panic while holding the lock between pop and depth
        // update; the queue itself is still well-formed, so recover rather than
        // take down the accept loop with it.
        let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
        if queue.len() >= shared.options.max_pending {
            drop(queue);
            // lint:allow(ordering-audit) monotone stat counter; read only after join or for reporting
            shared.counters.refused.fetch_add(1, Ordering::Relaxed);
            shared.metrics.connections_refused.incr();
            refuse(
                stream,
                format!(
                    "overloaded: connection queue is full (max {}); retry later",
                    shared.options.max_pending
                ),
            );
        } else {
            queue.push_back(QueuedConnection {
                stream,
                enqueued_at: Instant::now(),
                // lint:allow(ordering-audit) ordinal allocation needs atomicity only; uniqueness is the invariant
                ordinal: shared.connection_seq.fetch_add(1, Ordering::Relaxed),
            });
            shared.metrics.queue_depth.set(queue.len() as f64);
            drop(queue);
            shared.queue_cv.notify_one();
        }
    }
    // Wake every worker so the pool can drain the queue and exit.
    shared.queue_cv.notify_all();
}

/// Refuses a connection with one typed overload line (best effort — the client may
/// already be gone, which is fine).
/// Serializes one reply line; a serializer failure (impossible for these line
/// types) degrades to a well-formed error line instead of aborting the worker.
fn render_line<T: serde::Serialize>(value: &T) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|_| "{\"error\":\"internal: response serialization failed\"}".to_string())
}

fn refuse(stream: TcpStream, error: String) {
    let line = render_line(&OverloadLine {
        error,
        code: 503,
        id: None,
    });
    let mut writer = BufWriter::new(stream);
    let _ = writer.write_all(line.as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
}

fn worker_loop(shared: &Shared) {
    loop {
        let connection = {
            let mut queue = shared.queue.lock().unwrap_or_else(|e| e.into_inner());
            loop {
                if let Some(connection) = queue.pop_front() {
                    shared.metrics.queue_depth.set(queue.len() as f64);
                    break Some(connection);
                }
                if shared.shutdown.load(Ordering::SeqCst) {
                    break None;
                }
                queue = shared
                    .queue_cv
                    .wait(queue)
                    .unwrap_or_else(|e| e.into_inner());
            }
        };
        match connection {
            Some(connection) => serve_connection(connection, shared),
            None => break,
        }
    }
}

/// Queues one complete request/control line (terminator already removed).  Returns
/// `false` for the `!shutdown` control, which the connection loop handles itself.
fn queue_line(line_bytes: Vec<u8>, pending: &mut Vec<Slot>, shared: &Shared) -> bool {
    // Invalid UTF-8 cannot even be represented in file mode (reading the document
    // would fail); over the socket it degrades to a replacement-character line whose
    // parse error is still a typed in-place response — never a dropped connection.
    let line = match String::from_utf8(line_bytes) {
        Ok(line) => line,
        Err(e) => String::from_utf8_lossy(e.as_bytes()).into_owned(),
    };
    let text = line.trim();
    if text == "!shutdown" {
        return false;
    }
    if !text.is_empty() {
        if text.starts_with('!') {
            // Control lines bypass admission control: health probes and reloads
            // must keep working while the budget is exhausted.
            pending.push(Slot::Line(line, false));
        } else if shared.try_admit() {
            pending.push(Slot::Line(line, true));
        } else {
            pending.push(Slot::Overloaded);
        }
    }
    true
}

/// Decrements `serve.connections.active` on every exit path of [`serve_connection`].
struct ActiveConnectionGuard<'a>(&'a Gauge);

impl Drop for ActiveConnectionGuard<'_> {
    fn drop(&mut self) {
        self.0.sub(1.0);
    }
}

fn serve_connection(connection: QueuedConnection, shared: &Shared) {
    let QueuedConnection {
        stream,
        enqueued_at,
        ordinal,
    } = connection;
    // The connection's trace root (accept → drain), sampled deterministically by
    // accept ordinal; the time spent waiting for this worker lands as a completed
    // `serve.queue.wait` child.  All of this is inert when tracing is off, and none
    // of it touches the response bytes.
    let _conn_trace = tcp_obs::root_span!("serve.connection", ordinal, ordinal);
    if tcp_obs::trace::tracing_configured() {
        static QUEUE_WAIT: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
        tcp_obs::trace::complete_span(
            *QUEUE_WAIT.get_or_init(|| tcp_obs::trace::site_id("serve.queue.wait")),
            enqueued_at,
            ordinal,
        );
    }
    // lint:allow(ordering-audit) monotone stat counter; read only after join or for reporting
    shared.counters.connections.fetch_add(1, Ordering::Relaxed);
    shared.metrics.connections_accepted.incr();
    shared.metrics.connections_active.add(1.0);
    let _active = ActiveConnectionGuard(shared.metrics.connections_active);
    let _ = stream.set_nodelay(true);
    // A finite read timeout lets the worker notice a server shutdown while a client
    // sits idle; complete batches are always flushed before the worker blocks again.
    let _ = stream.set_read_timeout(Some(READ_POLL));
    let Ok(read_half) = stream.try_clone() else {
        return;
    };
    let mut reader = BufReader::with_capacity(1 << 16, read_half);
    let mut writer = BufWriter::with_capacity(1 << 16, stream);
    let mut session = Session::new(&shared.handle, shared.options.batch_threads);
    let batch_cap = shared.options.max_batch;
    let mut pending: Vec<Slot> = Vec::new();
    // Bytes of a line whose terminator has not arrived yet.  Lines are assembled at
    // the byte level (not via `read_line`) so a read timeout can never discard
    // partially received multi-byte characters mid-line.
    let mut partial: Vec<u8> = Vec::new();
    loop {
        let chunk_len = match reader.fill_buf() {
            Ok([]) => {
                // EOF: the unterminated tail is still one request, then drain.
                if !partial.is_empty()
                    && !queue_line(std::mem::take(&mut partial), &mut pending, shared)
                {
                    shutdown_connection(&mut session, &mut pending, &mut writer, shared);
                    return;
                }
                let _ = flush_batch(&mut session, &mut pending, &mut writer, shared);
                return;
            }
            Ok(chunk) => {
                let mut consumed = 0usize;
                while let Some(offset) = chunk[consumed..].iter().position(|&b| b == b'\n') {
                    let mut line_bytes = std::mem::take(&mut partial);
                    line_bytes.extend_from_slice(&chunk[consumed..consumed + offset]);
                    // Strip an optional `\r` exactly like `str::lines` in batch mode —
                    // parse-error byte offsets must match it.
                    if line_bytes.last() == Some(&b'\r') {
                        line_bytes.pop();
                    }
                    consumed += offset + 1;
                    if !queue_line(line_bytes, &mut pending, shared) {
                        shutdown_connection(&mut session, &mut pending, &mut writer, shared);
                        return;
                    }
                    if pending.len() >= batch_cap
                        && flush_batch(&mut session, &mut pending, &mut writer, shared).is_err()
                    {
                        return;
                    }
                }
                partial.extend_from_slice(&chunk[consumed..]);
                chunk.len()
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if shared.shutdown.load(Ordering::SeqCst) {
                    let _ = flush_batch(&mut session, &mut pending, &mut writer, shared);
                    return;
                }
                continue;
            }
            Err(_) => return,
        };
        reader.consume(chunk_len);
        // The whole chunk was consumed, so the internal buffer is drained and the
        // next read may block: answer everything complete now.  A stalled partial
        // line never withholds the responses of the requests before it.
        if flush_batch(&mut session, &mut pending, &mut writer, shared).is_err() {
            return;
        }
        // A drain was requested (by `!shutdown` on another connection): everything
        // read so far is answered — close rather than stream forever, or the server
        // could never exit while an active client keeps sending.
        if shared.shutdown.load(Ordering::SeqCst) {
            return;
        }
    }
}

/// Acknowledges a `!shutdown` control line: answer everything before it, emit the
/// ack, and trigger the server-wide drain.
fn shutdown_connection(
    session: &mut Session<'_>,
    pending: &mut Vec<Slot>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
) {
    let _ = flush_batch(session, pending, writer, shared);
    let draining = shared
        .queue
        .lock()
        .map(|queue| queue.len())
        .unwrap_or_default();
    let ack = render_line(&ShutdownLine {
        control: "shutdown".to_string(),
        draining,
    });
    let _ = writer.write_all(ack.as_bytes());
    let _ = writer.write_all(b"\n");
    let _ = writer.flush();
    shared.trigger_shutdown();
}

/// Answers one batch of slots in input order, writes the responses, and returns the
/// in-flight permits.  An `Err` means the client is gone; the caller closes.
fn flush_batch(
    session: &mut Session<'_>,
    pending: &mut Vec<Slot>,
    writer: &mut BufWriter<TcpStream>,
    shared: &Shared,
) -> std::io::Result<()> {
    if pending.is_empty() {
        return Ok(());
    }
    // Batch-assembly-and-dispatch span, nested in the connection trace; the arg is
    // the batch size.  Per-request spans open inside `Session::process`.
    let _batch_span = tcp_obs::span!("serve.batch.flush", pending.len() as u64);
    let mut out = String::new();
    let mut run: Vec<&str> = Vec::new();
    let mut permits = 0usize;
    let mut served = 0u64;
    let mut overloaded = 0u64;
    for slot in pending.iter() {
        match slot {
            Slot::Line(text, holds_permit) => {
                run.push(text);
                if *holds_permit {
                    permits += 1;
                    served += 1;
                }
            }
            Slot::Overloaded => {
                session.process(&run, &mut out);
                run.clear();
                let line = render_line(&OverloadLine {
                    error: format!(
                        "overloaded: in-flight budget exhausted (max {}); retry later",
                        shared.options.max_inflight
                    ),
                    code: 503,
                    id: None,
                });
                out.push_str(&line);
                out.push('\n');
                overloaded += 1;
            }
        }
    }
    session.process(&run, &mut out);
    pending.clear();
    let outcome = writer
        .write_all(out.as_bytes())
        .and_then(|()| writer.flush());
    // Permits are released only after the responses hit the socket: "in flight"
    // covers the full admission-to-response window, which is what backpressure
    // must bound.
    shared.release(permits);
    shared
        .counters
        .requests
        // lint:allow(ordering-audit) monotone stat counter; read only after join or for reporting
        .fetch_add(served, Ordering::Relaxed);
    shared
        .counters
        .overloads
        // lint:allow(ordering-audit) monotone stat counter; read only after join or for reporting
        .fetch_add(overloaded, Ordering::Relaxed);
    if served > 0 {
        shared.metrics.requests_served.add(served);
    }
    if overloaded > 0 {
        shared.metrics.requests_shed.add(overloaded);
    }
    outcome
}
