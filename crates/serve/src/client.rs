//! A minimal blocking client for the advisory protocol.
//!
//! One call = one connection: the input document is streamed on a writer thread while
//! the response stream is collected concurrently (writing a large corpus without
//! reading would deadlock once both TCP windows fill).  The write half is shut down
//! after the last line, which tells the server the request stream is complete; the
//! server answers everything it read and closes, which ends the read half.

use std::io::{BufWriter, Read, Write};
use std::net::{Shutdown, TcpStream};

/// Sends `input` (an NDJSON request/control-line document) over one connection to
/// `addr` and returns the full response document.
///
/// Every non-blank input line produces exactly one response line, in order, so the
/// returned text for a pure request stream is byte-identical to batch-mode
/// `advise serve` over the same lines.
pub fn run_client(addr: &str, input: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    stream.set_nodelay(true)?;
    let write_half = stream.try_clone()?;
    let mut response = String::new();
    let mut read_half = stream;
    std::thread::scope(|scope| -> std::io::Result<()> {
        let writer = scope.spawn(move || -> std::io::Result<()> {
            let mut writer = BufWriter::with_capacity(1 << 16, write_half);
            writer.write_all(input.as_bytes())?;
            if !input.is_empty() && !input.ends_with('\n') {
                writer.write_all(b"\n")?;
            }
            writer.flush()?;
            writer.get_ref().shutdown(Shutdown::Write)?;
            Ok(())
        });
        read_half.read_to_string(&mut response)?;
        writer.join().expect("client writer thread panicked")?;
        Ok(())
    })?;
    Ok(response)
}
