//! `advise` — build, serve and network-serve preemption-advisory model packs.
//!
//! ```text
//! advise build <spec.toml|spec.json> --out pack.json [resolution knobs]
//! advise build --per-cell --catalog catalog.json --out multi.json [knobs]
//! advise gen   --pack pack.json --count N [--seed S] [--out requests.ndjson]
//! advise serve --pack pack.json --input requests.ndjson [--output FILE] [--threads N]
//! advise bench --pack pack.json [--requests N] [--threads N] [--seed S]
//! advise listen --pack pack.json [--addr HOST:PORT] [--workers N] [--max-inflight M]
//! advise connect --addr HOST:PORT [--input FILE] [--send LINE]... [--output FILE]
//! advise top   --addr HOST:PORT [--interval S] [--once]
//! advise serve-bench --pack pack.json [--requests N] [--clients C] [--workers 1,2,4]
//!                    [--profile-hz N]
//! ```
//!
//! `build` precomputes the tables offline — from a sweep spec (single pack) or, with
//! `--per-cell`, from a `calibrate fit` regime catalog; `serve` answers an NDJSON
//! request stream from a file with byte-identical output for every `--threads` value;
//! `listen` serves the same protocol over TCP through a fixed worker pool with a
//! bounded in-flight budget (overloads get typed 503-style lines, `!reload <path>`
//! hot-swaps packs, `!stats` / `!metrics` / `!trace` / `!health` / `!profile`
//! answer health probes, `!shutdown` drains and exits, `--metrics-file` writes a
//! periodic Prometheus text exposition, `--trace-file` dumps the flight recorder as
//! Chrome trace JSON, `--profile-file` arms the continuous profiler and dumps
//! collapsed stacks + a flamegraph SVG + JSON at drain, and `--slo` arms the
//! rolling-window SLO evaluator with `--alert-log` appending firing/resolved
//! transitions as JSON lines); `connect` is the matching one-connection client;
//! `top` is a live terminal dashboard polling `!metrics` / `!health` / `!profile`
//! (`--once` for a single machine-readable snapshot); `gen` emits a
//! deterministic load; `bench` measures the in-process serving path and
//! `serve-bench` the loopback TCP path across worker counts with registry-backed
//! latency percentiles and counting-allocator allocs/op + bytes/op.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// The counting allocator (off by default: one relaxed load per allocator
/// call) backs `listen --profile-file`'s allocation attribution and
/// `serve-bench`'s allocs/op + bytes/op columns.
#[global_allocator]
static ALLOC: tcp_obs::profile::CountingAlloc = tcp_obs::profile::CountingAlloc::new();
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tcp_advisor::{
    generate_multi_requests, generate_requests, requests_to_ndjson, serve_session_with_stats,
    AdvisorHandle, ModelPack, MultiAdvisor, MultiPack, PackBuilder,
};
use tcp_calibrate::RegimeCatalog;
use tcp_scenarios::SweepSpec;
use tcp_serve::{loopback_bench, run_client, run_top, ServeOptions, Server, TopOptions};

const USAGE: &str = "usage: advise <command> [options]

commands:
  build <spec.toml|spec.json>  precompute a model pack from a sweep spec
      --out FILE                 pack output path (default pack.json)
      --age-points N             age-grid resolution (default 1441, one knot per minute)
      --checkpoint-age-points N  DP age-grid resolution (default 9)
      --checkpoint-job-points N  DP job-grid resolution (default 10)
      --max-checkpoint-job H     largest DP job length, hours (default 8)
      --per-cell                 build a per-cell multi-pack from a regime catalog
      --catalog FILE             `calibrate fit` catalog (required with --per-cell)
      --checkpoint-cost M        checkpoint cost axis, minutes (repeatable; default 1)
      --dp-step M                DP step, minutes (default 5)
      --threads T                worker threads for --per-cell builds (default 0)

  gen                          generate a deterministic NDJSON request load
      --pack FILE                model pack (required)
      --count N                  number of requests (default 10000)
      --seed S                   generator seed (default 2020)
      --cells                    spread requests over a multi-pack's cells (each
                                 request carries the `cell` routing field), so the
                                 load exercises every cell's winner-family tables
      --out FILE                 output path (default stdout)

  serve                        answer an NDJSON request stream from a file
      --pack FILE                model pack (required)
      --input FILE               NDJSON requests (required)
      --output FILE              NDJSON responses (default stdout)
      --threads N                worker threads (default 0 = all CPUs)

  listen                       serve the NDJSON protocol over TCP
      --pack FILE                model pack (required)
      --addr HOST:PORT           bind address (default 127.0.0.1:0 = free port)
      --workers N                connection worker pool size (default 4)
      --max-inflight M           in-flight request budget; beyond it requests get
                                 typed 503-style overload lines (default 4096)
      --max-batch K              largest per-connection batch (default 256)
      --batch-threads T          threads per request batch (default 1)
      --max-pending P            most connections waiting for a worker (default 1024)
      --port-file FILE           write the bound address here once listening
      --metrics-file FILE        write a Prometheus text exposition here periodically
                                 (atomically, via rename; final write after drain)
      --metrics-interval S       seconds between exposition writes (default 5)
      --no-metrics               disable latency recording (histograms/span timers;
                                 counters keep serving `!stats`)
      --trace-file FILE          write a Chrome trace-event JSON dump of the flight
                                 recorder here at shutdown (atomically, via rename);
                                 load it in chrome://tracing or Perfetto
      --trace-sample R           deterministic trace sampling rate as `1/N` or `N`
                                 (0 = off; default 1 = every request when
                                 --trace-file is given, else 0)
      --trace-slow-us T          force-retain any request slower than T microseconds
                                 with its full span subtree, regardless of sampling
                                 (default 0 = off)
      --slo FILE                 arm the rolling-window SLO evaluator with the
                                 declarative rules in FILE (TOML or JSON; see
                                 examples/serve/slo.toml).  !health then reports the
                                 verdict and per-rule burn-rate states
      --alert-log FILE           append each alert transition (firing/resolved) as
                                 one sorted-key JSON line (requires --slo)
      --profile-file FILE        arm the continuous profiler (wall-clock span-stack
                                 sampler + allocation counting) and, at drain, dump
                                 FILE's basename with .folded (collapsed stacks),
                                 .svg (standalone flamegraph) and .json extensions,
                                 each atomically via rename
      --profile-hz N             wall-clock sampling rate while armed (default 97,
                                 clamped to 1..=10000; requires --profile-file)

  connect                      send request/control lines over one TCP connection
      --addr HOST:PORT           server address (required)
      --input FILE               NDJSON document to send (optional)
      --send LINE                extra line to send after --input (repeatable)
      --output FILE              response output path (default stdout)

  top                          live terminal dashboard for a running server:
                               polls !metrics prom + !health + !profile and renders
                               windowed qps/p50/p99/shed%/verdict/alerts plus a
                               hot-sites wall-profile panel (plain ANSI)
      --addr HOST:PORT           server address (required)
      --interval S               seconds between polls = the rate/quantile window
                                 (default 2)
      --once                     take two samples one interval apart, print one
                                 machine-readable JSON snapshot line, exit

  serve-bench                  loopback TCP throughput across worker counts, with
                               per-run p50/p90/p99/p999 latency from the advisor's
                               registry histograms, counting-allocator allocs/op +
                               bytes/op deltas, and a one-line JSON summary
      --pack FILE                model pack (required)
      --requests N               corpus size (default 100000)
      --clients C                concurrent client connections (default 4)
      --workers LIST             comma-separated worker counts (default 1,2,4)
      --seed S                   load-generator seed (default 2020)
      --profile-hz N             arm the wall-clock sampler for the whole bench,
                                 to measure continuous profiling's qps cost

  bench                        measure the in-process serving path
      --pack FILE                model pack (required)
      --requests N               batch size (default 100000)
      --threads N                worker threads for throughput (default 0)
      --seed S                   load-generator seed (default 2020)";

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {flag} value `{v}`"))
}

fn load_advisor(pack_path: &Option<PathBuf>) -> Result<MultiAdvisor, String> {
    let path = pack_path.as_ref().ok_or("--pack is required")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    MultiAdvisor::from_json(&text).map_err(|e| e.to_string())
}

fn cmd_build(argv: &[String]) -> Result<(), String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut catalog_path: Option<PathBuf> = None;
    let mut per_cell = false;
    let mut out = PathBuf::from("pack.json");
    let mut builder = PackBuilder::default();
    let mut checkpoint_costs: Vec<f64> = Vec::new();
    let mut dp_step_minutes = 5.0f64;
    let mut threads = 0usize;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(next_value(&mut it, "--out")?),
            "--age-points" => builder.age_points = parse(next_value(&mut it, arg)?, arg)?,
            "--checkpoint-age-points" => {
                builder.checkpoint_age_points = parse(next_value(&mut it, arg)?, arg)?
            }
            "--checkpoint-job-points" => {
                builder.checkpoint_job_points = parse(next_value(&mut it, arg)?, arg)?
            }
            "--max-checkpoint-job" => {
                builder.max_checkpoint_job_hours = parse(next_value(&mut it, arg)?, arg)?
            }
            "--per-cell" => per_cell = true,
            "--catalog" => catalog_path = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--checkpoint-cost" => checkpoint_costs.push(parse(next_value(&mut it, arg)?, arg)?),
            "--dp-step" => dp_step_minutes = parse(next_value(&mut it, arg)?, arg)?,
            "--threads" => threads = parse(next_value(&mut it, arg)?, arg)?,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if spec_path.is_some() {
                    return Err(format!("unexpected extra argument `{other}`"));
                }
                spec_path = Some(PathBuf::from(other));
            }
        }
    }
    let started = Instant::now();
    if per_cell {
        let catalog_path = catalog_path.ok_or("--per-cell needs --catalog <catalog.json>")?;
        if spec_path.is_some() {
            return Err("--per-cell builds from a catalog, not a sweep spec".to_string());
        }
        let catalog = RegimeCatalog::load(&catalog_path).map_err(|e| e.to_string())?;
        if checkpoint_costs.is_empty() {
            checkpoint_costs.push(1.0);
        }
        let multi = builder
            .build_from_catalog(&catalog, &checkpoint_costs, dp_step_minutes, threads)
            .map_err(|e| e.to_string())?;
        let json = multi.to_json().map_err(|e| e.to_string())?;
        std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!(
            "built multi-pack `{}`: pooled ({}) + {} cell packs, {} bytes, {:.2}s -> {}",
            multi.name,
            multi.pooled.regimes[0].served_family,
            multi.cells.len(),
            json.len(),
            started.elapsed().as_secs_f64(),
            out.display()
        );
        return Ok(());
    }
    if catalog_path.is_some() {
        return Err("--catalog requires --per-cell".to_string());
    }
    let spec_path = spec_path.ok_or("build needs a sweep spec file")?;
    let spec = SweepSpec::from_path(&spec_path).map_err(|e| e.to_string())?;
    let pack = builder.build_from_spec(&spec).map_err(|e| e.to_string())?;
    let json = pack.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "built pack `{}`: {} regimes, {} bytes, {:.2}s -> {}",
        pack.name,
        pack.regimes.len(),
        json.len(),
        started.elapsed().as_secs_f64(),
        out.display()
    );
    Ok(())
}

struct IoArgs {
    pack: Option<PathBuf>,
    input: Option<PathBuf>,
    output: Option<PathBuf>,
    count: usize,
    requests: usize,
    threads: usize,
    seed: u64,
    cells: bool,
}

fn parse_io_args(argv: &[String]) -> Result<IoArgs, String> {
    let mut args = IoArgs {
        pack: None,
        input: None,
        output: None,
        count: 10_000,
        requests: 100_000,
        threads: 0,
        seed: 2020,
        cells: false,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pack" => args.pack = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--input" => args.input = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--output" | "--out" => args.output = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--count" => args.count = parse(next_value(&mut it, arg)?, arg)?,
            "--requests" => args.requests = parse(next_value(&mut it, arg)?, arg)?,
            "--threads" => args.threads = parse(next_value(&mut it, arg)?, arg)?,
            "--seed" => args.seed = parse(next_value(&mut it, arg)?, arg)?,
            "--cells" => args.cells = true,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn write_or_print(output: &Option<PathBuf>, text: &str) -> Result<(), String> {
    match output {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_gen(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    // Multi-packs generate against their pooled pack by default (cell routing is
    // opt-in per request via the `cell` field); `--cells` spreads the load over every
    // routable cell pack instead.  Only pack metadata is needed here, so no
    // interpolation engines are built.
    let path = args.pack.as_ref().ok_or("--pack is required")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let requests = match MultiPack::from_json(&text) {
        Ok(multi) if args.cells => generate_multi_requests(&multi, args.count, args.seed),
        Ok(multi) => generate_requests(&multi.pooled, args.count, args.seed),
        Err(_) if args.cells => {
            return Err("--cells needs a per-cell multi-pack (advise build --per-cell)".into())
        }
        Err(_) => {
            let pack = ModelPack::from_json(&text).map_err(|e| e.to_string())?;
            generate_requests(&pack, args.count, args.seed)
        }
    };
    write_or_print(&args.output, &requests_to_ndjson(&requests))
}

fn cmd_serve(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    let handle = AdvisorHandle::new(load_advisor(&args.pack)?);
    let input_path = args.input.as_ref().ok_or("--input is required")?;
    let input = std::fs::read_to_string(input_path)
        .map_err(|e| format!("cannot read {}: {e}", input_path.display()))?;
    let started = Instant::now();
    // Stats are aggregated across every advisor that served part of the stream —
    // reading only the final advisor would drop counts from before a `!reload`.
    let (output, stats) = serve_session_with_stats(&handle, &input, args.threads);
    let elapsed = started.elapsed().as_secs_f64();
    write_or_print(&args.output, &output)?;
    tcp_obs::event!(
        info,
        "serve.batch.done",
        queries = stats.total(),
        elapsed_secs = elapsed,
        qps = tcp_obs::rate_per_sec(stats.total(), elapsed),
        should_reuse = stats.should_reuse,
        checkpoint_plan = stats.checkpoint_plan,
        expected_cost_makespan = stats.expected_cost_makespan,
        best_policy = stats.best_policy,
    );
    Ok(())
}

/// Writes the global registry as a Prometheus text exposition, atomically (write to a
/// sibling temp file, then rename) so a scraper never reads a half-written dump.
fn write_exposition(path: &Path) {
    let text = tcp_obs::Registry::global().snapshot().to_prometheus();
    let tmp = path.with_extension("prom.tmp");
    if std::fs::write(&tmp, &text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Writes the flight recorder's retained spans as Chrome trace-event JSON, with the
/// same atomic tmp-then-rename discipline as the metrics exposition.
fn write_trace(path: &Path) {
    let text = tcp_obs::trace::chrome_trace_json(&tcp_obs::trace::recent_spans());
    let tmp = path.with_extension("trace.tmp");
    if std::fs::write(&tmp, &text).is_ok() {
        let _ = std::fs::rename(&tmp, path);
    }
}

/// Parses `--trace-sample`, accepting both `1/N` (the documented reading) and a bare
/// `N`; `0` (or `1/0`) disables sampling.
fn parse_sample(value: &str, flag: &str) -> Result<u64, String> {
    match value.split_once('/') {
        Some(("1", denom)) => parse(denom.trim(), flag),
        Some(_) => Err(format!(
            "invalid {flag} value `{value}` (expected `1/N` or `N`)"
        )),
        None => parse(value.trim(), flag),
    }
}

fn cmd_listen(argv: &[String]) -> Result<(), String> {
    let mut pack: Option<PathBuf> = None;
    let mut port_file: Option<PathBuf> = None;
    let mut metrics_file: Option<PathBuf> = None;
    let mut metrics_interval = 5.0f64;
    let mut trace_file: Option<PathBuf> = None;
    let mut trace_sample: Option<u64> = None;
    let mut trace_slow_us = 0u64;
    let mut slo_file: Option<PathBuf> = None;
    let mut alert_log: Option<PathBuf> = None;
    let mut profile_file: Option<PathBuf> = None;
    let mut profile_hz: Option<u64> = None;
    let mut options = ServeOptions::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pack" => pack = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--addr" => options.addr = next_value(&mut it, arg)?.clone(),
            "--workers" => options.workers = parse(next_value(&mut it, arg)?, arg)?,
            "--max-inflight" => options.max_inflight = parse(next_value(&mut it, arg)?, arg)?,
            "--max-batch" => options.max_batch = parse(next_value(&mut it, arg)?, arg)?,
            "--batch-threads" => options.batch_threads = parse(next_value(&mut it, arg)?, arg)?,
            "--max-pending" => options.max_pending = parse(next_value(&mut it, arg)?, arg)?,
            "--port-file" => port_file = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--metrics-file" => metrics_file = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--metrics-interval" => metrics_interval = parse(next_value(&mut it, arg)?, arg)?,
            "--no-metrics" => tcp_obs::set_enabled(false),
            "--trace-file" => trace_file = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--trace-sample" => trace_sample = Some(parse_sample(next_value(&mut it, arg)?, arg)?),
            "--trace-slow-us" => trace_slow_us = parse(next_value(&mut it, arg)?, arg)?,
            "--slo" => slo_file = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--alert-log" => alert_log = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--profile-file" => profile_file = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--profile-hz" => profile_hz = Some(parse(next_value(&mut it, arg)?, arg)?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if metrics_interval <= 0.0 || metrics_interval.is_nan() {
        return Err("--metrics-interval must be positive".to_string());
    }
    if alert_log.is_some() && slo_file.is_none() {
        return Err("--alert-log requires --slo".to_string());
    }
    if profile_hz.is_some() && profile_file.is_none() {
        return Err("--profile-hz requires --profile-file".to_string());
    }
    // Parse the SLO spec before binding the socket: a bad rule file should fail
    // fast, not after the server is reachable.
    let slo_spec = slo_file
        .as_ref()
        .map(|path| tcp_obs::health::SloSpec::load(path))
        .transpose()?;
    // Tracing defaults to sample-everything when a trace file is requested, and to
    // fully off otherwise; `--trace-sample 0` forces it off either way (the trace
    // file then holds an empty-but-valid dump, unless the slow log retains spans).
    let sample_every = trace_sample.unwrap_or(u64::from(trace_file.is_some()));
    tcp_obs::trace::configure(sample_every, trace_slow_us.saturating_mul(1_000));
    // Arm the continuous profiler before the worker pool spawns so the very first
    // request's span stack is mirrored; counting allocation rides along since this
    // binary installs the counting global allocator.
    if profile_file.is_some() {
        tcp_obs::profile::set_counting(true);
        tcp_obs::profile::arm(profile_hz.unwrap_or(97));
    }
    let advisor = load_advisor(&pack)?;
    let pack_name = advisor.name().to_string();
    let cells = advisor.cell_names().len();
    let server = Server::start(advisor, options.clone())?;
    let addr = server.local_addr();
    tcp_obs::event!(
        info,
        "serve.listening",
        addr = addr.to_string(),
        pack = pack_name,
        cells = cells,
        workers = options.workers,
        max_inflight = options.max_inflight,
        protocol =
            "ndjson (+ !reload / !stats / !metrics / !trace / !health / !profile / !shutdown)",
    );
    // The evaluator reads registry snapshots on its own thread (like the exposition
    // writer below); dropping the handle after the drain stops and joins it.
    let _evaluator = slo_spec.map(|spec| tcp_obs::health::spawn_evaluator(spec, alert_log.clone()));
    if let Some(path) = port_file {
        std::fs::write(&path, format!("{addr}\n"))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    // The exposition writer is strictly out-of-band: it reads registry snapshots on
    // its own thread and never touches the serving path, so response bytes are
    // unaffected by whether (or how often) it runs.
    let metrics_stop = Arc::new(AtomicBool::new(false));
    let metrics_writer = metrics_file.as_ref().map(|path| {
        let path = path.clone();
        let stop = Arc::clone(&metrics_stop);
        let interval = Duration::from_secs_f64(metrics_interval);
        std::thread::spawn(move || loop {
            write_exposition(&path);
            let deadline = Instant::now() + interval;
            while Instant::now() < deadline {
                // lint:allow(ordering-audit) stop flag polled in a sleep loop; staleness only delays exit by one slice
                if stop.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(50));
            }
        })
    });
    let report = server.join();
    metrics_stop.store(true, Ordering::Relaxed); // lint:allow(ordering-audit) stop flag; one stale slice is fine
    if let Some(writer) = metrics_writer {
        let _ = writer.join();
    }
    if let Some(path) = &metrics_file {
        // One final write after the drain so the file holds the complete totals.
        write_exposition(path);
    }
    if let Some(path) = &trace_file {
        // Written once, after the drain: the flight recorder keeps the most recent
        // retained spans at bounded memory, so this is a dump, not an append log.
        write_trace(path);
    }
    if let Some(path) = &profile_file {
        // Disarm first (stops and joins the sampler thread), then dump everything
        // accumulated: basename.folded / .svg / .json, each via tmp + rename.
        tcp_obs::profile::disarm();
        match tcp_obs::profile::dump_to(path) {
            Ok(written) => tcp_obs::event!(
                info,
                "serve.profile.dumped",
                files = written.len(),
                base = path.with_extension("").display().to_string(),
            ),
            Err(e) => tcp_obs::event!(
                warn,
                "serve.profile.dump_failed",
                path = path.display().to_string(),
                error = e.to_string(),
            ),
        }
    }
    tcp_obs::event!(
        info,
        "serve.drained",
        connections = report.connections,
        requests = report.requests,
        overload_responses = report.overload_responses,
        refused_connections = report.refused_connections,
    );
    Ok(())
}

fn cmd_connect(argv: &[String]) -> Result<(), String> {
    let mut addr: Option<String> = None;
    let mut input: Option<PathBuf> = None;
    let mut output: Option<PathBuf> = None;
    let mut sends: Vec<String> = Vec::new();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => addr = Some(next_value(&mut it, arg)?.clone()),
            "--input" => input = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--output" | "--out" => output = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--send" => sends.push(next_value(&mut it, arg)?.clone()),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let addr = addr.ok_or("--addr is required")?;
    let mut document = match &input {
        Some(path) => std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?,
        None => String::new(),
    };
    for line in &sends {
        if !document.is_empty() && !document.ends_with('\n') {
            document.push('\n');
        }
        document.push_str(line);
        document.push('\n');
    }
    if document.is_empty() {
        return Err("nothing to send: give --input and/or --send".to_string());
    }
    let response = run_client(&addr, &document).map_err(|e| e.to_string())?;
    write_or_print(&output, &response)
}

fn cmd_serve_bench(argv: &[String]) -> Result<(), String> {
    let mut pack: Option<PathBuf> = None;
    let mut requests = 100_000usize;
    let mut clients = 4usize;
    let mut worker_counts: Vec<usize> = vec![1, 2, 4];
    let mut seed = 2020u64;
    let mut profile_hz: Option<u64> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pack" => pack = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--requests" => requests = parse(next_value(&mut it, arg)?, arg)?,
            "--clients" => clients = parse(next_value(&mut it, arg)?, arg)?,
            "--seed" => seed = parse(next_value(&mut it, arg)?, arg)?,
            "--profile-hz" => profile_hz = Some(parse(next_value(&mut it, arg)?, arg)?),
            "--workers" => {
                worker_counts = next_value(&mut it, arg)?
                    .split(',')
                    .map(|v| parse(v.trim(), arg))
                    .collect::<Result<Vec<usize>, String>>()?;
                if worker_counts.is_empty() {
                    return Err("--workers needs at least one count".to_string());
                }
            }
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    let path = pack.as_ref().ok_or("--pack is required")?;
    let pack_json = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let advisor = MultiAdvisor::from_json(&pack_json).map_err(|e| e.to_string())?;
    let corpus = requests_to_ndjson(&generate_requests(advisor.pooled().pack(), requests, seed));
    drop(advisor);

    println!("loopback serve-bench: {requests} requests over {clients} client connections");
    // The loopback server runs in-process, so the counting global allocator this
    // binary installs sees every allocation of a run; per-worker-count deltas of
    // the process totals give allocs/op and bytes/op alongside the latency columns.
    tcp_obs::profile::set_counting(true);
    // --profile-hz arms the wall sampler for the whole bench — the direct way to
    // measure what continuous profiling costs in qps against a run without it.
    if let Some(hz) = profile_hz {
        tcp_obs::profile::arm(hz);
    }
    let mut baseline: Option<f64> = None;
    let mut summary = format!(
        "{{\"bench\":\"serve-bench\",\"clients\":{clients},\"requests\":{requests},\"results\":["
    );
    for (i, &workers) in worker_counts.iter().enumerate() {
        // The loopback server runs in-process, so the advisor's per-query latencies
        // land in this process's global registry; a *fresh* before/after snapshot
        // delta per worker count isolates just this run's samples — reusing one
        // baseline across iterations would fold earlier runs into later quantiles.
        let before = advisor_latency_snapshot();
        let alloc_before = tcp_obs::profile::alloc_totals();
        let report = loopback_bench(&pack_json, &corpus, workers, clients)?;
        let delta = advisor_latency_snapshot().delta_since(&before);
        let alloc_after = tcp_obs::profile::alloc_totals();
        let ops = (report.requests as f64).max(1.0);
        let allocs_per_op = (alloc_after.allocs - alloc_before.allocs) as f64 / ops;
        let bytes_per_op = (alloc_after.bytes - alloc_before.bytes) as f64 / ops;
        let speedup = match baseline {
            Some(base) => report.qps / base,
            None => {
                baseline = Some(report.qps);
                1.0
            }
        };
        let (p50, p90, p99, p999) = (
            delta.quantile(0.50) / 1e3,
            delta.quantile(0.90) / 1e3,
            delta.quantile(0.99) / 1e3,
            delta.quantile(0.999) / 1e3,
        );
        println!(
            "  workers {:>2}: {:>9.0} q/s  ({:.3}s wall, {:.2}x vs workers {})  \
             latency p50 {:.2}us p90 {:.2}us p99 {:.2}us p999 {:.2}us  \
             alloc {:.1}/op {:.0} B/op",
            report.workers,
            report.qps,
            report.seconds,
            speedup,
            worker_counts[0],
            p50,
            p90,
            p99,
            p999,
            allocs_per_op,
            bytes_per_op,
        );
        if i > 0 {
            summary.push(',');
        }
        summary.push_str(&format!(
            "{{\"allocs_per_op\":{allocs_per_op:.1},\"bytes_per_op\":{bytes_per_op:.1},\
             \"p50_us\":{p50:.3},\"p90_us\":{p90:.3},\"p99_us\":{p99:.3},\
             \"p999_us\":{p999:.3},\"qps\":{:.1},\"seconds\":{:.4},\"workers\":{workers}}}",
            report.qps, report.seconds,
        ));
    }
    if profile_hz.is_some() {
        tcp_obs::profile::disarm();
    }
    summary.push_str("]}");
    // One line of JSON for BENCH_*.json trajectory tracking.
    println!("{summary}");
    Ok(())
}

/// The advisor's four per-kind latency histograms from the global registry, merged
/// into one snapshot (empty for any not yet registered).
fn advisor_latency_snapshot() -> tcp_obs::HistogramSnapshot {
    let mut merged = tcp_obs::HistogramSnapshot::empty();
    for kind in [
        "should_reuse",
        "checkpoint_plan",
        "expected_cost_makespan",
        "best_policy",
    ] {
        let name = format!("advisor.latency.{kind}");
        if let Some(snapshot) = tcp_obs::Registry::global().histogram_snapshot(&name) {
            merged.merge(&snapshot);
        }
    }
    merged
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn cmd_bench(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    let advisor = load_advisor(&args.pack)?;
    let requests = generate_requests(advisor.pooled().pack(), args.requests, args.seed);

    // Throughput: one big batch over the worker pool.
    let started = Instant::now();
    let responses = advisor.advise_batch(&requests, args.threads);
    let elapsed = started.elapsed().as_secs_f64();
    let failures = responses.iter().filter(|r| r.is_err()).count();

    // Latency: per-query timing on one thread (no batching overhead in the numbers).
    let sample = &requests[..requests.len().min(20_000)];
    let mut latencies = Vec::with_capacity(sample.len());
    for request in sample {
        let t0 = Instant::now();
        let _ = advisor.advise(request);
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    println!(
        "batch: {} queries in {elapsed:.3}s -> {:.0} queries/sec ({failures} failures)",
        requests.len(),
        requests.len() as f64 / elapsed.max(1e-9),
    );
    println!(
        "latency (single-thread, {} samples): p50 {:.2}us  p90 {:.2}us  p99 {:.2}us  max {:.2}us",
        latencies.len(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        percentile(&latencies, 1.0),
    );
    Ok(())
}

fn cmd_top(argv: &[String]) -> Result<(), String> {
    let mut options = TopOptions::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => options.addr = next_value(&mut it, arg)?.clone(),
            "--interval" => options.interval_secs = parse(next_value(&mut it, arg)?, arg)?,
            "--once" => options.once = true,
            "--frames" => options.max_frames = Some(parse(next_value(&mut it, arg)?, arg)?),
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    if options.addr.is_empty() {
        return Err("--addr is required".to_string());
    }
    if options.interval_secs <= 0.0 || options.interval_secs.is_nan() {
        return Err("--interval must be positive".to_string());
    }
    run_top(&options)
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match argv.first().map(String::as_str) {
        Some("build") => cmd_build(&argv[1..]),
        Some("gen") => cmd_gen(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("listen") => cmd_listen(&argv[1..]),
        Some("connect") => cmd_connect(&argv[1..]),
        Some("top") => cmd_top(&argv[1..]),
        Some("serve-bench") => cmd_serve_bench(&argv[1..]),
        Some("bench") => cmd_bench(&argv[1..]),
        Some("--help" | "-h") | None => return tcp_obs::cli::usage_error(USAGE),
        Some(other) => {
            return tcp_obs::cli::usage_error(format_args!("unknown command `{other}`\n\n{USAGE}"))
        }
    };
    tcp_obs::cli::exit_outcome(outcome)
}
