//! Loopback throughput benchmark: concurrent client threads against a fresh server.
//!
//! The point of the worker pool is that throughput scales with workers while a
//! connection's responses stay byte-identical to batch mode.  [`loopback_bench`]
//! measures exactly that: it starts a server with a given worker count on a loopback
//! port, fans the corpus over `clients` concurrent client threads (contiguous chunks,
//! so every line is served exactly once), and reports wall-clock queries/second over
//! the full connect-to-drain window.  `advise serve-bench` runs it across a list of
//! worker counts to demonstrate the scaling.

use crate::client::run_client;
use crate::server::{ServeOptions, Server};
use std::time::Instant;
use tcp_advisor::MultiAdvisor;

/// One loopback measurement.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoopbackBenchReport {
    /// Worker-pool size the server ran with.
    pub workers: usize,
    /// Concurrent client connections.
    pub clients: usize,
    /// Request lines served (equals the corpus size).
    pub requests: usize,
    /// Wall-clock seconds from first connect to last drained response.
    pub seconds: f64,
    /// Requests per second over that window.
    pub qps: f64,
}

/// Runs one loopback measurement: server with `workers` workers, corpus split across
/// `clients` concurrent connections.  Returns an error if any response line is
/// missing — overloads would show up as (typed) lines too, so the measurement is
/// configured with an effectively unbounded in-flight budget.
pub fn loopback_bench(
    pack_json: &str,
    corpus: &str,
    workers: usize,
    clients: usize,
) -> Result<LoopbackBenchReport, String> {
    if clients == 0 {
        return Err("clients must be at least 1".to_string());
    }
    let advisor = MultiAdvisor::from_json(pack_json).map_err(|e| e.to_string())?;
    let options = ServeOptions {
        workers,
        // The benchmark measures the serving path, not the shedding path.
        max_inflight: usize::MAX / 2,
        ..ServeOptions::default()
    };
    let server = Server::start(advisor, options)?;
    let addr = server.local_addr().to_string();

    let lines: Vec<&str> = corpus.lines().filter(|l| !l.trim().is_empty()).collect();
    let chunk_len = lines.len().div_ceil(clients);
    let chunks: Vec<String> = lines
        .chunks(chunk_len.max(1))
        .map(|chunk| {
            let mut doc = chunk.join("\n");
            doc.push('\n');
            doc
        })
        .collect();

    let started = Instant::now();
    let outputs = std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .iter()
            .map(|chunk| {
                let addr = addr.clone();
                scope.spawn(move || run_client(&addr, chunk))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("bench client thread panicked"))
            .collect::<std::io::Result<Vec<String>>>()
    })
    .map_err(|e| format!("bench client failed: {e}"))?;
    let seconds = started.elapsed().as_secs_f64();

    server.shutdown();
    let report = server.join();
    let answered: usize = outputs.iter().map(|out| out.lines().count()).sum();
    if answered != lines.len() {
        return Err(format!(
            // lint:allow(json-stability) human-readable error message, not wire JSON
            "response lines ({answered}) do not match request lines ({}); server report: {report:?}",
            lines.len()
        ));
    }
    Ok(LoopbackBenchReport {
        workers,
        clients: chunks.len(),
        requests: lines.len(),
        seconds,
        qps: tcp_obs::rate_per_sec(lines.len() as u64, seconds),
    })
}
