//! `advise top` — a live terminal dashboard over a running `advise listen` server.
//!
//! Connects to the server like any other client and polls `!metrics prom` +
//! `!health` + `!profile` over one short connection per refresh, so the dashboard
//! exercises the exact surfaces an operator's tooling would.  From two consecutive
//! polls it derives **windowed** figures — qps, shed %, p50/p99 advisor latency
//! over the refresh interval — rather than process-lifetime aggregates, then
//! repaints the terminal with plain ANSI escapes (no TTY crates).
//!
//! Latency quantiles are rebuilt client-side from the Prometheus exposition: each
//! `advisor_latency_*` family's cumulative `_bucket{le="..."}` series is
//! de-cumulated, merged across the four request-kind families, and differenced
//! between polls; a nearest-rank walk over the merged delta buckets yields the
//! interval's quantiles (reported at the bucket's `le` upper bound, so the figure
//! is conservative).
//!
//! `--once` mode takes exactly two samples one interval apart and emits a single
//! sorted-key JSON line ([`snapshot_json`]) for scripts and CI instead of drawing.

use crate::client::run_client;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Options for [`run_top`].
#[derive(Debug, Clone)]
pub struct TopOptions {
    /// Server address (`HOST:PORT`).
    pub addr: String,
    /// Seconds between polls (also the quantile/rate window).
    pub interval_secs: f64,
    /// Take two samples, print one JSON snapshot line, exit.
    pub once: bool,
    /// Stop after this many repaints (`None` = until the server goes away).
    /// Mostly for tests; `--once` ignores it.
    pub max_frames: Option<u64>,
}

impl Default for TopOptions {
    fn default() -> Self {
        TopOptions {
            addr: String::new(),
            interval_secs: 2.0,
            once: false,
            max_frames: None,
        }
    }
}

/// One rule's state as reported by `!health`.
#[derive(Debug, Clone, PartialEq)]
pub struct RuleRow {
    /// Rule name.
    pub name: String,
    /// `warn` or `critical`.
    pub severity: String,
    /// Whether the rule is firing.
    pub firing: bool,
    /// Latest short-window signal value.
    pub short_value: f64,
    /// Latest long-window signal value.
    pub long_value: f64,
    /// The rule's firing threshold.
    pub threshold: f64,
}

/// One polled sample: the scalar metrics, merged latency buckets, and health
/// state the dashboard windows between two of these.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct TopSample {
    /// `serve_requests_served` counter total.
    pub served: u64,
    /// `serve_requests_shed` counter total.
    pub shed: u64,
    /// `serve_queue_depth` gauge.
    pub queue_depth: f64,
    /// `serve_inflight` gauge.
    pub inflight: f64,
    /// Non-cumulative bucket counts (`le` upper bound → samples), merged across
    /// the four `advisor_latency_*` families.
    pub latency_buckets: BTreeMap<u64, u64>,
    /// `!health` verdict (`healthy` / `degraded` / `unhealthy`).
    pub verdict: String,
    /// Per-rule states from `!health`.
    pub rules: Vec<RuleRow>,
    /// Served pack name.
    pub pack_name: String,
    /// Seconds since the pack was swapped in.
    pub pack_age_secs: f64,
    /// Served pack format version.
    pub pack_format_version: u64,
    /// Seconds since the server's observability epoch.
    pub uptime_secs: f64,
    /// Recent warn/error event records, rendered one-line each (site + level).
    pub recent_errors: Vec<String>,
    /// Total wall-clock profiler samples from `!profile` (0 when the server's
    /// profiler is disarmed or the control line isn't answered).
    pub wall_samples: u64,
    /// Hot sites ranked by self samples, from the profiler's collapsed stacks.
    pub hot_sites: Vec<tcp_obs::profile::HotSite>,
}

impl TopSample {
    /// Rules currently firing.
    pub fn alerts_firing(&self) -> usize {
        self.rules.iter().filter(|r| r.firing).count()
    }
}

/// Extracts scalars and merged non-cumulative latency buckets from a Prometheus
/// text exposition.
///
/// Scalar samples (`name value`) land in the returned map as-is.  For every
/// `advisor_latency_*` histogram family, the cumulative `_bucket{le="..."}`
/// series is de-cumulated (families are contiguous in the exposition and their
/// buckets ascend, so a running per-family subtraction recovers per-bucket
/// counts) and merged into one `le → count` map across families.
pub fn parse_prometheus(text: &str) -> (BTreeMap<String, f64>, BTreeMap<u64, u64>) {
    let mut scalars = BTreeMap::new();
    let mut buckets: BTreeMap<u64, u64> = BTreeMap::new();
    let mut family = "";
    let mut last_cumulative = 0u64;
    for line in text.lines() {
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some((name_and_label, value)) = line.rsplit_once(' ') {
            if let Some((name, label)) = name_and_label.split_once("_bucket{le=\"") {
                if name != family {
                    family = name;
                    last_cumulative = 0;
                }
                if !name.starts_with("advisor_latency_") {
                    continue;
                }
                let le = label.trim_end_matches("\"}");
                let (Ok(cumulative), Ok(le)) = (value.parse::<u64>(), le.parse::<u64>()) else {
                    continue; // the +Inf bucket; the last finite bucket covered it
                };
                *buckets.entry(le).or_insert(0) += cumulative.saturating_sub(last_cumulative);
                last_cumulative = cumulative;
            } else if let Ok(v) = value.parse::<f64>() {
                scalars.insert(name_and_label.to_string(), v);
            }
        }
    }
    (scalars, buckets)
}

/// Per-bucket difference `current - earlier` (saturating; keys union'd).
pub fn bucket_delta(
    current: &BTreeMap<u64, u64>,
    earlier: &BTreeMap<u64, u64>,
) -> BTreeMap<u64, u64> {
    let mut delta = BTreeMap::new();
    for (&le, &count) in current {
        let before = earlier.get(&le).copied().unwrap_or(0);
        let d = count.saturating_sub(before);
        if d > 0 {
            delta.insert(le, d);
        }
    }
    delta
}

/// Nearest-rank quantile over non-cumulative `le → count` buckets, reported at
/// the holding bucket's `le` upper bound (0 when empty).
pub fn quantile_from_buckets(buckets: &BTreeMap<u64, u64>, q: f64) -> f64 {
    let total: u64 = buckets.values().sum();
    if total == 0 {
        return 0.0;
    }
    let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).clamp(1, total);
    let mut cumulative = 0u64;
    for (&le, &count) in buckets {
        cumulative += count;
        if cumulative >= target {
            return le as f64;
        }
    }
    0.0
}

/// Parses one `!metrics prom` response line and one `!health` response line into
/// a [`TopSample`].
pub fn parse_sample(metrics_line: &str, health_line: &str) -> Result<TopSample, String> {
    let metrics = serde_json::parse_value(metrics_line.trim())
        .map_err(|e| format!("bad !metrics prom line: {e}"))?;
    let text = metrics
        .get("text")
        .and_then(|v| v.as_str())
        .ok_or("!metrics prom reply has no `text`")?;
    let (scalars, latency_buckets) = parse_prometheus(text);
    let scalar = |name: &str| scalars.get(name).copied().unwrap_or(0.0);

    let health_value = serde_json::parse_value(health_line.trim())
        .map_err(|e| format!("bad !health line: {e}"))?;
    let health = health_value
        .get("health")
        .ok_or("!health reply has no `health`")?;
    let str_of = |v: Option<&serde::Value>| v.and_then(|v| v.as_str()).unwrap_or("").to_string();
    let f64_of = |v: Option<&serde::Value>| v.and_then(|v| v.as_f64()).unwrap_or(0.0);
    let pack = health.get("pack");
    let rules = health
        .get("rules")
        .and_then(|v| v.as_seq())
        .unwrap_or(&[])
        .iter()
        .map(|rule| RuleRow {
            name: str_of(rule.get("name")),
            severity: str_of(rule.get("severity")),
            firing: rule
                .get("firing")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
            short_value: f64_of(rule.get("short_value")),
            long_value: f64_of(rule.get("long_value")),
            threshold: f64_of(rule.get("threshold")),
        })
        .collect();
    let recent_errors = health
        .get("recent_errors")
        .and_then(|v| v.as_seq())
        .unwrap_or(&[])
        .iter()
        .map(|event| {
            format!(
                "[{}] {} args={}",
                str_of(event.get("level")),
                str_of(event.get("site")),
                event
                    .get("args")
                    .and_then(|v| v.as_map())
                    .map(|m| m.len())
                    .unwrap_or(0),
            )
        })
        .collect();

    Ok(TopSample {
        served: scalar("serve_requests_served") as u64,
        shed: scalar("serve_requests_shed") as u64,
        queue_depth: scalar("serve_queue_depth"),
        inflight: scalar("serve_inflight"),
        latency_buckets,
        verdict: str_of(health.get("verdict")),
        rules,
        pack_name: str_of(pack.and_then(|p| p.get("name"))),
        pack_age_secs: f64_of(pack.and_then(|p| p.get("age_secs"))),
        pack_format_version: f64_of(pack.and_then(|p| p.get("format_version"))) as u64,
        uptime_secs: f64_of(health.get("uptime_secs")),
        recent_errors,
        wall_samples: 0,
        hot_sites: Vec::new(),
    })
}

/// Parses one `!profile` response line into the wall-sample total and the
/// hot-sites ranking.
///
/// The `wall.stacks` map's keys are `;`-joined collapsed paths; splitting them
/// back recovers the stacks, and [`tcp_obs::profile::hot_sites`] ranks them the
/// same way the server-side exporters do.  Errors (an older server answering
/// the control line with an error record, say) are the caller's to swallow —
/// the panel is additive, not load-bearing.
pub fn parse_profile(profile_line: &str) -> Result<(u64, Vec<tcp_obs::profile::HotSite>), String> {
    let value = serde_json::parse_value(profile_line.trim())
        .map_err(|e| format!("bad !profile line: {e}"))?;
    let wall = value
        .get("profile")
        .and_then(|p| p.get("wall"))
        .ok_or("!profile reply has no `profile.wall`")?;
    let samples = wall.get("samples").and_then(|v| v.as_u64()).unwrap_or(0);
    let stacks: Vec<(Vec<String>, u64)> = wall
        .get("stacks")
        .and_then(|v| v.as_map())
        .unwrap_or(&[])
        .iter()
        .filter_map(|(path, count)| {
            count.as_u64().map(|count| {
                (
                    path.split(';').map(str::to_string).collect::<Vec<_>>(),
                    count,
                )
            })
        })
        .collect();
    Ok((samples, tcp_obs::profile::hot_sites(&stacks)))
}

/// The windowed figures between two samples taken `elapsed_secs` apart.
#[derive(Debug, Clone, PartialEq)]
pub struct Window {
    /// Requests served per second over the window.
    pub qps: f64,
    /// Percentage of requests shed over the window.
    pub shed_pct: f64,
    /// Windowed advisor-latency p50, microseconds.
    pub p50_us: f64,
    /// Windowed advisor-latency p99, microseconds.
    pub p99_us: f64,
}

/// Derives the windowed qps/shed%/latency figures between two samples.
pub fn window_between(prev: &TopSample, curr: &TopSample, elapsed_secs: f64) -> Window {
    let served = curr.served.saturating_sub(prev.served);
    let shed = curr.shed.saturating_sub(prev.shed);
    let answered = served + shed;
    let delta = bucket_delta(&curr.latency_buckets, &prev.latency_buckets);
    Window {
        qps: tcp_obs::rate_per_sec(served, elapsed_secs),
        shed_pct: if answered == 0 {
            0.0
        } else {
            100.0 * shed as f64 / answered as f64
        },
        p50_us: quantile_from_buckets(&delta, 0.50) / 1e3,
        p99_us: quantile_from_buckets(&delta, 0.99) / 1e3,
    }
}

/// The `--once` machine-readable snapshot: one line of sorted-key JSON with the
/// windowed figures and the current verdict.
pub fn snapshot_json(curr: &TopSample, window: &Window) -> String {
    format!(
        "{{\"alerts_firing\":{},\"p50_us\":{:.3},\"p99_us\":{:.3},\"pack\":{},\
         \"profile_samples\":{},\"qps\":{:.1},\"shed_pct\":{:.2},\"verdict\":\"{}\"}}",
        curr.alerts_firing(),
        window.p50_us,
        window.p99_us,
        serde_json::to_string(&curr.pack_name).expect("strings serialize"),
        curr.wall_samples,
        window.qps,
        window.shed_pct,
        curr.verdict,
    )
}

const RESET: &str = "\x1b[0m";
const BOLD: &str = "\x1b[1m";
const DIM: &str = "\x1b[2m";
const GREEN: &str = "\x1b[32m";
const YELLOW: &str = "\x1b[33m";
const RED: &str = "\x1b[31m";

fn verdict_color(verdict: &str) -> &'static str {
    match verdict {
        "healthy" => GREEN,
        "degraded" => YELLOW,
        _ => RED,
    }
}

/// Renders one full dashboard frame (ANSI clear + repaint) as a string.
pub fn render_frame(addr: &str, curr: &TopSample, window: &Window) -> String {
    let mut out = String::with_capacity(1024);
    out.push_str("\x1b[2J\x1b[H"); // clear screen, home cursor
    let _ = writeln!(
        out,
        "{BOLD}advise top{RESET} — {addr}   pack {BOLD}{}{RESET} v{} {DIM}(age {:.0}s, uptime {:.0}s){RESET}",
        curr.pack_name, curr.pack_format_version, curr.pack_age_secs, curr.uptime_secs,
    );
    let color = verdict_color(&curr.verdict);
    let _ = writeln!(
        out,
        "verdict {color}{BOLD}{}{RESET}   alerts firing: {}",
        curr.verdict.to_uppercase(),
        curr.alerts_firing(),
    );
    let _ = writeln!(
        out,
        "window  qps {BOLD}{:.0}{RESET}  p50 {:.1}us  p99 {:.1}us  shed {:.2}%  queue {:.0}  inflight {:.0}",
        window.qps, window.p50_us, window.p99_us, window.shed_pct, curr.queue_depth, curr.inflight,
    );
    if !curr.rules.is_empty() {
        let _ = writeln!(out, "{DIM}rules{RESET}");
        for rule in &curr.rules {
            let (mark, color) = if rule.firing {
                (
                    "!!",
                    if rule.severity == "critical" {
                        RED
                    } else {
                        YELLOW
                    },
                )
            } else {
                ("ok", GREEN)
            };
            let _ = writeln!(
                out,
                "  {color}[{mark}]{RESET} {:<24} short {:>12.4}  long {:>12.4}  thr {:.4} ({})",
                rule.name, rule.short_value, rule.long_value, rule.threshold, rule.severity,
            );
        }
    }
    if !curr.hot_sites.is_empty() && curr.wall_samples > 0 {
        let _ = writeln!(
            out,
            "{DIM}hot sites{RESET} ({} wall samples)",
            curr.wall_samples
        );
        for site in curr.hot_sites.iter().take(5) {
            let pct = |n: u64| 100.0 * n as f64 / curr.wall_samples as f64;
            let _ = writeln!(
                out,
                "  {:<28} self {:>5.1}%  total {:>5.1}%",
                site.name,
                pct(site.self_samples),
                pct(site.total_samples),
            );
        }
    }
    if !curr.recent_errors.is_empty() {
        let _ = writeln!(out, "{DIM}recent warn/error events{RESET}");
        for line in curr.recent_errors.iter().rev().take(5) {
            let _ = writeln!(out, "  {line}");
        }
    }
    out
}

/// Polls the server once: sends `!metrics prom` + `!health` + `!profile` over
/// one connection and parses the response lines.
///
/// The `!profile` reply is best-effort: a server that predates the control line
/// answers with an error record, and the dashboard simply draws no hot-sites
/// panel rather than failing the poll.
fn poll(addr: &str) -> Result<TopSample, String> {
    let reply = run_client(addr, "!metrics prom\n!health\n!profile\n")
        .map_err(|e| format!("cannot poll {addr}: {e}"))?;
    let mut lines = reply.lines();
    let metrics = lines.next().ok_or("server sent no !metrics reply")?;
    let health = lines.next().ok_or("server sent no !health reply")?;
    let mut sample = parse_sample(metrics, health)?;
    if let Some(Ok((samples, hot))) = lines.next().map(parse_profile) {
        sample.wall_samples = samples;
        sample.hot_sites = hot;
    }
    Ok(sample)
}

/// Runs the dashboard: polls every `interval_secs`, repainting the terminal —
/// or, with `once`, emits a single [`snapshot_json`] line after one interval.
///
/// The live loop ends when `max_frames` is reached (Ok) or the server stops
/// answering (Err; a drained server is how `advise top` normally exits).
pub fn run_top(options: &TopOptions) -> Result<(), String> {
    let interval = Duration::from_secs_f64(options.interval_secs.max(0.05));
    let mut prev = poll(&options.addr)?;
    let mut prev_at = Instant::now();
    if options.once {
        std::thread::sleep(interval);
        let curr = poll(&options.addr)?;
        let window = window_between(&prev, &curr, prev_at.elapsed().as_secs_f64());
        println!("{}", snapshot_json(&curr, &window));
        return Ok(());
    }
    let mut frames = 0u64;
    loop {
        std::thread::sleep(interval);
        let curr = poll(&options.addr)?;
        let elapsed = prev_at.elapsed().as_secs_f64();
        prev_at = Instant::now();
        let window = window_between(&prev, &curr, elapsed);
        print!("{}", render_frame(&options.addr, &curr, &window));
        use std::io::Write as _;
        let _ = std::io::stdout().flush();
        prev = curr;
        frames += 1;
        if options.max_frames.is_some_and(|max| frames >= max) {
            return Ok(());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PROM: &str = "\
# TYPE serve_requests_served counter
serve_requests_served 1000
# TYPE serve_requests_shed counter
serve_requests_shed 50
# TYPE serve_queue_depth gauge
serve_queue_depth 3
# TYPE serve_inflight gauge
serve_inflight 2
# TYPE advisor_latency_best_policy histogram
advisor_latency_best_policy_bucket{le=\"1000\"} 10
advisor_latency_best_policy_bucket{le=\"2000\"} 30
advisor_latency_best_policy_bucket{le=\"+Inf\"} 30
advisor_latency_best_policy_sum 45000
advisor_latency_best_policy_count 30
# TYPE advisor_latency_should_reuse histogram
advisor_latency_should_reuse_bucket{le=\"2000\"} 5
advisor_latency_should_reuse_bucket{le=\"+Inf\"} 5
advisor_latency_should_reuse_sum 9000
advisor_latency_should_reuse_count 5
";

    #[test]
    fn parses_scalars_and_decumulates_merged_buckets() {
        let (scalars, buckets) = parse_prometheus(PROM);
        assert_eq!(scalars.get("serve_requests_served"), Some(&1000.0));
        assert_eq!(scalars.get("serve_requests_shed"), Some(&50.0));
        assert_eq!(scalars.get("serve_queue_depth"), Some(&3.0));
        // best_policy: 10 at le=1000, 20 at le=2000 (de-cumulated); should_reuse
        // adds 5 more at le=2000.  The `+Inf` lines don't add phantom buckets.
        assert_eq!(buckets.get(&1000), Some(&10));
        assert_eq!(buckets.get(&2000), Some(&25));
        assert_eq!(buckets.len(), 2);
        // _sum/_count scalars still parse as scalars.
        assert_eq!(
            scalars.get("advisor_latency_best_policy_count"),
            Some(&30.0)
        );
    }

    #[test]
    fn quantile_walk_reports_bucket_upper_bounds() {
        let buckets: BTreeMap<u64, u64> = [(1000, 10), (2000, 25)].into_iter().collect();
        assert_eq!(quantile_from_buckets(&buckets, 0.01), 1000.0);
        // rank ceil(0.5*35)=18 > 10 → second bucket.
        assert_eq!(quantile_from_buckets(&buckets, 0.50), 2000.0);
        assert_eq!(quantile_from_buckets(&buckets, 1.0), 2000.0);
        assert_eq!(quantile_from_buckets(&BTreeMap::new(), 0.5), 0.0);
    }

    fn sample(served: u64, shed: u64, buckets: &[(u64, u64)]) -> TopSample {
        TopSample {
            served,
            shed,
            latency_buckets: buckets.iter().copied().collect(),
            verdict: "healthy".to_string(),
            pack_name: "tiny-pack".to_string(),
            ..TopSample::default()
        }
    }

    #[test]
    fn windows_are_deltas_not_lifetime_aggregates() {
        let prev = sample(1000, 0, &[(1000, 1000)]);
        let curr = sample(1500, 500, &[(1000, 1000), (8000, 100)]);
        let window = window_between(&prev, &curr, 10.0);
        assert_eq!(window.qps, 50.0);
        assert_eq!(window.shed_pct, 50.0);
        // All interval samples sit in the 8000ns bucket: the old 1000ns mass
        // cancels out of the delta entirely.
        assert_eq!(window.p50_us, 8.0);
        assert_eq!(window.p99_us, 8.0);
    }

    #[test]
    fn snapshot_json_is_one_sorted_stable_line() {
        let curr = sample(10, 0, &[]);
        let window = Window {
            qps: 123.456,
            shed_pct: 1.2345,
            p50_us: 10.5,
            p99_us: 99.125,
        };
        let line = snapshot_json(&curr, &window);
        assert_eq!(
            line,
            "{\"alerts_firing\":0,\"p50_us\":10.500,\"p99_us\":99.125,\
             \"pack\":\"tiny-pack\",\"profile_samples\":0,\"qps\":123.5,\
             \"shed_pct\":1.23,\"verdict\":\"healthy\"}"
        );
        let value = serde_json::parse_value(&line).unwrap();
        let keys: Vec<&str> = value
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn parse_sample_reads_metrics_and_health_lines() {
        let metrics_line = format!(
            "{{\"control\":\"metrics\",\"encoding\":\"prometheus-0.0.4\",\"text\":{}}}",
            serde_json::to_string(&PROM.to_string()).unwrap()
        );
        let health_line = "{\"control\":\"health\",\"health\":{\"pack\":{\"age_secs\":12.5,\
             \"cells\":2,\"format_version\":3,\"name\":\"prod-pack\"},\"recent_errors\":[],\
             \"rules\":[{\"firing\":true,\"long_value\":0.2,\"name\":\"shed-ratio\",\
             \"severity\":\"critical\",\"short_value\":0.5,\"threshold\":0.05}],\
             \"uptime_secs\":100,\"verdict\":\"unhealthy\"}}";
        let sample = parse_sample(&metrics_line, health_line).unwrap();
        assert_eq!(sample.served, 1000);
        assert_eq!(sample.shed, 50);
        assert_eq!(sample.verdict, "unhealthy");
        assert_eq!(sample.pack_name, "prod-pack");
        assert_eq!(sample.pack_format_version, 3);
        assert_eq!(sample.pack_age_secs, 12.5);
        assert_eq!(sample.alerts_firing(), 1);
        assert_eq!(sample.rules[0].name, "shed-ratio");
        assert_eq!(sample.rules[0].threshold, 0.05);
        // A frame renders without panicking and carries the verdict color.
        let frame = render_frame(
            "127.0.0.1:1",
            &sample,
            &window_between(&sample, &sample, 1.0),
        );
        assert!(frame.contains("UNHEALTHY"));
        assert!(frame.contains("shed-ratio"));
    }

    #[test]
    fn parse_profile_ranks_hot_sites_from_collapsed_stacks() {
        let line = "{\"control\":\"profile\",\"profile\":{\"alloc\":{\"allocs\":1,\
             \"bytes\":64,\"frees\":0,\"freed_bytes\":0,\"live_bytes\":64,\
             \"peak_bytes\":64,\"sites\":{}},\"wall\":{\"armed\":true,\"hz\":997,\
             \"samples\":10,\"stacks\":{\"serve.request\":2,\
             \"serve.request;advisor.lookup\":7,\"serve.request;advisor.route\":1},\
             \"ticks\":10,\"torn\":0}}}";
        let (samples, hot) = parse_profile(line).unwrap();
        assert_eq!(samples, 10);
        // advisor.lookup leads on self samples; serve.request spans every stack
        // so its total is 10 even though only 2 samples end there.
        assert_eq!(hot[0].name, "advisor.lookup");
        assert_eq!(hot[0].self_samples, 7);
        let serve = hot.iter().find(|s| s.name == "serve.request").unwrap();
        assert_eq!(serve.self_samples, 2);
        assert_eq!(serve.total_samples, 10);

        // The hot-sites panel renders with self/total percentages.
        let mut sample = sample(10, 0, &[]);
        sample.wall_samples = samples;
        sample.hot_sites = hot;
        let frame = render_frame(
            "127.0.0.1:1",
            &sample,
            &window_between(&sample, &sample, 1.0),
        );
        assert!(frame.contains("hot sites"));
        assert!(frame.contains("advisor.lookup"));
        assert!(frame.contains("70.0%"));

        // An error reply (older server) is an Err, not a panic — the poll loop
        // swallows it and draws no panel.
        assert!(parse_profile("{\"error\":\"unknown control\"}").is_err());
    }
}
