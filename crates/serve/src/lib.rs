//! `tcp-serve` — the advisor's concurrent network front end.
//!
//! PR 2 made the paper's model tables queryable and PR 3 calibrated them from traces,
//! but the `advise` binary still read NDJSON from files: no real client could reach the
//! advisor.  This crate puts the query engine behind a socket, keeping the protocol and
//! the bytes identical to batch mode:
//!
//! * [`server`] — a long-lived `std::net::TcpListener` accept loop dispatching
//!   connections to a fixed worker pool.  Each connection speaks the NDJSON advisory
//!   protocol through the same [`tcp_advisor::Session`] engine as `advise serve`, so a
//!   request stream produces byte-identical responses over the wire and from a file.
//!   Malformed lines get typed error responses (never a dropped connection), a bounded
//!   in-flight request budget sheds load with typed 503-style [`OverloadLine`]s (never
//!   a silent drop), `!reload` hot-swaps packs without a restart, `!stats` answers
//!   health probes, and `!shutdown` drains in-flight requests before exit;
//! * [`client`] — a minimal loopback client (one connection, concurrent writer/reader)
//!   used by the `advise connect` CLI, the tests and CI smoke;
//! * [`mod@bench`] — a loopback throughput benchmark fanning concurrent client threads at
//!   a freshly started server, used by `advise serve-bench` to demonstrate scaling
//!   across worker counts.
//!
//! The `advise` binary lives here (it needs both the advisor and the server): the
//! offline commands (`build` / `gen` / `serve` / `bench`) are unchanged, and `listen` /
//! `connect` / `serve-bench` add the network path.
//!
//! ```text
//! pack.json ──advise listen──▶ 127.0.0.1:PORT ◀──advise connect── requests.ndjson
//!                 │ workers × connections, shared Arc'd pack,
//!                 │ bounded in-flight budget, !reload/!stats/!shutdown
//! ```

#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bench;
pub mod client;
pub mod server;

pub use bench::{loopback_bench, LoopbackBenchReport};
pub use client::run_client;
pub use server::{OverloadLine, ServeOptions, Server, ServerReport, ShutdownLine};
