//! `tcp-serve` — the advisor's concurrent network front end.
//!
//! PR 2 made the paper's model tables queryable and PR 3 calibrated them from traces,
//! but the `advise` binary still read NDJSON from files: no real client could reach the
//! advisor.  This crate puts the query engine behind a socket, keeping the protocol and
//! the bytes identical to batch mode:
//!
//! * [`server`] — a long-lived `std::net::TcpListener` accept loop dispatching
//!   connections to a fixed worker pool.  Each connection speaks the NDJSON advisory
//!   protocol through the same [`tcp_advisor::Session`] engine as `advise serve`, so a
//!   request stream produces byte-identical responses over the wire and from a file.
//!   Malformed lines get typed error responses (never a dropped connection), a bounded
//!   in-flight request budget sheds load with typed 503-style [`OverloadLine`]s (never
//!   a silent drop), `!reload` hot-swaps packs without a restart, `!stats` / `!metrics`
//!   answer health probes, and `!shutdown` drains in-flight requests before exit;
//! * [`client`] — a minimal loopback client (one connection, concurrent writer/reader)
//!   used by the `advise connect` CLI, the tests and CI smoke;
//! * [`mod@bench`] — a loopback throughput benchmark fanning concurrent client threads at
//!   a freshly started server, used by `advise serve-bench` to demonstrate scaling
//!   across worker counts and report registry-backed latency percentiles.
//!
//! The `advise` binary lives here (it needs both the advisor and the server): the
//! offline commands (`build` / `gen` / `serve` / `bench`) are unchanged, and `listen` /
//! `connect` / `serve-bench` add the network path.  `advise listen --metrics-file
//! <path> [--metrics-interval <s>]` additionally writes the process-global
//! [`tcp_obs::Registry`] as a Prometheus text exposition on a timer (atomic
//! write-then-rename; one final write after the drain), and `--trace-file <path>
//! [--trace-sample 1/N] [--trace-slow-us T]` arms the [`tcp_obs::trace`] flight
//! recorder and dumps it as Chrome trace-event JSON at shutdown (same atomic
//! discipline; load the file in `chrome://tracing` or Perfetto).
//! `--slo <file> [--alert-log <path>]` arms the [`tcp_obs::health`] rolling-window
//! SLO evaluator: declarative burn-rate rules are checked against registry
//! snapshots on a tick, `!health` reports the verdict and per-rule states, and
//! alert transitions append to the alert log as JSON lines.  [`mod@top`] (`advise
//! top`) is the matching live terminal dashboard: it polls `!metrics prom` +
//! `!health` and renders windowed qps/p50/p99/shed%/alerts (`--once` emits one
//! machine-readable JSON snapshot instead).
//!
//! ```text
//! pack.json ──advise listen──▶ 127.0.0.1:PORT ◀──advise connect── requests.ndjson
//!                 │ workers × connections, shared Arc'd pack,
//!                 │ bounded in-flight budget, !reload/!stats/!metrics/!trace/!shutdown
//!                 ├──[--metrics-file]──▶ metrics.prom (Prometheus text exposition)
//!                 └──[--trace-file]───▶ trace.json (Chrome trace events, at drain)
//! ```
//!
//! # Control-line schemas
//!
//! `!stats` answers with one JSON object per probe ([`tcp_advisor::StatsLine`]); keys
//! are deterministically sorted at every level (struct fields are declared
//! alphabetically, nested maps are `BTreeMap`s):
//!
//! ```json
//! {"cells": 0,
//!  "control": "stats",
//!  "current":  {"best_policy": 2, "checkpoint_plan": 0, "expected_cost_makespan": 0, "should_reuse": 0},
//!  "dp_families": {"bathtub": 2},
//!  "pack": "tiny-pack",
//!  "served":   {"best_policy": 2, "checkpoint_plan": 0, "expected_cost_makespan": 0, "should_reuse": 0},
//!  "served_families": {"bathtub": 2}}
//! ```
//!
//! * `cells` — routable cell packs currently loaded (`0` for a single pack);
//! * `current` — query counters of the pack currently being served (server-wide since
//!   the last `!reload`);
//! * `served` — counters summed over every pack this *session* (connection) has
//!   served from, surviving reloads;
//! * `served_families` / `dp_families` — queries per model family of the answering
//!   regime's served curves / DP tables (non-zero entries only, sorted).
//!
//! `!metrics` answers with `{"control":"metrics","metrics":{...}}` where `metrics` is
//! the process-global registry snapshot: counters as integers, gauges as numbers, and
//! histograms as `{"count","sum","mean","p50","p90","p99","p999","max"}` objects
//! (latency in nanoseconds), again with sorted keys.  Scope is the whole process
//! across reloads and connections — `!stats` is the pack/session view, `!metrics`
//! the fleet view.
//!
//! `!metrics prom` answers with the same registry rendered as Prometheus text
//! exposition format 0.0.4, wrapped in one JSON line so the one-response-per-line
//! protocol holds (the multi-line exposition is JSON-escaped under `text`):
//!
//! ```json
//! {"control":"metrics","encoding":"prometheus-0.0.4","text":"# TYPE ... counter\n..."}
//! ```
//!
//! Unescape `text` to recover exactly the bytes a `--metrics-file` scrape would
//! read: `# TYPE` headers, counter/gauge samples, and cumulative histogram
//! `_bucket{le=...}` / `_sum` / `_count` series per family.
//!
//! `!trace` answers with `{"control":"trace","spans":[...]}` — the flight recorder's
//! currently retained spans (most recent per thread lane, bounded), each span a
//! sorted-key object `{"arg","dur_ns","lane","parent","site","slow","span",
//! "start_ns","trace"}`.  Arm the recorder with `--trace-sample` / `--trace-slow-us`
//! (or `--trace-file`, which implies sampling everything); unarmed servers answer
//! with an empty `spans` array.
//!
//! `!health` answers with `{"control":"health","health":{...}}` — the health
//! object carries (sorted keys) `pack` (`{"age_secs","cells","format_version",
//! "name"}`), `recent_errors` (the event log's bounded warn/error ring, each
//! record a sorted-key object), `rules` (per-SLO-rule
//! `{"firing","long_value","name","severity","short_value","threshold"}`),
//! `uptime_secs`, and `verdict` (`"healthy"` / `"degraded"` / `"unhealthy"`).
//! Without `--slo` the verdict is `"healthy"` with an empty rule list, so health
//! probes work against any server.
//!
//! Responses for *request* lines are never affected by metrics, tracing, the SLO
//! evaluator, or event logging: instrumentation is strictly out-of-band, so served
//! bytes stay identical across `--threads`, `--workers`, metrics-enabled/disabled,
//! traced/untraced, and SLO-armed/unarmed runs.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]

pub mod bench;
pub mod client;
pub mod server;
pub mod top;

pub use bench::{loopback_bench, LoopbackBenchReport};
pub use client::run_client;
pub use server::{OverloadLine, ServeOptions, Server, ServerReport, ShutdownLine};
pub use top::{run_top, TopOptions};
