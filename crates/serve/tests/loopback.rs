//! Loopback integration tests: the TCP front end must speak the exact advisory
//! protocol of batch mode — byte-identical responses per connection, typed errors for
//! malformed input, typed overload responses under admission control, consistent
//! snapshots across hot reloads, and a graceful drain on shutdown.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{Shutdown, TcpStream};
use tcp_advisor::{
    generate_requests, requests_to_ndjson, serve_session, AdvisorHandle, MultiAdvisor, PackBuilder,
};
use tcp_scenarios::SweepSpec;
use tcp_serve::{loopback_bench, run_client, ServeOptions, Server};

/// Builds a small single-regime pack as JSON.
fn tiny_pack_json(name: &str, regime: &str, mean_hours: f64) -> String {
    let spec = SweepSpec::from_toml(&format!(
        r#"
[sweep]
name = "{name}"

[[regime]]
name = "{regime}"
kind = "exponential"
mean_hours = {mean_hours}

[workload]
dp_step_minutes = 30.0
"#
    ))
    .unwrap();
    let builder = PackBuilder {
        age_points: 121,
        checkpoint_age_points: 3,
        checkpoint_job_points: 4,
        max_checkpoint_job_hours: 4.0,
        ..Default::default()
    };
    builder.build_from_spec(&spec).unwrap().to_json().unwrap()
}

fn advisor(json: &str) -> MultiAdvisor {
    MultiAdvisor::from_json(json).unwrap()
}

fn start(json: &str, options: ServeOptions) -> Server {
    Server::start(advisor(json), options).unwrap()
}

#[test]
fn concurrent_clients_get_byte_identical_responses() {
    let json = tiny_pack_json("loopback", "exp8", 8.0);
    // A corpus that exercises the full protocol surface: valid requests of every
    // kind, an unknown cell, an unknown regime, and lines that are not JSON at all.
    let mut corpus =
        requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 500, 99));
    corpus.push_str(
        "{\"kind\":\"best-policy\",\"regime\":\"exp8\",\"cell\":\"no/such/cell\",\"id\":9001}\n\
         {\"kind\":\"best-policy\",\"regime\":\"mars-east1\",\"id\":9002}\n\
         not json at all\n\
         {\"kind\":\"should-reuse\",\"regime\":\"exp8\",\"vm_age\":-3.0,\"job_len\":2.0,\"id\":9003}\n\
         {\"kind\":\"best-pol",
    );
    // The last line is truncated mid-JSON and unterminated: its parse-error byte
    // offset must still match batch mode exactly.
    let expected = serve_session(&AdvisorHandle::new(advisor(&json)), &corpus, 1);
    assert_eq!(expected.lines().count(), 505);

    let server = start(&json, ServeOptions::default());
    let addr = server.local_addr().to_string();
    let outputs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let addr = addr.clone();
                let corpus = corpus.clone();
                scope.spawn(move || run_client(&addr, &corpus).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for output in &outputs {
        assert_eq!(output, &expected, "socket bytes must match batch mode");
    }
    server.shutdown();
    let report = server.join();
    assert_eq!(report.connections, 4);
    assert_eq!(report.requests, 4 * 505);
    assert_eq!(report.overload_responses, 0);
}

#[test]
fn exhausted_inflight_budget_sheds_with_typed_overload_lines() {
    let json = tiny_pack_json("overload", "exp8", 8.0);
    let corpus = requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 3000, 7));
    // One in-flight permit: within every multi-line batch only the first request gets
    // a permit (permits are held until the batch's responses are written), so a fast
    // single-connection writer must see typed overload lines — and exactly one output
    // line per input line, never a silent drop.
    let server = start(
        &json,
        ServeOptions {
            workers: 2,
            max_inflight: 1,
            ..ServeOptions::default()
        },
    );
    let addr = server.local_addr().to_string();
    let output = run_client(&addr, &corpus).unwrap();
    assert_eq!(output.lines().count(), 3000, "no response may be dropped");
    let overloads = output
        .lines()
        .filter(|l| l.contains("\"code\":503"))
        .count();
    assert!(
        overloads > 0,
        "budget of 1 must shed under a 3000-line burst"
    );
    for line in output.lines().filter(|l| l.contains("\"code\":503")) {
        let parsed: tcp_serve::OverloadLine = serde_json::from_str(line).unwrap();
        assert_eq!(parsed.code, 503);
        assert!(
            parsed.error.contains("in-flight budget"),
            "{}",
            parsed.error
        );
    }
    // Served lines and overload lines partition the output.
    let served = output
        .lines()
        .filter(|l| !l.contains("\"code\":503"))
        .count();
    assert_eq!(served + overloads, 3000);
    server.shutdown();
    let report = server.join();
    assert_eq!(report.requests as usize, served);
    assert_eq!(report.overload_responses as usize, overloads);
}

#[test]
fn hot_reload_under_load_keeps_per_connection_output_consistent() {
    let json_a = tiny_pack_json("pack-a", "exp8", 8.0);
    let json_b = tiny_pack_json("pack-b", "exp6", 6.0);
    let dir = std::env::temp_dir().join("tcp_serve_reload_test");
    std::fs::create_dir_all(&dir).unwrap();
    let path_b = dir.join("pack-b.json");
    std::fs::write(&path_b, &json_b).unwrap();

    let server = start(&json_a, ServeOptions::default());
    let addr = server.local_addr().to_string();

    // A long-lived connection sends a first half, *reads its responses* (so the
    // server has fully flushed them), then an admin connection hot-swaps the pack,
    // then the same connection sends a second half.
    let query = "{\"kind\":\"best-policy\",\"regime\":\"exp8\"}\n";
    let stream = TcpStream::connect(&addr).unwrap();
    stream.set_nodelay(true).unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    let mut reader = BufReader::new(stream);
    let read_line = |reader: &mut BufReader<TcpStream>| {
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        line
    };
    let first_half: Vec<String> = (0..20)
        .map(|_| {
            writer.write_all(query.as_bytes()).unwrap();
            writer.flush().unwrap();
            read_line(&mut reader)
        })
        .collect();

    // Admin connection: reload to pack-b; the ack must confirm the swap.
    let ack = run_client(&addr, &format!("!reload {}\n", path_b.display())).unwrap();
    assert!(
        ack.contains("\"control\":\"reload\"") && ack.contains("pack-b"),
        "{ack}"
    );

    let second_half: Vec<String> = (0..20)
        .map(|_| {
            writer.write_all(query.as_bytes()).unwrap();
            writer.flush().unwrap();
            read_line(&mut reader)
        })
        .collect();
    writer.get_ref().shutdown(Shutdown::Write).unwrap();

    // Every pre-reload response came from pack A; every post-reload response is pack
    // B's answer for the same line — exp8 no longer exists, a typed unknown-regime
    // error, identical to what batch mode on pack B produces.
    let expected_a = serve_session(&AdvisorHandle::new(advisor(&json_a)), query, 1);
    let expected_b = serve_session(&AdvisorHandle::new(advisor(&json_b)), query, 1);
    for line in &first_half {
        assert_eq!(line, &expected_a);
    }
    for line in &second_half {
        assert_eq!(line, &expected_b);
        assert!(line.contains("unknown regime"), "{line}");
    }

    server.shutdown();
    server.join();
}

#[test]
fn stats_control_line_answers_health_probes() {
    let json = tiny_pack_json("health", "exp8", 8.0);
    let server = start(&json, ServeOptions::default());
    let addr = server.local_addr().to_string();
    let query = "{\"kind\":\"best-policy\",\"regime\":\"exp8\"}\n";
    let out = run_client(&addr, &format!("{query}{query}!stats\n")).unwrap();
    let lines: Vec<&str> = out.lines().collect();
    assert_eq!(lines.len(), 3);
    let stats: tcp_advisor::StatsLine = serde_json::from_str(lines[2]).unwrap();
    assert_eq!(stats.control, "stats");
    assert_eq!(stats.pack, "health");
    assert_eq!(stats.served.best_policy, 2);
    // A fresh admin connection probes the *server-wide* counters through the shared
    // pack.
    let probe = run_client(&addr, "!stats\n").unwrap();
    let probed: tcp_advisor::StatsLine = serde_json::from_str(probe.trim()).unwrap();
    assert_eq!(probed.current.best_policy, 2);
    assert_eq!(probed.served.total(), 0);
    server.shutdown();
    server.join();
}

#[test]
fn shutdown_control_line_drains_and_exits() {
    let json = tiny_pack_json("drain", "exp8", 8.0);
    let corpus = requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 200, 3));
    let server = start(&json, ServeOptions::default());
    let addr = server.local_addr().to_string();
    // The same connection carries requests and then the shutdown: everything before
    // the control line is answered, the ack arrives, and the server drains.
    let out = run_client(&addr, &format!("{corpus}!shutdown\n")).unwrap();
    assert_eq!(out.lines().count(), 201);
    let last = out.lines().last().unwrap();
    let ack: tcp_serve::ShutdownLine = serde_json::from_str(last).unwrap();
    assert_eq!(ack.control, "shutdown");
    let report = server.join();
    assert_eq!(report.requests, 200);
    // The listener is gone: new connections are refused by the OS.
    assert!(TcpStream::connect(&addr).is_err());
}

#[test]
fn shutdown_drains_even_with_an_active_streaming_connection() {
    let json = tiny_pack_json("busy-drain", "exp8", 8.0);
    let server = start(&json, ServeOptions::default());
    let addr = server.local_addr().to_string();
    let query = "{\"kind\":\"best-policy\",\"regime\":\"exp8\"}\n";

    // Connection A is mid-stream: it has sent and been answered, and stays open.
    let stream = TcpStream::connect(&addr).unwrap();
    let mut writer = BufWriter::new(stream.try_clone().unwrap());
    let mut reader = BufReader::new(stream);
    writer.write_all(query.as_bytes()).unwrap();
    writer.flush().unwrap();
    let mut first = String::new();
    reader.read_line(&mut first).unwrap();
    assert!(first.contains("best-policy"), "{first}");

    // Connection B requests the drain; join() must complete even though A never
    // closed — A's worker answers what it has read and then hangs up.
    let ack = run_client(&addr, "!shutdown\n").unwrap();
    assert!(ack.contains("\"control\":\"shutdown\""), "{ack}");
    let (done_tx, done_rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let report = server.join();
        let _ = done_tx.send(report);
    });
    let report = done_rx
        .recv_timeout(std::time::Duration::from_secs(10))
        .expect("join must not hang on an open streaming connection");
    assert!(report.requests >= 1);
    // A sees EOF (or an error) rather than hanging forever.
    let mut rest = String::new();
    use std::io::Read;
    let _ = reader.read_to_string(&mut rest);
}

#[test]
fn loopback_bench_accounts_for_every_request() {
    let json = tiny_pack_json("bench", "exp8", 8.0);
    let corpus = requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 2000, 11));
    for workers in [1usize, 2] {
        let report = loopback_bench(&json, &corpus, workers, 4).unwrap();
        assert_eq!(report.requests, 2000);
        assert_eq!(report.workers, workers);
        assert!(report.qps > 0.0);
    }
}
