//! Loopback health tests: the SLO evaluator and the `!health` probe must observe a
//! real serving workload without perturbing it — served bytes stay identical to
//! batch mode with the health machinery armed, and forced shedding deterministically
//! drives the published verdict Healthy → Degraded → Healthy.
//!
//! Both phases live in ONE test: the published health report and the metrics
//! registry are process-global, so a single test owns them for its whole run
//! (parallel test threads would otherwise race on `!health`'s answer).

use tcp_advisor::{
    generate_requests, requests_to_ndjson, serve_session, AdvisorHandle, MultiAdvisor, PackBuilder,
};
use tcp_obs::health::{Evaluator, SloSpec, Transition};
use tcp_scenarios::SweepSpec;
use tcp_serve::{run_client, ServeOptions, Server};

/// Builds a small single-regime pack as JSON.
fn tiny_pack_json(name: &str, regime: &str, mean_hours: f64) -> String {
    let spec = SweepSpec::from_toml(&format!(
        r#"
[sweep]
name = "{name}"

[[regime]]
name = "{regime}"
kind = "exponential"
mean_hours = {mean_hours}

[workload]
dp_step_minutes = 30.0
"#
    ))
    .unwrap();
    let builder = PackBuilder {
        age_points: 121,
        checkpoint_age_points: 3,
        checkpoint_job_points: 4,
        max_checkpoint_job_hours: 4.0,
        ..Default::default()
    };
    builder.build_from_spec(&spec).unwrap().to_json().unwrap()
}

fn advisor(json: &str) -> MultiAdvisor {
    MultiAdvisor::from_json(json).unwrap()
}

/// The shed-ratio burn-rate rule both phases evaluate: shed / (served + shed),
/// firing above 1%, resolving below 0.5%, over a 10s short / 60s long window.
fn shed_ratio_spec() -> SloSpec {
    SloSpec::from_str(
        r#"
tick_secs = 5.0

[[rule]]
name = "shed-ratio"
kind = "ratio"
numerator = ["serve.requests.shed"]
denominator = ["serve.requests.served", "serve.requests.shed"]
threshold = 0.01
resolve_threshold = 0.005
short_window_secs = 10.0
long_window_secs = 60.0
severity = "warn"
"#,
    )
    .unwrap()
}

fn snapshot() -> tcp_obs::RegistrySnapshot {
    tcp_obs::Registry::global().snapshot()
}

fn probe_health(addr: &str) -> String {
    run_client(addr, "!health\n").unwrap().trim().to_string()
}

#[test]
fn shipped_example_slo_spec_parses_and_covers_the_serving_signals() {
    let path = std::path::Path::new(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/serve/slo.toml"
    ));
    let spec = SloSpec::load(path).unwrap();
    assert_eq!(spec.tick_secs, 5.0);
    let names: Vec<&str> = spec.rules.iter().map(|r| r.name.as_str()).collect();
    assert_eq!(
        names,
        [
            "shed-ratio",
            "advisor-p99-latency",
            "reload-failures",
            "queue-depth",
            "pack-stale"
        ]
    );
}

#[test]
fn health_machinery_is_out_of_band_and_tracks_forced_shedding() {
    tcp_obs::health::clear_current();

    // ---- Phase 1: byte identity with the evaluator armed -------------------
    // A default (non-shedding) server, an evaluator ticking over real registry
    // snapshots, and a published report: request bytes must still match batch
    // mode exactly, and `!health` must answer healthy with the rule present.
    let json = tiny_pack_json("health-pack", "exp8", 8.0);
    let corpus = requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 400, 42));
    let expected = serve_session(&AdvisorHandle::new(advisor(&json)), &corpus, 1);

    let mut evaluator = Evaluator::new(shed_ratio_spec());
    assert!(
        evaluator.tick_with(0.0, snapshot()).is_empty(),
        "baseline tick never alerts"
    );

    let server = Server::start(advisor(&json), ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();

    // Before any report is published, `!health` still answers: healthy, no rules.
    let unarmed = probe_health(&addr);
    assert!(unarmed.contains("\"verdict\":\"healthy\""), "{unarmed}");
    assert!(unarmed.contains("\"rules\":[]"), "{unarmed}");

    let outputs: Vec<String> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let addr = addr.clone();
                let corpus = corpus.clone();
                scope.spawn(move || run_client(&addr, &corpus).unwrap())
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for output in &outputs {
        assert_eq!(
            output, &expected,
            "bytes must match batch mode with health armed"
        );
    }

    // No shedding happened, so the rule evaluates clean and the verdict stays
    // healthy — now with the rule listed.
    assert!(evaluator.tick_with(10.0, snapshot()).is_empty());
    tcp_obs::health::publish(evaluator.report(10.0));
    let healthy = probe_health(&addr);
    assert!(healthy.contains("\"verdict\":\"healthy\""), "{healthy}");
    assert!(healthy.contains("\"name\":\"shed-ratio\""), "{healthy}");
    assert!(healthy.contains("\"firing\":false"), "{healthy}");

    server.shutdown();
    server.join();

    // ---- Phase 2: forced shedding drives Degraded, quiet drives Healthy ----
    // One in-flight permit + a 3000-line single-connection burst guarantees
    // typed overload lines, i.e. a shed ratio far above 1% in the tick window.
    let mut evaluator = Evaluator::new(shed_ratio_spec());
    assert!(evaluator.tick_with(0.0, snapshot()).is_empty());

    let server = Server::start(
        advisor(&json),
        ServeOptions {
            workers: 2,
            max_inflight: 1,
            ..ServeOptions::default()
        },
    )
    .unwrap();
    let addr = server.local_addr().to_string();
    let burst = requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 3000, 7));
    let output = run_client(&addr, &burst).unwrap();
    assert_eq!(output.lines().count(), 3000, "no response may be dropped");
    let overloads = output
        .lines()
        .filter(|l| l.contains("\"code\":503"))
        .count();
    assert!(
        overloads > 0,
        "budget of 1 must shed under a 3000-line burst"
    );

    // Tick after the burst: the [0, 10] window holds the shed spike on both the
    // short (fallback-to-oldest) and long window, so the rule fires exactly once.
    let alerts = evaluator.tick_with(10.0, snapshot());
    assert_eq!(alerts.len(), 1, "{alerts:?}");
    assert_eq!(alerts[0].rule, "shed-ratio");
    assert_eq!(alerts[0].transition, Transition::Firing);
    assert!(alerts[0].short_value > 0.01, "{}", alerts[0].short_value);
    tcp_obs::health::publish(evaluator.report(10.0));
    let degraded = probe_health(&addr);
    assert!(degraded.contains("\"verdict\":\"degraded\""), "{degraded}");
    assert!(degraded.contains("\"firing\":true"), "{degraded}");

    // A quiet interval: the [10, 20] short window sees no traffic at all, so the
    // ratio drops to 0 ≤ resolve_threshold and the rule resolves (the long
    // window may still carry the spike — resolution is short-window hysteresis).
    let alerts = evaluator.tick_with(20.0, snapshot());
    assert_eq!(alerts.len(), 1, "{alerts:?}");
    assert_eq!(alerts[0].transition, Transition::Resolved);
    tcp_obs::health::publish(evaluator.report(20.0));
    let recovered = probe_health(&addr);
    assert!(recovered.contains("\"verdict\":\"healthy\""), "{recovered}");
    assert!(recovered.contains("\"firing\":false"), "{recovered}");

    server.shutdown();
    server.join();
    tcp_obs::health::clear_current();
}
