//! The tracing determinism contract, asserted over a real socket: served bytes must
//! be identical whether tracing is off, sampling everything, or slow-logging only,
//! and across batch-thread counts — while the flight recorder captures the expected
//! request-scoped span tree (connection → queue wait → batch flush → request →
//! advisor lookup) and the `!trace` control line returns it as JSON.
//!
//! Everything lives in one `#[test]` because `tcp_obs::trace::configure` is
//! process-global: a sibling test serving traffic concurrently would race with the
//! sampling-mode windows this test steps through.

use tcp_advisor::{
    generate_requests, requests_to_ndjson, serve_session, AdvisorHandle, MultiAdvisor, PackBuilder,
};
use tcp_scenarios::SweepSpec;
use tcp_serve::{run_client, ServeOptions, Server};

/// Builds a small single-regime pack as JSON (the loopback-test pack).
fn tiny_pack_json() -> String {
    let spec = SweepSpec::from_toml(
        r#"
[sweep]
name = "trace"

[[regime]]
name = "exp8"
kind = "exponential"
mean_hours = 8.0

[workload]
dp_step_minutes = 30.0
"#,
    )
    .unwrap();
    let builder = PackBuilder {
        age_points: 121,
        checkpoint_age_points: 3,
        checkpoint_job_points: 4,
        max_checkpoint_job_hours: 4.0,
        ..Default::default()
    };
    builder.build_from_spec(&spec).unwrap().to_json().unwrap()
}

fn advisor(json: &str) -> MultiAdvisor {
    MultiAdvisor::from_json(json).unwrap()
}

fn serve_corpus(json: &str, corpus: &str, workers: usize, batch_threads: usize) -> String {
    let options = ServeOptions {
        workers,
        batch_threads,
        ..ServeOptions::default()
    };
    let server = Server::start(advisor(json), options).unwrap();
    let out = run_client(&server.local_addr().to_string(), corpus).unwrap();
    server.shutdown();
    server.join();
    out
}

#[test]
fn tracing_stays_out_of_the_response_stream() {
    let json = tiny_pack_json();
    let corpus = requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 400, 17));
    let expected = serve_session(&AdvisorHandle::new(advisor(&json)), &corpus, 1);

    // --- Tracing unconfigured (the default): the span macros are inert and the
    // served bytes match batch mode exactly.
    assert!(!tcp_obs::trace::tracing_configured());
    let baseline = serve_corpus(&json, &corpus, 4, 1);
    assert_eq!(baseline, expected, "untraced bytes must match batch");
    assert!(
        tcp_obs::trace::recent_spans().is_empty(),
        "unconfigured tracing must record nothing"
    );

    // --- Sample everything: same bytes, across batch-thread counts, while the
    // flight recorder fills with the end-to-end span tree.
    tcp_obs::trace::configure(1, 0);
    for batch_threads in [1, 4] {
        tcp_obs::trace::clear();
        let traced = serve_corpus(&json, &corpus, 4, batch_threads);
        assert_eq!(
            traced, expected,
            "traced bytes must match batch (batch_threads {batch_threads})"
        );
        let spans = tcp_obs::trace::recent_spans();
        let site_names: std::collections::BTreeSet<String> = spans
            .iter()
            .map(|record| tcp_obs::trace::site_name(record.site))
            .collect();
        for needle in [
            "serve.connection",
            "serve.queue.wait",
            "serve.batch.flush",
            "serve.request",
        ] {
            assert!(
                site_names.contains(needle),
                "missing span site `{needle}` (batch_threads {batch_threads}): {site_names:?}"
            );
        }
        assert!(
            site_names
                .iter()
                .any(|name| name.starts_with("advisor.lookup.")),
            "missing advisor lookup spans: {site_names:?}"
        );
        // Every request span must belong to a trace and carry a real duration span id.
        let requests = spans
            .iter()
            .filter(|record| tcp_obs::trace::site_name(record.site) == "serve.request")
            .count();
        assert!(requests >= 1, "at least one request span retained");
        assert!(spans.iter().all(|record| record.trace_id != 0));

        // The Chrome export of the same records is valid JSON with complete events.
        let chrome = tcp_obs::trace::chrome_trace_json(&spans);
        let value = serde_json::parse_value(&chrome).unwrap();
        let events = value.get("traceEvents").expect("traceEvents array");
        let events = events.as_seq().expect("traceEvents is an array");
        assert_eq!(events.len(), spans.len());
        for event in events {
            assert_eq!(event.get("ph").and_then(|v| v.as_str()), Some("X"));
            assert!(event.get("name").and_then(|v| v.as_str()).is_some());
            assert!(event.get("dur").is_some() && event.get("ts").is_some());
        }
    }

    // --- The `!trace` control line returns the ring contents over the socket.
    let server = Server::start(advisor(&json), ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let _ = run_client(&addr, &corpus).unwrap();
    let trace_out = run_client(&addr, "!trace\n").unwrap();
    server.shutdown();
    server.join();
    let value = serde_json::parse_value(trace_out.trim()).unwrap();
    assert_eq!(value.get("control").and_then(|v| v.as_str()), Some("trace"));
    let spans = value.get("spans").and_then(|v| v.as_seq()).unwrap();
    assert!(!spans.is_empty(), "!trace must return retained spans");
    let over_the_wire: std::collections::BTreeSet<&str> = spans
        .iter()
        .filter_map(|span| span.get("site").and_then(|v| v.as_str()))
        .collect();
    assert!(over_the_wire.contains("serve.request"), "{over_the_wire:?}");

    // --- Slow log only (sampling off, threshold 1ns): every root exceeds the
    // threshold, so spans are force-retained — and the bytes still match.
    tcp_obs::trace::configure(0, 1);
    tcp_obs::trace::clear();
    let slow_logged = serve_corpus(&json, &corpus, 4, 1);
    assert_eq!(slow_logged, expected, "slow-logged bytes must match batch");
    let spans = tcp_obs::trace::recent_spans();
    assert!(
        spans
            .iter()
            .any(|record| tcp_obs::trace::site_name(record.site) == "serve.request"),
        "slow log must retain request spans regardless of sampling"
    );

    // --- Sampling off entirely: nothing new is recorded, bytes still match.
    tcp_obs::trace::configure(0, 0);
    tcp_obs::trace::clear();
    let untraced = serve_corpus(&json, &corpus, 4, 1);
    assert_eq!(untraced, expected, "re-disabled bytes must match batch");
    assert!(tcp_obs::trace::recent_spans().is_empty());
}
