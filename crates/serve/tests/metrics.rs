//! The observability determinism contract, asserted over a real socket: served bytes
//! must be identical whether metrics are enabled or disabled, `!metrics` control lines
//! must parse and report the serve-layer instrumentation, and the Prometheus exposition
//! must carry the expected metric families — all without a single instrumentation byte
//! leaking into the response stream.
//!
//! Everything lives in one `#[test]` because it toggles the process-global
//! `tcp_obs::set_enabled` switch: a sibling test recording histograms concurrently
//! would race with the disabled window.

use tcp_advisor::{
    generate_requests, requests_to_ndjson, serve_session, AdvisorHandle, MultiAdvisor, PackBuilder,
};
use tcp_scenarios::SweepSpec;
use tcp_serve::{run_client, ServeOptions, Server};

/// Builds a small single-regime pack as JSON (the loopback-test pack).
fn tiny_pack_json() -> String {
    let spec = SweepSpec::from_toml(
        r#"
[sweep]
name = "metrics"

[[regime]]
name = "exp8"
kind = "exponential"
mean_hours = 8.0

[workload]
dp_step_minutes = 30.0
"#,
    )
    .unwrap();
    let builder = PackBuilder {
        age_points: 121,
        checkpoint_age_points: 3,
        checkpoint_job_points: 4,
        max_checkpoint_job_hours: 4.0,
        ..Default::default()
    };
    builder.build_from_spec(&spec).unwrap().to_json().unwrap()
}

fn advisor(json: &str) -> MultiAdvisor {
    MultiAdvisor::from_json(json).unwrap()
}

#[test]
fn metrics_stay_out_of_the_response_stream() {
    let json = tiny_pack_json();
    let corpus = requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 400, 17));
    let expected = serve_session(&AdvisorHandle::new(advisor(&json)), &corpus, 1);

    // --- Metrics enabled (the default): responses match batch mode byte for byte,
    // and an admin `!metrics` probe reports the serve-layer counters.
    assert!(tcp_obs::enabled());
    let server = Server::start(advisor(&json), ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let enabled_out = run_client(&addr, &corpus).unwrap();
    let metrics_out = run_client(&addr, "!metrics\n").unwrap();
    server.shutdown();
    server.join();
    assert_eq!(enabled_out, expected, "instrumented bytes must match batch");

    let value = serde_json::parse_value(metrics_out.trim()).unwrap();
    assert_eq!(
        value.get("control").and_then(|v| v.as_str()),
        Some("metrics")
    );
    let metrics = value.get("metrics").expect("metrics object");
    let counter = |name: &str| {
        metrics
            .get(name)
            .and_then(|v| v.as_u64())
            .unwrap_or_else(|| panic!("missing counter {name}"))
    };
    // 400 request lines were served on the first connection, none shed; both admin
    // and request connections were accepted.  The registry is process-global, so
    // assert floors, not exact values.
    assert!(counter("serve.requests.served") >= 400);
    assert_eq!(counter("serve.requests.shed"), 0);
    assert!(counter("serve.connections.accepted") >= 2);
    // The advisor's per-family latency histograms recorded the served queries.
    let families = [
        "advisor.latency.should_reuse",
        "advisor.latency.checkpoint_plan",
        "advisor.latency.expected_cost_makespan",
        "advisor.latency.best_policy",
    ];
    let total: u64 = families
        .iter()
        .map(|name| {
            let hist = metrics.get(name).expect("latency family present");
            for key in ["count", "sum", "mean", "p50", "p90", "p99", "p999", "max"] {
                assert!(hist.get(key).is_some(), "{name} missing {key}");
            }
            hist.get("count").and_then(|v| v.as_u64()).unwrap()
        })
        .sum();
    assert!(
        total >= 400,
        "latency histograms must cover the served corpus"
    );

    // --- Metrics disabled: a fresh server over the same corpus produces the exact
    // same response bytes — instrumentation is strictly out-of-band.
    tcp_obs::set_enabled(false);
    let server = Server::start(advisor(&json), ServeOptions::default()).unwrap();
    let disabled_out = run_client(&server.local_addr().to_string(), &corpus).unwrap();
    server.shutdown();
    server.join();
    tcp_obs::set_enabled(true);
    assert_eq!(
        disabled_out, expected,
        "disabling metrics must not change bytes"
    );

    // --- The Prometheus exposition of the same registry carries the serve and
    // advisor families a scraper expects.
    let text = tcp_obs::Registry::global().snapshot().to_prometheus();
    for needle in [
        "# TYPE serve_requests_served counter",
        "# TYPE serve_connections_active gauge",
        "# TYPE advisor_latency_best_policy histogram",
        "advisor_latency_best_policy_bucket{le=",
        "advisor_latency_best_policy_count",
    ] {
        assert!(
            text.contains(needle),
            "exposition missing `{needle}`:\n{text}"
        );
    }
}
