//! Continuous-profiler integration: arming the wall-clock sampler and the
//! counting allocator must not change a single served byte — instrumentation
//! alters what a run *reports*, never what it *produces* — and the `!profile`
//! control line must answer with the live envelope.

use tcp_advisor::{
    generate_requests, requests_to_ndjson, serve_session, AdvisorHandle, MultiAdvisor, PackBuilder,
};
use tcp_scenarios::SweepSpec;
use tcp_serve::{run_client, ServeOptions, Server};

/// The counting allocator under test, installed for this whole test binary;
/// counting stays off until the test arms it, so the baseline run measures the
/// wrapper's pass-through path too.
#[global_allocator]
static ALLOC: tcp_obs::profile::CountingAlloc = tcp_obs::profile::CountingAlloc::new();

/// Builds a small single-regime pack as JSON.
fn tiny_pack_json(name: &str, regime: &str, mean_hours: f64) -> String {
    let spec = SweepSpec::from_toml(&format!(
        r#"
[sweep]
name = "{name}"

[[regime]]
name = "{regime}"
kind = "exponential"
mean_hours = {mean_hours}

[workload]
dp_step_minutes = 30.0
"#
    ))
    .unwrap();
    let builder = PackBuilder {
        age_points: 121,
        checkpoint_age_points: 3,
        checkpoint_job_points: 4,
        max_checkpoint_job_hours: 4.0,
        ..Default::default()
    };
    builder.build_from_spec(&spec).unwrap().to_json().unwrap()
}

fn advisor(json: &str) -> MultiAdvisor {
    MultiAdvisor::from_json(json).unwrap()
}

#[test]
fn armed_profiler_serves_byte_identical_responses_and_answers_probe() {
    let json = tiny_pack_json("profiled", "exp8", 8.0);
    let corpus = requests_to_ndjson(&generate_requests(advisor(&json).pooled().pack(), 2000, 41));
    let expected = serve_session(&AdvisorHandle::new(advisor(&json)), &corpus, 1);

    // Baseline: profiler fully off (allocator wrapper installed but inert).
    let server = Server::start(advisor(&json), ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let baseline = run_client(&addr, &corpus).unwrap();
    assert_eq!(
        baseline, expected,
        "profiler-off bytes must match batch mode"
    );
    server.shutdown();
    server.join();

    // Armed: 997 Hz wall sampler + allocation counting, same corpus.
    tcp_obs::profile::reset();
    tcp_obs::profile::set_counting(true);
    assert!(tcp_obs::profile::arm(997));
    let server = Server::start(advisor(&json), ServeOptions::default()).unwrap();
    let addr = server.local_addr().to_string();
    let armed = run_client(&addr, &corpus).unwrap();
    assert_eq!(
        armed, expected,
        "997 Hz sampling + alloc counting must not change served bytes"
    );

    // Give the sampler a couple of periods, then probe the control line on the
    // still-armed server.
    std::thread::sleep(std::time::Duration::from_millis(25));
    let reply = run_client(&addr, "!profile\n").unwrap();
    let value = serde_json::parse_value(reply.trim()).unwrap();
    assert_eq!(
        value.get("control").and_then(|v| v.as_str()),
        Some("profile")
    );
    let profile = value.get("profile").expect("envelope carries the profile");
    let wall = profile.get("wall").expect("wall section");
    assert_eq!(wall.get("armed").and_then(|v| v.as_bool()), Some(true));
    assert!(
        wall.get("ticks").and_then(|v| v.as_u64()).unwrap() > 0,
        "sampler thread must have ticked while armed"
    );
    let alloc = profile.get("alloc").expect("alloc section");
    assert!(
        alloc.get("allocs").and_then(|v| v.as_u64()).unwrap() > 0,
        "serving 2000 requests with counting on must record allocations"
    );

    server.shutdown();
    server.join();
    tcp_obs::profile::disarm();
    tcp_obs::profile::set_counting(false);
}
