//! Batch computing service for preemptible VMs (Section 5 of the paper).
//!
//! The service is a centralised controller that accepts bags of jobs, maintains a cluster
//! of (simulated) preemptible VMs, and applies the model-driven policies:
//!
//! * **VM reuse / job scheduling** — before placing a job on an idle VM it evaluates
//!   `E[T_s] ≤ E[T_0]` (Section 4.2) and launches a fresh VM when reuse is not worthwhile;
//! * **hot spares** — idle VMs that survived the early-failure phase are "stable" and kept
//!   around for up to an hour instead of being terminated;
//! * **checkpointing** — optionally plans non-uniform checkpoints with the DP policy of
//!   Section 4.3 and restarts failed jobs from their last checkpoint;
//! * **cost accounting** — bills VM usage at preemptible or on-demand rates, producing the
//!   Figure 9 comparisons.
//!
//! One simplification relative to the real deployment: the paper runs each MPI job across
//! a small cluster of VMs, whereas the simulated service maps each job onto one VM-slot of
//! equivalent capacity.  The policies only depend on job lengths and VM lifetimes, so this
//! preserves the behaviour being evaluated (preemption counts, restart work, VM reuse and
//! cost) while keeping the controller logic transparent; DESIGN.md discusses the
//! substitution.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` style comparisons are used deliberately throughout: unlike `x <= 0.0`
// they are false for NaN, which is exactly the validation we want for config values.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod config;
pub mod report;
pub mod service;

pub use config::{CheckpointingMode, SchedulingMode, ServiceConfig};
pub use report::RunReport;
pub use service::BatchService;
