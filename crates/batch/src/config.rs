//! Service configuration.

use serde::{Deserialize, Serialize};
use tcp_numerics::{NumericsError, Result};
use tcp_policy::CheckpointConfig;
use tcp_trace::{VmType, Zone};

/// Which checkpointing policy (if any) the service applies to jobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CheckpointingMode {
    /// Jobs are never checkpointed; a preemption loses all progress (Section 6.3 runs the
    /// cost experiment in this mode because the applications lacked checkpoint support).
    None,
    /// Model-driven dynamic-programming checkpointing (Section 4.3).
    ModelDriven,
    /// Young–Daly periodic checkpointing with the MTTF inferred from the initial failure
    /// rate (the baseline of Figure 8).
    YoungDaly,
}

/// Scheduling policy used when an idle VM is available.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SchedulingMode {
    /// The paper's model-driven VM-reuse policy.
    ModelDriven,
    /// Memoryless baseline: always reuse the available VM.
    Memoryless,
}

impl std::fmt::Display for CheckpointingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            CheckpointingMode::None => "none",
            CheckpointingMode::ModelDriven => "model-driven",
            CheckpointingMode::YoungDaly => "young-daly",
        })
    }
}

impl std::str::FromStr for CheckpointingMode {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "none" => Ok(CheckpointingMode::None),
            "model-driven" | "modeldriven" | "dp" => Ok(CheckpointingMode::ModelDriven),
            "young-daly" | "youngdaly" => Ok(CheckpointingMode::YoungDaly),
            other => Err(format!(
                "unknown checkpointing mode: {other} (expected none, model-driven or young-daly)"
            )),
        }
    }
}

impl std::fmt::Display for SchedulingMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SchedulingMode::ModelDriven => "model-driven",
            SchedulingMode::Memoryless => "memoryless",
        })
    }
}

impl std::str::FromStr for SchedulingMode {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Self, Self::Err> {
        match s.trim().to_ascii_lowercase().as_str() {
            "model-driven" | "modeldriven" => Ok(SchedulingMode::ModelDriven),
            "memoryless" | "always-reuse" => Ok(SchedulingMode::Memoryless),
            other => Err(format!(
                "unknown scheduling mode: {other} (expected model-driven or memoryless)"
            )),
        }
    }
}

/// Full configuration of one service run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ServiceConfig {
    /// Machine type used for worker VMs.
    pub vm_type: VmType,
    /// Zone the cluster runs in.
    pub zone: Zone,
    /// Maximum number of VMs running concurrently (the cluster size).
    pub cluster_size: usize,
    /// Use preemptible VMs (`true`, the paper's service) or on-demand VMs (`false`, the
    /// cost comparator of Figure 9a).
    pub use_preemptible: bool,
    /// Scheduling policy for idle-VM reuse.
    pub scheduling: SchedulingMode,
    /// Checkpointing policy applied to jobs.
    pub checkpointing: CheckpointingMode,
    /// Checkpointing parameters (cost, step, restart overhead).
    pub checkpoint_config: CheckpointConfig,
    /// How long an idle, stable VM is kept as a hot spare before termination, hours.
    pub hot_spare_hours: f64,
    /// RNG seed for the simulated provider.
    pub seed: u64,
}

impl ServiceConfig {
    /// The configuration used for the paper's cost experiment (Figure 9a): 32 VMs of type
    /// `n1-highcpu-32`, model-driven scheduling, no checkpointing, preemptible billing.
    pub fn paper_cost_experiment(seed: u64) -> Self {
        ServiceConfig {
            vm_type: VmType::N1HighCpu32,
            zone: Zone::UsCentral1C,
            cluster_size: 32,
            use_preemptible: true,
            scheduling: SchedulingMode::ModelDriven,
            checkpointing: CheckpointingMode::None,
            checkpoint_config: CheckpointConfig::paper_defaults(),
            hot_spare_hours: 1.0,
            seed,
        }
    }

    /// The on-demand comparator of Figure 9a (same cluster, conventional VMs).
    pub fn on_demand_comparator(seed: u64) -> Self {
        ServiceConfig {
            use_preemptible: false,
            ..ServiceConfig::paper_cost_experiment(seed)
        }
    }

    /// Returns this configuration with a different RNG seed — the hook sweep runners use
    /// to run one scenario across many deterministic trials.
    pub fn with_seed(&self, seed: u64) -> Self {
        ServiceConfig { seed, ..*self }
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<()> {
        if self.cluster_size == 0 {
            return Err(NumericsError::invalid("cluster size must be positive"));
        }
        if !(self.hot_spare_hours >= 0.0) || !self.hot_spare_hours.is_finite() {
            return Err(NumericsError::invalid(
                "hot spare duration must be non-negative",
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_configs() {
        let c = ServiceConfig::paper_cost_experiment(1);
        c.validate().unwrap();
        assert_eq!(c.cluster_size, 32);
        assert_eq!(c.vm_type, VmType::N1HighCpu32);
        assert!(c.use_preemptible);
        let od = ServiceConfig::on_demand_comparator(1);
        assert!(!od.use_preemptible);
        assert_eq!(od.cluster_size, c.cluster_size);
    }

    #[test]
    fn validation_rejects_bad_configs() {
        let mut c = ServiceConfig::paper_cost_experiment(1);
        c.cluster_size = 0;
        assert!(c.validate().is_err());
        let mut c = ServiceConfig::paper_cost_experiment(1);
        c.hot_spare_hours = f64::NAN;
        assert!(c.validate().is_err());
    }
}
