//! Run reports produced by the batch service.

use serde::{Deserialize, Serialize};

/// Summary of one bag-of-jobs run through the service.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RunReport {
    /// Number of jobs in the bag (all of them complete by the end of a run).
    pub jobs: usize,
    /// Wall-clock makespan of the whole bag, hours.
    pub makespan_hours: f64,
    /// Ideal makespan with no preemptions and no overheads, hours.
    pub ideal_makespan_hours: f64,
    /// Number of VM preemptions that interrupted running jobs.
    pub preemptions: usize,
    /// Number of job restarts (a preempted job may restart more than once).
    pub job_restarts: usize,
    /// Number of VMs launched over the run.
    pub vms_launched: usize,
    /// Total cost of all VM usage, USD.
    pub total_cost: f64,
    /// Total work (sum of job running times), hours.
    pub total_work_hours: f64,
    /// Total VM hours billed.
    pub vm_hours: f64,
}

impl RunReport {
    /// Cost per job, USD.
    pub fn cost_per_job(&self) -> f64 {
        if self.jobs == 0 {
            0.0
        } else {
            self.total_cost / self.jobs as f64
        }
    }

    /// Percentage increase of the makespan over the ideal (preemption-free) makespan.
    pub fn percent_increase_in_running_time(&self) -> f64 {
        if self.ideal_makespan_hours <= 0.0 {
            return 0.0;
        }
        100.0 * (self.makespan_hours - self.ideal_makespan_hours) / self.ideal_makespan_hours
    }

    /// Cluster utilisation: useful work divided by billed VM hours.
    pub fn utilisation(&self) -> f64 {
        if self.vm_hours <= 0.0 {
            0.0
        } else {
            (self.total_work_hours / self.vm_hours).min(1.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> RunReport {
        RunReport {
            jobs: 100,
            makespan_hours: 1.05,
            ideal_makespan_hours: 1.0,
            preemptions: 4,
            job_restarts: 5,
            vms_launched: 40,
            total_cost: 25.0,
            total_work_hours: 23.3,
            vm_hours: 35.0,
        }
    }

    #[test]
    fn derived_metrics() {
        let r = report();
        assert!((r.cost_per_job() - 0.25).abs() < 1e-12);
        assert!((r.percent_increase_in_running_time() - 5.0).abs() < 1e-9);
        assert!((r.utilisation() - 23.3 / 35.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_values_do_not_divide_by_zero() {
        let r = RunReport {
            jobs: 0,
            ideal_makespan_hours: 0.0,
            vm_hours: 0.0,
            ..report()
        };
        assert_eq!(r.cost_per_job(), 0.0);
        assert_eq!(r.percent_increase_in_running_time(), 0.0);
        assert_eq!(r.utilisation(), 0.0);
    }
}
