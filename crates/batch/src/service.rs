//! The batch-service controller.
//!
//! An event-driven simulation of the centralised controller described in Section 5: it
//! drains a bag of jobs through a bounded cluster of simulated VMs, reacting to job
//! completions, VM preemptions and hot-spare expiries, and applying the model-driven
//! scheduling and checkpointing policies.

use crate::config::{CheckpointingMode, SchedulingMode, ServiceConfig};
use crate::report::RunReport;
use std::collections::{BTreeMap, VecDeque};
use std::sync::Arc;
use tcp_cloudsim::{BillingClass, EventQueue, ProviderTemplate, VmId};
use tcp_core::LifetimeModel;
use tcp_numerics::{NumericsError, Result};
use tcp_policy::{
    CheckpointPlanner, DpCheckpointPolicy, MemorylessScheduler, ModelDrivenScheduler,
    SchedulerPolicy, SchedulingDecision, YoungDalyPolicy,
};
use tcp_workloads::BagOfJobs;

/// Events the controller reacts to.
#[derive(Debug, Clone, Copy, PartialEq)]
enum Event {
    /// A job assignment finished successfully (stale if the assignment id is outdated).
    JobFinished { vm: VmId, assignment: u64 },
    /// The provider preempted a VM.
    VmPreempted { vm: VmId },
    /// An idle hot spare reached its retention limit (stale if the VM was reused since).
    HotSpareExpired { vm: VmId, idle_since: u64 },
}

/// State of a job currently assigned to a VM.
#[derive(Debug, Clone)]
struct Assignment {
    assignment_id: u64,
    job_index: usize,
    started_at: f64,
    /// Work (hours) already safely checkpointed before this assignment started.
    base_progress: f64,
    /// Planned checkpoint intervals for the remaining work of this assignment.
    intervals: Vec<f64>,
    /// Checkpoint cost per checkpoint, hours.
    checkpoint_cost: f64,
}

impl Assignment {
    /// Total wall time this assignment needs if it is not preempted (the final segment
    /// carries no trailing checkpoint).
    fn planned_duration(&self) -> f64 {
        let work: f64 = self.intervals.iter().sum();
        let checkpoints = self.intervals.len().saturating_sub(1) as f64;
        work + checkpoints * self.checkpoint_cost
    }

    /// Work safely persisted after `elapsed` hours of this assignment (completed
    /// checkpoint intervals only).
    fn checkpointed_progress(&self, elapsed: f64) -> f64 {
        let mut done = 0.0;
        let mut t = 0.0;
        let last = self.intervals.len().saturating_sub(1);
        for (idx, &work) in self.intervals.iter().enumerate() {
            let segment = if idx == last {
                work
            } else {
                work + self.checkpoint_cost
            };
            if t + segment <= elapsed + 1e-12 {
                done += work;
                t += segment;
            } else {
                break;
            }
        }
        done
    }
}

/// Per-job bookkeeping.
#[derive(Debug, Clone)]
struct JobState {
    remaining_work: f64,
    restarts: usize,
    completed: bool,
}

/// The batch computing service.
pub struct BatchService {
    config: ServiceConfig,
    model: Arc<dyn LifetimeModel>,
    scheduler: Box<dyn SchedulerPolicy>,
    planner: Option<Box<dyn CheckpointPlanner>>,
}

impl BatchService {
    /// Creates a service driven by a fitted preemption model — any lifetime family
    /// carried by the model-generic [`LifetimeModel`] surface (the bathtub fit is the
    /// closed-form fast path, tabulated winners plan identically through the same
    /// trait).
    pub fn new(config: ServiceConfig, model: Arc<dyn LifetimeModel>) -> Result<Self> {
        config.validate()?;
        let scheduler: Box<dyn SchedulerPolicy> = match config.scheduling {
            SchedulingMode::ModelDriven => {
                Box::new(ModelDrivenScheduler::from_model(model.clone()))
            }
            SchedulingMode::Memoryless => Box::new(MemorylessScheduler),
        };
        let planner: Option<Box<dyn CheckpointPlanner>> = match config.checkpointing {
            CheckpointingMode::None => None,
            CheckpointingMode::ModelDriven => Some(Box::new(DpCheckpointPolicy::from_model(
                model.clone(),
                config.checkpoint_config,
            )?)),
            CheckpointingMode::YoungDaly => {
                Some(Box::new(YoungDalyPolicy::from_initial_failure_rate(
                    model.as_ref(),
                    config.checkpoint_config.checkpoint_cost_hours,
                )?))
            }
        };
        Ok(BatchService {
            config,
            model,
            scheduler,
            planner,
        })
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The preemption model the policies use.
    pub fn model(&self) -> &dyn LifetimeModel {
        self.model.as_ref()
    }

    fn plan_intervals(&self, remaining: f64, vm_age: f64) -> Result<(Vec<f64>, f64)> {
        match &self.planner {
            Some(planner) => Ok((
                planner.plan(remaining, vm_age.min(self.model.horizon() - 1e-6))?,
                planner.checkpoint_cost(),
            )),
            None => Ok((vec![remaining], 0.0)),
        }
    }

    /// Runs a bag of jobs to completion and reports cost/performance metrics, using the
    /// default provider (trace-catalog preemptions, default pricing).
    pub fn run_bag(&self, bag: &BagOfJobs) -> Result<RunReport> {
        self.run_bag_with(bag, &ProviderTemplate::default(), self.config.seed)
    }

    /// Runs a bag of jobs against a provider built from `template` with an explicit
    /// provider seed — the entry point scenario sweeps use to vary the preemption regime
    /// and pricing across many deterministic trials while reusing one service (and its
    /// precomputed checkpoint planner).
    pub fn run_bag_with(
        &self,
        bag: &BagOfJobs,
        template: &ProviderTemplate,
        seed: u64,
    ) -> Result<RunReport> {
        if bag.is_empty() {
            return Err(NumericsError::invalid("bag must contain at least one job"));
        }
        let billing = if self.config.use_preemptible {
            BillingClass::Preemptible
        } else {
            BillingClass::OnDemand
        };
        let mut provider = template.build(seed);
        let mut queue: EventQueue<Event> = EventQueue::new();

        let mut jobs: Vec<JobState> = bag
            .jobs
            .iter()
            .map(|j| JobState {
                remaining_work: j.estimated_runtime_hours,
                restarts: 0,
                completed: false,
            })
            .collect();
        let mut pending: VecDeque<usize> = (0..jobs.len()).collect();

        // VM bookkeeping.
        let mut assignments: BTreeMap<VmId, Assignment> = BTreeMap::new();
        // VM -> idle generation; BTreeMap keeps dispatch order deterministic across runs
        let mut idle_vms: BTreeMap<VmId, u64> = BTreeMap::new();
        let mut live_vms: usize = 0;
        let mut next_assignment_id: u64 = 0;
        let mut idle_generation: u64 = 0;
        let mut preemptions_hitting_jobs = 0usize;
        let mut total_restarts = 0usize;
        let mut completed_jobs = 0usize;
        let mut last_completion_time = 0.0f64;

        // Helper closures are impractical with so much shared mutable state; use a small
        // macro-like inline routine instead via a function-local loop.

        // Seed: dispatch as many jobs as the cluster allows.
        // The main dispatch routine is invoked whenever capacity or work changes.
        macro_rules! dispatch {
            ($now:expr) => {{
                let now: f64 = $now;
                while !pending.is_empty()
                    && live_vms.max(assignments.len()) < self.config.cluster_size + idle_vms.len()
                {
                    // ensure we do not exceed the cluster size counting idle + busy VMs
                    if assignments.len() + idle_vms.len() >= self.config.cluster_size
                        && idle_vms.is_empty()
                    {
                        break;
                    }
                    let job_index = *pending.front().expect("non-empty");
                    let job_len = jobs[job_index].remaining_work;

                    // Choose a VM: prefer an idle hot spare if the policy approves reuse.
                    let mut chosen: Option<VmId> = None;
                    let mut launch_fresh = false;
                    if let Some((&vm_id, _)) = idle_vms.iter().next() {
                        let age = provider.get(vm_id).map(|vm| vm.age_at(now)).unwrap_or(0.0);
                        let alive = provider.is_running(vm_id, now);
                        if alive && self.config.use_preemptible {
                            match self.scheduler.decide(age, job_len) {
                                SchedulingDecision::ReuseExisting => chosen = Some(vm_id),
                                SchedulingDecision::LaunchFresh => {
                                    // relinquish the stale VM and fall through to a fresh launch
                                    provider.terminate(vm_id, now);
                                    idle_vms.remove(&vm_id);
                                    live_vms = live_vms.saturating_sub(1);
                                    launch_fresh = true;
                                }
                            }
                        } else if alive {
                            chosen = Some(vm_id);
                        } else {
                            idle_vms.remove(&vm_id);
                            live_vms = live_vms.saturating_sub(1);
                        }
                    }

                    if chosen.is_none() {
                        if assignments.len() + idle_vms.len() >= self.config.cluster_size
                            && !launch_fresh
                        {
                            break;
                        }
                        let vm =
                            provider.launch(self.config.vm_type, self.config.zone, billing, now)?;
                        live_vms += 1;
                        if let Some(p) = vm.preemption_time {
                            queue.schedule_at(p, Event::VmPreempted { vm: vm.id });
                        }
                        chosen = Some(vm.id);
                    }

                    let vm_id = chosen.expect("vm chosen or launched");
                    idle_vms.remove(&vm_id);
                    pending.pop_front();

                    let vm_age = provider.get(vm_id).map(|vm| vm.age_at(now)).unwrap_or(0.0);
                    let (intervals, checkpoint_cost) = self.plan_intervals(job_len, vm_age)?;
                    let assignment = Assignment {
                        assignment_id: next_assignment_id,
                        job_index,
                        started_at: now,
                        base_progress: bag.jobs[job_index].estimated_runtime_hours - job_len,
                        intervals,
                        checkpoint_cost,
                    };
                    next_assignment_id += 1;
                    let finish_at = now + assignment.planned_duration();
                    queue.schedule_at(
                        finish_at,
                        Event::JobFinished {
                            vm: vm_id,
                            assignment: assignment.assignment_id,
                        },
                    );
                    assignments.insert(vm_id, assignment);
                }
            }};
        }

        dispatch!(0.0);

        let mut safety_counter = 0usize;
        let safety_limit = 200_000 + bag.len() * 1_000;
        while completed_jobs < jobs.len() {
            safety_counter += 1;
            if safety_counter > safety_limit {
                return Err(NumericsError::DidNotConverge {
                    what: "batch service simulation".into(),
                    iterations: safety_counter,
                    residual: (jobs.len() - completed_jobs) as f64,
                });
            }
            let Some((now, event)) = queue.pop() else {
                // No pending events but jobs remain: dispatch more work (e.g. after all VMs
                // died simultaneously).
                dispatch!(last_completion_time);
                if queue.is_empty() {
                    return Err(NumericsError::invalid(
                        "service deadlocked with pending jobs",
                    ));
                }
                continue;
            };

            match event {
                Event::JobFinished { vm, assignment } => {
                    let matches = assignments
                        .get(&vm)
                        .map(|a| a.assignment_id == assignment)
                        .unwrap_or(false);
                    if !matches {
                        continue; // stale completion from a preempted assignment
                    }
                    let a = assignments.remove(&vm).expect("checked above");
                    let job = &mut jobs[a.job_index];
                    job.remaining_work = 0.0;
                    job.completed = true;
                    completed_jobs += 1;
                    last_completion_time = now;

                    // The VM becomes a hot spare (only meaningful for preemptible VMs that
                    // are still alive).
                    if provider.is_running(vm, now) {
                        idle_generation += 1;
                        idle_vms.insert(vm, idle_generation);
                        queue.schedule_after(
                            self.config.hot_spare_hours,
                            Event::HotSpareExpired {
                                vm,
                                idle_since: idle_generation,
                            },
                        );
                    } else {
                        live_vms = live_vms.saturating_sub(1);
                    }
                    dispatch!(now);
                }
                Event::VmPreempted { vm } => {
                    let was_running = provider.preempt(vm, now);
                    if !was_running {
                        continue;
                    }
                    live_vms = live_vms.saturating_sub(1);
                    idle_vms.remove(&vm);
                    if let Some(a) = assignments.remove(&vm) {
                        // the preemption interrupted a running job
                        preemptions_hitting_jobs += 1;
                        let elapsed = (now - a.started_at).max(0.0);
                        let persisted = a.checkpointed_progress(elapsed);
                        let job = &mut jobs[a.job_index];
                        let done = a.base_progress + persisted;
                        job.remaining_work =
                            (bag.jobs[a.job_index].estimated_runtime_hours - done).max(1e-6);
                        job.restarts += 1;
                        total_restarts += 1;
                        pending.push_back(a.job_index);
                    }
                    dispatch!(now);
                }
                Event::HotSpareExpired { vm, idle_since } => {
                    if idle_vms.get(&vm) == Some(&idle_since) {
                        idle_vms.remove(&vm);
                        provider.terminate(vm, now);
                        live_vms = live_vms.saturating_sub(1);
                    }
                }
            }
        }

        // Terminate any remaining VMs so billing stops at the makespan.
        let end = last_completion_time;
        for (&vm, _) in idle_vms.iter() {
            provider.terminate(vm, end);
        }
        for (&vm, _) in assignments.iter() {
            provider.terminate(vm, end);
        }
        let usage = provider.usage_report(end);

        let total_work: f64 = bag.jobs.iter().map(|j| j.estimated_runtime_hours).sum();
        let ideal = ideal_makespan(bag, self.config.cluster_size);
        Ok(RunReport {
            jobs: bag.len(),
            makespan_hours: end,
            ideal_makespan_hours: ideal,
            preemptions: preemptions_hitting_jobs,
            job_restarts: total_restarts,
            vms_launched: usage.vms_launched,
            total_cost: usage.total_cost,
            total_work_hours: total_work,
            vm_hours: usage.preemptible_vm_hours + usage.on_demand_vm_hours,
        })
    }
}

/// The preemption-free, zero-overhead makespan of a bag on `slots` parallel slots
/// (longest-processing-time list scheduling — exact for the homogeneous bags used here).
pub fn ideal_makespan(bag: &BagOfJobs, slots: usize) -> f64 {
    let slots = slots.max(1);
    let mut finish = vec![0.0f64; slots];
    let mut lengths: Vec<f64> = bag.jobs.iter().map(|j| j.estimated_runtime_hours).collect();
    lengths.sort_by(|a, b| b.partial_cmp(a).unwrap());
    for len in lengths {
        // place on the least-loaded slot
        let (idx, _) = finish
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty slots");
        finish[idx] += len;
    }
    finish.into_iter().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_workloads::profiles::profile_by_name;

    fn model() -> Arc<dyn LifetimeModel> {
        Arc::new(tcp_core::BathtubModel::paper_representative())
    }

    fn small_bag(count: usize) -> BagOfJobs {
        profile_by_name("nanoconfinement")
            .unwrap()
            .bag(count, 11)
            .unwrap()
    }

    fn base_config(seed: u64) -> ServiceConfig {
        ServiceConfig {
            cluster_size: 8,
            ..ServiceConfig::paper_cost_experiment(seed)
        }
    }

    #[test]
    fn completes_every_job() {
        let service = BatchService::new(base_config(1), model()).unwrap();
        let bag = small_bag(40);
        let report = service.run_bag(&bag).unwrap();
        assert_eq!(report.jobs, 40);
        assert!(report.makespan_hours > 0.0);
        assert!(report.makespan_hours >= report.ideal_makespan_hours * 0.99);
        assert!(report.total_cost > 0.0);
        assert!(report.vms_launched >= 1);
        assert!(report.utilisation() > 0.0);
    }

    #[test]
    fn empty_bag_rejected_and_config_validated() {
        let service = BatchService::new(base_config(1), model()).unwrap();
        let bag = BagOfJobs::new(
            "x",
            vec![tcp_workloads::JobSpec::new(0, "a", 0.1, 1, "p").unwrap()],
        )
        .unwrap();
        assert!(service.run_bag(&bag).is_ok());
        let mut bad = base_config(1);
        bad.cluster_size = 0;
        assert!(BatchService::new(bad, model()).is_err());
    }

    #[test]
    fn preemptible_is_much_cheaper_than_on_demand() {
        // Figure 9a: ~5× cost reduction.
        let bag = small_bag(60);
        let preemptible = BatchService::new(base_config(7), model())
            .unwrap()
            .run_bag(&bag)
            .unwrap();
        let on_demand = BatchService::new(
            ServiceConfig {
                cluster_size: 8,
                ..ServiceConfig::on_demand_comparator(7)
            },
            model(),
        )
        .unwrap()
        .run_bag(&bag)
        .unwrap();
        let ratio = on_demand.cost_per_job() / preemptible.cost_per_job();
        assert!(ratio > 3.0, "cost ratio = {ratio}");
        assert_eq!(
            on_demand.preemptions, 0,
            "on-demand VMs are never preempted"
        );
    }

    #[test]
    fn preemptions_increase_running_time_moderately() {
        // Figure 9b: each preemption costs a few percent of running time.
        let bag = small_bag(80);
        let report = BatchService::new(base_config(3), model())
            .unwrap()
            .run_bag(&bag)
            .unwrap();
        let increase = report.percent_increase_in_running_time();
        assert!(increase >= 0.0);
        assert!(increase < 120.0, "increase = {increase}%");
        if report.preemptions == 0 {
            assert!(increase < 25.0);
        }
    }

    #[test]
    fn checkpointing_mode_runs() {
        let mut cfg = base_config(5);
        cfg.checkpointing = CheckpointingMode::ModelDriven;
        let bag = small_bag(12);
        let report = BatchService::new(cfg, model())
            .unwrap()
            .run_bag(&bag)
            .unwrap();
        assert_eq!(report.jobs, 12);
        let mut yd = base_config(5);
        yd.checkpointing = CheckpointingMode::YoungDaly;
        let report_yd = BatchService::new(yd, model())
            .unwrap()
            .run_bag(&bag)
            .unwrap();
        assert_eq!(report_yd.jobs, 12);
    }

    #[test]
    fn memoryless_scheduling_mode_runs() {
        let mut cfg = base_config(9);
        cfg.scheduling = SchedulingMode::Memoryless;
        let report = BatchService::new(cfg, model())
            .unwrap()
            .run_bag(&small_bag(20))
            .unwrap();
        assert_eq!(report.jobs, 20);
    }

    #[test]
    fn deterministic_given_seed() {
        let bag = small_bag(30);
        let a = BatchService::new(base_config(42), model())
            .unwrap()
            .run_bag(&bag)
            .unwrap();
        let b = BatchService::new(base_config(42), model())
            .unwrap()
            .run_bag(&bag)
            .unwrap();
        // structural determinism is exact; float aggregates may differ by rounding only
        assert!((a.makespan_hours - b.makespan_hours).abs() < 1e-9);
        assert!((a.total_cost - b.total_cost).abs() < 1e-9);
        assert_eq!(a.preemptions, b.preemptions);
        assert_eq!(a.vms_launched, b.vms_launched);
    }

    #[test]
    fn ideal_makespan_list_scheduling() {
        let bag = BagOfJobs::new(
            "t",
            vec![
                tcp_workloads::JobSpec::new(0, "a", 2.0, 1, "").unwrap(),
                tcp_workloads::JobSpec::new(1, "a", 1.0, 1, "").unwrap(),
                tcp_workloads::JobSpec::new(2, "a", 1.0, 1, "").unwrap(),
            ],
        )
        .unwrap();
        assert_eq!(ideal_makespan(&bag, 2), 2.0);
        assert_eq!(ideal_makespan(&bag, 1), 4.0);
        assert_eq!(ideal_makespan(&bag, 10), 2.0);
    }
}
