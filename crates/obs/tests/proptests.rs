//! Property-based tests for the observability core: histogram quantile accuracy
//! against exact sorted-sample quantiles, and concurrent-recording consistency.

use proptest::prelude::*;
use tcp_obs::{Counter, Histogram};

/// Nearest-rank exact quantile of a sorted sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Bucket-midpoint quantile estimates stay within the 1/16 relative error bound
    // implied by ≤ 1/8-wide buckets, across seven orders of magnitude.
    #[test]
    fn quantiles_match_exact_within_bound(
        values in proptest::collection::vec(1u64..10_000_000, 1..400),
        q in 0.0f64..1.0,
    ) {
        let mut values = values.clone();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max, *values.last().unwrap());
        let exact = exact_quantile(&values, q) as f64;
        let estimate = snap.quantile(q);
        let rel = (estimate - exact).abs() / exact;
        prop_assert!(rel <= 1.0 / 16.0 + 1e-12, "q={} estimate={} exact={} rel={}", q, estimate, exact, rel);
    }

    // Values below 16 are recovered exactly, whatever the mix.
    #[test]
    fn small_values_round_trip_exactly(values in proptest::collection::vec(0u64..16, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(snap.quantile(q) as u64, exact_quantile(&sorted, q));
        }
    }

    // Merging per-thread snapshots equals recording everything into one histogram,
    // and the sharded totals lose nothing under concurrency.
    #[test]
    fn concurrent_shards_sum_to_total(
        per_thread in proptest::collection::vec(1u64..1_000_000, 1..50),
        threads in 2usize..6,
    ) {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let h = &h;
                let c = &c;
                let per_thread = &per_thread;
                scope.spawn(move || {
                    for &v in per_thread {
                        h.record(v);
                        c.incr();
                    }
                });
            }
        });
        let snap = h.snapshot();
        let n = (threads * per_thread.len()) as u64;
        prop_assert_eq!(snap.count, n);
        prop_assert_eq!(c.get(), n);
        prop_assert_eq!(snap.sum, per_thread.iter().sum::<u64>() * threads as u64);
        prop_assert_eq!(snap.max, *per_thread.iter().max().unwrap());
    }

    // delta_since / merge round-trip under concurrent recording: with one
    // histogram shard per thread, the delta of the merged shards equals the merge
    // of the per-shard deltas — so sharded collection and interval measurement
    // commute, which is what lets serve-bench difference a merged advisor
    // snapshot per worker count.
    #[test]
    fn delta_of_merge_equals_merge_of_deltas(
        warmup in proptest::collection::vec(1u64..1_000_000, 0..60),
        interval in proptest::collection::vec(1u64..1_000_000, 1..60),
        threads in 2usize..5,
    ) {
        let shards: Vec<Histogram> = (0..threads).map(|_| Histogram::new()).collect();
        std::thread::scope(|scope| {
            for shard in &shards {
                let warmup = &warmup;
                scope.spawn(move || {
                    for &v in warmup {
                        shard.record(v);
                    }
                });
            }
        });
        let baselines: Vec<_> = shards.iter().map(|s| s.snapshot()).collect();
        let mut merged_baseline = tcp_obs::HistogramSnapshot::empty();
        for b in &baselines {
            merged_baseline.merge(b);
        }
        std::thread::scope(|scope| {
            for shard in &shards {
                let interval = &interval;
                scope.spawn(move || {
                    for &v in interval {
                        shard.record(v);
                    }
                });
            }
        });
        let finals: Vec<_> = shards.iter().map(|s| s.snapshot()).collect();
        let mut merged_final = tcp_obs::HistogramSnapshot::empty();
        for f in &finals {
            merged_final.merge(f);
        }
        let delta_of_merge = merged_final.delta_since(&merged_baseline);
        let mut merge_of_deltas = tcp_obs::HistogramSnapshot::empty();
        for (f, b) in finals.iter().zip(&baselines) {
            merge_of_deltas.merge(&f.delta_since(b));
        }
        prop_assert_eq!(delta_of_merge.count, merge_of_deltas.count);
        prop_assert_eq!(delta_of_merge.count, (threads * interval.len()) as u64);
        prop_assert_eq!(delta_of_merge.sum, merge_of_deltas.sum);
        prop_assert_eq!(
            delta_of_merge.sum,
            interval.iter().sum::<u64>() * threads as u64
        );
        for q in [0.5, 0.9, 0.99, 0.999] {
            prop_assert_eq!(delta_of_merge.quantile(q), merge_of_deltas.quantile(q));
        }
        prop_assert_eq!(delta_of_merge.quantile(1.0), merge_of_deltas.quantile(1.0));
    }

    // The SLO engine's windowed quantiles agree with exact quantiles: record
    // samples in tick-sized chunks, snapshot after each tick (the evaluator's
    // delta ring), then for every possible window start the quantile of
    // `latest.delta_since(ring[start])` matches the exact nearest-rank quantile
    // of precisely the samples recorded inside that window, within the 1/16
    // bucket-midpoint bound.
    #[test]
    fn windowed_quantiles_from_delta_ring_match_exact(
        ticks in proptest::collection::vec(
            proptest::collection::vec(1u64..10_000_000, 1..40), 2..8),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        let mut ring = vec![h.snapshot()]; // baseline before any tick
        for chunk in &ticks {
            for &v in chunk {
                h.record(v);
            }
            ring.push(h.snapshot());
        }
        let latest = ring.last().unwrap();
        for start in 0..ticks.len() {
            let delta = latest.delta_since(&ring[start]);
            let mut window: Vec<u64> = ticks[start..].iter().flatten().copied().collect();
            window.sort_unstable();
            prop_assert_eq!(delta.count, window.len() as u64);
            let exact = exact_quantile(&window, q) as f64;
            let estimate = delta.quantile(q);
            let rel = (estimate - exact).abs() / exact;
            prop_assert!(
                rel <= 1.0 / 16.0 + 1e-12,
                "window [{}..]: q={} estimate={} exact={} rel={}",
                start, q, estimate, exact, rel
            );
        }
    }

    // delta_since(earlier) recovers exactly the samples recorded in between.
    #[test]
    fn delta_recovers_interval_samples(
        before in proptest::collection::vec(1u64..1_000_000, 0..100),
        after in proptest::collection::vec(1u64..1_000_000, 1..100),
    ) {
        let h = Histogram::new();
        for &v in &before {
            h.record(v);
        }
        let earlier = h.snapshot();
        for &v in &after {
            h.record(v);
        }
        let delta = h.snapshot().delta_since(&earlier);
        prop_assert_eq!(delta.count, after.len() as u64);
        prop_assert_eq!(delta.sum, after.iter().sum::<u64>());
        let mut sorted = after.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, 0.5) as f64;
        let rel = (delta.quantile(0.5) - exact).abs() / exact;
        prop_assert!(rel <= 1.0 / 16.0 + 1e-12);
    }
}
