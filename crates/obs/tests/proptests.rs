//! Property-based tests for the observability core: histogram quantile accuracy
//! against exact sorted-sample quantiles, concurrent-recording consistency, and
//! the continuous profiler's collapsed-stack invariants.

use proptest::prelude::*;
use tcp_obs::{Counter, Histogram};

/// Frame alphabet for synthetic span stacks: interned-looking dotted names the
/// draw indices below map onto.
const FRAMES: [&str; 6] = [
    "serve.connection",
    "serve.batch.flush",
    "serve.request",
    "advisor.route",
    "advisor.lookup",
    "advisor.build.dp",
];

/// Maps drawn frame indices (one inner vec = the stack one tick sampled) onto
/// named stacks, outermost frame first.
fn to_stacks(raw: &[Vec<u64>]) -> Vec<Vec<String>> {
    raw.iter()
        .map(|stack| {
            stack
                .iter()
                .map(|&i| FRAMES[i as usize % FRAMES.len()].to_string())
                .collect()
        })
        .collect()
}

/// Folds one sampled stack per tick the way the sampler does, returning the
/// collapsed map.
fn fold(ticks: &[Vec<String>]) -> Vec<(Vec<String>, u64)> {
    let mut map: std::collections::BTreeMap<Vec<String>, u64> = std::collections::BTreeMap::new();
    for stack in ticks {
        *map.entry(stack.clone()).or_insert(0) += 1;
    }
    map.into_iter().collect()
}

/// Checks the prefix-closure invariant on a frame tree: every node's inclusive
/// count equals its terminal samples plus the sum of its children's counts,
/// and no child outweighs its parent.
fn assert_prefix_closed(node: &tcp_obs::profile::FrameNode) {
    let child_sum: u64 = node.children.values().map(|c| c.count).sum();
    assert_eq!(
        node.count,
        node.terminal + child_sum,
        "frame {} is not prefix-closed",
        node.name
    );
    for child in node.children.values() {
        assert!(child.count <= node.count);
        assert_prefix_closed(child);
    }
}

/// Nearest-rank exact quantile of a sorted sample.
fn exact_quantile(sorted: &[u64], q: f64) -> u64 {
    let target = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[target - 1]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // Bucket-midpoint quantile estimates stay within the 1/16 relative error bound
    // implied by ≤ 1/8-wide buckets, across seven orders of magnitude.
    #[test]
    fn quantiles_match_exact_within_bound(
        values in proptest::collection::vec(1u64..10_000_000, 1..400),
        q in 0.0f64..1.0,
    ) {
        let mut values = values.clone();
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let snap = h.snapshot();
        prop_assert_eq!(snap.count, values.len() as u64);
        prop_assert_eq!(snap.sum, values.iter().sum::<u64>());
        prop_assert_eq!(snap.max, *values.last().unwrap());
        let exact = exact_quantile(&values, q) as f64;
        let estimate = snap.quantile(q);
        let rel = (estimate - exact).abs() / exact;
        prop_assert!(rel <= 1.0 / 16.0 + 1e-12, "q={} estimate={} exact={} rel={}", q, estimate, exact, rel);
    }

    // Values below 16 are recovered exactly, whatever the mix.
    #[test]
    fn small_values_round_trip_exactly(values in proptest::collection::vec(0u64..16, 1..200)) {
        let h = Histogram::new();
        for &v in &values {
            h.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let snap = h.snapshot();
        for q in [0.1, 0.5, 0.9] {
            prop_assert_eq!(snap.quantile(q) as u64, exact_quantile(&sorted, q));
        }
    }

    // Merging per-thread snapshots equals recording everything into one histogram,
    // and the sharded totals lose nothing under concurrency.
    #[test]
    fn concurrent_shards_sum_to_total(
        per_thread in proptest::collection::vec(1u64..1_000_000, 1..50),
        threads in 2usize..6,
    ) {
        let h = Histogram::new();
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                let h = &h;
                let c = &c;
                let per_thread = &per_thread;
                scope.spawn(move || {
                    for &v in per_thread {
                        h.record(v);
                        c.incr();
                    }
                });
            }
        });
        let snap = h.snapshot();
        let n = (threads * per_thread.len()) as u64;
        prop_assert_eq!(snap.count, n);
        prop_assert_eq!(c.get(), n);
        prop_assert_eq!(snap.sum, per_thread.iter().sum::<u64>() * threads as u64);
        prop_assert_eq!(snap.max, *per_thread.iter().max().unwrap());
    }

    // delta_since / merge round-trip under concurrent recording: with one
    // histogram shard per thread, the delta of the merged shards equals the merge
    // of the per-shard deltas — so sharded collection and interval measurement
    // commute, which is what lets serve-bench difference a merged advisor
    // snapshot per worker count.
    #[test]
    fn delta_of_merge_equals_merge_of_deltas(
        warmup in proptest::collection::vec(1u64..1_000_000, 0..60),
        interval in proptest::collection::vec(1u64..1_000_000, 1..60),
        threads in 2usize..5,
    ) {
        let shards: Vec<Histogram> = (0..threads).map(|_| Histogram::new()).collect();
        std::thread::scope(|scope| {
            for shard in &shards {
                let warmup = &warmup;
                scope.spawn(move || {
                    for &v in warmup {
                        shard.record(v);
                    }
                });
            }
        });
        let baselines: Vec<_> = shards.iter().map(|s| s.snapshot()).collect();
        let mut merged_baseline = tcp_obs::HistogramSnapshot::empty();
        for b in &baselines {
            merged_baseline.merge(b);
        }
        std::thread::scope(|scope| {
            for shard in &shards {
                let interval = &interval;
                scope.spawn(move || {
                    for &v in interval {
                        shard.record(v);
                    }
                });
            }
        });
        let finals: Vec<_> = shards.iter().map(|s| s.snapshot()).collect();
        let mut merged_final = tcp_obs::HistogramSnapshot::empty();
        for f in &finals {
            merged_final.merge(f);
        }
        let delta_of_merge = merged_final.delta_since(&merged_baseline);
        let mut merge_of_deltas = tcp_obs::HistogramSnapshot::empty();
        for (f, b) in finals.iter().zip(&baselines) {
            merge_of_deltas.merge(&f.delta_since(b));
        }
        prop_assert_eq!(delta_of_merge.count, merge_of_deltas.count);
        prop_assert_eq!(delta_of_merge.count, (threads * interval.len()) as u64);
        prop_assert_eq!(delta_of_merge.sum, merge_of_deltas.sum);
        prop_assert_eq!(
            delta_of_merge.sum,
            interval.iter().sum::<u64>() * threads as u64
        );
        for q in [0.5, 0.9, 0.99, 0.999] {
            prop_assert_eq!(delta_of_merge.quantile(q), merge_of_deltas.quantile(q));
        }
        prop_assert_eq!(delta_of_merge.quantile(1.0), merge_of_deltas.quantile(1.0));
    }

    // The SLO engine's windowed quantiles agree with exact quantiles: record
    // samples in tick-sized chunks, snapshot after each tick (the evaluator's
    // delta ring), then for every possible window start the quantile of
    // `latest.delta_since(ring[start])` matches the exact nearest-rank quantile
    // of precisely the samples recorded inside that window, within the 1/16
    // bucket-midpoint bound.
    #[test]
    fn windowed_quantiles_from_delta_ring_match_exact(
        ticks in proptest::collection::vec(
            proptest::collection::vec(1u64..10_000_000, 1..40), 2..8),
        q in 0.0f64..1.0,
    ) {
        let h = Histogram::new();
        let mut ring = vec![h.snapshot()]; // baseline before any tick
        for chunk in &ticks {
            for &v in chunk {
                h.record(v);
            }
            ring.push(h.snapshot());
        }
        let latest = ring.last().unwrap();
        for start in 0..ticks.len() {
            let delta = latest.delta_since(&ring[start]);
            let mut window: Vec<u64> = ticks[start..].iter().flatten().copied().collect();
            window.sort_unstable();
            prop_assert_eq!(delta.count, window.len() as u64);
            let exact = exact_quantile(&window, q) as f64;
            let estimate = delta.quantile(q);
            let rel = (estimate - exact).abs() / exact;
            prop_assert!(
                rel <= 1.0 / 16.0 + 1e-12,
                "window [{}..]: q={} estimate={} exact={} rel={}",
                start, q, estimate, exact, rel
            );
        }
    }

    // delta_since(earlier) recovers exactly the samples recorded in between.
    #[test]
    fn delta_recovers_interval_samples(
        before in proptest::collection::vec(1u64..1_000_000, 0..100),
        after in proptest::collection::vec(1u64..1_000_000, 1..100),
    ) {
        let h = Histogram::new();
        for &v in &before {
            h.record(v);
        }
        let earlier = h.snapshot();
        for &v in &after {
            h.record(v);
        }
        let delta = h.snapshot().delta_since(&earlier);
        prop_assert_eq!(delta.count, after.len() as u64);
        prop_assert_eq!(delta.sum, after.iter().sum::<u64>());
        let mut sorted = after.clone();
        sorted.sort_unstable();
        let exact = exact_quantile(&sorted, 0.5) as f64;
        let rel = (delta.quantile(0.5) - exact).abs() / exact;
        prop_assert!(rel <= 1.0 / 16.0 + 1e-12);
    }

    // Collapsed-stack totals equal the sampler's tick count: folding one
    // sampled stack per tick, the sum of collapsed counts — and equivalently
    // the root of the frame tree — recovers exactly the number of ticks, and
    // the collapsed text round-trips the same totals.
    #[test]
    fn collapsed_totals_equal_tick_count(
        raw in proptest::collection::vec(proptest::collection::vec(0u64..6, 1..6), 1..120),
    ) {
        let ticks = to_stacks(&raw);
        let stacks = fold(&ticks);
        let total: u64 = stacks.iter().map(|(_, n)| n).sum();
        prop_assert_eq!(total, ticks.len() as u64);
        let tree = tcp_obs::profile::stack_tree(&stacks);
        prop_assert_eq!(tree.count, ticks.len() as u64);
        let snap = tcp_obs::profile::ProfileSnapshot {
            armed: false,
            hz: 997,
            ticks: ticks.len() as u64,
            samples: total,
            torn: 0,
            stacks: stacks.clone(),
            alloc: Default::default(),
            alloc_sites: Vec::new(),
        };
        let mut parsed_total = 0u64;
        for line in tcp_obs::profile::collapsed(&snap).lines() {
            let (_, count) = line.rsplit_once(' ').expect("`path count` shape");
            parsed_total += count.parse::<u64>().expect("integer count");
        }
        prop_assert_eq!(parsed_total, snap.ticks);
    }

    // Every frame path in the folded tree is a prefix-closed chain: a node's
    // samples are exactly its terminal samples plus its children's, so every
    // sampled path's prefixes all exist with consistent weights (what the
    // flamegraph renderer relies on for widths to nest).
    #[test]
    fn frame_paths_are_prefix_closed_chains(
        raw in proptest::collection::vec(proptest::collection::vec(0u64..6, 1..6), 1..120),
    ) {
        let ticks = to_stacks(&raw);
        let stacks = fold(&ticks);
        let tree = tcp_obs::profile::stack_tree(&stacks);
        assert_prefix_closed(&tree);
        // And every sampled path is reachable: walking the tree along the path
        // never misses a node.
        for (path, count) in &stacks {
            let mut node = &tree;
            for frame in path {
                node = node.children.get(frame).expect("prefix chain unbroken");
                prop_assert!(node.count >= *count);
            }
            prop_assert!(node.terminal >= *count);
        }
    }
}
