//! The shared CLI exit-code convention.
//!
//! Every workspace binary (`sweep`, `calibrate`, `trace`, `advise`, `figures`,
//! `lint`) renders its outcome through the helpers below instead of ad-hoc
//! `std::process::exit` calls, so the exit-code contract is written down once:
//!
//! * `0` — success;
//! * `1` — the command ran and failed (`error: <message>` on stderr);
//! * `2` — usage error (bad flags, unknown subcommand; usage text on stderr).
//!
//! Returning [`std::process::ExitCode`] from `main` (rather than calling
//! `process::exit` mid-flight) matters here: destructors still run, so metric
//! writers, trace dumps, and profile dumps flush on the error path too.  The
//! `process-exit` lint rule enforces the "no `process::exit` outside `main`"
//! half of this contract statically.

use std::fmt::Display;
use std::process::ExitCode;

/// The exit code for usage errors (bad flags, unknown subcommands).
pub const EXIT_USAGE: u8 = 2;

/// Renders a command outcome as the process exit code: `Ok` exits `0`; `Err`
/// prints `error: <message>` to stderr and exits `1`.
pub fn exit_outcome(outcome: Result<(), String>) -> ExitCode {
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            ExitCode::FAILURE
        }
    }
}

/// Reports a usage error: prints `message` (typically the usage text) to stderr
/// and returns exit code [`EXIT_USAGE`].
pub fn usage_error(message: impl Display) -> ExitCode {
    eprintln!("{message}");
    ExitCode::from(EXIT_USAGE)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn outcome_maps_to_standard_codes() {
        assert_eq!(exit_outcome(Ok(())), ExitCode::SUCCESS);
        assert_eq!(exit_outcome(Err("boom".to_string())), ExitCode::FAILURE);
        assert_eq!(usage_error("usage: x"), ExitCode::from(2));
    }
}
