//! Rolling-window SLO evaluation: burn-rate rules over registry snapshots.
//!
//! PR 6/7 gave the serving stack raw telemetry; this module *consumes* it.  An
//! [`Evaluator`] holds a bounded ring of timestamped [`RegistrySnapshot`]s and, on
//! every tick, derives **windowed** signals from snapshot deltas — shed ratios,
//! counter rates, histogram quantiles, gauge extrema, gauge ages — and checks them
//! against declarative [`SloRule`]s.
//!
//! Rules follow the multi-window burn-rate pattern: a rule **fires** only when the
//! signal breaches its threshold over *both* a short and a long window (a long
//! window alone is slow to fire; a short window alone pages on blips), and
//! **resolves** with hysteresis when the short-window value falls back to the
//! rule's `resolve_threshold`.  Each transition is a typed [`Alert`] carrying the
//! offending window values.
//!
//! The evaluation core is deliberately clock-free: [`Evaluator::tick_with`] takes
//! the timestamp and the snapshot as arguments, so tests drive synthetic clocks
//! and synthetic registries deterministically.  The production loop
//! ([`spawn_evaluator`]) feeds it the global registry on a wall-clock tick,
//! publishes a [`HealthReport`] for `!health` probes, appends alert transitions
//! to an optional JSON-lines log, and mirrors them into the structured event log.
//!
//! Specs are declarative TOML or JSON (see [`SloSpec::from_str`]):
//!
//! ```toml
//! tick_secs = 2.0
//!
//! [[rule]]
//! name = "shed-ratio"
//! kind = "ratio"
//! numerator = ["serve.requests.shed"]
//! denominator = ["serve.requests.served", "serve.requests.shed"]
//! threshold = 0.05
//! resolve_threshold = 0.01
//! short_window_secs = 30.0
//! long_window_secs = 300.0
//! severity = "critical"
//! ```

use crate::export::{json_escape, json_number, RegistrySnapshot, SnapshotValue};
use crate::hist::HistogramSnapshot;
use crate::log::now_monotonic_secs;
use serde::Deserialize;
use std::collections::VecDeque;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Alert severity: `warn` firing makes the verdict Degraded, `critical` firing
/// makes it Unhealthy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Severity {
    /// Degrades the verdict.
    Warn,
    /// Makes the verdict Unhealthy.
    Critical,
}

impl Severity {
    /// The lowercase name used in rendered reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Severity::Warn => "warn",
            Severity::Critical => "critical",
        }
    }
}

/// The windowed signal a rule evaluates.
#[derive(Debug, Clone, PartialEq)]
pub enum Signal {
    /// `Δ(sum of numerator counters) / Δ(sum of denominator counters)` over the
    /// window; `0` when the denominator delta is zero.
    Ratio {
        /// Counter names summed into the numerator.
        numerator: Vec<String>,
        /// Counter names summed into the denominator.
        denominator: Vec<String>,
    },
    /// `Δcounter / Δseconds` over the window.
    Rate {
        /// Counter name.
        counter: String,
    },
    /// `quantile(q)` of the histogram samples recorded inside the window
    /// (bucket-wise snapshot delta, histograms merged).
    Quantile {
        /// Histogram names merged before the quantile.
        histograms: Vec<String>,
        /// Quantile in `[0, 1]`.
        q: f64,
    },
    /// Maximum gauge reading over the ticks inside the window (a spike between
    /// two ticks is invisible — the tick is the sampling rate).
    Gauge {
        /// Gauge name.
        gauge: String,
    },
    /// `now - gauge` in seconds: for gauges storing a monotonic timestamp
    /// ([`crate::log::now_monotonic_secs`]), e.g. pack staleness off
    /// `advisor.pack.loaded_at_secs`.
    Age {
        /// Gauge name holding a monotonic timestamp in seconds.
        gauge: String,
    },
}

/// One declarative SLO rule.
#[derive(Debug, Clone, PartialEq)]
pub struct SloRule {
    /// Rule name (unique within a spec).
    pub name: String,
    /// The windowed signal evaluated.
    pub signal: Signal,
    /// Firing threshold: the rule fires when the signal exceeds this over both
    /// windows.
    pub threshold: f64,
    /// Resolution threshold (hysteresis): a firing rule resolves when the
    /// short-window signal falls to or below this.  Defaults to `threshold`.
    pub resolve_threshold: f64,
    /// Short (fast-burn) window, seconds.  Defaults to 60.
    pub short_window_secs: f64,
    /// Long (slow-burn) window, seconds.  Defaults to 300.
    pub long_window_secs: f64,
    /// What a firing rule does to the verdict.  Defaults to warn.
    pub severity: Severity,
}

/// A parsed SLO spec: evaluator tick plus the rule list.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Seconds between evaluator ticks (default 5).
    pub tick_secs: f64,
    /// The rules evaluated every tick.
    pub rules: Vec<SloRule>,
}

/// Raw deserialization shape for one rule (validated into [`SloRule`]).
#[derive(Debug, Deserialize)]
struct RawRule {
    name: String,
    kind: String,
    numerator: Option<Vec<String>>,
    denominator: Option<Vec<String>>,
    counter: Option<String>,
    histograms: Option<Vec<String>>,
    gauge: Option<String>,
    q: Option<f64>,
    threshold: f64,
    resolve_threshold: Option<f64>,
    short_window_secs: Option<f64>,
    long_window_secs: Option<f64>,
    severity: Option<String>,
}

/// Raw deserialization shape for a spec: TOML uses `[[rule]]`, JSON documents
/// may use `"rules"`; both are accepted.
#[derive(Debug, Deserialize)]
struct RawSpec {
    tick_secs: Option<f64>,
    rule: Option<Vec<RawRule>>,
    rules: Option<Vec<RawRule>>,
}

fn positive(value: f64, what: &str, rule: &str) -> Result<f64, String> {
    if value.is_finite() && value > 0.0 {
        Ok(value)
    } else {
        Err(format!(
            "rule `{rule}`: {what} must be positive, got {value}"
        ))
    }
}

impl RawRule {
    fn validate(self) -> Result<SloRule, String> {
        let name = self.name;
        if name.trim().is_empty() {
            return Err("rule names must be non-empty".to_string());
        }
        let signal = match self.kind.as_str() {
            "ratio" => {
                let numerator = self
                    .numerator
                    .ok_or_else(|| format!("rule `{name}`: kind=ratio needs `numerator`"))?;
                let denominator = self
                    .denominator
                    .ok_or_else(|| format!("rule `{name}`: kind=ratio needs `denominator`"))?;
                if numerator.is_empty() || denominator.is_empty() {
                    return Err(format!(
                        "rule `{name}`: numerator/denominator must name at least one counter"
                    ));
                }
                Signal::Ratio {
                    numerator,
                    denominator,
                }
            }
            "rate" => Signal::Rate {
                counter: self
                    .counter
                    .ok_or_else(|| format!("rule `{name}`: kind=rate needs `counter`"))?,
            },
            "quantile" => {
                let histograms = self
                    .histograms
                    .ok_or_else(|| format!("rule `{name}`: kind=quantile needs `histograms`"))?;
                if histograms.is_empty() {
                    return Err(format!(
                        "rule `{name}`: `histograms` must name at least one histogram"
                    ));
                }
                let q = self
                    .q
                    .ok_or_else(|| format!("rule `{name}`: kind=quantile needs `q`"))?;
                if !(0.0..=1.0).contains(&q) {
                    return Err(format!("rule `{name}`: q must be in [0, 1], got {q}"));
                }
                Signal::Quantile { histograms, q }
            }
            "gauge" => Signal::Gauge {
                gauge: self
                    .gauge
                    .ok_or_else(|| format!("rule `{name}`: kind=gauge needs `gauge`"))?,
            },
            "age" => Signal::Age {
                gauge: self
                    .gauge
                    .ok_or_else(|| format!("rule `{name}`: kind=age needs `gauge`"))?,
            },
            other => {
                return Err(format!(
                    "rule `{name}`: unknown kind `{other}` (expected ratio, rate, \
                     quantile, gauge, or age)"
                ))
            }
        };
        let threshold = self.threshold;
        if !threshold.is_finite() {
            return Err(format!("rule `{name}`: threshold must be finite"));
        }
        let resolve_threshold = self.resolve_threshold.unwrap_or(threshold);
        if !resolve_threshold.is_finite() || resolve_threshold > threshold {
            return Err(format!(
                "rule `{name}`: resolve_threshold must be finite and <= threshold"
            ));
        }
        let short_window_secs = positive(
            self.short_window_secs.unwrap_or(60.0),
            "short_window_secs",
            &name,
        )?;
        let long_window_secs = positive(
            self.long_window_secs.unwrap_or(300.0),
            "long_window_secs",
            &name,
        )?;
        if long_window_secs < short_window_secs {
            return Err(format!(
                "rule `{name}`: long_window_secs must be >= short_window_secs"
            ));
        }
        let severity = match self.severity.as_deref() {
            None | Some("warn") => Severity::Warn,
            Some("critical") => Severity::Critical,
            Some(other) => {
                return Err(format!(
                    "rule `{name}`: unknown severity `{other}` (expected warn or critical)"
                ))
            }
        };
        Ok(SloRule {
            name,
            signal,
            threshold,
            resolve_threshold,
            short_window_secs,
            long_window_secs,
            severity,
        })
    }
}

impl SloSpec {
    /// Parses a spec from TOML or JSON text (tried in that order; JSON documents
    /// start with `{`, so the dispatch is unambiguous in practice).
    // Not the `FromStr` trait: a trait impl would hide the TOML-or-JSON contract
    // behind `.parse()` and break the `SloSpec::from_str` doc links.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(text: &str) -> Result<SloSpec, String> {
        let raw: RawSpec = if text.trim_start().starts_with('{') {
            serde_json::from_str(text).map_err(|e| format!("invalid SLO spec JSON: {e}"))?
        } else {
            toml::from_str(text).map_err(|e| format!("invalid SLO spec TOML: {e}"))?
        };
        let tick_secs = raw.tick_secs.unwrap_or(5.0);
        if !tick_secs.is_finite() || tick_secs <= 0.0 {
            return Err(format!("tick_secs must be positive, got {tick_secs}"));
        }
        let raw_rules = match (raw.rule, raw.rules) {
            (Some(r), None) | (None, Some(r)) => r,
            (Some(mut a), Some(b)) => {
                a.extend(b);
                a
            }
            (None, None) => Vec::new(),
        };
        let rules = raw_rules
            .into_iter()
            .map(RawRule::validate)
            .collect::<Result<Vec<_>, _>>()?;
        let mut names: Vec<&str> = rules.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        if names.windows(2).any(|w| w[0] == w[1]) {
            return Err("rule names must be unique".to_string());
        }
        Ok(SloSpec { tick_secs, rules })
    }

    /// Loads a spec from a TOML or JSON file.
    pub fn load(path: &std::path::Path) -> Result<SloSpec, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        SloSpec::from_str(&text)
    }
}

/// An alert transition direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Transition {
    /// The rule started firing (both windows breached).
    Firing,
    /// The rule stopped firing (short window back under `resolve_threshold`).
    Resolved,
}

impl Transition {
    /// The lowercase name used in rendered alerts.
    pub fn as_str(self) -> &'static str {
        match self {
            Transition::Firing => "firing",
            Transition::Resolved => "resolved",
        }
    }
}

/// One typed alert transition, with the offending window values attached.
#[derive(Debug, Clone, PartialEq)]
pub struct Alert {
    /// Name of the rule that transitioned.
    pub rule: String,
    /// The rule's severity.
    pub severity: Severity,
    /// Firing or resolved.
    pub transition: Transition,
    /// Evaluator time of the transition, seconds.
    pub t_secs: f64,
    /// Short-window signal value at the transition.
    pub short_value: f64,
    /// Long-window signal value at the transition.
    pub long_value: f64,
    /// The rule's firing threshold.
    pub threshold: f64,
}

impl Alert {
    /// Renders the alert as one line of sorted-key JSON (the `--alert-log`
    /// record shape).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(160);
        out.push_str("{\"long_value\":");
        json_number(self.long_value, &mut out);
        out.push_str(",\"rule\":");
        json_escape(&self.rule, &mut out);
        out.push_str(",\"severity\":");
        json_escape(self.severity.as_str(), &mut out);
        out.push_str(",\"short_value\":");
        json_number(self.short_value, &mut out);
        out.push_str(",\"t_secs\":");
        json_number(self.t_secs, &mut out);
        out.push_str(",\"threshold\":");
        json_number(self.threshold, &mut out);
        out.push_str(",\"transition\":");
        json_escape(self.transition.as_str(), &mut out);
        out.push('}');
        out
    }
}

/// The overall verdict a [`HealthReport`] carries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// No rule is firing.
    Healthy,
    /// At least one warn-severity rule is firing.
    Degraded,
    /// At least one critical-severity rule is firing.
    Unhealthy,
}

impl Verdict {
    /// The lowercase name used in rendered reports.
    pub fn as_str(self) -> &'static str {
        match self {
            Verdict::Healthy => "healthy",
            Verdict::Degraded => "degraded",
            Verdict::Unhealthy => "unhealthy",
        }
    }
}

/// One rule's state inside a [`HealthReport`].
#[derive(Debug, Clone, PartialEq)]
pub struct RuleReport {
    /// Rule name.
    pub name: String,
    /// Rule severity.
    pub severity: Severity,
    /// Whether the rule is currently firing.
    pub firing: bool,
    /// Latest short-window signal value.
    pub short_value: f64,
    /// Latest long-window signal value.
    pub long_value: f64,
    /// The rule's firing threshold.
    pub threshold: f64,
}

impl RuleReport {
    fn render(&self, out: &mut String) {
        out.push_str("{\"firing\":");
        out.push_str(if self.firing { "true" } else { "false" });
        out.push_str(",\"long_value\":");
        json_number(self.long_value, out);
        out.push_str(",\"name\":");
        json_escape(&self.name, out);
        out.push_str(",\"severity\":");
        json_escape(self.severity.as_str(), out);
        out.push_str(",\"short_value\":");
        json_number(self.short_value, out);
        out.push_str(",\"threshold\":");
        json_number(self.threshold, out);
        out.push('}');
    }
}

/// A point-in-time health verdict with per-rule detail, published by the
/// evaluator and read by `!health` probes.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// The overall verdict.
    pub verdict: Verdict,
    /// Evaluator time of this report, seconds.
    pub t_secs: f64,
    /// Per-rule states, in spec order.
    pub rules: Vec<RuleReport>,
}

impl HealthReport {
    /// Renders the per-rule states as a JSON array (sorted keys inside each
    /// rule object, spec order across rules).
    pub fn rules_json(&self) -> String {
        let mut out = String::with_capacity(16 + 128 * self.rules.len());
        out.push('[');
        for (i, rule) in self.rules.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            rule.render(&mut out);
        }
        out.push(']');
        out
    }
}

/// The rolling-window rule engine.  Clock-free: the caller supplies the tick
/// time and the snapshot, which is what makes burn-rate transitions unit-testable
/// with synthetic clocks (and the production loop a thin timer around it).
pub struct Evaluator {
    spec: SloSpec,
    /// `(t_secs, snapshot)`, oldest first; bounded by the longest rule window.
    ring: VecDeque<(f64, RegistrySnapshot)>,
    /// Whether each rule (spec order) is currently firing.
    firing: Vec<bool>,
    /// Latest per-rule window values, refreshed every tick.
    latest: Vec<(f64, f64)>,
    /// Ring retention horizon: the longest window plus one tick of slack.
    horizon_secs: f64,
}

/// Sum of the named counters in a snapshot (missing or non-counter names read 0).
fn counter_sum(snapshot: &RegistrySnapshot, names: &[String]) -> u64 {
    names
        .iter()
        .filter_map(|name| match snapshot.values.get(name) {
            Some(SnapshotValue::Counter(n)) => Some(*n),
            _ => None,
        })
        .sum()
}

/// The named gauge's reading in a snapshot (missing reads 0).
fn gauge_value(snapshot: &RegistrySnapshot, name: &str) -> f64 {
    match snapshot.values.get(name) {
        Some(SnapshotValue::Gauge(v)) => *v,
        _ => 0.0,
    }
}

/// The named histograms in a snapshot, merged (missing names contribute nothing).
fn merged_histogram(snapshot: &RegistrySnapshot, names: &[String]) -> HistogramSnapshot {
    let mut merged = HistogramSnapshot::empty();
    for name in names {
        if let Some(SnapshotValue::Histogram(h)) = snapshot.values.get(name) {
            merged.merge(h);
        }
    }
    merged
}

impl Evaluator {
    /// Creates an evaluator for `spec` with an empty history.
    pub fn new(spec: SloSpec) -> Evaluator {
        let longest = spec
            .rules
            .iter()
            .map(|r| r.long_window_secs)
            .fold(0.0f64, f64::max);
        let rule_count = spec.rules.len();
        Evaluator {
            horizon_secs: longest + spec.tick_secs,
            ring: VecDeque::new(),
            firing: vec![false; rule_count],
            latest: vec![(0.0, 0.0); rule_count],
            spec,
        }
    }

    /// The spec this evaluator runs.
    pub fn spec(&self) -> &SloSpec {
        &self.spec
    }

    /// The window boundary entry for a window ending at `now`: the newest ring
    /// entry at or before `now - window` — or the oldest entry when history is
    /// still shorter than the window, so partial windows evaluate immediately
    /// (a fresh process alerts on its first minutes instead of staying blind
    /// for a full long window).
    fn window_start(&self, now: f64, window_secs: f64) -> Option<&(f64, RegistrySnapshot)> {
        let target = now - window_secs;
        self.ring
            .iter()
            .rev()
            .find(|(t, _)| *t <= target)
            .or_else(|| self.ring.front())
    }

    /// Evaluates one signal over the window ending at `now` against `snapshot`.
    fn window_value(
        &self,
        signal: &Signal,
        now: f64,
        window_secs: f64,
        snapshot: &RegistrySnapshot,
    ) -> f64 {
        let start = self.window_start(now, window_secs);
        match signal {
            Signal::Ratio {
                numerator,
                denominator,
            } => {
                let (num0, den0) = match start {
                    Some((_, earlier)) => (
                        counter_sum(earlier, numerator),
                        counter_sum(earlier, denominator),
                    ),
                    None => (0, 0),
                };
                let dn = counter_sum(snapshot, numerator).saturating_sub(num0);
                let dd = counter_sum(snapshot, denominator).saturating_sub(den0);
                if dd == 0 {
                    0.0
                } else {
                    dn as f64 / dd as f64
                }
            }
            Signal::Rate { counter } => {
                let (t0, c0) = match start {
                    Some((t, earlier)) => (*t, counter_sum(earlier, std::slice::from_ref(counter))),
                    None => (now, 0),
                };
                let delta = counter_sum(snapshot, std::slice::from_ref(counter)).saturating_sub(c0);
                crate::rate_per_sec(delta, now - t0)
            }
            Signal::Quantile { histograms, q } => {
                let current = merged_histogram(snapshot, histograms);
                let delta = match start {
                    Some((_, earlier)) => {
                        current.delta_since(&merged_histogram(earlier, histograms))
                    }
                    None => current,
                };
                delta.quantile(*q)
            }
            Signal::Gauge { gauge } => {
                let target = now - window_secs;
                let mut max = gauge_value(snapshot, gauge);
                for (t, earlier) in self.ring.iter().rev() {
                    if *t < target {
                        break;
                    }
                    max = max.max(gauge_value(earlier, gauge));
                }
                max
            }
            Signal::Age { gauge } => (now - gauge_value(snapshot, gauge)).max(0.0),
        }
    }

    /// Advances the evaluator to `t_secs` with a fresh registry `snapshot`,
    /// returning the alert transitions this tick produced.
    ///
    /// Every rule's short and long windows are evaluated against the snapshot
    /// ring; a non-firing rule fires when **both** windows breach `threshold`,
    /// and a firing rule resolves when the short window falls to or below
    /// `resolve_threshold` (hysteresis — the long window may still be burning
    /// from the incident's tail).
    pub fn tick_with(&mut self, t_secs: f64, snapshot: RegistrySnapshot) -> Vec<Alert> {
        let mut alerts = Vec::new();
        for (index, rule) in self.spec.rules.iter().enumerate() {
            let short = self.window_value(&rule.signal, t_secs, rule.short_window_secs, &snapshot);
            let long = self.window_value(&rule.signal, t_secs, rule.long_window_secs, &snapshot);
            self.latest[index] = (short, long);
            let was_firing = self.firing[index];
            let transition = if !was_firing && short > rule.threshold && long > rule.threshold {
                self.firing[index] = true;
                Some(Transition::Firing)
            } else if was_firing && short <= rule.resolve_threshold {
                self.firing[index] = false;
                Some(Transition::Resolved)
            } else {
                None
            };
            if let Some(transition) = transition {
                alerts.push(Alert {
                    rule: rule.name.clone(),
                    severity: rule.severity,
                    transition,
                    t_secs,
                    short_value: short,
                    long_value: long,
                    threshold: rule.threshold,
                });
            }
        }
        // Retain the window the longest rule can still reach, plus the entry
        // straddling the boundary (window_start looks for `t <= target`).
        self.ring.push_back((t_secs, snapshot));
        let cutoff = t_secs - self.horizon_secs;
        while self
            .ring
            .iter()
            .take(2)
            .nth(1)
            .is_some_and(|(t, _)| *t < cutoff)
        {
            self.ring.pop_front();
        }
        alerts
    }

    /// The current health report: verdict plus per-rule state from the latest
    /// tick.
    pub fn report(&self, t_secs: f64) -> HealthReport {
        let rules: Vec<RuleReport> = self
            .spec
            .rules
            .iter()
            .enumerate()
            .map(|(i, rule)| RuleReport {
                name: rule.name.clone(),
                severity: rule.severity,
                firing: self.firing[i],
                short_value: self.latest[i].0,
                long_value: self.latest[i].1,
                threshold: rule.threshold,
            })
            .collect();
        let verdict = if rules
            .iter()
            .any(|r| r.firing && r.severity == Severity::Critical)
        {
            Verdict::Unhealthy
        } else if rules.iter().any(|r| r.firing) {
            Verdict::Degraded
        } else {
            Verdict::Healthy
        };
        HealthReport {
            verdict,
            t_secs,
            rules,
        }
    }
}

/// The most recently published report (None until an evaluator publishes one).
fn current_slot() -> &'static Mutex<Option<Arc<HealthReport>>> {
    static CURRENT: OnceLock<Mutex<Option<Arc<HealthReport>>>> = OnceLock::new();
    CURRENT.get_or_init(|| Mutex::new(None))
}

/// Publishes `report` as the process-wide current health report (what `!health`
/// probes read via [`current`]).
pub fn publish(report: HealthReport) {
    *current_slot().lock().expect("health slot poisoned") = Some(Arc::new(report));
}

/// The most recently published health report, if any evaluator has run.
pub fn current() -> Option<Arc<HealthReport>> {
    current_slot().lock().expect("health slot poisoned").clone()
}

/// Clears the published report (test isolation; the slot is process-global).
pub fn clear_current() {
    *current_slot().lock().expect("health slot poisoned") = None;
}

/// A running background evaluator; dropping it stops and joins the thread.
pub struct EvaluatorHandle {
    stop: Arc<AtomicBool>,
    thread: Option<std::thread::JoinHandle<()>>,
}

impl EvaluatorHandle {
    /// Signals the evaluator thread to stop and joins it.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(thread) = self.thread.take() {
            let _ = thread.join();
        }
    }
}

impl Drop for EvaluatorHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Spawns the production evaluator loop: every `spec.tick_secs` it snapshots the
/// global registry at [`now_monotonic_secs`], runs [`Evaluator::tick_with`],
/// publishes the [`HealthReport`], appends each alert transition as one JSON
/// line to `alert_log` (append-only; creates the file), and mirrors transitions
/// into the structured event log (`slo.alert`, warn for warn-severity rules and
/// firing=false transitions, error for critical firings).
///
/// The loop is strictly out-of-band of the serving path: it only ever *reads*
/// registry snapshots, so served response bytes are byte-identical with the
/// evaluator armed or not.
pub fn spawn_evaluator(spec: SloSpec, alert_log: Option<PathBuf>) -> EvaluatorHandle {
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let thread = std::thread::spawn(move || {
        let tick = Duration::from_secs_f64(spec.tick_secs);
        let mut evaluator = Evaluator::new(spec);
        // Baseline entry so the first real tick has a window start.
        let t0 = now_monotonic_secs();
        let _ = evaluator.tick_with(t0, crate::Registry::global().snapshot());
        publish(evaluator.report(t0));
        loop {
            // Sleep in short slices so drop() never blocks a full tick.
            let deadline = Instant::now() + tick;
            while Instant::now() < deadline {
                if flag.load(Ordering::Relaxed) {
                    return;
                }
                std::thread::sleep(Duration::from_millis(20));
            }
            let t = now_monotonic_secs();
            let alerts = evaluator.tick_with(t, crate::Registry::global().snapshot());
            publish(evaluator.report(t));
            for alert in &alerts {
                if let Some(path) = &alert_log {
                    if let Ok(mut file) = std::fs::OpenOptions::new()
                        .create(true)
                        .append(true)
                        .open(path)
                    {
                        let _ = writeln!(file, "{}", alert.to_json_line());
                    }
                }
                let firing = alert.transition == Transition::Firing;
                if firing && alert.severity == Severity::Critical {
                    crate::event!(
                        error,
                        "slo.alert",
                        rule = alert.rule.as_str(),
                        transition = alert.transition.as_str(),
                        short_value = alert.short_value,
                        long_value = alert.long_value,
                        threshold = alert.threshold,
                    );
                } else {
                    crate::event!(
                        warn,
                        "slo.alert",
                        rule = alert.rule.as_str(),
                        transition = alert.transition.as_str(),
                        short_value = alert.short_value,
                        long_value = alert.long_value,
                        threshold = alert.threshold,
                    );
                }
            }
        }
    });
    EvaluatorHandle {
        stop,
        thread: Some(thread),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    const SPEC: &str = r#"
tick_secs = 1.0

[[rule]]
name = "shed-ratio"
kind = "ratio"
numerator = ["t.shed"]
denominator = ["t.served", "t.shed"]
threshold = 0.1
resolve_threshold = 0.02
short_window_secs = 10.0
long_window_secs = 30.0
severity = "critical"

[[rule]]
name = "p99-latency"
kind = "quantile"
histograms = ["t.latency"]
q = 0.99
threshold = 1000000.0
short_window_secs = 10.0
long_window_secs = 30.0
"#;

    /// A registry snapshot with the given counter totals and latency samples.
    fn snap(registry: &Registry) -> RegistrySnapshot {
        registry.snapshot()
    }

    #[test]
    fn spec_parses_from_toml_with_defaults() {
        let spec = SloSpec::from_str(SPEC).unwrap();
        assert_eq!(spec.tick_secs, 1.0);
        assert_eq!(spec.rules.len(), 2);
        let shed = &spec.rules[0];
        assert_eq!(shed.name, "shed-ratio");
        assert_eq!(shed.severity, Severity::Critical);
        assert_eq!(shed.resolve_threshold, 0.02);
        let p99 = &spec.rules[1];
        assert_eq!(p99.severity, Severity::Warn);
        assert_eq!(p99.resolve_threshold, p99.threshold);
        match &p99.signal {
            Signal::Quantile { histograms, q } => {
                assert_eq!(histograms, &["t.latency".to_string()]);
                assert_eq!(*q, 0.99);
            }
            other => panic!("unexpected signal {other:?}"),
        }
    }

    #[test]
    fn spec_parses_from_json_and_rejects_nonsense() {
        let json = r#"{"tick_secs": 2.0, "rules": [
            {"name": "reload-failures", "kind": "rate",
             "counter": "advisor.reload.failed", "threshold": 0.5}]}"#;
        let spec = SloSpec::from_str(json).unwrap();
        assert_eq!(spec.tick_secs, 2.0);
        assert_eq!(spec.rules.len(), 1);
        assert_eq!(spec.rules[0].short_window_secs, 60.0);
        assert_eq!(spec.rules[0].long_window_secs, 300.0);

        for bad in [
            r#"{"rules": [{"name": "x", "kind": "nope", "threshold": 1.0}]}"#,
            r#"{"rules": [{"name": "x", "kind": "rate", "threshold": 1.0}]}"#,
            r#"{"rules": [{"name": "x", "kind": "quantile", "histograms": ["h"],
                "q": 1.5, "threshold": 1.0}]}"#,
            r#"{"rules": [{"name": "x", "kind": "rate", "counter": "c",
                "threshold": 1.0, "resolve_threshold": 2.0}]}"#,
            r#"{"rules": [{"name": "x", "kind": "rate", "counter": "c",
                "threshold": 1.0, "short_window_secs": 60.0, "long_window_secs": 30.0}]}"#,
            r#"{"rules": [
                {"name": "x", "kind": "rate", "counter": "c", "threshold": 1.0},
                {"name": "x", "kind": "rate", "counter": "c", "threshold": 2.0}]}"#,
            r#"{"tick_secs": 0.0, "rules": []}"#,
        ] {
            assert!(SloSpec::from_str(bad).is_err(), "accepted: {bad}");
        }
    }

    #[test]
    fn burn_rate_requires_both_windows_and_resolves_with_hysteresis() {
        let spec = SloSpec::from_str(SPEC).unwrap();
        let registry = Registry::new();
        let served = registry.counter("t.served");
        let shed = registry.counter("t.shed");
        registry.histogram("t.latency"); // registered, stays quiet
        let mut ev = Evaluator::new(spec);

        // t=0: clean baseline.
        served.add(100);
        assert!(ev.tick_with(0.0, snap(&registry)).is_empty());

        // t=5..30: a shed burst inside the short window.  Short breaches at t=5;
        // the long window (clamped to the full history) breaches too, so the rule
        // fires exactly once — and does not re-fire while it stays firing.
        served.add(50);
        shed.add(50);
        let alerts = ev.tick_with(5.0, snap(&registry));
        assert_eq!(alerts.len(), 1);
        let firing = &alerts[0];
        assert_eq!(firing.rule, "shed-ratio");
        assert_eq!(firing.transition, Transition::Firing);
        assert_eq!(firing.severity, Severity::Critical);
        assert!(firing.short_value > 0.1, "{}", firing.short_value);
        assert!(firing.long_value > 0.1, "{}", firing.long_value);
        assert_eq!(ev.report(5.0).verdict, Verdict::Unhealthy);
        assert!(ev.tick_with(8.0, snap(&registry)).is_empty(), "no re-fire");

        // Clean traffic resumes.  At t=12 the short window still reaches back to
        // the t=0 entry (no snapshot sits at or before t=2), so the burst stays
        // in the delta and the ratio (~0.083) holds above resolve_threshold: the
        // rule keeps firing.  At t=16 the short window starts at the t=5 entry —
        // taken after the burst — so the short ratio falls to 0: resolved, even
        // though the long window still sees the burst (hysteresis is
        // short-window-only).
        served.add(500);
        assert!(ev.tick_with(12.0, snap(&registry)).is_empty());
        assert_eq!(ev.report(12.0).verdict, Verdict::Unhealthy);
        served.add(500);
        let alerts = ev.tick_with(16.0, snap(&registry));
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].transition, Transition::Resolved);
        assert!(alerts[0].long_value > 0.02, "long window still burning");
        assert_eq!(ev.report(16.0).verdict, Verdict::Healthy);
    }

    #[test]
    fn short_window_breach_alone_does_not_fire() {
        // A long-window rule over a long clean history: a short blip moves the
        // short window over threshold but the long window stays under — no alert.
        let spec = SloSpec::from_str(
            r#"{"rules": [{"name": "shed", "kind": "ratio",
                "numerator": ["t.shed"], "denominator": ["t.served", "t.shed"],
                "threshold": 0.1, "short_window_secs": 10.0,
                "long_window_secs": 1000.0}]}"#,
        )
        .unwrap();
        let registry = Registry::new();
        let served = registry.counter("t.served");
        let shed = registry.counter("t.shed");
        let mut ev = Evaluator::new(spec);
        served.add(10_000);
        assert!(ev.tick_with(0.0, snap(&registry)).is_empty());
        for t in 1..=50 {
            served.add(100);
            assert!(ev.tick_with(t as f64 * 10.0, snap(&registry)).is_empty());
        }
        // Blip: 50% shed over the last short window, a drop in the long one.
        served.add(20);
        shed.add(20);
        let alerts = ev.tick_with(510.0, snap(&registry));
        assert!(
            alerts.is_empty(),
            "short-only breach must not fire: {alerts:?}"
        );
        let report = ev.report(510.0);
        assert!(report.rules[0].short_value > 0.1);
        assert!(report.rules[0].long_value < 0.1);
        assert_eq!(report.verdict, Verdict::Healthy);
    }

    #[test]
    fn quantile_rule_windows_over_histogram_deltas() {
        let spec = SloSpec::from_str(SPEC).unwrap();
        let registry = Registry::new();
        registry.counter("t.served").add(1);
        registry.counter("t.shed");
        let latency = registry.histogram("t.latency");
        let mut ev = Evaluator::new(spec);

        // History: fast samples.
        for _ in 0..100 {
            latency.record(1_000);
        }
        assert!(ev.tick_with(0.0, snap(&registry)).is_empty());

        // The last 10 seconds are slow: p99 over the *delta* breaches even though
        // the all-time p99 would be dominated by the fast history.
        for _ in 0..50 {
            latency.record(50_000_000);
        }
        let alerts = ev.tick_with(10.0, snap(&registry));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "p99-latency");
        assert!(alerts[0].short_value > 1e6);
        assert_eq!(ev.report(10.0).verdict, Verdict::Degraded);
    }

    #[test]
    fn gauge_and_age_signals() {
        let spec = SloSpec::from_str(
            r#"{"rules": [
                {"name": "queue-depth", "kind": "gauge", "gauge": "t.depth",
                 "threshold": 100.0, "short_window_secs": 20.0,
                 "long_window_secs": 20.0},
                {"name": "pack-stale", "kind": "age", "gauge": "t.loaded_at",
                 "threshold": 60.0, "resolve_threshold": 30.0,
                 "short_window_secs": 10.0, "long_window_secs": 10.0}]}"#,
        )
        .unwrap();
        let registry = Registry::new();
        let depth = registry.gauge("t.depth");
        let loaded_at = registry.gauge("t.loaded_at");
        let mut ev = Evaluator::new(spec);

        depth.set(5.0);
        loaded_at.set(0.0);
        assert!(ev.tick_with(0.0, snap(&registry)).is_empty());

        // Depth spikes over threshold; age of the pack is 50s — under threshold.
        depth.set(500.0);
        let alerts = ev.tick_with(50.0, snap(&registry));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "queue-depth");

        // The spike decays but the window max still sees the t=50 entry at t=61;
        // by t=80 the window has slid past it and the rule resolves.  Meanwhile
        // the pack age crosses 60s (strictly — age == threshold does not
        // breach): pack-stale fires.
        depth.set(1.0);
        let alerts = ev.tick_with(61.0, snap(&registry));
        assert_eq!(alerts.len(), 1, "{alerts:?}");
        assert_eq!(alerts[0].rule, "pack-stale");
        assert_eq!(alerts[0].transition, Transition::Firing);
        let alerts = ev.tick_with(80.0, snap(&registry));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "queue-depth");
        assert_eq!(alerts[0].transition, Transition::Resolved);

        // A reload refreshes the timestamp: the age falls under the resolve
        // threshold and pack-stale resolves (hysteresis honoured: 30 < 60).
        loaded_at.set(75.0);
        let alerts = ev.tick_with(90.0, snap(&registry));
        assert_eq!(alerts.len(), 1);
        assert_eq!(alerts[0].rule, "pack-stale");
        assert_eq!(alerts[0].transition, Transition::Resolved);
    }

    #[test]
    fn rate_rule_uses_counter_deltas_per_second() {
        let spec = SloSpec::from_str(
            r#"{"rules": [{"name": "reload-failures", "kind": "rate",
                "counter": "t.failed", "threshold": 0.5,
                "short_window_secs": 10.0, "long_window_secs": 10.0}]}"#,
        )
        .unwrap();
        let registry = Registry::new();
        let failed = registry.counter("t.failed");
        let mut ev = Evaluator::new(spec);
        assert!(ev.tick_with(0.0, snap(&registry)).is_empty());
        failed.add(2);
        assert!(
            ev.tick_with(10.0, snap(&registry)).is_empty(),
            "0.2/s is fine"
        );
        failed.add(20);
        let alerts = ev.tick_with(20.0, snap(&registry));
        assert_eq!(alerts.len(), 1, "2/s over the window fires");
        assert!(alerts[0].short_value > 0.5);
    }

    #[test]
    fn ring_stays_bounded() {
        let spec = SloSpec::from_str(
            r#"{"tick_secs": 1.0, "rules": [{"name": "x", "kind": "rate",
                "counter": "t.c", "threshold": 1e18,
                "short_window_secs": 5.0, "long_window_secs": 10.0}]}"#,
        )
        .unwrap();
        let registry = Registry::new();
        registry.counter("t.c");
        let mut ev = Evaluator::new(spec);
        for t in 0..1000 {
            ev.tick_with(t as f64, snap(&registry));
        }
        // Horizon is long window + tick = 11s; at 1s ticks the ring holds ~12
        // entries, never the whole history.
        assert!(ev.ring.len() <= 14, "ring grew to {}", ev.ring.len());
    }

    #[test]
    fn alert_and_report_render_sorted_json() {
        let alert = Alert {
            rule: "shed-ratio".to_string(),
            severity: Severity::Critical,
            transition: Transition::Firing,
            t_secs: 12.5,
            short_value: 0.5,
            long_value: 0.25,
            threshold: 0.1,
        };
        assert_eq!(
            alert.to_json_line(),
            "{\"long_value\":0.25,\"rule\":\"shed-ratio\",\"severity\":\"critical\",\
             \"short_value\":0.5,\"t_secs\":12.5,\"threshold\":0.1,\
             \"transition\":\"firing\"}"
        );
        let report = HealthReport {
            verdict: Verdict::Degraded,
            t_secs: 1.0,
            rules: vec![RuleReport {
                name: "r".to_string(),
                severity: Severity::Warn,
                firing: true,
                short_value: 2.0,
                long_value: 3.0,
                threshold: 1.0,
            }],
        };
        assert_eq!(
            report.rules_json(),
            "[{\"firing\":true,\"long_value\":3,\"name\":\"r\",\"severity\":\"warn\",\
             \"short_value\":2,\"threshold\":1}]"
        );
    }

    #[test]
    fn publish_and_current_round_trip() {
        let report = HealthReport {
            verdict: Verdict::Healthy,
            t_secs: 0.5,
            rules: Vec::new(),
        };
        publish(report.clone());
        let seen = current().expect("published");
        assert_eq!(*seen, report);
        clear_current();
    }
}
