//! Exposition formats: a one-line JSON snapshot and a Prometheus text dump.
//!
//! Both formats are rendered from an owned [`RegistrySnapshot`] so the output is a
//! consistent point-in-time view, and both iterate the snapshot's `BTreeMap`, so
//! output ordering is deterministic (sorted by metric name).  Neither pulls in a
//! serializer: the formats are simple enough that hand-rolled escaping keeps the
//! crate dependency-free.

use crate::hist::HistogramSnapshot;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One metric's value inside a [`RegistrySnapshot`].
pub enum SnapshotValue {
    /// Monotone counter total.
    Counter(u64),
    /// Instantaneous gauge reading.
    Gauge(f64),
    /// Folded histogram.
    Histogram(HistogramSnapshot),
}

/// A point-in-time view of a whole registry, keyed by metric name (sorted).
pub struct RegistrySnapshot {
    /// Metric name → value, in sorted order.
    pub values: BTreeMap<String, SnapshotValue>,
}

/// Escapes a string for inclusion in a JSON document (shared with the trace
/// exporters).
pub(crate) fn json_escape(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Renders an `f64` as a JSON number (`null` for non-finite values, integers
/// without a trailing `.0` so counters read naturally).  Shared with the event
/// log and health report renderers.
pub(crate) fn json_number(v: f64, out: &mut String) {
    if !v.is_finite() {
        out.push_str("null");
    } else if v == v.trunc() && v.abs() < 9.007_199_254_740_992e15 {
        let _ = write!(out, "{}", v as i64);
    } else {
        let _ = write!(out, "{v}");
    }
}

/// Sanitizes a dotted metric name into a Prometheus metric name:
/// `[a-zA-Z0-9_:]` pass through, everything else becomes `_`, and a leading
/// digit gains a `_` prefix.
fn prometheus_name(name: &str) -> String {
    let mut out = String::with_capacity(name.len() + 1);
    for (i, c) in name.chars().enumerate() {
        match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => out.push(c),
            '0'..='9' => {
                if i == 0 {
                    out.push('_');
                }
                out.push(c);
            }
            _ => out.push('_'),
        }
    }
    out
}

/// Renders an `f64` for the Prometheus text format (`NaN`, `+Inf`, `-Inf` spelled
/// out; everything else via the shortest round-trip `Display`).
fn prometheus_number(v: f64, out: &mut String) {
    if v.is_nan() {
        out.push_str("NaN");
    } else if v.is_infinite() {
        out.push_str(if v > 0.0 { "+Inf" } else { "-Inf" });
    } else {
        let _ = write!(out, "{v}");
    }
}

impl RegistrySnapshot {
    /// Renders the snapshot as a single line of JSON: an object keyed by metric
    /// name, sorted.  Counters become integers, gauges numbers (non-finite → `null`),
    /// histograms objects `{"count":..,"sum":..,"mean":..,"p50":..,"p90":..,
    /// "p99":..,"p999":..,"max":..}` with bucket detail omitted (quantiles are
    /// pre-computed so downstream log pipelines need no histogram math; p999 is
    /// included because tail latency is what overload shedding is judged on).
    pub fn to_json_line(&self) -> String {
        let mut out = String::with_capacity(64 + 48 * self.values.len());
        out.push('{');
        let mut first = true;
        for (name, value) in &self.values {
            if !first {
                out.push(',');
            }
            first = false;
            json_escape(name, &mut out);
            out.push(':');
            match value {
                SnapshotValue::Counter(n) => {
                    let _ = write!(out, "{n}");
                }
                SnapshotValue::Gauge(v) => json_number(*v, &mut out),
                SnapshotValue::Histogram(h) => {
                    out.push_str("{\"count\":");
                    let _ = write!(out, "{}", h.count);
                    out.push_str(",\"sum\":");
                    let _ = write!(out, "{}", h.sum);
                    out.push_str(",\"mean\":");
                    json_number(h.mean(), &mut out);
                    for (label, q) in [("p50", 0.5), ("p90", 0.9), ("p99", 0.99), ("p999", 0.999)] {
                        let _ = write!(out, ",\"{label}\":");
                        json_number(h.quantile(q), &mut out);
                    }
                    out.push_str(",\"max\":");
                    let _ = write!(out, "{}", h.max);
                    out.push('}');
                }
            }
        }
        out.push('}');
        out
    }

    /// Renders the snapshot in the Prometheus text exposition format (version 0.0.4).
    ///
    /// Counters render as `# TYPE <name> counter` plus one sample; gauges likewise as
    /// `gauge`; histograms as the conventional `_bucket{le="..."}` cumulative series
    /// (only non-empty buckets, plus the mandatory `+Inf`), `_sum`, and `_count`.
    /// Dots in metric names become underscores.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::with_capacity(128 + 96 * self.values.len());
        for (name, value) in &self.values {
            let pname = prometheus_name(name);
            match value {
                SnapshotValue::Counter(n) => {
                    let _ = writeln!(out, "# TYPE {pname} counter");
                    let _ = writeln!(out, "{pname} {n}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "# TYPE {pname} gauge");
                    let _ = write!(out, "{pname} ");
                    prometheus_number(*v, &mut out);
                    out.push('\n');
                }
                SnapshotValue::Histogram(h) => {
                    let _ = writeln!(out, "# TYPE {pname} histogram");
                    for (upper, cumulative) in h.cumulative_buckets() {
                        let _ = writeln!(out, "{pname}_bucket{{le=\"{upper}\"}} {cumulative}");
                    }
                    let _ = writeln!(out, "{pname}_bucket{{le=\"+Inf\"}} {}", h.count);
                    let _ = writeln!(out, "{pname}_sum {}", h.sum);
                    let _ = writeln!(out, "{pname}_count {}", h.count);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hist::Histogram;

    fn sample_snapshot() -> RegistrySnapshot {
        let h = Histogram::new();
        for v in [5u64, 100, 100, 2_000] {
            h.record(v);
        }
        let mut values = BTreeMap::new();
        values.insert(
            "serve.requests.served".to_string(),
            SnapshotValue::Counter(7),
        );
        values.insert("serve.queue.depth".to_string(), SnapshotValue::Gauge(2.0));
        values.insert(
            "advisor.latency.best_policy".to_string(),
            SnapshotValue::Histogram(h.snapshot()),
        );
        RegistrySnapshot { values }
    }

    #[test]
    fn json_line_is_one_sorted_line() {
        let json = sample_snapshot().to_json_line();
        assert!(!json.contains('\n'));
        assert!(json.starts_with("{\"advisor.latency.best_policy\":{\"count\":4,"));
        let served = json.find("serve.requests.served").unwrap();
        let depth = json.find("serve.queue.depth").unwrap();
        assert!(depth < served, "keys must be sorted");
        assert!(json.contains("\"serve.requests.served\":7"));
        assert!(json.contains("\"serve.queue.depth\":2"));
        assert!(json.contains("\"max\":2000"));
    }

    #[test]
    fn json_escapes_and_nulls() {
        let mut values = BTreeMap::new();
        values.insert("odd\"name".to_string(), SnapshotValue::Gauge(f64::NAN));
        let json = RegistrySnapshot { values }.to_json_line();
        assert_eq!(json, "{\"odd\\\"name\":null}");
    }

    #[test]
    fn prometheus_dump_has_expected_families() {
        let text = sample_snapshot().to_prometheus();
        assert!(text.contains("# TYPE serve_requests_served counter\nserve_requests_served 7\n"));
        assert!(text.contains("# TYPE serve_queue_depth gauge\nserve_queue_depth 2\n"));
        assert!(text.contains("# TYPE advisor_latency_best_policy histogram"));
        assert!(text.contains("advisor_latency_best_policy_bucket{le=\"+Inf\"} 4"));
        assert!(text.contains("advisor_latency_best_policy_count 4"));
        assert!(text.contains("advisor_latency_best_policy_sum 2205"));
        // Cumulative bucket counts end at the total.
        let last_le = text
            .lines()
            .rfind(|l| l.contains("_bucket{le=") && !l.contains("+Inf"))
            .unwrap();
        assert!(last_le.ends_with(" 4"));
    }

    #[test]
    fn prometheus_name_sanitization() {
        assert_eq!(prometheus_name("a.b-c.d"), "a_b_c_d");
        assert_eq!(prometheus_name("9lives"), "_9lives");
        assert_eq!(prometheus_name("ok_name:sub"), "ok_name:sub");
    }
}
