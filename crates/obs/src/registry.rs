//! The metric registry: named counters, gauges, and histograms with a global instance.
//!
//! Metrics are registered once by name and live for the life of the process
//! (`&'static` handles, leaked on first registration).  Registration takes a short
//! mutex; recording afterwards is lock-free.  Names are free-form dotted paths
//! (`"serve.requests.served"`); the exposition layer maps them to output formats.

use crate::export::{RegistrySnapshot, SnapshotValue};
use crate::hist::{Histogram, HistogramSnapshot};
use crate::pad::{thread_shard, PaddedU64, SHARDS};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// A monotone event counter, sharded across cache-line-padded cells.
///
/// Unlike [`Histogram`] recording, counter increments are **not** gated by the crate
/// enable flag: counters back user-facing surfaces such as the advisor's `!stats`
/// line, which must keep working even when latency instrumentation is switched off.
#[derive(Debug, Default)]
pub struct Counter {
    shards: [PaddedU64; SHARDS],
}

impl Counter {
    /// A zeroed counter.
    pub const fn new() -> Self {
        Counter {
            shards: [
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
                PaddedU64::new(),
            ],
        }
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.shards[thread_shard()]
            .0
            .fetch_add(n, Ordering::Relaxed);
    }

    /// Sum of all shards.
    pub fn get(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.0.load(Ordering::Relaxed))
            .sum()
    }

    /// Resets every shard to zero (used by pack-scoped stats on `!reload`).
    pub fn reset(&self) {
        for shard in &self.shards {
            shard.0.store(0, Ordering::Relaxed);
        }
    }
}

/// A last-write-wins instantaneous value (queue depth, in-flight requests, K-S
/// statistics).  Stored as `f64` bits in one atomic; `add`/`sub` are
/// compare-and-swap loops, cheap at gauge update rates.
#[derive(Debug)]
pub struct Gauge {
    bits: AtomicU64,
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

impl Gauge {
    /// A gauge reading zero.
    pub const fn new() -> Self {
        Gauge {
            bits: AtomicU64::new(0f64.to_bits()),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: f64) {
        self.bits.store(value.to_bits(), Ordering::Relaxed);
    }

    /// Reads the gauge.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::Relaxed))
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: f64) {
        let mut current = self.bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(current) + delta).to_bits();
            match self.bits.compare_exchange_weak(
                current,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => return,
                Err(seen) => current = seen,
            }
        }
    }

    /// Subtracts `delta`.
    pub fn sub(&self, delta: f64) {
        self.add(-delta);
    }
}

/// What a name is registered as; re-registering under a different kind panics.
enum Metric {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

/// A named collection of metrics.
///
/// Most code uses the process-global registry via [`Registry::global`] (or the
/// crate-level [`crate::counter`]/[`crate::gauge`]/[`crate::histogram`] shorthands);
/// separate instances exist for tests and for delta-scoped measurement.
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// The process-global registry behind [`Registry::global`].
static GLOBAL: Registry = Registry::new();

impl Default for Registry {
    fn default() -> Self {
        Self::new()
    }
}

impl Registry {
    /// An empty registry.
    pub const fn new() -> Self {
        Registry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// The process-global registry.
    pub fn global() -> &'static Registry {
        &GLOBAL
    }

    /// Returns the counter registered under `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a gauge or histogram.
    pub fn counter(&self, name: &str) -> &'static Counter {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Counter(Box::leak(Box::new(Counter::new()))))
        {
            Metric::Counter(c) => c,
            _ => panic!("metric `{name}` is already registered with a different type"),
        }
    }

    /// Returns the gauge registered under `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or histogram.
    pub fn gauge(&self, name: &str) -> &'static Gauge {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Gauge(Box::leak(Box::new(Gauge::new()))))
        {
            Metric::Gauge(g) => g,
            _ => panic!("metric `{name}` is already registered with a different type"),
        }
    }

    /// Returns the histogram registered under `name`, registering it on first use.
    ///
    /// # Panics
    /// If `name` is already registered as a counter or gauge.
    pub fn histogram(&self, name: &str) -> &'static Histogram {
        let mut metrics = self.metrics.lock().unwrap();
        match metrics
            .entry(name.to_string())
            .or_insert_with(|| Metric::Histogram(Box::leak(Box::new(Histogram::new()))))
        {
            Metric::Histogram(h) => h,
            _ => panic!("metric `{name}` is already registered with a different type"),
        }
    }

    /// A point-in-time snapshot of every registered metric, keyed by name (sorted:
    /// the map is a `BTreeMap`, so every export walks names deterministically).
    pub fn snapshot(&self) -> RegistrySnapshot {
        let metrics = self.metrics.lock().unwrap();
        let mut values = BTreeMap::new();
        for (name, metric) in metrics.iter() {
            let value = match metric {
                Metric::Counter(c) => SnapshotValue::Counter(c.get()),
                Metric::Gauge(g) => SnapshotValue::Gauge(g.get()),
                Metric::Histogram(h) => SnapshotValue::Histogram(h.snapshot()),
            };
            values.insert(name.clone(), value);
        }
        RegistrySnapshot { values }
    }

    /// Snapshot of one histogram by name, if registered.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        let metrics = self.metrics.lock().unwrap();
        match metrics.get(name) {
            Some(Metric::Histogram(h)) => Some(h.snapshot()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trips_and_resets() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn counter_sums_across_threads() {
        let c = std::sync::Arc::new(Counter::new());
        std::thread::scope(|scope| {
            for _ in 0..8 {
                let c = std::sync::Arc::clone(&c);
                scope.spawn(move || {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 80_000);
    }

    #[test]
    fn gauge_add_sub_set() {
        let g = Gauge::new();
        g.set(3.5);
        g.add(1.0);
        g.sub(0.5);
        assert!((g.get() - 4.0).abs() < 1e-12);
    }

    #[test]
    fn registry_returns_the_same_handle() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.incr();
        assert_eq!(b.get(), 1);
        assert!(std::ptr::eq(a, b));
    }

    #[test]
    #[should_panic(expected = "different type")]
    fn registry_rejects_kind_collisions() {
        let r = Registry::new();
        r.counter("clash");
        r.gauge("clash");
    }

    #[test]
    fn snapshot_is_sorted_by_name() {
        let r = Registry::new();
        r.counter("b.two").add(2);
        r.counter("a.one").add(1);
        r.gauge("c.three").set(3.0);
        let snap = r.snapshot();
        let names: Vec<&str> = snap.values.keys().map(String::as_str).collect();
        assert_eq!(names, ["a.one", "b.two", "c.three"]);
    }
}
