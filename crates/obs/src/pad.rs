//! Shared sharding helpers: cache-line padding and thread-to-shard hashing.

use std::hash::{Hash, Hasher};
use std::sync::atomic::AtomicU64;

/// Number of recording shards per metric.  Eight shards cover typical worker-pool
/// sizes; beyond that, the hash spreads threads evenly enough that residual
/// contention is a relaxed `fetch_add` on a shared line, not a lock.
pub const SHARDS: usize = 8;

/// A `u64` atomic padded to its own cache line, so adjacent shards of a sharded
/// counter never false-share.
#[repr(align(64))]
#[derive(Debug, Default)]
pub struct PaddedU64(pub AtomicU64);

impl PaddedU64 {
    /// A zeroed padded atomic.
    pub const fn new() -> Self {
        PaddedU64(AtomicU64::new(0))
    }
}

thread_local! {
    static SHARD: usize = {
        let mut hasher = std::collections::hash_map::DefaultHasher::new();
        std::thread::current().id().hash(&mut hasher);
        (hasher.finish() as usize) % SHARDS
    };
}

/// The calling thread's stable shard index in `[0, SHARDS)`.
#[inline]
pub fn thread_shard() -> usize {
    SHARD.with(|s| *s)
}
