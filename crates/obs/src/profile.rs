//! Continuous profiling: a wall-clock span-stack sampler and an allocation
//! profiler, with collapsed-stack / flamegraph-SVG / JSON exporters.
//!
//! Metrics (registry) say *how much*, traces ([`crate::trace`]) say *which
//! request* — this module says **where the time and memory go**, cheaply enough
//! to leave on in production.  Two independent sources feed one profile:
//!
//! * **Wall-clock sampler** — every span guard additionally maintains a
//!   per-thread **stack mirror**: a fixed-depth array of interned site ids that
//!   any thread can read, guarded by a sequence tag the same way the flight
//!   recorder poisons slots mid-write.  A background thread ([`arm`]) wakes
//!   `hz` times a second, snapshots every live thread's mirror, and folds each
//!   non-empty stack into a collapsed-stack table keyed by the site path.  The
//!   cost on instrumented threads is two short seqlock writes per span; threads
//!   that are idle (empty stack) contribute nothing.
//! * **Allocation profiler** — [`CountingAlloc`] is a counting
//!   `#[global_allocator]` wrapper over [`System`] (the *only* unsafe code in
//!   this crate, and it only delegates).  When counting is switched on
//!   ([`set_counting`]) it attributes allocation counts and bytes to the
//!   innermost active span site via a const-initialised thread-local — no
//!   allocation, no locks, nothing that could re-enter the allocator — and
//!   tracks process-wide live/peak bytes.  Frees are counted globally (the
//!   freeing site is rarely the allocating site, so per-site free attribution
//!   would mislead).
//!
//! # Reading a profile
//!
//! [`snapshot`] resolves site ids to names; [`collapsed`] renders
//! inferno-compatible `frame;frame;frame count` lines, [`flamegraph_svg`]
//! renders a standalone SVG flamegraph (no external tooling — open the file in
//! a browser), and [`profile_json`] is the sorted-key JSON object the serve
//! layer's `!profile` control line returns.
//!
//! # Determinism and honesty
//!
//! Profiling never changes what a run produces — mirrors and counters live
//! strictly outside result streams.  The sampler is *statistical*: a sample
//! that races a stack push/pop is detected by the sequence tag and dropped
//! (counted in the `torn` field), and stacks deeper than
//! [`MAX_STACK_DEPTH`] are truncated at the mirror's capacity.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Duration;

/// Deepest span stack the cross-thread mirror records; deeper frames still
/// count toward depth but their site ids are not stored (samples truncate).
pub const MAX_STACK_DEPTH: usize = 48;

/// Per-site allocation table capacity: slot 0 is "no active span", the last
/// slot pools every site id past the capacity, the rest map site `i` to slot
/// `i + 1`.
pub const MAX_ALLOC_SITES: usize = 512;

/// Sentinel for "no active span site" in the thread-local attribution cell.
const NO_SITE: u32 = u32::MAX;

// ---------------------------------------------------------------------------
// The per-thread stack mirror (seqlock-guarded, any-thread readable)
// ---------------------------------------------------------------------------

/// One thread's span stack, mirrored as atomics so the sampler can read it
/// from outside.  Only the owning thread writes.  The sequence tag is odd
/// while a push/pop is in flight; a reader that observes an odd tag, or a tag
/// change across its copy, drops the sample as torn.
struct StackMirror {
    seq: AtomicU64,
    depth: AtomicU64,
    sites: [AtomicU32; MAX_STACK_DEPTH],
}

enum Sampled {
    Idle,
    Torn,
    Stack(Vec<u32>),
}

impl StackMirror {
    fn new() -> StackMirror {
        StackMirror {
            seq: AtomicU64::new(0),
            depth: AtomicU64::new(0),
            sites: std::array::from_fn(|_| AtomicU32::new(0)),
        }
    }

    /// Pushes `site` (owning thread only).
    fn push(&self, site: u32) {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Release);
        let depth = self.depth.load(Ordering::Relaxed) as usize;
        if depth < MAX_STACK_DEPTH {
            self.sites[depth].store(site, Ordering::Relaxed);
        }
        self.depth.store(depth as u64 + 1, Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
    }

    /// Pops one frame (owning thread only); returns the new innermost site,
    /// or [`NO_SITE`] when the stack empties.
    fn pop(&self) -> u32 {
        let seq = self.seq.load(Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(1), Ordering::Release);
        let depth = self.depth.load(Ordering::Relaxed).saturating_sub(1);
        self.depth.store(depth, Ordering::Relaxed);
        self.seq.store(seq.wrapping_add(2), Ordering::Release);
        if depth == 0 {
            NO_SITE
        } else {
            let top = (depth as usize).min(MAX_STACK_DEPTH) - 1;
            self.sites[top].load(Ordering::Relaxed)
        }
    }

    /// Copies the stack (any thread); torn and idle reads are distinguished.
    fn sample(&self) -> Sampled {
        let before = self.seq.load(Ordering::Acquire);
        if before & 1 == 1 {
            return Sampled::Torn;
        }
        let depth = self.depth.load(Ordering::Acquire) as usize;
        if depth == 0 {
            return Sampled::Idle;
        }
        let stored = depth.min(MAX_STACK_DEPTH);
        let mut path = Vec::with_capacity(stored);
        for slot in &self.sites[..stored] {
            path.push(slot.load(Ordering::Relaxed));
        }
        if self.seq.load(Ordering::Acquire) != before {
            return Sampled::Torn;
        }
        Sampled::Stack(path)
    }
}

fn mirrors() -> &'static Mutex<Vec<Arc<StackMirror>>> {
    static MIRRORS: OnceLock<Mutex<Vec<Arc<StackMirror>>>> = OnceLock::new();
    MIRRORS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_MIRROR: RefCell<Option<Arc<StackMirror>>> = const { RefCell::new(None) };
    /// The innermost active span site, for allocation attribution.  Const-
    /// initialised: reading it from inside the allocator cannot allocate.
    static CURRENT_SITE: Cell<u32> = const { Cell::new(NO_SITE) };
}

/// Mirrors a span entry (called by the trace layer when the profiler gate is
/// on).  Returns whether a matching [`pop_site`] is owed — false only when the
/// thread is shutting down and its thread-locals are gone.
pub(crate) fn push_site(site: u32) -> bool {
    let pushed = THREAD_MIRROR
        .try_with(|cell| {
            let mut slot = cell.borrow_mut();
            if slot.is_none() {
                let mirror = Arc::new(StackMirror::new());
                mirrors()
                    .lock()
                    .expect("profile mirror list poisoned")
                    .push(Arc::clone(&mirror));
                *slot = Some(mirror);
            }
            slot.as_ref().expect("mirror just installed").push(site);
        })
        .is_ok();
    if pushed {
        let _ = CURRENT_SITE.try_with(|cell| cell.set(site));
    }
    pushed
}

/// Mirrors a span exit; the inverse of [`push_site`].
pub(crate) fn pop_site() {
    let top = THREAD_MIRROR
        .try_with(|cell| cell.borrow().as_ref().map(|mirror| mirror.pop()))
        .ok()
        .flatten();
    if let Some(site) = top {
        let _ = CURRENT_SITE.try_with(|cell| cell.set(site));
    }
}

// ---------------------------------------------------------------------------
// The wall-clock sampler
// ---------------------------------------------------------------------------

struct WallState {
    /// Collapsed stacks: interned-site path (outermost first) -> sample count.
    stacks: BTreeMap<Vec<u32>, u64>,
    ticks: u64,
    samples: u64,
    torn: u64,
    hz: u64,
}

static WALL: Mutex<WallState> = Mutex::new(WallState {
    stacks: BTreeMap::new(),
    ticks: 0,
    samples: 0,
    torn: 0,
    hz: 0,
});

struct SamplerState {
    stop: Arc<AtomicBool>,
    handle: std::thread::JoinHandle<()>,
}

static SAMPLER: Mutex<Option<SamplerState>> = Mutex::new(None);

/// One sampler tick: snapshot every mirror, fold non-empty stacks.  Factored
/// out of the thread loop so tests can drive it deterministically.
pub(crate) fn tick() {
    let snapshot: Vec<Arc<StackMirror>> = mirrors()
        .lock()
        .expect("profile mirror list poisoned")
        .clone();
    let mut folded: Vec<Vec<u32>> = Vec::new();
    let mut torn = 0u64;
    for mirror in &snapshot {
        match mirror.sample() {
            Sampled::Idle => {}
            Sampled::Torn => torn += 1,
            Sampled::Stack(path) => folded.push(path),
        }
    }
    let mut wall = WALL.lock().expect("profile wall state poisoned");
    wall.ticks += 1;
    wall.torn += torn;
    for path in folded {
        *wall.stacks.entry(path).or_insert(0) += 1;
        wall.samples += 1;
    }
}

/// Arms the wall-clock sampler at `hz` samples per second (clamped to
/// `1..=10_000`) and opens the profiler gate so span guards start maintaining
/// their stack mirrors.  Returns `false` (and changes nothing) if already
/// armed.  Counting allocation is a separate switch: [`set_counting`].
pub fn arm(hz: u64) -> bool {
    let hz = hz.clamp(1, 10_000);
    let mut guard = SAMPLER.lock().expect("profile sampler state poisoned");
    if guard.is_some() {
        return false;
    }
    WALL.lock().expect("profile wall state poisoned").hz = hz;
    crate::trace::set_profile_gate(true);
    let stop = Arc::new(AtomicBool::new(false));
    let stop_flag = Arc::clone(&stop);
    let period = Duration::from_nanos(1_000_000_000 / hz);
    let handle = std::thread::Builder::new()
        .name("tcp-obs-profiler".to_string())
        .spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                std::thread::sleep(period);
                tick();
            }
        })
        .expect("spawn profiler sampler thread");
    *guard = Some(SamplerState { stop, handle });
    true
}

/// Disarms the sampler: closes the profiler gate, stops and joins the sampler
/// thread.  Accumulated profile data is retained (dump then [`reset`] if you
/// want a fresh window).  No-op when not armed.
pub fn disarm() {
    let state = SAMPLER
        .lock()
        .expect("profile sampler state poisoned")
        .take();
    crate::trace::set_profile_gate(false);
    if let Some(state) = state {
        state.stop.store(true, Ordering::Relaxed);
        let _ = state.handle.join();
    }
}

/// Whether the wall-clock sampler is currently armed.
pub fn armed() -> bool {
    SAMPLER
        .lock()
        .expect("profile sampler state poisoned")
        .is_some()
}

/// Clears accumulated wall samples and allocation counters (mirrors and the
/// armed state are untouched).  Intended for tests and benchmarks.
pub fn reset() {
    let mut wall = WALL.lock().expect("profile wall state poisoned");
    wall.stacks.clear();
    wall.ticks = 0;
    wall.samples = 0;
    wall.torn = 0;
    drop(wall);
    TOTAL_ALLOCS.store(0, Ordering::Relaxed);
    TOTAL_BYTES.store(0, Ordering::Relaxed);
    TOTAL_FREES.store(0, Ordering::Relaxed);
    FREED_BYTES.store(0, Ordering::Relaxed);
    LIVE_BYTES.store(0, Ordering::Relaxed);
    PEAK_BYTES.store(0, Ordering::Relaxed);
    for slot in 0..MAX_ALLOC_SITES {
        SITE_ALLOCS[slot].store(0, Ordering::Relaxed);
        SITE_BYTES[slot].store(0, Ordering::Relaxed);
    }
}

// ---------------------------------------------------------------------------
// The allocation profiler
// ---------------------------------------------------------------------------

/// Master switch for allocation counting; off means the wrapper costs one
/// relaxed load per allocator call.
static COUNTING: AtomicBool = AtomicBool::new(false);

static TOTAL_ALLOCS: AtomicU64 = AtomicU64::new(0);
static TOTAL_BYTES: AtomicU64 = AtomicU64::new(0);
static TOTAL_FREES: AtomicU64 = AtomicU64::new(0);
static FREED_BYTES: AtomicU64 = AtomicU64::new(0);
/// Signed: frees of allocations made before counting was switched on are
/// still subtracted, so a mid-run window can legitimately go negative.
static LIVE_BYTES: AtomicI64 = AtomicI64::new(0);
static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

/// Fixed tables (slot layout documented on [`MAX_ALLOC_SITES`]): plain static
/// arrays, so recording from inside the allocator touches no lazily-initialised
/// state and can never re-enter `alloc`.
static SITE_ALLOCS: [AtomicU64; MAX_ALLOC_SITES] = [const { AtomicU64::new(0) }; MAX_ALLOC_SITES];
static SITE_BYTES: [AtomicU64; MAX_ALLOC_SITES] = [const { AtomicU64::new(0) }; MAX_ALLOC_SITES];

fn alloc_slot(site: u32) -> usize {
    if site == NO_SITE {
        0
    } else if (site as usize) < MAX_ALLOC_SITES - 2 {
        site as usize + 1
    } else {
        MAX_ALLOC_SITES - 1
    }
}

/// Switches allocation counting on or off (off by default).  Only effective
/// in binaries that install [`CountingAlloc`] as their `#[global_allocator]`.
pub fn set_counting(on: bool) {
    COUNTING.store(on, Ordering::Relaxed);
}

/// Whether allocation counting is currently on.
pub fn counting() -> bool {
    COUNTING.load(Ordering::Relaxed)
}

fn on_alloc(size: usize) {
    if !COUNTING.load(Ordering::Relaxed) {
        return;
    }
    TOTAL_ALLOCS.fetch_add(1, Ordering::Relaxed);
    TOTAL_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    let live = LIVE_BYTES.fetch_add(size as i64, Ordering::Relaxed) + size as i64;
    if live > 0 {
        PEAK_BYTES.fetch_max(live as u64, Ordering::Relaxed);
    }
    let site = CURRENT_SITE.try_with(Cell::get).unwrap_or(NO_SITE);
    let slot = alloc_slot(site);
    SITE_ALLOCS[slot].fetch_add(1, Ordering::Relaxed);
    SITE_BYTES[slot].fetch_add(size as u64, Ordering::Relaxed);
}

fn on_dealloc(size: usize) {
    if !COUNTING.load(Ordering::Relaxed) {
        return;
    }
    TOTAL_FREES.fetch_add(1, Ordering::Relaxed);
    FREED_BYTES.fetch_add(size as u64, Ordering::Relaxed);
    LIVE_BYTES.fetch_sub(size as i64, Ordering::Relaxed);
}

/// A counting `#[global_allocator]` wrapper over the system allocator.
///
/// Install it in a binary with
/// `#[global_allocator] static ALLOC: tcp_obs::profile::CountingAlloc =
/// tcp_obs::profile::CountingAlloc::new();` — counting stays off (one relaxed
/// load per call) until [`set_counting`]`(true)`.  Allocations are attributed
/// to the innermost active span site on the allocating thread; frees are
/// counted globally only.
pub struct CountingAlloc;

impl CountingAlloc {
    /// The wrapper (stateless — all counters are module statics).
    pub const fn new() -> CountingAlloc {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> CountingAlloc {
        CountingAlloc::new()
    }
}

// SAFETY: every method delegates verbatim to `System` and only increments
// atomic counters on the side; layout contracts are passed through untouched.
#[allow(unsafe_code)]
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let ptr = unsafe { System.alloc_zeroed(layout) };
        if !ptr.is_null() {
            on_alloc(layout.size());
        }
        ptr
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        on_dealloc(layout.size());
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let new_ptr = unsafe { System.realloc(ptr, layout, new_size) };
        if !new_ptr.is_null() {
            on_dealloc(layout.size());
            on_alloc(new_size);
        }
        new_ptr
    }
}

/// Process-wide allocation totals while counting was on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AllocTotals {
    /// Allocation calls (alloc + alloc_zeroed + the alloc half of realloc).
    pub allocs: u64,
    /// Bytes requested by those allocations.
    pub bytes: u64,
    /// Deallocation calls.
    pub frees: u64,
    /// Bytes released by those deallocations.
    pub freed_bytes: u64,
    /// `bytes - freed_bytes` as a signed value (see [`profile_json`] notes:
    /// frees of pre-counting allocations can drive a window negative).
    pub live_bytes: i64,
    /// High-water mark of `live_bytes` while counting.
    pub peak_bytes: u64,
}

/// Reads the current [`AllocTotals`] (cheap: six relaxed loads).
pub fn alloc_totals() -> AllocTotals {
    AllocTotals {
        allocs: TOTAL_ALLOCS.load(Ordering::Relaxed),
        bytes: TOTAL_BYTES.load(Ordering::Relaxed),
        frees: TOTAL_FREES.load(Ordering::Relaxed),
        freed_bytes: FREED_BYTES.load(Ordering::Relaxed),
        live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
        peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------------

/// Allocation totals attributed to one span site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllocSite {
    /// Site name (`"(untracked)"` = no active span, `"(overflow)"` = site ids
    /// past the fixed table).
    pub site: String,
    /// Allocation calls attributed to the site.
    pub allocs: u64,
    /// Bytes attributed to the site.
    pub bytes: u64,
}

/// A resolved, export-ready copy of the profile state.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSnapshot {
    /// Whether the sampler was armed when the snapshot was taken.
    pub armed: bool,
    /// Configured sampling rate (last armed value; 0 = never armed).
    pub hz: u64,
    /// Sampler wake-ups so far.
    pub ticks: u64,
    /// Non-empty stacks folded (one per busy thread per tick).
    pub samples: u64,
    /// Samples dropped because a mirror was mid-write.
    pub torn: u64,
    /// Collapsed stacks, site names resolved, sorted by path.
    pub stacks: Vec<(Vec<String>, u64)>,
    /// Process-wide allocation totals.
    pub alloc: AllocTotals,
    /// Per-site allocation attribution (non-zero sites only, sorted by name).
    pub alloc_sites: Vec<AllocSite>,
}

/// Takes a [`ProfileSnapshot`] of everything accumulated so far.
pub fn snapshot() -> ProfileSnapshot {
    let (hz, ticks, samples, torn, raw_stacks) = {
        let wall = WALL.lock().expect("profile wall state poisoned");
        (
            wall.hz,
            wall.ticks,
            wall.samples,
            wall.torn,
            wall.stacks.clone(),
        )
    };
    let mut stacks: Vec<(Vec<String>, u64)> = raw_stacks
        .into_iter()
        .map(|(path, count)| {
            (
                path.into_iter()
                    .map(crate::trace::site_name)
                    .collect::<Vec<String>>(),
                count,
            )
        })
        .collect();
    stacks.sort();
    // Merge paths whose distinct site ids resolved to the same names (possible
    // only for the "?" placeholder of never-issued ids).
    stacks.dedup_by(|next, kept| {
        if next.0 == kept.0 {
            kept.1 += next.1;
            true
        } else {
            false
        }
    });
    let mut alloc_sites = Vec::new();
    for slot in 0..MAX_ALLOC_SITES {
        let allocs = SITE_ALLOCS[slot].load(Ordering::Relaxed);
        let bytes = SITE_BYTES[slot].load(Ordering::Relaxed);
        if allocs == 0 && bytes == 0 {
            continue;
        }
        let site = if slot == 0 {
            "(untracked)".to_string()
        } else if slot == MAX_ALLOC_SITES - 1 {
            "(overflow)".to_string()
        } else {
            crate::trace::site_name(slot as u32 - 1)
        };
        alloc_sites.push(AllocSite {
            site,
            allocs,
            bytes,
        });
    }
    alloc_sites.sort_by(|a, b| a.site.cmp(&b.site));
    ProfileSnapshot {
        armed: armed(),
        hz,
        ticks,
        samples,
        torn,
        stacks,
        alloc: alloc_totals(),
        alloc_sites,
    }
}

// ---------------------------------------------------------------------------
// Derived views: stack tree and hot sites
// ---------------------------------------------------------------------------

/// One frame of the folded stack tree ([`stack_tree`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FrameNode {
    /// Site name (the synthetic root is `"all"`).
    pub name: String,
    /// Inclusive samples: every sample whose path passes through this frame.
    pub count: u64,
    /// Samples whose path *ends* at this frame (self samples).
    pub terminal: u64,
    /// Child frames by name (sorted, so traversal is deterministic).
    pub children: BTreeMap<String, FrameNode>,
}

/// Folds collapsed stacks into a prefix tree rooted at a synthetic `"all"`
/// frame.  Invariants (the proptests hold these): the root count equals the
/// total sample count, and every node's count equals its terminal samples plus
/// the sum of its children's counts.
pub fn stack_tree(stacks: &[(Vec<String>, u64)]) -> FrameNode {
    let mut root = FrameNode {
        name: "all".to_string(),
        count: 0,
        terminal: 0,
        children: BTreeMap::new(),
    };
    for (path, count) in stacks {
        if path.is_empty() {
            continue;
        }
        root.count += count;
        let mut node = &mut root;
        for frame in path {
            node = node
                .children
                .entry(frame.clone())
                .or_insert_with(|| FrameNode {
                    name: frame.clone(),
                    count: 0,
                    terminal: 0,
                    children: BTreeMap::new(),
                });
            node.count += count;
        }
        node.terminal += count;
    }
    root
}

/// One row of the hot-sites ranking ([`hot_sites`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HotSite {
    /// Site name.
    pub name: String,
    /// Samples where this site was the innermost frame (self time).
    pub self_samples: u64,
    /// Samples whose stack contains this site anywhere (inclusive time).
    pub total_samples: u64,
}

/// Ranks sites by self samples (ties broken by name), the view the `advise
/// top` hot-sites panel renders.
pub fn hot_sites(stacks: &[(Vec<String>, u64)]) -> Vec<HotSite> {
    let mut by_site: BTreeMap<&str, (u64, u64)> = BTreeMap::new();
    for (path, count) in stacks {
        if let Some(last) = path.last() {
            by_site.entry(last).or_insert((0, 0)).0 += count;
        }
        let mut seen: BTreeSet<&str> = BTreeSet::new();
        for frame in path {
            if seen.insert(frame) {
                by_site.entry(frame).or_insert((0, 0)).1 += count;
            }
        }
    }
    let mut rows: Vec<HotSite> = by_site
        .into_iter()
        .map(|(name, (self_samples, total_samples))| HotSite {
            name: name.to_string(),
            self_samples,
            total_samples,
        })
        .collect();
    rows.sort_by(|a, b| {
        b.self_samples
            .cmp(&a.self_samples)
            .then_with(|| a.name.cmp(&b.name))
    });
    rows
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

/// Renders collapsed stacks as inferno-compatible text: one
/// `frame;frame;frame count` line per distinct stack, sorted by path.
pub fn collapsed(snapshot: &ProfileSnapshot) -> String {
    let mut out = String::with_capacity(32 * snapshot.stacks.len());
    for (path, count) in &snapshot.stacks {
        out.push_str(&path.join(";"));
        let _ = writeln!(out, " {count}");
    }
    out
}

/// Renders the profile as one line of sorted-key JSON — the payload of the
/// serve layer's `!profile` control line:
/// `{"alloc":{"allocs":…,"bytes":…,…,"sites":{…}},"wall":{"armed":…,"hz":…,
/// "samples":…,"stacks":{"a;b;c":n,…},"ticks":…,"torn":…}}`.
pub fn profile_json(snapshot: &ProfileSnapshot) -> String {
    let mut out = String::with_capacity(256 + 48 * snapshot.stacks.len());
    let a = &snapshot.alloc;
    let _ = write!(
        out,
        "{{\"alloc\":{{\"allocs\":{},\"bytes\":{},\"frees\":{},\"freed_bytes\":{},\
         \"live_bytes\":{},\"peak_bytes\":{},\"sites\":{{",
        a.allocs, a.bytes, a.frees, a.freed_bytes, a.live_bytes, a.peak_bytes
    );
    for (i, site) in snapshot.alloc_sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::export::json_escape(&site.site, &mut out);
        let _ = write!(
            out,
            ":{{\"allocs\":{},\"bytes\":{}}}",
            site.allocs, site.bytes
        );
    }
    let _ = write!(
        out,
        "}}}},\"wall\":{{\"armed\":{},\"hz\":{},\"samples\":{},\"stacks\":{{",
        snapshot.armed, snapshot.hz, snapshot.samples
    );
    for (i, (path, count)) in snapshot.stacks.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::export::json_escape(&path.join(";"), &mut out);
        let _ = write!(out, ":{count}");
    }
    let _ = write!(
        out,
        "}},\"ticks\":{},\"torn\":{}}}}}",
        snapshot.ticks, snapshot.torn
    );
    out
}

fn xml_escape(text: &str, out: &mut String) {
    for ch in text.chars() {
        match ch {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            '\'' => out.push_str("&apos;"),
            _ => out.push(ch),
        }
    }
}

/// Deterministic warm fill colour for a frame, keyed by the site name alone so
/// the same site has the same colour in every render.
fn frame_color(name: &str) -> (u8, u8, u8) {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mixed = crate::trace::mix64(hash);
    let r = 200 + (mixed % 55) as u8;
    let g = 60 + ((mixed >> 8) % 130) as u8;
    let b = ((mixed >> 16) % 55) as u8;
    (r, g, b)
}

fn tree_depth(node: &FrameNode) -> usize {
    1 + node.children.values().map(tree_depth).max().unwrap_or(0)
}

const SVG_WIDTH: f64 = 1200.0;
const SVG_PAD: f64 = 10.0;
const FRAME_H: f64 = 17.0;
const TITLE_H: f64 = 28.0;

#[allow(clippy::too_many_arguments)]
fn render_frame(
    node: &FrameNode,
    depth: usize,
    x: f64,
    width: f64,
    total: u64,
    height: f64,
    out: &mut String,
) {
    let y = height - SVG_PAD - (depth as f64 + 1.0) * FRAME_H;
    if width >= 0.8 {
        let (r, g, b) = frame_color(&node.name);
        let pct = 100.0 * node.count as f64 / total as f64;
        out.push_str("<g>");
        out.push_str("<title>");
        xml_escape(&node.name, out);
        let _ = write!(out, " ({} samples, {:.2}%)</title>", node.count, pct);
        let _ = write!(
            out,
            "<rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
             fill=\"rgb({},{},{})\" rx=\"2\"/>",
            x,
            y,
            width,
            FRAME_H - 1.0,
            r,
            g,
            b
        );
        if width >= 40.0 {
            let budget = ((width - 6.0) / 7.0) as usize;
            let label: String = if node.name.chars().count() > budget {
                node.name
                    .chars()
                    .take(budget.saturating_sub(2))
                    .collect::<String>()
                    + ".."
            } else {
                node.name.clone()
            };
            let _ = write!(
                out,
                "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"11\" \
                 font-family=\"monospace\" fill=\"#000\">",
                x + 3.0,
                y + FRAME_H - 5.0
            );
            xml_escape(&label, out);
            out.push_str("</text>");
        }
        out.push_str("</g>");
    }
    let scale = width / node.count.max(1) as f64;
    let mut child_x = x;
    for child in node.children.values() {
        let child_width = child.count as f64 * scale;
        render_frame(child, depth + 1, child_x, child_width, total, height, out);
        child_x += child_width;
    }
}

/// Renders a standalone flamegraph SVG (well-formed XML, no scripts, no
/// external references — open the file directly in a browser).  Frames grow
/// upward from the synthetic `all` root; width is proportional to inclusive
/// samples; hovering a frame shows `name (count samples, pct%)` via its
/// `<title>` element.  Layout and colours are pure functions of the snapshot,
/// so the same profile renders byte-identically.
pub fn flamegraph_svg(snapshot: &ProfileSnapshot) -> String {
    let root = stack_tree(&snapshot.stacks);
    let depth = tree_depth(&root);
    let height = 2.0 * SVG_PAD + TITLE_H + depth as f64 * FRAME_H;
    let mut out = String::with_capacity(4096);
    let _ = write!(
        out,
        "<?xml version=\"1.0\" encoding=\"UTF-8\" standalone=\"no\"?>\
         <svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{w}\" height=\"{h:.0}\" \
         viewBox=\"0 0 {w} {h:.0}\">\
         <rect x=\"0\" y=\"0\" width=\"{w}\" height=\"{h:.0}\" fill=\"#f8f8f8\"/>",
        w = SVG_WIDTH,
        h = height
    );
    let _ = write!(
        out,
        "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"14\" font-family=\"monospace\" \
         fill=\"#333\">tcp wall-clock profile \u{2014} {} samples over {} ticks @ {} Hz</text>",
        SVG_PAD,
        SVG_PAD + 14.0,
        snapshot.samples,
        snapshot.ticks,
        snapshot.hz
    );
    if root.count > 0 {
        render_frame(
            &root,
            0,
            SVG_PAD,
            SVG_WIDTH - 2.0 * SVG_PAD,
            root.count,
            height,
            &mut out,
        );
    } else {
        let _ = write!(
            out,
            "<text x=\"{:.2}\" y=\"{:.2}\" font-size=\"12\" font-family=\"monospace\" \
             fill=\"#999\">no samples</text>",
            SVG_PAD,
            height - SVG_PAD - 5.0
        );
    }
    out.push_str("</svg>");
    out
}

/// Dumps the current profile next to `path`: with `--profile-file out.svg`
/// this writes `out.folded` (collapsed stacks), `out.svg` (flamegraph) and
/// `out.json` (the `!profile` JSON), each atomically (tmp + rename, so a
/// reader never sees a torn file).  Returns the paths written.
pub fn dump_to(path: &std::path::Path) -> std::io::Result<Vec<std::path::PathBuf>> {
    let snap = snapshot();
    let base = path.with_extension("");
    let mut json = profile_json(&snap);
    json.push('\n');
    let mut written = Vec::new();
    for (ext, text) in [
        ("folded", collapsed(&snap)),
        ("svg", flamegraph_svg(&snap)),
        ("json", json),
    ] {
        let target = base.with_extension(ext);
        let tmp = base.with_extension(format!("{ext}.tmp"));
        std::fs::write(&tmp, text)?;
        std::fs::rename(&tmp, &target)?;
        written.push(target);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stacks(raw: &[(&[&str], u64)]) -> Vec<(Vec<String>, u64)> {
        raw.iter()
            .map(|(path, n)| (path.iter().map(|s| s.to_string()).collect(), *n))
            .collect()
    }

    #[test]
    fn mirror_push_pop_and_sample() {
        let mirror = StackMirror::new();
        assert!(matches!(mirror.sample(), Sampled::Idle));
        mirror.push(3);
        mirror.push(7);
        match mirror.sample() {
            Sampled::Stack(path) => assert_eq!(path, vec![3, 7]),
            _ => panic!("expected a stack"),
        }
        assert_eq!(mirror.pop(), 3);
        assert_eq!(mirror.pop(), NO_SITE);
        assert!(matches!(mirror.sample(), Sampled::Idle));
    }

    #[test]
    fn mirror_depth_overflow_truncates_but_balances() {
        let mirror = StackMirror::new();
        for i in 0..(MAX_STACK_DEPTH as u32 + 5) {
            mirror.push(i);
        }
        match mirror.sample() {
            Sampled::Stack(path) => {
                assert_eq!(path.len(), MAX_STACK_DEPTH);
                assert_eq!(path[MAX_STACK_DEPTH - 1], MAX_STACK_DEPTH as u32 - 1);
            }
            _ => panic!("expected a stack"),
        }
        for _ in 0..(MAX_STACK_DEPTH as u32 + 5) {
            mirror.pop();
        }
        assert!(matches!(mirror.sample(), Sampled::Idle));
    }

    #[test]
    fn stack_tree_counts_are_prefix_sums() {
        let tree = stack_tree(&stacks(&[
            (&["a", "b"], 3),
            (&["a", "b", "c"], 2),
            (&["a", "d"], 1),
            (&["e"], 4),
        ]));
        assert_eq!(tree.count, 10);
        let a = &tree.children["a"];
        assert_eq!(a.count, 6);
        assert_eq!(a.terminal, 0);
        let b = &a.children["b"];
        assert_eq!(b.count, 5);
        assert_eq!(b.terminal, 3);
        assert_eq!(b.children["c"].count, 2);
        assert_eq!(tree.children["e"].terminal, 4);
    }

    #[test]
    fn hot_sites_rank_by_self_samples() {
        let rows = hot_sites(&stacks(&[(&["a", "b"], 5), (&["a", "c"], 2), (&["a"], 1)]));
        assert_eq!(rows[0].name, "b");
        assert_eq!(rows[0].self_samples, 5);
        assert_eq!(rows[0].total_samples, 5);
        let a = rows.iter().find(|r| r.name == "a").unwrap();
        assert_eq!(a.self_samples, 1);
        assert_eq!(a.total_samples, 8);
    }

    #[test]
    fn collapsed_and_json_and_svg_are_deterministic_and_well_formed() {
        let snap = ProfileSnapshot {
            armed: false,
            hz: 97,
            ticks: 10,
            samples: 9,
            torn: 1,
            stacks: stacks(&[(&["serve.request", "advisor.lookup"], 6), (&["idle<&>"], 3)]),
            alloc: AllocTotals {
                allocs: 4,
                bytes: 256,
                frees: 2,
                freed_bytes: 64,
                live_bytes: 192,
                peak_bytes: 200,
            },
            alloc_sites: vec![AllocSite {
                site: "serve.request".to_string(),
                allocs: 4,
                bytes: 256,
            }],
        };
        let folded = collapsed(&snap);
        assert!(folded.contains("serve.request;advisor.lookup 6"));
        let json = profile_json(&snap);
        assert!(json.starts_with("{\"alloc\":{\"allocs\":4,\"bytes\":256,"));
        assert!(json.contains("\"wall\":{\"armed\":false,\"hz\":97,"));
        assert!(json.contains("\"serve.request;advisor.lookup\":6"));
        assert_eq!(json, profile_json(&snap), "export must be deterministic");
        let svg = flamegraph_svg(&snap);
        assert!(svg.starts_with("<?xml version=\"1.0\""));
        assert!(svg.ends_with("</svg>"));
        assert!(svg.contains("serve.request"));
        // The angle brackets in the site name must have been escaped.
        assert!(svg.contains("idle&lt;&amp;&gt;"));
        assert!(!svg.contains("idle<&>"));
        assert_eq!(svg, flamegraph_svg(&snap));
    }

    #[test]
    fn empty_profile_svg_is_still_valid() {
        let snap = ProfileSnapshot {
            armed: false,
            hz: 0,
            ticks: 0,
            samples: 0,
            torn: 0,
            stacks: Vec::new(),
            alloc: AllocTotals::default(),
            alloc_sites: Vec::new(),
        };
        let svg = flamegraph_svg(&snap);
        assert!(svg.contains("no samples"));
        assert!(svg.ends_with("</svg>"));
    }

    #[test]
    fn sampler_folds_live_span_stacks() {
        // Drive the tick function directly (no background thread): hold a
        // mirrored stack on this thread and verify folding.
        let before = snapshot().ticks;
        assert!(push_site(crate::trace::site_id("profile.test.outer")));
        assert!(push_site(crate::trace::site_id("profile.test.inner")));
        tick();
        pop_site();
        pop_site();
        let snap = snapshot();
        assert!(snap.ticks > before);
        let path = snap
            .stacks
            .iter()
            .find(|(path, _)| path.contains(&"profile.test.inner".to_string()))
            .expect("folded stack recorded");
        let outer_pos = path
            .0
            .iter()
            .position(|f| f == "profile.test.outer")
            .expect("outer frame present");
        let inner_pos = path
            .0
            .iter()
            .position(|f| f == "profile.test.inner")
            .unwrap();
        assert!(outer_pos < inner_pos, "outermost frame first");
    }

    #[test]
    fn alloc_slot_layout() {
        assert_eq!(alloc_slot(NO_SITE), 0);
        assert_eq!(alloc_slot(0), 1);
        assert_eq!(alloc_slot(5), 6);
        assert_eq!(alloc_slot(MAX_ALLOC_SITES as u32), MAX_ALLOC_SITES - 1);
        assert_eq!(alloc_slot(u32::MAX - 1), MAX_ALLOC_SITES - 1);
    }

    #[test]
    fn dump_to_writes_three_files_atomically() {
        let dir = std::env::temp_dir().join("tcp-obs-profile-test");
        let _ = std::fs::create_dir_all(&dir);
        let target = dir.join("profile.svg");
        let written = dump_to(&target).expect("dump profile");
        assert_eq!(written.len(), 3);
        for path in &written {
            assert!(path.exists(), "{} missing", path.display());
        }
        let svg = std::fs::read_to_string(dir.join("profile.svg")).unwrap();
        assert!(svg.ends_with("</svg>"));
        let json = std::fs::read_to_string(dir.join("profile.json")).unwrap();
        assert!(json.starts_with("{\"alloc\":"));
        let _ = std::fs::remove_dir_all(&dir);
    }
}
