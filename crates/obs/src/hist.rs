//! Log-bucketed latency histograms.
//!
//! A [`Histogram`] records non-negative integer samples (by convention nanoseconds when
//! fed by [`crate::SpanTimer`]) into log-linear buckets: values below 16 land in exact
//! unit buckets, and every power-of-two octave above that is split into 8 linear
//! sub-buckets.  A bucket's relative width is therefore at most 1/8, which bounds the
//! relative error of any bucket-midpoint quantile estimate by 1/16 (6.25 %) — tight
//! enough to read p50/p90/p99 latencies off a dashboard, cheap enough to record on a
//! nanosecond-scale hot path.
//!
//! Recording is lock-free and scatters across cache-line-padded shards (the same
//! pattern as the advisor's query counters) so concurrent writers on different cores
//! never contend on one line; [`Histogram::snapshot`] folds the shards into an owned
//! [`HistogramSnapshot`] that does the quantile math offline.

use crate::pad::{thread_shard, SHARDS};
use std::sync::atomic::{AtomicU64, Ordering};

/// Linear sub-buckets per power-of-two octave (8 ⇒ ≤ 1/8 relative bucket width).
const SUBS: usize = 8;
/// Exact unit buckets for values below `2 * SUBS`.
const EXACT: usize = 2 * SUBS;
/// Total bucket count: 16 exact buckets + 8 sub-buckets for each octave `[2^4, 2^64)`.
pub const BUCKETS: usize = EXACT + (64 - 4) * SUBS;

/// Maps a sample to its bucket index.
#[inline]
fn bucket_index(value: u64) -> usize {
    if value < EXACT as u64 {
        value as usize
    } else {
        // `value >= 16` ⇒ the top bit is at position `e >= 4`; the next three bits
        // select the linear sub-bucket inside the octave.
        let e = 63 - value.leading_zeros() as usize;
        let sub = ((value >> (e - 3)) & (SUBS as u64 - 1)) as usize;
        EXACT + (e - 4) * SUBS + sub
    }
}

/// The `[lower, upper)` value range of a bucket.
fn bucket_bounds(index: usize) -> (u64, u64) {
    if index < EXACT {
        (index as u64, index as u64 + 1)
    } else {
        let e = 4 + (index - EXACT) / SUBS;
        let sub = ((index - EXACT) % SUBS) as u64;
        let width = 1u64 << (e - 3);
        let lower = (SUBS as u64 + sub) << (e - 3);
        (lower, lower.saturating_add(width))
    }
}

/// The representative value reported for samples in a bucket (exact below 16, the
/// bucket midpoint above).
fn bucket_value(index: usize) -> u64 {
    let (lower, upper) = bucket_bounds(index);
    if index < EXACT {
        lower
    } else {
        lower + (upper - lower) / 2
    }
}

/// One recording shard.  `align(64)` keeps distinct shards off a shared cache line;
/// the bucket array is a separate heap allocation per shard, so two threads on
/// different shards never write the same line even for adjacent buckets.
#[repr(align(64))]
struct Shard {
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
    buckets: Box<[AtomicU64]>,
}

impl Shard {
    fn new() -> Self {
        Shard {
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
            buckets: (0..BUCKETS).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

/// A concurrent log-bucketed histogram.
///
/// Values are `u64` samples; [`crate::SpanTimer`] records elapsed nanoseconds.  All
/// recording is relaxed-atomic and shard-scattered; reads ([`Histogram::snapshot`])
/// fold the shards.
pub struct Histogram {
    shards: Box<[Shard]>,
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl Histogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Histogram {
            shards: (0..SHARDS).map(|_| Shard::new()).collect(),
        }
    }

    /// Records one sample.  Gated by [`crate::enabled`]: a metrics-disabled process
    /// records nothing, so instrumentation can be switched off without code changes.
    #[inline]
    pub fn record(&self, value: u64) {
        if !crate::enabled() {
            return;
        }
        let shard = &self.shards[thread_shard()];
        shard.count.fetch_add(1, Ordering::Relaxed);
        shard.sum.fetch_add(value, Ordering::Relaxed);
        shard.max.fetch_max(value, Ordering::Relaxed);
        shard.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
    }

    /// Records a [`std::time::Duration`] as whole nanoseconds (saturating).
    #[inline]
    pub fn record_duration(&self, elapsed: std::time::Duration) {
        self.record(u64::try_from(elapsed.as_nanos()).unwrap_or(u64::MAX));
    }

    /// Folds every shard into an owned, immutable snapshot.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = vec![0u64; BUCKETS];
        let mut count = 0u64;
        let mut sum = 0u64;
        let mut max = 0u64;
        for shard in self.shards.iter() {
            count += shard.count.load(Ordering::Relaxed);
            sum += shard.sum.load(Ordering::Relaxed);
            max = max.max(shard.max.load(Ordering::Relaxed));
            for (total, bucket) in buckets.iter_mut().zip(shard.buckets.iter()) {
                *total += bucket.load(Ordering::Relaxed);
            }
        }
        HistogramSnapshot {
            count,
            sum,
            max,
            buckets,
        }
    }
}

/// An immutable point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Samples recorded.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
    /// Largest sample seen (exact, not bucketed).
    pub max: u64,
    buckets: Vec<u64>,
}

impl HistogramSnapshot {
    /// An empty snapshot (useful as a delta/merge seed).
    pub fn empty() -> Self {
        HistogramSnapshot {
            count: 0,
            sum: 0,
            max: 0,
            buckets: vec![0; BUCKETS],
        }
    }

    /// Mean sample value (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the bucket counts.
    ///
    /// The estimate is the representative value of the bucket holding the
    /// nearest-rank sample: exact for samples below 16, within 6.25 % relative error
    /// above (the bucket midpoint of a ≤ 1/8-wide bucket).  `q = 1` returns the exact
    /// tracked maximum.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if q >= 1.0 {
            return self.max as f64;
        }
        let q = q.max(0.0);
        // Nearest-rank definition: the smallest rank r with r >= ceil(q * count).
        let target = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                // The max is exact; never report a midpoint above it.
                return (bucket_value(index).min(self.max)) as f64;
            }
        }
        self.max as f64
    }

    /// Adds another snapshot's samples into this one (bucket-wise).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
    }

    /// The samples recorded between `earlier` and `self` (counters are monotone, so a
    /// bucket-wise saturating difference is exact when `earlier` was taken first on
    /// the same histogram).
    ///
    /// The tracked maximum is cumulative, so the interval's true max is not
    /// recoverable exactly; the delta's `max` is the tighter of the later
    /// snapshot's max and the upper bound of the highest non-empty *delta* bucket
    /// (0 for an empty delta).  Without that clamp a per-run delta would report
    /// `max` — and `quantile(1.0)`, which returns it — from all prior history:
    /// exactly the cross-iteration contamination `serve-bench` percentiles must
    /// not have.
    pub fn delta_since(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let count = self.count.saturating_sub(earlier.count);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .zip(&earlier.buckets)
            .map(|(a, b)| a.saturating_sub(*b))
            .collect();
        let max = if count == 0 {
            0
        } else {
            let bound = buckets
                .iter()
                .rposition(|&n| n > 0)
                .map(|i| {
                    let (lo, hi) = bucket_bounds(i);
                    if hi == u64::MAX {
                        u64::MAX
                    } else {
                        (hi - 1).max(lo)
                    }
                })
                .unwrap_or(self.max);
            self.max.min(bound)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.saturating_sub(earlier.sum),
            max,
            buckets,
        }
    }

    /// The recording rate between `earlier` and `self`, in samples per second over
    /// `elapsed_secs` (0 for a degenerate interval).  Thin wrapper over
    /// [`crate::rate_per_sec`] so every windowed-rate consumer (serve-bench,
    /// `sweep --heartbeat`, the SLO engine) shares one definition.
    pub fn rate_per_sec(&self, earlier: &HistogramSnapshot, elapsed_secs: f64) -> f64 {
        crate::rate_per_sec(self.count.saturating_sub(earlier.count), elapsed_secs)
    }

    /// Non-empty buckets as `(upper_bound, cumulative_count)` pairs, the shape the
    /// Prometheus text exposition's `_bucket{le="..."}` series needs.  The trailing
    /// `+Inf` bucket is implied by [`HistogramSnapshot::count`].
    pub fn cumulative_buckets(&self) -> Vec<(u64, u64)> {
        let mut out = Vec::new();
        let mut cumulative = 0u64;
        for (index, &n) in self.buckets.iter().enumerate() {
            if n > 0 {
                cumulative += n;
                out.push((bucket_bounds(index).1, cumulative));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_values_are_exact() {
        let h = Histogram::new();
        for v in 0..16u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 16);
        assert_eq!(s.sum, (0..16).sum::<u64>());
        assert_eq!(s.max, 15);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 15.0);
        // Every recorded small value is recoverable exactly.
        for v in 0..16u64 {
            let q = (v + 1) as f64 / 16.0;
            assert_eq!(s.quantile(q), v as f64, "q={q}");
        }
    }

    #[test]
    fn bucket_index_and_bounds_are_consistent() {
        for v in [
            0u64,
            1,
            15,
            16,
            17,
            31,
            32,
            100,
            1_000,
            123_456,
            u32::MAX as u64,
            1 << 40,
            (1 << 63) + 12345,
            u64::MAX,
        ] {
            let i = bucket_index(v);
            assert!(i < BUCKETS, "index {i} out of range for {v}");
            let (lo, hi) = bucket_bounds(i);
            assert!(
                lo <= v && (v < hi || hi == u64::MAX),
                "{v} not in [{lo},{hi})"
            );
            // Relative bucket width is at most 1/8 above the exact range.
            if v >= 16 {
                assert!((hi - lo) as f64 / lo as f64 <= 1.0 / 8.0 + 1e-12);
            }
        }
    }

    #[test]
    fn bucket_indices_are_monotone_in_value() {
        let mut values: Vec<u64> = (0..63)
            .flat_map(|e| [0u64, 1, 3].map(|off| (1u64 << e) + off))
            .collect();
        values.sort_unstable();
        let mut prev = 0usize;
        for v in values {
            let i = bucket_index(v);
            assert!(i >= prev, "index regressed at {v}");
            prev = i;
        }
    }

    #[test]
    fn quantiles_are_within_the_relative_error_bound() {
        let h = Histogram::new();
        // A deterministic spread over five orders of magnitude.
        let mut values: Vec<u64> = (1..=4000u64).map(|i| i * i * 7 + 13).collect();
        for &v in &values {
            h.record(v);
        }
        values.sort_unstable();
        let s = h.snapshot();
        assert_eq!(s.count, values.len() as u64);
        for q in [0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999] {
            let target = ((q * values.len() as f64).ceil() as usize).clamp(1, values.len());
            let exact = values[target - 1] as f64;
            let estimate = s.quantile(q);
            let rel = (estimate - exact).abs() / exact;
            assert!(
                rel <= 1.0 / 16.0 + 1e-12,
                "q={q}: {estimate} vs {exact} ({rel})"
            );
        }
        assert_eq!(s.quantile(1.0), *values.last().unwrap() as f64);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let h = std::sync::Arc::new(Histogram::new());
        let threads = 8;
        let per_thread = 5_000u64;
        std::thread::scope(|scope| {
            for t in 0..threads {
                let h = std::sync::Arc::clone(&h);
                scope.spawn(move || {
                    for i in 0..per_thread {
                        h.record(t * 1_000 + i);
                    }
                });
            }
        });
        let s = h.snapshot();
        assert_eq!(s.count, threads * per_thread);
        let expected_sum: u64 = (0..threads)
            .map(|t| (0..per_thread).map(|i| t * 1_000 + i).sum::<u64>())
            .sum();
        assert_eq!(s.sum, expected_sum);
        assert_eq!(s.max, (threads - 1) * 1_000 + per_thread - 1);
    }

    #[test]
    fn merge_and_delta_are_inverse() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in 0..1000u64 {
            a.record(v * 3);
            b.record(v * 5 + 1);
        }
        let sa = a.snapshot();
        let sb = b.snapshot();
        let mut merged = sa.clone();
        merged.merge(&sb);
        assert_eq!(merged.count, 2000);
        assert_eq!(merged.sum, sa.sum + sb.sum);
        let back = merged.delta_since(&sb);
        assert_eq!(back.count, sa.count);
        assert_eq!(back.sum, sa.sum);
        assert_eq!(back.quantile(0.5), sa.quantile(0.5));
    }

    #[test]
    fn delta_quantiles_are_not_contaminated_by_prior_history() {
        // Regression for the serve-bench per-worker-count report: run 1 records a
        // huge outlier, run 2 records only small samples.  Run 2's delta snapshot
        // must not surface run 1's max through `max` or `quantile(1.0)` — that was
        // exactly how earlier iterations bled into later per-run percentiles.
        let h = Histogram::new();
        h.record(50_000_000); // run 1: a 50 ms outlier
        let baseline = h.snapshot();
        for _ in 0..100 {
            h.record(1_000); // run 2: 1 µs samples only
        }
        let delta = h.snapshot().delta_since(&baseline);
        assert_eq!(delta.count, 100);
        assert!(
            delta.max <= 1_000 + 1_000 / 8,
            "delta max {} leaked the prior run's outlier",
            delta.max
        );
        assert!(delta.quantile(1.0) <= 1_000.0 * (1.0 + 1.0 / 8.0));
        for q in [0.5, 0.9, 0.99, 0.999] {
            let estimate = delta.quantile(q);
            assert!(
                (estimate - 1_000.0).abs() / 1_000.0 <= 1.0 / 16.0 + 1e-12,
                "q={q}: {estimate}"
            );
        }
        // An empty delta reports a zero max, not history's.
        let empty = h.snapshot().delta_since(&h.snapshot());
        assert_eq!(empty.count, 0);
        assert_eq!(empty.max, 0);
        assert_eq!(empty.quantile(1.0), 0.0);
    }

    #[test]
    fn cumulative_buckets_cover_every_sample() {
        let h = Histogram::new();
        for v in [1u64, 1, 20, 20, 20, 5_000] {
            h.record(v);
        }
        let s = h.snapshot();
        let cumulative = s.cumulative_buckets();
        assert_eq!(cumulative.last().unwrap().1, 6);
        // Upper bounds are strictly increasing.
        assert!(cumulative.windows(2).all(|w| w[0].0 < w[1].0));
    }
}
