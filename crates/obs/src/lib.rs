//! `tcp-obs`: a zero-dependency observability core for the workspace.
//!
//! The ROADMAP's north star is a production serving system, and a serving system is
//! blind without metrics.  This crate provides the minimal but complete core the
//! rest of the workspace instruments against:
//!
//! - **[`Counter`]** — monotone event counts, sharded across cache-line-padded cells
//!   (the same trick the advisor's query stats already used) so hot-path increments
//!   never contend.
//! - **[`Gauge`]** — last-write-wins instantaneous values (queue depth, in-flight
//!   requests, drift statistics) stored as `f64` bits in one atomic.
//! - **[`Histogram`]** — log-bucketed latency histograms: exact below 16, eight
//!   linear sub-buckets per power-of-two octave above, bounding quantile estimates
//!   (p50/p90/p99) to ≤ 6.25 % relative error while recording stays a handful of
//!   relaxed atomic adds.
//! - **[`Registry`]** — a named, process-global home for all of the above; snapshots
//!   iterate names in sorted order so every export is deterministic.
//! - **[`SpanTimer`]** and the [`time!`] macro — RAII span timing into a histogram,
//!   with a per-call-site cached handle so steady-state cost is one `Instant::now`
//!   pair and one histogram record.
//! - **Exposition** — [`RegistrySnapshot::to_json_line`] (one line of sorted-key
//!   JSON for log pipelines) and [`RegistrySnapshot::to_prometheus`] (text
//!   exposition format 0.0.4 for scraping).
//! - **[`trace`]** — request-scoped structured tracing: RAII spans on an implicit
//!   thread-local stack ([`span!`] / [`root_span!`]), a per-thread flight-recorder
//!   ring buffer, deterministic `1/N` trace sampling, a slow-request log, and
//!   Chrome trace-event / per-site summary exporters.  Aggregates say how the
//!   fleet is doing; traces say where one request's time went.
//! - **[`log`]** — a leveled structured event log ([`event!`]): one-line sorted-key
//!   JSON records with per-site token-bucket rate limiting and a bounded ring of
//!   recent warn/error events (surfaced by the serve layer's `!health` line).
//! - **[`health`]** — the consumption layer over the registry: a rolling-window
//!   SLO engine evaluating declarative burn-rate rules (short + long windows)
//!   against snapshot deltas, producing typed firing/resolved [`health::Alert`]s
//!   and a published [`health::HealthReport`] verdict.
//! - **[`profile`]** — continuous profiling: a wall-clock sampler folding every
//!   thread's mirrored span stack into collapsed stacks ([`profile::arm`]), an
//!   allocation profiler ([`profile::CountingAlloc`]) attributing allocs/bytes
//!   to the innermost span site, and exporters — inferno-style collapsed text,
//!   a self-rendered standalone flamegraph SVG, and the `!profile` JSON.
//!
//! # Determinism contract
//!
//! Instrumentation must never change what a run *produces*, only what it *reports*.
//! Metrics therefore live strictly outside result streams: the serve layer answers
//! `!metrics` control lines in place and writes exposition files out-of-band, and
//! nothing in this crate feeds back into scheduling or policy decisions.  Latency
//! recording (histograms and span timers) can additionally be disabled process-wide
//! with [`set_enabled`]`(false)` — counters and gauges stay live because
//! user-facing surfaces (the advisor's `!stats`) are built on them.
//!
//! # Example
//!
//! ```
//! use tcp_obs as obs;
//!
//! let served = obs::counter("example.requests.served");
//! served.incr();
//!
//! {
//!     let _span = obs::time!("example.handler");
//!     // ... work being timed ...
//! }
//!
//! let snapshot = obs::Registry::global().snapshot();
//! let json = snapshot.to_json_line();       // {"example.handler":{...},...}
//! let prom = snapshot.to_prometheus();      // # TYPE example_handler histogram ...
//! assert!(json.contains("\"example.requests.served\":1"));
//! assert!(prom.contains("example_requests_served 1"));
//! ```
#![deny(missing_docs)]
// `deny`, not `forbid`: the one sanctioned exception is the `GlobalAlloc`
// delegation in [`profile`], which carries its own scoped `allow` + SAFETY note.
#![deny(unsafe_code)]

pub mod cli;
mod export;
pub mod health;
mod hist;
pub mod log;
mod pad;
pub mod profile;
mod registry;
pub mod trace;

pub use export::{RegistrySnapshot, SnapshotValue};
pub use hist::{Histogram, HistogramSnapshot, BUCKETS};
pub use registry::{Counter, Gauge, Registry};

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

/// A count delta over an elapsed wall-clock interval as an events-per-second rate
/// (0 when the interval is non-positive or degenerate).
///
/// This is *the* windowed-rate definition for the workspace: `serve-bench` qps,
/// the sweep heartbeat's trials-per-second, and the SLO engine's `rate` signals
/// all divide the same way, so their numbers agree on the same window.
pub fn rate_per_sec(count_delta: u64, elapsed_secs: f64) -> f64 {
    if elapsed_secs.is_finite() && elapsed_secs > 0.0 {
        count_delta as f64 / elapsed_secs
    } else {
        0.0
    }
}

/// Whether latency instrumentation (histograms, span timers) records.
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables latency recording.
///
/// Only histograms and span timers are gated: counters and gauges keep recording
/// because user-facing surfaces (`!stats`) depend on them.  Intended for startup
/// configuration (`advise listen --no-metrics`) and for tests that compare
/// metrics-on vs metrics-off behaviour.
pub fn set_enabled(on: bool) {
    ENABLED.store(on, Ordering::Relaxed);
}

/// Whether latency recording is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Shorthand for [`Registry::global`]`.counter(name)`.
pub fn counter(name: &str) -> &'static Counter {
    Registry::global().counter(name)
}

/// Shorthand for [`Registry::global`]`.gauge(name)`.
pub fn gauge(name: &str) -> &'static Gauge {
    Registry::global().gauge(name)
}

/// Shorthand for [`Registry::global`]`.histogram(name)`.
pub fn histogram(name: &str) -> &'static Histogram {
    Registry::global().histogram(name)
}

/// An RAII span timer: started against a histogram, records elapsed nanoseconds on
/// drop (unless [`SpanTimer::cancel`]led or recording is disabled).
///
/// Most call sites use the [`time!`] macro, which also caches the registry lookup.
#[must_use = "a span timer measures until dropped; binding it to `_` drops immediately"]
pub struct SpanTimer {
    histogram: Option<&'static Histogram>,
    started: Instant,
}

impl SpanTimer {
    /// Starts timing into `histogram`.
    pub fn start(histogram: &'static Histogram) -> Self {
        SpanTimer {
            histogram: Some(histogram),
            started: Instant::now(),
        }
    }

    /// A timer that records nowhere (used when recording is disabled, so disabled
    /// spans skip even the histogram lookup).
    pub fn disabled() -> Self {
        SpanTimer {
            histogram: None,
            started: Instant::now(),
        }
    }

    /// Elapsed time so far.
    pub fn elapsed(&self) -> std::time::Duration {
        self.started.elapsed()
    }

    /// Discards the span without recording.
    pub fn cancel(mut self) {
        self.histogram = None;
    }
}

impl Drop for SpanTimer {
    fn drop(&mut self) {
        if let Some(histogram) = self.histogram {
            histogram.record_duration(self.started.elapsed());
        }
    }
}

/// Times a span into a global histogram: `let _span = obs::time!("advisor.query");`.
///
/// The histogram handle is resolved once per call site (cached in a `OnceLock`), so
/// the steady-state cost is an `Instant::now` pair plus one histogram record.  When
/// recording is disabled ([`set_enabled`]`(false)`), returns a no-op timer without
/// touching the registry.
#[macro_export]
macro_rules! time {
    ($name:expr) => {{
        if $crate::enabled() {
            static SITE: ::std::sync::OnceLock<&'static $crate::Histogram> =
                ::std::sync::OnceLock::new();
            $crate::SpanTimer::start(SITE.get_or_init(|| $crate::histogram($name)))
        } else {
            $crate::SpanTimer::disabled()
        }
    }};
}

/// Opens a trace span nested in the current thread's active trace:
/// `let _span = obs::span!("advisor.route");` (optionally with a `u64` payload,
/// `obs::span!("serve.batch.flush", batch_len)`).
///
/// The site id is interned once per call site (cached in a `OnceLock`).  When
/// neither tracing nor the profiler is on the cost is one relaxed atomic load;
/// when no trace is active on this thread the span is inert (but still feeds
/// the profiler's stack mirror while armed).  See [`trace::Span::enter`].
#[macro_export]
macro_rules! span {
    ($name:expr) => {
        $crate::span!($name, 0u64)
    };
    ($name:expr, $arg:expr) => {{
        if $crate::trace::instrumented() {
            static SITE: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::trace::Span::enter(
                *SITE.get_or_init(|| $crate::trace::site_id($name)),
                $arg as u64,
            )
        } else {
            $crate::trace::Span::inert()
        }
    }};
}

/// Opens a request-scoped trace root, deterministically sampled by `seed`:
/// `let _root = obs::root_span!("serve.request", ordinal);` (optionally with a
/// `u64` payload as the third argument).
///
/// If the thread already has an active trace the root nests as a child span, so
/// per-request roots compose with an enclosing per-connection root.  At drop the
/// trace commits to the flight recorder if sampled — or, regardless of sampling,
/// if the root reached the configured slow threshold.  See
/// [`trace::RootSpan::enter`].
#[macro_export]
macro_rules! root_span {
    ($name:expr, $seed:expr) => {
        $crate::root_span!($name, $seed, 0u64)
    };
    ($name:expr, $seed:expr, $arg:expr) => {{
        if $crate::trace::instrumented() {
            static SITE: ::std::sync::OnceLock<u32> = ::std::sync::OnceLock::new();
            $crate::trace::RootSpan::enter(
                *SITE.get_or_init(|| $crate::trace::site_id($name)),
                $seed as u64,
                $arg as u64,
            )
        } else {
            $crate::trace::RootSpan::inert()
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_timer_records_on_drop() {
        let r = Registry::new();
        let h = r.histogram("span.drop");
        {
            let _span = SpanTimer::start(h);
            std::hint::black_box(0u64);
        }
        assert_eq!(h.snapshot().count, 1);
    }

    #[test]
    fn span_timer_cancel_skips_recording() {
        let r = Registry::new();
        let h = r.histogram("span.cancel");
        let span = SpanTimer::start(h);
        span.cancel();
        assert_eq!(h.snapshot().count, 0);
    }

    #[test]
    fn time_macro_uses_the_global_registry() {
        {
            let _span = time!("obs.test.time_macro");
        }
        let snap = Registry::global()
            .histogram_snapshot("obs.test.time_macro")
            .expect("histogram registered by the macro");
        assert!(snap.count >= 1);
    }
}
