//! Structured tracing: request-scoped spans, a flight-recorder ring buffer, and
//! Chrome-trace/summary exporters.
//!
//! Aggregate metrics (the rest of this crate) answer "how is the fleet doing?";
//! tracing answers "where did *this* request's time go?".  The design is layered on
//! the registry idioms — zero dependencies, lock-free writers, deterministic
//! exports — and obeys the same contract: tracing never changes what a run
//! produces, only what it reports.
//!
//! # Model
//!
//! * A **span** is one timed region of one request: a site name (interned to a
//!   `u32` id), a start offset and duration in monotonic nanoseconds since the
//!   process trace epoch, a small `u64` argument, and its position in a tree
//!   (`trace_id`, `span_id`, `parent_id`).
//! * Spans nest through an implicit thread-local stack: [`RootSpan`] opens a
//!   request-scoped trace, [`Span`] guards opened underneath it become children of
//!   whatever is innermost, and everything is RAII — no context threading by hand.
//!   (See the [`crate::root_span!`] and [`crate::span!`] macros.)
//! * Completed traces are committed to the **flight recorder**: per-thread
//!   fixed-capacity ring buffers ([`RING_CAPACITY`] records each) that the owning
//!   thread writes without locks and any thread snapshots via [`recent_spans`].
//!   Memory is bounded; old records are overwritten, never reallocated.
//! * **Sampling** is deterministic: a request is traced iff
//!   `mix64(seed) % sample_every == 0`, where `seed` is a caller-supplied request
//!   ordinal — no wall-clock, no RNG, so a given corpus samples the same requests
//!   on every run and byte-determinism of anything derived from inputs survives.
//! * The **slow-request log**: when a slow threshold is configured, every root is
//!   provisionally traced and any root whose duration reaches the threshold is
//!   committed with its full subtree — even if sampling would have skipped it —
//!   and flagged [`FLAG_SLOW`].
//!
//! # Determinism and cost
//!
//! Tracing is disabled until [`configure`] turns it on; a disabled [`Span`]
//! creation is one relaxed atomic load.  Active spans cost two `Instant::now`
//! calls plus a thread-local vector push.  Nothing here feeds back into
//! scheduling, and exporters iterate sorted data, so exports are deterministic
//! given the same records.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Records each per-thread ring buffer holds before overwriting the oldest.
pub const RING_CAPACITY: usize = 4096;

/// Hard cap on spans buffered inside one in-flight trace (runaway-recursion guard):
/// spans opened beyond this are dropped and counted in `trace.spans.truncated`.
pub const MAX_SPANS_PER_TRACE: usize = 8192;

/// Flag bit set on a root span that was force-retained by the slow-request log.
pub const FLAG_SLOW: u16 = 1;

const WORDS: usize = 8;

/// `1/N` sampling rate: trace a root iff `mix64(seed) % N == 0` (`0` = never).
static SAMPLE_EVERY: AtomicU64 = AtomicU64::new(0);
/// Slow-request threshold in nanoseconds (`0` = no slow log).
static SLOW_NS: AtomicU64 = AtomicU64::new(0);
/// Fast-path gate bitmask ([`GATE_TRACE`] | [`GATE_PROFILE`]): the disabled
/// span path is still one relaxed load covering both consumers.
static GATES: AtomicU64 = AtomicU64::new(0);
/// Process-global span id allocator (0 is reserved for "no parent").
static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);

/// Gate bit: tracing is configured (sampling or the slow log is on).
const GATE_TRACE: u64 = 1;
/// Gate bit: the wall-clock profiler is armed and wants stack mirrors kept.
const GATE_PROFILE: u64 = 2;

#[inline]
fn gates() -> u64 {
    GATES.load(Ordering::Relaxed)
}

/// Configures tracing process-wide.
///
/// `sample_every` is the `1/N` sampling rate (`0` disables sampling);
/// `slow_threshold_ns` force-retains any root at least that slow (`0` disables the
/// slow log).  Tracing is active iff either is non-zero.  Also pins the trace
/// epoch, so spans recorded after configuration have non-negative offsets.
pub fn configure(sample_every: u64, slow_threshold_ns: u64) {
    epoch();
    SAMPLE_EVERY.store(sample_every, Ordering::Relaxed);
    SLOW_NS.store(slow_threshold_ns, Ordering::Relaxed);
    let on = sample_every > 0 || slow_threshold_ns > 0;
    if on {
        GATES.fetch_or(GATE_TRACE, Ordering::Relaxed);
    } else {
        GATES.fetch_and(!GATE_TRACE, Ordering::Relaxed);
    }
}

/// Opens or closes the profiler gate bit (called by [`crate::profile::arm`] /
/// [`crate::profile::disarm`]); orthogonal to [`configure`].
pub(crate) fn set_profile_gate(on: bool) {
    if on {
        epoch();
        GATES.fetch_or(GATE_PROFILE, Ordering::Relaxed);
    } else {
        GATES.fetch_and(!GATE_PROFILE, Ordering::Relaxed);
    }
}

/// The configured `1/N` sampling rate (`0` = sampling off).
pub fn sample_every() -> u64 {
    SAMPLE_EVERY.load(Ordering::Relaxed)
}

/// The configured slow-request threshold in nanoseconds (`0` = slow log off).
pub fn slow_threshold_ns() -> u64 {
    SLOW_NS.load(Ordering::Relaxed)
}

/// Whether tracing is configured on (the disabled-span fast path: one relaxed load).
#[inline]
pub fn tracing_configured() -> bool {
    gates() & GATE_TRACE != 0
}

/// Whether *any* span consumer is live — tracing configured or the profiler
/// armed.  This is the gate the [`crate::span!`] / [`crate::root_span!`]
/// macros check: still one relaxed load on the all-off fast path.
#[inline]
pub fn instrumented() -> bool {
    gates() != 0
}

/// SplitMix64 finalizer: the deterministic sampling hash.
///
/// Bijective over `u64`, so distinct seeds (request ordinals) never collide, and
/// well mixed, so `mix64(seed) % N` samples uniformly even for sequential seeds.
pub fn mix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Whether the root with sampling seed `seed` is selected at the current rate.
pub fn sampled(seed: u64) -> bool {
    let every = sample_every();
    every > 0 && mix64(seed).is_multiple_of(every)
}

/// The process trace epoch: all span offsets are nanoseconds since this instant.
/// Shared with the event log and the health evaluator so every observability
/// timestamp in the process measures from the same zero.
pub(crate) fn epoch() -> Instant {
    static EPOCH: OnceLock<Instant> = OnceLock::new();
    *EPOCH.get_or_init(Instant::now)
}

pub(crate) fn since_epoch_ns(at: Instant) -> u64 {
    at.checked_duration_since(epoch())
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0)
}

// ---------------------------------------------------------------------------
// Site interning
// ---------------------------------------------------------------------------

struct SiteTable {
    by_name: BTreeMap<String, u32>,
    names: Vec<String>,
}

static SITES: Mutex<SiteTable> = Mutex::new(SiteTable {
    by_name: BTreeMap::new(),
    names: Vec::new(),
});

/// Interns `name` (a dotted site path like `"serve.request"`) to a stable `u32` id.
///
/// Call sites cache the id (the [`crate::span!`] macro does this in a `OnceLock`),
/// so the short mutex here is paid once per site, not per span.
pub fn site_id(name: &str) -> u32 {
    let mut table = SITES.lock().expect("trace site table poisoned");
    if let Some(&id) = table.by_name.get(name) {
        return id;
    }
    let id = table.names.len() as u32;
    table.names.push(name.to_string());
    table.by_name.insert(name.to_string(), id);
    id
}

/// The name interned under `id` (`"?"` if the id was never issued).
pub fn site_name(id: u32) -> String {
    let table = SITES.lock().expect("trace site table poisoned");
    table
        .names
        .get(id as usize)
        .cloned()
        .unwrap_or_else(|| "?".to_string())
}

// ---------------------------------------------------------------------------
// Records and the flight-recorder ring
// ---------------------------------------------------------------------------

/// One completed span, as stored in (and drained from) the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanRecord {
    /// The trace (request) this span belongs to; deterministic for a given seed.
    pub trace_id: u64,
    /// This span's process-unique id.
    pub span_id: u64,
    /// The enclosing span's id (`0` for a trace root).
    pub parent_id: u64,
    /// Interned site id (resolve with [`site_name`]).
    pub site: u32,
    /// Flight-recorder lane (the committing thread's ring index).
    pub lane: u16,
    /// Flag bits ([`FLAG_SLOW`]).
    pub flags: u16,
    /// Start offset in nanoseconds since the process trace epoch.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Small caller-supplied payload (batch size, request ordinal, …).
    pub arg: u64,
}

/// One thread's flight-recorder lane: a fixed ring of records stored as atomic
/// words.  Only the owning thread writes; any thread may snapshot.  Each slot
/// carries a sequence tag that is poisoned during a rewrite, so a concurrent
/// snapshot drops a torn slot instead of reporting garbage.
struct Ring {
    lane: u16,
    words: Box<[AtomicU64]>,
    head: AtomicU64,
}

impl Ring {
    fn new(lane: u16) -> Ring {
        let mut words = Vec::with_capacity(RING_CAPACITY * WORDS);
        words.resize_with(RING_CAPACITY * WORDS, || AtomicU64::new(u64::MAX));
        Ring {
            lane,
            words: words.into_boxed_slice(),
            head: AtomicU64::new(0),
        }
    }

    /// Appends one record (owning thread only).
    fn push(&self, r: &SpanRecord) {
        let seq = self.head.load(Ordering::Relaxed);
        let base = (seq as usize % RING_CAPACITY) * WORDS;
        let w = &self.words;
        // Poison the tag first so a concurrent snapshot never sees a half-written
        // slot with a plausible tag.
        w[base + 7].store(u64::MAX, Ordering::Release);
        w[base].store(r.trace_id, Ordering::Relaxed);
        w[base + 1].store(r.span_id, Ordering::Relaxed);
        w[base + 2].store(r.parent_id, Ordering::Relaxed);
        w[base + 3].store(
            r.site as u64 | ((r.lane as u64) << 32) | ((r.flags as u64) << 48),
            Ordering::Relaxed,
        );
        w[base + 4].store(r.start_ns, Ordering::Relaxed);
        w[base + 5].store(r.dur_ns, Ordering::Relaxed);
        w[base + 6].store(r.arg, Ordering::Relaxed);
        w[base + 7].store(seq, Ordering::Release);
        self.head.store(seq + 1, Ordering::Release);
    }

    /// Copies the ring's current contents (oldest first), skipping torn slots.
    fn collect(&self, out: &mut Vec<SpanRecord>) {
        let head = self.head.load(Ordering::Acquire);
        let n = head.min(RING_CAPACITY as u64);
        for k in 0..n {
            let seq = head - n + k;
            let base = (seq as usize % RING_CAPACITY) * WORDS;
            let w = &self.words;
            if w[base + 7].load(Ordering::Acquire) != seq {
                continue;
            }
            let packed = w[base + 3].load(Ordering::Relaxed);
            let record = SpanRecord {
                trace_id: w[base].load(Ordering::Relaxed),
                span_id: w[base + 1].load(Ordering::Relaxed),
                parent_id: w[base + 2].load(Ordering::Relaxed),
                site: packed as u32,
                lane: (packed >> 32) as u16,
                flags: (packed >> 48) as u16,
                start_ns: w[base + 4].load(Ordering::Relaxed),
                dur_ns: w[base + 5].load(Ordering::Relaxed),
                arg: w[base + 6].load(Ordering::Relaxed),
            };
            // Re-check the tag: if the writer lapped us mid-copy, drop the slot.
            if w[base + 7].load(Ordering::Acquire) == seq {
                out.push(record);
            }
        }
    }

    fn clear(&self) {
        for slot in 0..RING_CAPACITY {
            self.words[slot * WORDS + 7].store(u64::MAX, Ordering::Release);
        }
        self.head.store(0, Ordering::Release);
    }
}

fn recorders() -> &'static Mutex<Vec<Arc<Ring>>> {
    static RECORDERS: OnceLock<Mutex<Vec<Arc<Ring>>>> = OnceLock::new();
    RECORDERS.get_or_init(|| Mutex::new(Vec::new()))
}

thread_local! {
    static THREAD_RING: RefCell<Option<Arc<Ring>>> = const { RefCell::new(None) };
}

fn with_thread_ring<R>(f: impl FnOnce(&Ring) -> R) -> R {
    THREAD_RING.with(|cell| {
        let mut slot = cell.borrow_mut();
        if slot.is_none() {
            let mut all = recorders().lock().expect("trace recorder list poisoned");
            let ring = Arc::new(Ring::new(all.len() as u16));
            all.push(Arc::clone(&ring));
            *slot = Some(ring);
        }
        f(slot.as_ref().expect("ring just installed"))
    })
}

/// Snapshots the flight recorder: every lane's current contents, merged and sorted
/// by `(start_ns, span_id)` so the view is deterministic for a given set of records.
///
/// This is a copy, not a drain — records stay in their rings until overwritten, so
/// repeated probes (the `!trace` control line) see a sliding window of recent
/// activity without stealing it from a later exporter.
pub fn recent_spans() -> Vec<SpanRecord> {
    let mut out = Vec::new();
    let all = recorders().lock().expect("trace recorder list poisoned");
    for ring in all.iter() {
        ring.collect(&mut out);
    }
    drop(all);
    out.sort_by_key(|r| (r.start_ns, r.span_id));
    out
}

/// Empties every lane of the flight recorder.
///
/// Writers racing this keep working (their next commit simply lands in the cleared
/// ring); intended for tests and benchmarks that need a known-empty recorder.
pub fn clear() {
    let all = recorders().lock().expect("trace recorder list poisoned");
    for ring in all.iter() {
        ring.clear();
    }
}

// ---------------------------------------------------------------------------
// Active traces: the thread-local span stack
// ---------------------------------------------------------------------------

struct ActiveTrace {
    trace_id: u64,
    is_sampled: bool,
    /// Indices into `spans` of the currently open ancestors, innermost last.
    stack: Vec<usize>,
    /// Every span of this trace, committed or discarded wholesale at root exit.
    spans: Vec<SpanRecord>,
    truncated: u64,
}

thread_local! {
    static ACTIVE: RefCell<Option<ActiveTrace>> = const { RefCell::new(None) };
}

struct TraceCounters {
    roots_sampled: &'static crate::Counter,
    roots_slow: &'static crate::Counter,
    roots_discarded: &'static crate::Counter,
    spans_committed: &'static crate::Counter,
    spans_truncated: &'static crate::Counter,
}

fn trace_counters() -> &'static TraceCounters {
    static COUNTERS: OnceLock<TraceCounters> = OnceLock::new();
    COUNTERS.get_or_init(|| TraceCounters {
        roots_sampled: crate::counter("trace.roots.sampled"),
        roots_slow: crate::counter("trace.roots.slow_retained"),
        roots_discarded: crate::counter("trace.roots.discarded"),
        spans_committed: crate::counter("trace.spans.committed"),
        spans_truncated: crate::counter("trace.spans.truncated"),
    })
}

/// An RAII guard for a span nested inside the current thread's active trace.
///
/// Created by [`Span::enter`] (usually via the [`crate::span!`] macro).  Inert —
/// a no-op shell — when tracing is off or no trace is active on this thread, so
/// instrumented code needs no conditionals.
#[must_use = "a span measures until dropped; binding it to `_` drops immediately"]
pub struct Span {
    /// Index into the active trace's span buffer, or `usize::MAX` when inert.
    index: usize,
    started: Option<Instant>,
    /// Whether this guard pushed the profiler's stack mirror and owes a pop.
    mirror_pushed: bool,
}

impl Span {
    /// A span that records nothing.
    pub fn inert() -> Span {
        // No clock read: the inert guard must cost nothing beyond its construction.
        Span {
            index: usize::MAX,
            started: None,
            mirror_pushed: false,
        }
    }

    /// Opens a child of the innermost open span on this thread, carrying `arg`.
    ///
    /// Inert when neither tracing nor the profiler is on.  When only the
    /// profiler is armed the guard records no trace span but still maintains
    /// the thread's stack mirror, so wall-clock samples see the full stack.
    #[inline]
    pub fn enter(site: u32, arg: u64) -> Span {
        let gates = gates();
        if gates == 0 {
            return Span::inert();
        }
        let mirror_pushed = gates & GATE_PROFILE != 0 && crate::profile::push_site(site);
        if gates & GATE_TRACE == 0 {
            return Span {
                index: usize::MAX,
                started: None,
                mirror_pushed,
            };
        }
        ACTIVE.with(|cell| {
            let mut active = cell.borrow_mut();
            let Some(trace) = active.as_mut() else {
                return Span {
                    index: usize::MAX,
                    started: None,
                    mirror_pushed,
                };
            };
            let mut span = Span::open_in(trace, site, arg);
            span.mirror_pushed = mirror_pushed;
            span
        })
    }

    fn open_in(trace: &mut ActiveTrace, site: u32, arg: u64) -> Span {
        if trace.spans.len() >= MAX_SPANS_PER_TRACE {
            trace.truncated += 1;
            return Span::inert();
        }
        let started = Instant::now();
        let parent_id = trace
            .stack
            .last()
            .map(|&i| trace.spans[i].span_id)
            .unwrap_or(0);
        let index = trace.spans.len();
        trace.spans.push(SpanRecord {
            trace_id: trace.trace_id,
            span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            parent_id,
            site,
            lane: 0,
            flags: 0,
            start_ns: since_epoch_ns(started),
            dur_ns: 0,
            arg,
        });
        trace.stack.push(index);
        Span {
            index,
            started: Some(started),
            mirror_pushed: false,
        }
    }

    fn close_in(trace: &mut ActiveTrace, index: usize, started: Instant) {
        trace.spans[index].dur_ns = started.elapsed().as_nanos() as u64;
        // Guards drop in LIFO order, so the top of the stack is this span; tolerate
        // out-of-order drops (mem::forget'd siblings) by searching from the top.
        if let Some(pos) = trace.stack.iter().rposition(|&i| i == index) {
            trace.stack.remove(pos);
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if self.index != usize::MAX {
            if let Some(started) = self.started {
                ACTIVE.with(|cell| {
                    if let Some(trace) = cell.borrow_mut().as_mut() {
                        Span::close_in(trace, self.index, started);
                    }
                });
            }
        }
        if self.mirror_pushed {
            crate::profile::pop_site();
        }
    }
}

enum RootState {
    Inert,
    /// A root opened while a trace was already active nests as a plain child; the
    /// guard is held only for its drop.
    Nested {
        _child: Span,
    },
    Root {
        started: Instant,
    },
}

/// An RAII guard opening (and at drop, committing or discarding) one
/// request-scoped trace on the current thread.
///
/// Created by [`RootSpan::enter`] (usually via the [`crate::root_span!`] macro).
/// The trace is committed to the flight recorder if its seed was sampled, or —
/// whatever the sampling decision — if the root ran at least the configured slow
/// threshold (the slow-request log).  Otherwise every buffered span is discarded:
/// unsampled requests leave nothing behind but one counter increment.
#[must_use = "a root span measures until dropped; binding it to `_` drops immediately"]
pub struct RootSpan {
    state: RootState,
    /// Whether this guard pushed the profiler's stack mirror and owes a pop.
    mirror_pushed: bool,
}

impl RootSpan {
    /// A root that records nothing.
    pub fn inert() -> RootSpan {
        RootSpan {
            state: RootState::Inert,
            mirror_pushed: false,
        }
    }

    /// Opens a trace root at `site` for the request identified by `seed`.
    ///
    /// `seed` drives deterministic sampling (see [`sampled`]); `arg` is stored on
    /// the root record.  If this thread already has an active trace the "root"
    /// nests as an ordinary child span, which lets per-request roots compose with
    /// an enclosing per-connection root when batches run inline.  When the
    /// profiler is armed the guard also maintains the thread's stack mirror,
    /// independent of the sampling decision.
    #[inline]
    pub fn enter(site: u32, seed: u64, arg: u64) -> RootSpan {
        let gates = gates();
        if gates == 0 {
            return RootSpan::inert();
        }
        let mirror_pushed = gates & GATE_PROFILE != 0 && crate::profile::push_site(site);
        if gates & GATE_TRACE == 0 {
            return RootSpan {
                state: RootState::Inert,
                mirror_pushed,
            };
        }
        ACTIVE.with(|cell| {
            let mut active = cell.borrow_mut();
            if let Some(trace) = active.as_mut() {
                return RootSpan {
                    state: RootState::Nested {
                        _child: Span::open_in(trace, site, arg),
                    },
                    mirror_pushed,
                };
            }
            let is_sampled = sampled(seed);
            if !is_sampled && slow_threshold_ns() == 0 {
                return RootSpan {
                    state: RootState::Inert,
                    mirror_pushed,
                };
            }
            let started = Instant::now();
            let mut trace = ActiveTrace {
                trace_id: mix64(seed) | 1,
                is_sampled,
                stack: Vec::with_capacity(8),
                spans: Vec::with_capacity(8),
                truncated: 0,
            };
            trace.spans.push(SpanRecord {
                trace_id: trace.trace_id,
                span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
                parent_id: 0,
                site,
                lane: 0,
                flags: 0,
                start_ns: since_epoch_ns(started),
                dur_ns: 0,
                arg,
            });
            trace.stack.push(0);
            *active = Some(trace);
            RootSpan {
                state: RootState::Root { started },
                mirror_pushed,
            }
        })
    }
}

impl Drop for RootSpan {
    fn drop(&mut self) {
        // The Nested state's child guard drops here (a no-op for the mirror:
        // its flag is false — the root-level push below covers the site).
        let state = std::mem::replace(&mut self.state, RootState::Inert);
        if let RootState::Root { started } = state {
            Self::commit(started);
        }
        if self.mirror_pushed {
            crate::profile::pop_site();
        }
    }
}

impl RootSpan {
    fn commit(started: Instant) {
        let Some(mut trace) = ACTIVE.with(|cell| cell.borrow_mut().take()) else {
            return;
        };
        let dur_ns = started.elapsed().as_nanos() as u64;
        trace.spans[0].dur_ns = dur_ns;
        let slow_ns = slow_threshold_ns();
        let is_slow = slow_ns > 0 && dur_ns >= slow_ns;
        let counters = trace_counters();
        if !trace.is_sampled && !is_slow {
            counters.roots_discarded.incr();
            return;
        }
        if is_slow {
            trace.spans[0].flags |= FLAG_SLOW;
            counters.roots_slow.incr();
        }
        if trace.is_sampled {
            counters.roots_sampled.incr();
        }
        counters.spans_committed.add(trace.spans.len() as u64);
        if trace.truncated > 0 {
            counters.spans_truncated.add(trace.truncated);
        }
        with_thread_ring(|ring| {
            for record in &mut trace.spans {
                record.lane = ring.lane;
                ring.push(record);
            }
        });
    }
}

/// Records an already-measured wait as a child of the current span: a span that
/// began at `started` and ends now, without having held a guard open.
///
/// This is how cross-thread waits land in a trace — e.g. the serve layer stamps a
/// connection at enqueue time on the accept thread and records the queue wait here
/// once a worker picks it up.  No-op when the thread has no active trace.
pub fn complete_span(site: u32, started: Instant, arg: u64) {
    if !tracing_configured() {
        return;
    }
    ACTIVE.with(|cell| {
        let mut active = cell.borrow_mut();
        let Some(trace) = active.as_mut() else {
            return;
        };
        if trace.spans.len() >= MAX_SPANS_PER_TRACE {
            trace.truncated += 1;
            return;
        }
        let parent_id = trace
            .stack
            .last()
            .map(|&i| trace.spans[i].span_id)
            .unwrap_or(0);
        trace.spans.push(SpanRecord {
            trace_id: trace.trace_id,
            span_id: NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed),
            parent_id,
            site,
            lane: 0,
            flags: 0,
            start_ns: since_epoch_ns(started),
            dur_ns: started.elapsed().as_nanos() as u64,
            arg,
        });
    });
}

// ---------------------------------------------------------------------------
// Exporters
// ---------------------------------------------------------------------------

fn push_us(ns: u64, out: &mut String) {
    // Chrome trace timestamps are microseconds; keep nanosecond precision as a
    // fixed three-decimal fraction (deterministic, no float formatting drift).
    let _ = write!(out, "{}.{:03}", ns / 1_000, ns % 1_000);
}

/// Renders records as Chrome trace-event JSON: an object with a `traceEvents`
/// array of complete (`"ph":"X"`) events, loadable in `chrome://tracing` and
/// Perfetto, plus an embedded `summary` object ([`summary_json`]) that both
/// viewers ignore.
///
/// Events carry `pid` 1, `tid` = flight-recorder lane, microsecond `ts`/`dur`
/// with nanosecond fractions, and an `args` object holding the trace/span/parent
/// ids, the caller payload, and the slow-retention flag.
pub fn chrome_trace_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(64 + 160 * records.len());
    out.push_str("{\"displayTimeUnit\":\"ms\",\"summary\":");
    out.push_str(&summary_json(records));
    out.push_str(",\"traceEvents\":[");
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"args\":{{\"arg\":{},\"parent\":{},\"slow\":{},\"span\":{},\"trace\":{}}},\
             \"cat\":\"tcp\",\"dur\":",
            r.arg,
            r.parent_id,
            (r.flags & FLAG_SLOW) != 0,
            r.span_id,
            r.trace_id,
        );
        push_us(r.dur_ns, &mut out);
        out.push_str(",\"name\":");
        crate::export::json_escape(&site_name(r.site), &mut out);
        let _ = write!(out, ",\"ph\":\"X\",\"pid\":1,\"tid\":{},\"ts\":", r.lane);
        push_us(r.start_ns, &mut out);
        out.push('}');
    }
    out.push_str("]}");
    out
}

/// Per-site totals of a record set, as one line of sorted-key JSON:
/// `{"<site>":{"count":…,"self_ns":…,"total_ns":…},…}`.
///
/// `total_ns` sums span durations; `self_ns` subtracts each span's direct
/// children, so a site's self time is where its wall clock actually went.
pub fn summary_json(records: &[SpanRecord]) -> String {
    let mut index_of: BTreeMap<u64, usize> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        index_of.insert(r.span_id, i);
    }
    let mut self_ns: Vec<u64> = records.iter().map(|r| r.dur_ns).collect();
    for r in records {
        if r.parent_id == 0 {
            continue;
        }
        if let Some(&p) = index_of.get(&r.parent_id) {
            self_ns[p] = self_ns[p].saturating_sub(r.dur_ns);
        }
    }
    let mut sites: BTreeMap<String, (u64, u64, u64)> = BTreeMap::new();
    for (i, r) in records.iter().enumerate() {
        let entry = sites.entry(site_name(r.site)).or_insert((0, 0, 0));
        entry.0 += 1;
        entry.1 += self_ns[i];
        entry.2 += r.dur_ns;
    }
    let mut out = String::with_capacity(32 + 64 * sites.len());
    out.push('{');
    for (i, (site, (count, self_total, total))) in sites.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        crate::export::json_escape(site, &mut out);
        let _ = write!(
            out,
            ":{{\"count\":{count},\"self_ns\":{self_total},\"total_ns\":{total}}}"
        );
    }
    out.push('}');
    out
}

/// Renders records as a JSON array of flat span objects (sorted keys), the shape
/// the `!trace` control line embeds: site names resolved, ids and nanosecond
/// offsets verbatim.
pub fn spans_json(records: &[SpanRecord]) -> String {
    let mut out = String::with_capacity(16 + 128 * records.len());
    out.push('[');
    for (i, r) in records.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "{{\"arg\":{},\"dur_ns\":{},\"lane\":{},\"parent\":{},\"site\":",
            r.arg, r.dur_ns, r.lane, r.parent_id
        );
        crate::export::json_escape(&site_name(r.site), &mut out);
        let _ = write!(
            out,
            ",\"slow\":{},\"span\":{},\"start_ns\":{},\"trace\":{}}}",
            (r.flags & FLAG_SLOW) != 0,
            r.span_id,
            r.start_ns,
            r.trace_id
        );
    }
    out.push(']');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Serializes tests that mutate the process-global trace configuration.
    fn lock() -> std::sync::MutexGuard<'static, ()> {
        static GATE: Mutex<()> = Mutex::new(());
        GATE.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
    }

    #[test]
    fn unconfigured_spans_are_inert() {
        let _gate = lock();
        configure(0, 0);
        clear();
        {
            let _root = RootSpan::enter(site_id("test.inert.root"), 7, 0);
            let _child = Span::enter(site_id("test.inert.child"), 0);
        }
        assert!(!recent_spans()
            .iter()
            .any(|r| site_name(r.site).starts_with("test.inert")));
    }

    #[test]
    fn sampling_is_deterministic_and_one_in_n() {
        let _gate = lock();
        configure(4, 0);
        let picked: Vec<u64> = (0..4096).filter(|&s| sampled(s)).collect();
        let again: Vec<u64> = (0..4096).filter(|&s| sampled(s)).collect();
        assert_eq!(
            picked, again,
            "sampling must be a pure function of the seed"
        );
        // ~1/4 of seeds selected, within a loose tolerance.
        assert!((700..=1400).contains(&picked.len()), "{}", picked.len());
        configure(0, 0);
    }

    #[test]
    fn nesting_parent_links_and_summary_self_time() {
        let _gate = lock();
        configure(1, 0);
        clear();
        let root_site = site_id("test.nest.root");
        let child_site = site_id("test.nest.child");
        {
            let _root = RootSpan::enter(root_site, 42, 9);
            let _a = Span::enter(child_site, 1);
            drop(_a);
            let _b = Span::enter(child_site, 2);
        }
        let records: Vec<SpanRecord> = recent_spans()
            .into_iter()
            .filter(|r| r.site == root_site || r.site == child_site)
            .collect();
        assert_eq!(records.len(), 3);
        let root = records.iter().find(|r| r.site == root_site).unwrap();
        assert_eq!(root.parent_id, 0);
        assert_eq!(root.arg, 9);
        for child in records.iter().filter(|r| r.site == child_site) {
            assert_eq!(child.parent_id, root.span_id);
            assert_eq!(child.trace_id, root.trace_id);
            assert!(child.dur_ns <= root.dur_ns);
        }
        let summary = summary_json(&records);
        assert!(summary.contains("\"test.nest.root\":{\"count\":1"));
        assert!(summary.contains("\"test.nest.child\":{\"count\":2"));
        configure(0, 0);
    }

    #[test]
    fn unsampled_roots_leave_nothing_unless_slow() {
        let _gate = lock();
        // Sampling off, slow log armed at an unreachable threshold: provisional
        // traces are buffered but discarded.
        configure(0, u64::MAX);
        clear();
        let site = site_id("test.slowgate.fast");
        {
            let _root = RootSpan::enter(site, 3, 0);
            let _child = Span::enter(site_id("test.slowgate.fast.child"), 0);
        }
        assert!(!recent_spans().iter().any(|r| r.site == site));

        // Threshold of 1 ns: everything is slow, everything is retained + flagged.
        configure(0, 1);
        let slow_site = site_id("test.slowgate.slow");
        {
            let _root = RootSpan::enter(slow_site, 3, 0);
            std::hint::black_box((0..64).sum::<u64>());
        }
        let retained: Vec<SpanRecord> = recent_spans()
            .into_iter()
            .filter(|r| r.site == slow_site)
            .collect();
        assert_eq!(retained.len(), 1);
        assert_eq!(retained[0].flags & FLAG_SLOW, FLAG_SLOW);
        configure(0, 0);
    }

    #[test]
    fn ring_is_bounded_and_keeps_the_most_recent() {
        let _gate = lock();
        configure(1, 0);
        clear();
        let site = site_id("test.ring.bound");
        for i in 0..(RING_CAPACITY as u64 + 64) {
            let _root = RootSpan::enter(site, i, i);
        }
        let mine: Vec<SpanRecord> = recent_spans()
            .into_iter()
            .filter(|r| r.site == site)
            .collect();
        assert!(mine.len() <= RING_CAPACITY);
        // The newest roots survive; the oldest were overwritten.
        assert!(mine.iter().any(|r| r.arg == RING_CAPACITY as u64 + 63));
        configure(0, 0);
    }

    #[test]
    fn chrome_export_shape() {
        let _gate = lock();
        let site = site_id("test.chrome.site");
        let records = [SpanRecord {
            trace_id: 11,
            span_id: 21,
            parent_id: 0,
            site,
            lane: 2,
            flags: FLAG_SLOW,
            start_ns: 1_500,
            dur_ns: 2_001,
            arg: 5,
        }];
        let json = chrome_trace_json(&records);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"summary\":{"));
        assert!(json.contains("\"traceEvents\":[{\"args\":{\"arg\":5,\"parent\":0,\"slow\":true,\"span\":21,\"trace\":11}"));
        assert!(json.contains("\"cat\":\"tcp\""));
        assert!(json.contains("\"dur\":2.001"));
        assert!(json.contains("\"name\":\"test.chrome.site\""));
        assert!(json.contains("\"ph\":\"X\",\"pid\":1,\"tid\":2,\"ts\":1.500"));
        let spans = spans_json(&records);
        assert!(spans.contains("\"site\":\"test.chrome.site\""));
        assert!(spans.contains("\"slow\":true"));
    }

    #[test]
    fn profiler_gate_mirrors_spans_without_tracing() {
        let _gate = lock();
        configure(0, 0);
        clear();
        set_profile_gate(true);
        let root_site = site_id("test.mirrorgate.root");
        let child_site = site_id("test.mirrorgate.child");
        {
            let _root = RootSpan::enter(root_site, 9, 0);
            let _child = Span::enter(child_site, 0);
            crate::profile::tick();
        }
        set_profile_gate(false);
        // No trace records (tracing is off) …
        assert!(!recent_spans()
            .iter()
            .any(|r| r.site == root_site || r.site == child_site));
        // … but the wall profiler saw the stack, outermost first.
        let snap = crate::profile::snapshot();
        let (path, _) = snap
            .stacks
            .iter()
            .find(|(path, _)| path.contains(&"test.mirrorgate.child".to_string()))
            .expect("profiler sampled the span stack");
        let root_pos = path
            .iter()
            .position(|f| f == "test.mirrorgate.root")
            .expect("root frame mirrored");
        let child_pos = path
            .iter()
            .position(|f| f == "test.mirrorgate.child")
            .unwrap();
        assert!(root_pos < child_pos);
    }

    #[test]
    fn complete_span_attaches_to_the_active_trace() {
        let _gate = lock();
        configure(1, 0);
        clear();
        let root_site = site_id("test.complete.root");
        let wait_site = site_id("test.complete.wait");
        {
            let _root = RootSpan::enter(root_site, 5, 0);
            complete_span(wait_site, Instant::now(), 77);
        }
        let records = recent_spans();
        let root = records.iter().find(|r| r.site == root_site).unwrap();
        let wait = records.iter().find(|r| r.site == wait_site).unwrap();
        assert_eq!(wait.parent_id, root.span_id);
        assert_eq!(wait.arg, 77);
        configure(0, 0);
    }
}
