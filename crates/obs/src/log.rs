//! Structured event log: leveled one-line JSON records, rate-limited per site.
//!
//! The workspace's diagnostics used to be ad-hoc `eprintln!` lines — fine for a dev
//! loop, useless for a log pipeline.  This module replaces them with **structured
//! events**: each record is one line of sorted-key JSON carrying a monotonic
//! timestamp (nanoseconds since the shared observability epoch, the same zero as
//! [`crate::trace`] span offsets), a level, a dotted site name, and typed key/value
//! arguments.  Records are emitted through the [`crate::event!`] macro:
//!
//! ```
//! tcp_obs::event!(info, "doc.example", answered = 42u64, shed = false);
//! ```
//!
//! Three properties make the log safe to leave on in production:
//!
//! * **Out-of-band**: records go to stderr (or a test capture buffer), never to
//!   stdout — served response bytes are unaffected by logging on or off.
//! * **Rate-limited per site**: every site has a token bucket
//!   ([`set_rate_limit`]); when a site floods, excess records are dropped and the
//!   next record that passes carries a `suppressed` count, so the pipeline sees
//!   the gap instead of the flood.
//! * **Bounded recall**: the most recent warn/error records are kept in an
//!   in-memory ring ([`recent_errors`]) so health probes (`!health`) can report
//!   what went wrong lately without scraping the log stream.

use crate::export::{json_escape, json_number};
use std::collections::BTreeMap;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// How many warn/error records [`recent_errors`] retains.
const ERROR_RING_CAPACITY: usize = 128;

/// Event severity, ordered: `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Development-time detail, off by default.
    Debug,
    /// Normal operational milestones (startup, drain, heartbeat).
    Info,
    /// Something degraded but the process keeps serving.
    Warn,
    /// Something failed; an operator should look.
    Error,
}

impl Level {
    /// The lowercase name used in rendered records.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }
}

/// One typed event argument value.
#[derive(Debug, Clone, PartialEq)]
pub enum EventValue {
    /// A boolean flag.
    Bool(bool),
    /// A signed integer.
    Int(i64),
    /// An unsigned integer.
    UInt(u64),
    /// A float (non-finite renders as `null`).
    Float(f64),
    /// A string.
    Str(String),
}

impl From<bool> for EventValue {
    fn from(v: bool) -> Self {
        EventValue::Bool(v)
    }
}
impl From<i64> for EventValue {
    fn from(v: i64) -> Self {
        EventValue::Int(v)
    }
}
impl From<i32> for EventValue {
    fn from(v: i32) -> Self {
        EventValue::Int(v as i64)
    }
}
impl From<u64> for EventValue {
    fn from(v: u64) -> Self {
        EventValue::UInt(v)
    }
}
impl From<u32> for EventValue {
    fn from(v: u32) -> Self {
        EventValue::UInt(v as u64)
    }
}
impl From<usize> for EventValue {
    fn from(v: usize) -> Self {
        EventValue::UInt(v as u64)
    }
}
impl From<f64> for EventValue {
    fn from(v: f64) -> Self {
        EventValue::Float(v)
    }
}
impl From<&str> for EventValue {
    fn from(v: &str) -> Self {
        EventValue::Str(v.to_string())
    }
}
impl From<String> for EventValue {
    fn from(v: String) -> Self {
        EventValue::Str(v)
    }
}
impl From<&String> for EventValue {
    fn from(v: &String) -> Self {
        EventValue::Str(v.clone())
    }
}

impl EventValue {
    fn render(&self, out: &mut String) {
        match self {
            EventValue::Bool(v) => {
                out.push_str(if *v { "true" } else { "false" });
            }
            EventValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            EventValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            EventValue::Float(v) => json_number(*v, out),
            EventValue::Str(v) => json_escape(v, out),
        }
    }
}

/// One structured event record.
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Nanoseconds since the shared observability epoch (monotonic, same zero as
    /// trace span offsets).
    pub ts_ns: u64,
    /// Severity.
    pub level: Level,
    /// Dotted site name (`"serve.listen"`, `"sweep.heartbeat"`, ...).
    pub site: String,
    /// Key/value arguments, sorted by key when rendered.
    pub args: Vec<(String, EventValue)>,
    /// How many records at this site were rate-limit-dropped since the previous
    /// record that passed.
    pub suppressed: u64,
}

impl EventRecord {
    /// Renders the record as one line of JSON with deterministically sorted keys
    /// at both levels: `{"args":{...},"level":...,"site":...,"suppressed":...,
    /// "ts_ns":...}`, with `args` keys sorted too.
    pub fn to_json_line(&self) -> String {
        let mut args: Vec<&(String, EventValue)> = self.args.iter().collect();
        args.sort_by(|a, b| a.0.cmp(&b.0));
        let mut out = String::with_capacity(96 + 24 * args.len());
        out.push_str("{\"args\":{");
        for (i, (key, value)) in args.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            json_escape(key, &mut out);
            out.push(':');
            value.render(&mut out);
        }
        out.push_str("},\"level\":");
        json_escape(self.level.as_str(), &mut out);
        out.push_str(",\"site\":");
        json_escape(&self.site, &mut out);
        let _ = write!(out, ",\"suppressed\":{}", self.suppressed);
        let _ = write!(out, ",\"ts_ns\":{}}}", self.ts_ns);
        out
    }
}

/// Seconds since the shared observability epoch (monotonic).  The same clock the
/// event log stamps `ts_ns` with and the health evaluator ticks on, so pack-age
/// arithmetic (`now - loaded_at`) is exact.
pub fn now_monotonic_secs() -> f64 {
    crate::trace::since_epoch_ns(Instant::now()) as f64 / 1e9
}

/// Minimum level that reaches the sink (and the ring); stored as a `u8`.
static MIN_LEVEL: AtomicU8 = AtomicU8::new(1); // Info

/// Sets the minimum level emitted; records below it are dropped at the macro
/// call site (one relaxed atomic load).  Defaults to [`Level::Info`].
pub fn set_min_level(level: Level) {
    MIN_LEVEL.store(level as u8, Ordering::Relaxed);
}

/// Whether `level` passes the current minimum-level filter.
#[inline]
pub fn level_enabled(level: Level) -> bool {
    level as u8 >= MIN_LEVEL.load(Ordering::Relaxed)
}

/// Token bucket state for one site.
struct SiteBucket {
    tokens: f64,
    last_refill_secs: f64,
    suppressed: u64,
}

/// Where rendered records go.
enum Sink {
    Stderr,
    Capture(Arc<Mutex<Vec<String>>>),
}

struct LogState {
    sink: Sink,
    /// Per-site token buckets: `burst` capacity, `per_sec` refill.
    buckets: BTreeMap<String, SiteBucket>,
    burst: f64,
    per_sec: f64,
    /// Recent warn/error records, newest last.
    ring: VecDeque<EventRecord>,
}

fn state() -> &'static Mutex<LogState> {
    static STATE: OnceLock<Mutex<LogState>> = OnceLock::new();
    STATE.get_or_init(|| {
        Mutex::new(LogState {
            sink: Sink::Stderr,
            buckets: BTreeMap::new(),
            burst: 16.0,
            per_sec: 8.0,
            ring: VecDeque::with_capacity(ERROR_RING_CAPACITY),
        })
    })
}

/// Reconfigures the per-site token buckets: each site may emit bursts of up to
/// `burst` records and refills at `per_sec` records per second.  Defaults are
/// 16 / 8.0.  Existing bucket state is reset.
pub fn set_rate_limit(burst: u64, per_sec: f64) {
    let mut st = state().lock().expect("log state poisoned");
    st.burst = burst.max(1) as f64;
    st.per_sec = per_sec.max(0.0);
    st.buckets.clear();
}

/// Redirects rendered records into an in-memory buffer and returns it — a test
/// and CI hook; production sinks are stderr.  Call [`capture_stop`] to restore
/// the stderr sink.
pub fn capture() -> Arc<Mutex<Vec<String>>> {
    let buffer = Arc::new(Mutex::new(Vec::new()));
    let mut st = state().lock().expect("log state poisoned");
    st.sink = Sink::Capture(Arc::clone(&buffer));
    buffer
}

/// Restores the stderr sink after a [`capture`].
pub fn capture_stop() {
    let mut st = state().lock().expect("log state poisoned");
    st.sink = Sink::Stderr;
}

/// The most recent warn/error records, oldest first (bounded ring).  This is what
/// the serving layer's `!health` line reports as `recent_errors`.
pub fn recent_errors() -> Vec<EventRecord> {
    let st = state().lock().expect("log state poisoned");
    st.ring.iter().cloned().collect()
}

/// Clears the warn/error ring (test isolation; the ring is process-global).
pub fn clear_recent_errors() {
    let mut st = state().lock().expect("log state poisoned");
    st.ring.clear();
}

/// Emits one event: applies the per-site token bucket, renders the record as one
/// JSON line into the sink, and retains warn/error records in the recent ring.
/// Most call sites use the [`crate::event!`] macro, which also applies the
/// min-level filter before paying for argument construction.
pub fn emit(level: Level, site: &str, args: Vec<(String, EventValue)>) {
    if !level_enabled(level) {
        return;
    }
    let now_secs = now_monotonic_secs();
    let ts_ns = (now_secs * 1e9) as u64;
    let mut st = state().lock().expect("log state poisoned");
    // Token bucket: refill by elapsed time, spend one token per record.
    let (burst, per_sec) = (st.burst, st.per_sec);
    let bucket = st
        .buckets
        .entry(site.to_string())
        .or_insert_with(|| SiteBucket {
            tokens: burst,
            last_refill_secs: now_secs,
            suppressed: 0,
        });
    let elapsed = (now_secs - bucket.last_refill_secs).max(0.0);
    bucket.tokens = (bucket.tokens + elapsed * per_sec).min(burst);
    bucket.last_refill_secs = now_secs;
    if bucket.tokens < 1.0 {
        bucket.suppressed += 1;
        return;
    }
    bucket.tokens -= 1.0;
    let suppressed = std::mem::take(&mut bucket.suppressed);

    let record = EventRecord {
        ts_ns,
        level,
        site: site.to_string(),
        args,
        suppressed,
    };
    let line = record.to_json_line();
    if level >= Level::Warn {
        if st.ring.len() == ERROR_RING_CAPACITY {
            st.ring.pop_front();
        }
        st.ring.push_back(record);
    }
    match &st.sink {
        Sink::Stderr => eprintln!("{line}"),
        Sink::Capture(buffer) => buffer.lock().expect("capture poisoned").push(line),
    }
}

/// Emits a structured event record: `obs::event!(warn, "serve.overload",
/// shed = n, inflight = m);`.
///
/// The first argument is the level ident (`debug` / `info` / `warn` / `error`),
/// the second the dotted site name, then any number of `key = value` pairs where
/// the value converts into [`log::EventValue`](crate::log::EventValue) (integers,
/// floats, bools, strings).  Records below the
/// [`log::set_min_level`](crate::log::set_min_level) threshold cost one atomic
/// load; passing records are rendered as one line of sorted-key JSON on stderr,
/// rate-limited per site, with warn/error records additionally retained for
/// [`log::recent_errors`](crate::log::recent_errors).
#[macro_export]
macro_rules! event {
    (debug, $site:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::event!(@emit $crate::log::Level::Debug, $site $(, $key = $value)*)
    };
    (info, $site:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::event!(@emit $crate::log::Level::Info, $site $(, $key = $value)*)
    };
    (warn, $site:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::event!(@emit $crate::log::Level::Warn, $site $(, $key = $value)*)
    };
    (error, $site:expr $(, $key:ident = $value:expr)* $(,)?) => {
        $crate::event!(@emit $crate::log::Level::Error, $site $(, $key = $value)*)
    };
    (@emit $level:expr, $site:expr $(, $key:ident = $value:expr)*) => {{
        if $crate::log::level_enabled($level) {
            $crate::log::emit(
                $level,
                $site,
                ::std::vec![$(
                    (
                        ::std::string::String::from(::std::stringify!($key)),
                        $crate::log::EventValue::from($value),
                    )
                ),*],
            );
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_renders_one_sorted_line() {
        let record = EventRecord {
            ts_ns: 12345,
            level: Level::Warn,
            site: "serve.listen".to_string(),
            args: vec![
                ("zeta".to_string(), EventValue::UInt(7)),
                ("alpha".to_string(), EventValue::Str("x\"y".to_string())),
                ("mid".to_string(), EventValue::Float(1.5)),
                ("neg".to_string(), EventValue::Int(-3)),
                ("flag".to_string(), EventValue::Bool(true)),
            ],
            suppressed: 2,
        };
        let line = record.to_json_line();
        assert_eq!(
            line,
            "{\"args\":{\"alpha\":\"x\\\"y\",\"flag\":true,\"mid\":1.5,\"neg\":-3,\
             \"zeta\":7},\"level\":\"warn\",\"site\":\"serve.listen\",\
             \"suppressed\":2,\"ts_ns\":12345}"
        );
        assert!(!line.contains('\n'));
    }

    #[test]
    fn non_finite_floats_render_null() {
        let record = EventRecord {
            ts_ns: 0,
            level: Level::Info,
            site: "t".to_string(),
            args: vec![("nan".to_string(), EventValue::Float(f64::NAN))],
            suppressed: 0,
        };
        assert!(record.to_json_line().contains("\"nan\":null"));
    }

    #[test]
    fn levels_order_and_filter() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        assert_eq!(Level::Warn.as_str(), "warn");
    }

    #[test]
    fn emit_capture_ring_and_rate_limit() {
        // One test for the global paths (sink, ring, buckets are process-global
        // state shared with any other test in this binary).
        let buffer = capture();
        clear_recent_errors();
        set_rate_limit(4, 0.0); // burst of 4, no refill: the 5th record drops
        for i in 0..6u64 {
            crate::event!(warn, "test.limited", ordinal = i);
        }
        // Refill is zero, so exactly `burst` records passed.
        assert_eq!(buffer.lock().unwrap().len(), 4);
        // The ring holds the same four; all of them are warn records.
        let ring: Vec<EventRecord> = recent_errors()
            .into_iter()
            .filter(|r| r.site == "test.limited")
            .collect();
        assert_eq!(ring.len(), 4);
        assert!(ring.iter().all(|r| r.level == Level::Warn));

        // A fresh allowance surfaces the suppressed count on the next record.
        set_rate_limit(4, 0.0);
        crate::event!(warn, "test.limited", ordinal = 99u64);
        let last = recent_errors()
            .into_iter()
            .rfind(|r| r.site == "test.limited")
            .unwrap();
        // set_rate_limit cleared bucket state, so the suppression counter restarted;
        // what matters is the record shape, not the exact count here.
        assert_eq!(last.args[0], ("ordinal".to_string(), EventValue::UInt(99)));
        let line = last.to_json_line();
        assert!(line.contains("\"suppressed\":"), "{line}");

        // Info events pass the sink but stay out of the error ring.
        crate::event!(info, "test.info_only", note = "hi");
        assert!(recent_errors().iter().all(|r| r.site != "test.info_only"));
        assert!(buffer
            .lock()
            .unwrap()
            .iter()
            .any(|l| l.contains("test.info_only")));

        // Min-level filtering drops debug events entirely.
        crate::event!(debug, "test.debug_dropped");
        assert!(buffer
            .lock()
            .unwrap()
            .iter()
            .all(|l| !l.contains("test.debug_dropped")));

        set_rate_limit(16, 8.0);
        capture_stop();
        clear_recent_errors();
    }

    #[test]
    fn suppressed_count_attaches_to_next_passing_record() {
        let buffer = capture();
        set_rate_limit(1, 0.0);
        crate::event!(warn, "test.suppression", n = 0u64); // passes, drains bucket
        crate::event!(warn, "test.suppression", n = 1u64); // dropped
        crate::event!(warn, "test.suppression", n = 2u64); // dropped
        set_rate_limit(1, 0.0); // NOTE: resets counters too
        crate::event!(warn, "test.suppression", n = 3u64); // passes, suppressed = 0
        let lines = buffer.lock().unwrap();
        let mine: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("test.suppression"))
            .collect();
        assert_eq!(mine.len(), 2);
        drop(lines);

        // Without the reset the counter rides along: drain, drop two, refill by
        // explicit bucket-friendly waiting is flaky in CI, so assert the dropped
        // records were counted through the rendered `suppressed` field pathway
        // using a generous refill instead.
        set_rate_limit(1, 1e9); // effectively instant refill
        crate::event!(warn, "test.suppression2", n = 0u64);
        crate::event!(warn, "test.suppression2", n = 1u64);
        let lines = buffer.lock().unwrap();
        let mine: Vec<&String> = lines
            .iter()
            .filter(|l| l.contains("test.suppression2"))
            .collect();
        assert_eq!(mine.len(), 2, "instant refill passes everything");
        drop(lines);
        set_rate_limit(16, 8.0);
        capture_stop();
        clear_recent_errors();
    }

    #[test]
    fn now_monotonic_secs_is_monotone() {
        let a = now_monotonic_secs();
        let b = now_monotonic_secs();
        assert!(b >= a);
        assert!(a >= 0.0);
    }
}
