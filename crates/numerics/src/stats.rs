//! Descriptive statistics, empirical CDFs and goodness-of-fit measures.
//!
//! The empirical study in Section 3 of the paper is entirely expressed in terms of
//! empirical CDFs of VM lifetimes and how well candidate failure distributions fit them
//! (least-squares error, and implicitly R²).  This module provides those primitives plus
//! the Kolmogorov–Smirnov statistic used by the test-suite to check that samplers agree
//! with their analytic CDFs.

use crate::interp::LinearInterp;
use crate::{NumericsError, Result};

/// Summary statistics of a sample.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample variance (n-1 denominator); zero for a single observation.
    pub variance: f64,
    /// Standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
    /// Median (linear interpolation between order statistics).
    pub median: f64,
}

/// Computes summary statistics for a non-empty sample.
pub fn summarize(data: &[f64]) -> Result<Summary> {
    if data.is_empty() {
        return Err(NumericsError::invalid("cannot summarize an empty sample"));
    }
    if data.iter().any(|v| !v.is_finite()) {
        return Err(NumericsError::non_finite("sample contains NaN or infinity"));
    }
    let n = data.len() as f64;
    let mean = data.iter().sum::<f64>() / n;
    let variance = if data.len() > 1 {
        data.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / (n - 1.0)
    } else {
        0.0
    };
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let min = sorted[0];
    let max = *sorted.last().unwrap();
    let median = quantile_sorted(&sorted, 0.5);
    Ok(Summary {
        count: data.len(),
        mean,
        variance,
        std_dev: variance.sqrt(),
        min,
        max,
        median,
    })
}

/// Quantile of an already-sorted sample using linear interpolation (type-7, the numpy default).
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty sample");
    let q = q.clamp(0.0, 1.0);
    if sorted.len() == 1 {
        return sorted[0];
    }
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let w = pos - lo as f64;
        sorted[lo] * (1.0 - w) + sorted[hi] * w
    }
}

/// Quantile of an unsorted sample.
pub fn quantile(data: &[f64], q: f64) -> Result<f64> {
    if data.is_empty() {
        return Err(NumericsError::invalid("quantile of empty sample"));
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
    Ok(quantile_sorted(&sorted, q))
}

/// An empirical cumulative distribution function built from observed lifetimes.
#[derive(Debug, Clone)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds an ECDF from a non-empty sample (any order; values are copied and sorted).
    pub fn new(sample: &[f64]) -> Result<Self> {
        if sample.is_empty() {
            return Err(NumericsError::invalid(
                "ECDF requires at least one observation",
            ));
        }
        if sample.iter().any(|v| !v.is_finite()) {
            return Err(NumericsError::non_finite("ECDF sample"));
        }
        let mut sorted = sample.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        Ok(Ecdf { sorted })
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// True when there are no observations (cannot happen for a constructed ECDF).
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// The sorted underlying observations.
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }

    /// Evaluates `P(X <= x)` — the right-continuous step function.
    pub fn eval(&self, x: f64) -> f64 {
        // number of observations <= x
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// Returns the step points of the ECDF as `(x, F(x))` pairs (one per distinct value).
    pub fn step_points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        let mut out: Vec<(f64, f64)> = Vec::new();
        for (i, &x) in self.sorted.iter().enumerate() {
            let f = (i + 1) as f64 / n;
            match out.last_mut() {
                Some(last) if last.0 == x => last.1 = f,
                _ => out.push((x, f)),
            }
        }
        out
    }

    /// Returns `(xs, Fs)` evaluated on a uniform grid of `points` samples over `[lo, hi]`.
    ///
    /// This is the representation handed to the least-squares fitters: the paper fits model
    /// CDFs to the empirical CDF evaluated on a grid of lifetimes.
    pub fn on_grid(&self, lo: f64, hi: f64, points: usize) -> Result<(Vec<f64>, Vec<f64>)> {
        if points < 2 {
            return Err(NumericsError::invalid("grid requires at least 2 points"));
        }
        if !(hi > lo) {
            return Err(NumericsError::invalid("grid requires hi > lo"));
        }
        let xs = crate::interp::linspace(lo, hi, points);
        let fs = xs.iter().map(|&x| self.eval(x)).collect();
        Ok((xs, fs))
    }

    /// Converts the ECDF into a continuous piecewise-linear interpolant through its step
    /// points (prepending `(0, 0)` when all observations are positive) — convenient for
    /// inverse-transform resampling of the empirical distribution.
    pub fn to_interp(&self) -> Result<LinearInterp> {
        let mut pts = self.step_points();
        if pts.first().map(|p| p.0 > 0.0).unwrap_or(false) {
            pts.insert(0, (0.0, 0.0));
        }
        if pts.len() < 2 {
            // single distinct value: widen by a hair so the interpolant is valid
            let (x, f) = pts[0];
            pts = vec![(x - 1e-9, 0.0), (x, f)];
        }
        let (xs, ys): (Vec<f64>, Vec<f64>) = pts.into_iter().unzip();
        LinearInterp::new(xs, ys)
    }

    /// Empirical mean of the underlying observations.
    pub fn mean(&self) -> f64 {
        self.sorted.iter().sum::<f64>() / self.sorted.len() as f64
    }

    /// Kolmogorov–Smirnov statistic against a reference CDF.
    pub fn ks_statistic<F: Fn(f64) -> f64>(&self, cdf: F) -> f64 {
        let n = self.sorted.len() as f64;
        let mut d: f64 = 0.0;
        for (i, &x) in self.sorted.iter().enumerate() {
            let fx = cdf(x);
            let upper = ((i + 1) as f64 / n - fx).abs();
            let lower = (fx - i as f64 / n).abs();
            d = d.max(upper).max(lower);
        }
        d
    }
}

/// Two-sample Kolmogorov–Smirnov statistic `sup_t |F_a(t) − F_b(t)|` between the
/// empirical CDFs of two samples.
///
/// This is the drift statistic behind `calibrate compare`: two catalogs' recorded
/// lifetimes for the same cell are compared distribution-to-distribution, not just by
/// summary moments.  The inputs need not be sorted; ties within and across samples are
/// handled by advancing both walkers past every observation at the current value before
/// the difference is measured.
pub fn ks_two_sample(a: &[f64], b: &[f64]) -> Result<f64> {
    if a.is_empty() || b.is_empty() {
        return Err(NumericsError::invalid(
            "ks_two_sample requires two non-empty samples",
        ));
    }
    if a.iter().chain(b).any(|v| !v.is_finite()) {
        return Err(NumericsError::non_finite("ks_two_sample input"));
    }
    let mut a = a.to_vec();
    let mut b = b.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("finite samples"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("finite samples"));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() || j < b.len() {
        let t = match (a.get(i), b.get(j)) {
            (Some(&x), Some(&y)) => x.min(y),
            (Some(&x), None) => x,
            (None, Some(&y)) => y,
            (None, None) => unreachable!("loop condition"),
        };
        while i < a.len() && a[i] <= t {
            i += 1;
        }
        while j < b.len() && b[j] <= t {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    Ok(d)
}

/// The two-sample K-S rejection threshold at significance `alpha`:
/// `c(α) · sqrt((n + m) / (n · m))` with `c(α) = sqrt(−ln(α/2) / 2)` (the asymptotic
/// Kolmogorov critical value; `c(0.05) ≈ 1.358`).
pub fn ks_two_sample_threshold(alpha: f64, n: usize, m: usize) -> Result<f64> {
    if !(alpha > 0.0 && alpha < 1.0) {
        return Err(NumericsError::invalid("alpha must be inside (0, 1)"));
    }
    if n == 0 || m == 0 {
        return Err(NumericsError::invalid(
            "ks_two_sample_threshold requires non-empty samples",
        ));
    }
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    Ok(c * ((n + m) as f64 / (n as f64 * m as f64)).sqrt())
}

/// Coefficient of determination R² between observations `y` and model predictions `y_hat`.
pub fn r_squared(y: &[f64], y_hat: &[f64]) -> Result<f64> {
    if y.len() != y_hat.len() || y.is_empty() {
        return Err(NumericsError::invalid(
            "r_squared requires equal-length, non-empty inputs",
        ));
    }
    let mean = y.iter().sum::<f64>() / y.len() as f64;
    let ss_tot: f64 = y.iter().map(|v| (v - mean).powi(2)).sum();
    let ss_res: f64 = y.iter().zip(y_hat).map(|(v, w)| (v - w).powi(2)).sum();
    if ss_tot == 0.0 {
        // all observations identical: define R² = 1 when residuals vanish, else 0
        return Ok(if ss_res == 0.0 { 1.0 } else { 0.0 });
    }
    Ok(1.0 - ss_res / ss_tot)
}

/// Root-mean-square error between observations and predictions.
pub fn rmse(y: &[f64], y_hat: &[f64]) -> Result<f64> {
    if y.len() != y_hat.len() || y.is_empty() {
        return Err(NumericsError::invalid(
            "rmse requires equal-length, non-empty inputs",
        ));
    }
    let ss: f64 = y.iter().zip(y_hat).map(|(v, w)| (v - w).powi(2)).sum();
    Ok((ss / y.len() as f64).sqrt())
}

/// Mean absolute error between observations and predictions.
pub fn mae(y: &[f64], y_hat: &[f64]) -> Result<f64> {
    if y.len() != y_hat.len() || y.is_empty() {
        return Err(NumericsError::invalid(
            "mae requires equal-length, non-empty inputs",
        ));
    }
    Ok(y.iter().zip(y_hat).map(|(v, w)| (v - w).abs()).sum::<f64>() / y.len() as f64)
}

/// A fixed-width histogram over `[lo, hi)` with values outside the range clamped into the
/// first/last bin.  Used for the PDF inset of Figure 1 and for trace summaries.
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates an empty histogram with `bins` bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Result<Self> {
        if !(hi > lo) {
            return Err(NumericsError::invalid("histogram requires hi > lo"));
        }
        if bins == 0 {
            return Err(NumericsError::invalid(
                "histogram requires at least one bin",
            ));
        }
        Ok(Histogram {
            lo,
            hi,
            counts: vec![0; bins],
            total: 0,
        })
    }

    /// Adds an observation (values outside the range land in the first/last bin).
    pub fn add(&mut self, x: f64) {
        let bins = self.counts.len();
        let idx = if x <= self.lo {
            0
        } else if x >= self.hi {
            bins - 1
        } else {
            (((x - self.lo) / (self.hi - self.lo)) * bins as f64) as usize
        };
        self.counts[idx.min(bins - 1)] += 1;
        self.total += 1;
    }

    /// Adds every observation from a slice.
    pub fn add_all(&mut self, xs: &[f64]) {
        for &x in xs {
            self.add(x);
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Total number of observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Bin width.
    pub fn bin_width(&self) -> f64 {
        (self.hi - self.lo) / self.counts.len() as f64
    }

    /// Bin centers.
    pub fn centers(&self) -> Vec<f64> {
        let w = self.bin_width();
        (0..self.counts.len())
            .map(|i| self.lo + (i as f64 + 0.5) * w)
            .collect()
    }

    /// Density estimate (counts normalised so the histogram integrates to one).
    pub fn density(&self) -> Vec<f64> {
        if self.total == 0 {
            return vec![0.0; self.counts.len()];
        }
        let norm = self.total as f64 * self.bin_width();
        self.counts.iter().map(|&c| c as f64 / norm).collect()
    }
}

/// Online mean/variance accumulator (Welford).  Used by the simulator for streaming
/// statistics over millions of Monte-Carlo trials without storing samples.
#[derive(Debug, Clone, Copy, Default)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds an observation.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Current mean (zero when empty).
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased variance (zero for fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Standard error of the mean.
    pub fn std_error(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.std_dev() / (self.count as f64).sqrt()
        }
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let new_mean = self.mean + delta * other.count as f64 / total as f64;
        self.m2 += other.m2 + delta * delta * self.count as f64 * other.count as f64 / total as f64;
        self.mean = new_mean;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn summary_of_known_sample() {
        let s = summarize(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert!(approx_eq(s.mean, 3.0, 1e-12, 0.0));
        assert!(approx_eq(s.variance, 2.5, 1e-12, 0.0));
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert_eq!(s.median, 3.0);
    }

    #[test]
    fn summary_validation() {
        assert!(summarize(&[]).is_err());
        assert!(summarize(&[1.0, f64::NAN]).is_err());
        let s = summarize(&[7.0]).unwrap();
        assert_eq!(s.variance, 0.0);
    }

    #[test]
    fn quantiles() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert!(approx_eq(quantile(&data, 0.5).unwrap(), 2.5, 1e-12, 0.0));
        assert_eq!(quantile(&data, 0.0).unwrap(), 1.0);
        assert_eq!(quantile(&data, 1.0).unwrap(), 4.0);
        assert!(quantile(&[], 0.5).is_err());
    }

    #[test]
    fn ecdf_step_behaviour() {
        let e = Ecdf::new(&[1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(e.eval(0.5), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 0.75);
        assert_eq!(e.eval(4.0), 1.0);
        assert_eq!(e.eval(100.0), 1.0);
    }

    #[test]
    fn ecdf_step_points_deduplicate() {
        let e = Ecdf::new(&[2.0, 1.0, 2.0]).unwrap();
        let pts = e.step_points();
        assert_eq!(pts.len(), 2);
        assert_eq!(pts[0], (1.0, 1.0 / 3.0));
        assert_eq!(pts[1], (2.0, 1.0));
    }

    #[test]
    fn ecdf_grid_and_interp() {
        let e = Ecdf::new(&[1.0, 2.0, 3.0]).unwrap();
        let (xs, fs) = e.on_grid(0.0, 4.0, 9).unwrap();
        assert_eq!(xs.len(), 9);
        assert!(fs.windows(2).all(|w| w[1] >= w[0]));
        let it = e.to_interp().unwrap();
        assert!(it.eval(3.0) >= 0.99);
        assert!(it.eval(0.0) <= 1e-12);
    }

    #[test]
    fn ecdf_validation() {
        assert!(Ecdf::new(&[]).is_err());
        assert!(Ecdf::new(&[f64::INFINITY]).is_err());
    }

    #[test]
    fn ks_statistic_perfect_fit_small() {
        let e = Ecdf::new(&(1..=1000).map(|i| i as f64 / 1000.0).collect::<Vec<_>>()).unwrap();
        // uniform CDF on [0,1]
        let d = e.ks_statistic(|x| x.clamp(0.0, 1.0));
        assert!(d < 0.01, "d = {d}");
    }

    #[test]
    fn ks_statistic_detects_mismatch() {
        let e = Ecdf::new(&[0.9, 0.91, 0.92, 0.95, 0.99]).unwrap();
        let d = e.ks_statistic(|x| x.clamp(0.0, 1.0));
        assert!(d > 0.5);
    }

    #[test]
    fn two_sample_ks_basics() {
        let a: Vec<f64> = (1..=100).map(|i| i as f64 / 100.0).collect();
        // Identical samples: zero distance.
        assert_eq!(ks_two_sample(&a, &a).unwrap(), 0.0);
        // Disjoint supports: maximal distance.
        let b: Vec<f64> = a.iter().map(|v| v + 10.0).collect();
        assert_eq!(ks_two_sample(&a, &b).unwrap(), 1.0);
        // Symmetric in its arguments.
        let c: Vec<f64> = (1..=80).map(|i| (i as f64 / 80.0).powi(2)).collect();
        let d1 = ks_two_sample(&a, &c).unwrap();
        let d2 = ks_two_sample(&c, &a).unwrap();
        assert!((d1 - d2).abs() < 1e-15);
        assert!(d1 > 0.0 && d1 < 1.0);
        // Unsorted input is accepted.
        let mut shuffled = a.clone();
        shuffled.reverse();
        assert_eq!(ks_two_sample(&shuffled, &c).unwrap(), d1);
        // Ties across samples do not inflate the statistic.
        assert_eq!(
            ks_two_sample(&[1.0, 1.0, 2.0], &[1.0, 2.0, 2.0]).unwrap(),
            1.0 / 3.0
        );
        // Invalid input.
        assert!(ks_two_sample(&[], &a).is_err());
        assert!(ks_two_sample(&[f64::NAN], &a).is_err());
    }

    #[test]
    fn two_sample_ks_detects_a_shift_at_the_right_scale() {
        // Uniform[0,1] vs Uniform[0.2, 1.2]: the true sup-distance is 0.2.
        let a: Vec<f64> = (0..500).map(|i| i as f64 / 500.0).collect();
        let b: Vec<f64> = a.iter().map(|v| v + 0.2).collect();
        let d = ks_two_sample(&a, &b).unwrap();
        assert!((d - 0.2).abs() < 0.01, "d = {d}");
        // And the alpha=0.05 threshold for these sizes is well below that shift.
        let threshold = ks_two_sample_threshold(0.05, a.len(), b.len()).unwrap();
        assert!(threshold < d, "threshold {threshold} vs d {d}");
        assert!(
            (ks_two_sample_threshold(0.05, 100, 100).unwrap() - 1.3581 * (0.02f64).sqrt()).abs()
                < 1e-3
        );
        assert!(ks_two_sample_threshold(0.0, 10, 10).is_err());
        assert!(ks_two_sample_threshold(0.05, 0, 10).is_err());
    }

    #[test]
    fn r_squared_perfect_and_poor() {
        let y = [1.0, 2.0, 3.0];
        assert!(approx_eq(r_squared(&y, &y).unwrap(), 1.0, 1e-12, 0.0));
        let r = r_squared(&y, &[2.0, 2.0, 2.0]).unwrap();
        assert!(r < 1.0);
        assert!(r_squared(&[], &[]).is_err());
        // constant observations
        assert_eq!(r_squared(&[2.0, 2.0], &[2.0, 2.0]).unwrap(), 1.0);
        assert_eq!(r_squared(&[2.0, 2.0], &[1.0, 3.0]).unwrap(), 0.0);
    }

    #[test]
    fn rmse_and_mae() {
        let y = [1.0, 2.0, 3.0];
        let y_hat = [1.0, 2.0, 5.0];
        assert!(approx_eq(
            rmse(&y, &y_hat).unwrap(),
            (4.0f64 / 3.0).sqrt(),
            1e-12,
            0.0
        ));
        assert!(approx_eq(mae(&y, &y_hat).unwrap(), 2.0 / 3.0, 1e-12, 0.0));
        assert!(rmse(&y, &[1.0]).is_err());
        assert!(mae(&[], &[]).is_err());
    }

    #[test]
    fn histogram_counts_and_density() {
        let mut h = Histogram::new(0.0, 10.0, 10).unwrap();
        h.add_all(&[0.5, 1.5, 1.6, 9.9, 10.5, -3.0]);
        assert_eq!(h.total(), 6);
        assert_eq!(h.counts()[0], 2); // 0.5 and the clamped -3.0
        assert_eq!(h.counts()[1], 2);
        assert_eq!(h.counts()[9], 2); // 9.9 and the clamped 10.5
        let d = h.density();
        let integral: f64 = d.iter().map(|v| v * h.bin_width()).sum();
        assert!(approx_eq(integral, 1.0, 1e-12, 0.0));
        assert_eq!(h.centers().len(), 10);
    }

    #[test]
    fn histogram_validation() {
        assert!(Histogram::new(1.0, 1.0, 4).is_err());
        assert!(Histogram::new(0.0, 1.0, 0).is_err());
    }

    #[test]
    fn welford_matches_batch() {
        let data: Vec<f64> = (0..100)
            .map(|i| (i as f64 * 0.37).sin() * 5.0 + 3.0)
            .collect();
        let mut w = Welford::new();
        for &x in &data {
            w.add(x);
        }
        let s = summarize(&data).unwrap();
        assert!(approx_eq(w.mean(), s.mean, 1e-10, 1e-10));
        assert!(approx_eq(w.variance(), s.variance, 1e-10, 1e-10));
        assert!(w.std_error() > 0.0);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let data: Vec<f64> = (0..200).map(|i| (i as f64).sqrt()).collect();
        let mut all = Welford::new();
        for &x in &data {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &data[..77] {
            a.add(x);
        }
        for &x in &data[77..] {
            b.add(x);
        }
        a.merge(&b);
        assert!(approx_eq(a.mean(), all.mean(), 1e-10, 1e-10));
        assert!(approx_eq(a.variance(), all.variance(), 1e-10, 1e-10));
        assert_eq!(a.count(), all.count());

        // merging an empty accumulator is a no-op in both directions
        let mut empty = Welford::new();
        empty.merge(&all);
        assert_eq!(empty.count(), all.count());
        let mut all2 = all;
        all2.merge(&Welford::new());
        assert_eq!(all2.count(), all.count());
    }
}
