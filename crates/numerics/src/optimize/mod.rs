//! Nonlinear optimization for curve fitting.
//!
//! The paper fits its constrained-preemption CDF with scipy's `optimize.curve_fit` using
//! the *dogbox* trust-region method (bounded nonlinear least squares).  This module
//! provides the equivalent machinery:
//!
//! * [`mod@least_squares`] — bounded Levenberg–Marquardt with finite-difference Jacobians and
//!   projection onto box constraints (a pragmatic dogbox stand-in that handles the 4-parameter
//!   bathtub fit robustly).
//! * [`mod@nelder_mead`] — a derivative-free simplex fallback used to polish fits whose
//!   Jacobians become ill-conditioned (e.g. when `τ2` collapses towards zero).
//! * [`curve_fit`] — a `scipy.curve_fit`-style convenience wrapper that fits a parametric
//!   model `y = f(x, θ)` to data.

pub mod least_squares;
pub mod nelder_mead;

pub use least_squares::{least_squares, Bounds, LeastSquaresOptions, LeastSquaresReport};
pub use nelder_mead::{nelder_mead, NelderMeadOptions, NelderMeadReport};

use crate::{NumericsError, Result};

/// Result of a curve fit: best parameters plus fit-quality diagnostics.
#[derive(Debug, Clone)]
pub struct CurveFitReport {
    /// Best-fit parameter vector.
    pub params: Vec<f64>,
    /// Residual sum of squares at the optimum.
    pub rss: f64,
    /// Coefficient of determination of the fit.
    pub r_squared: f64,
    /// Root-mean-square error of the fit.
    pub rmse: f64,
    /// Number of optimizer iterations used.
    pub iterations: usize,
    /// Whether the optimizer reported convergence (as opposed to hitting its budget).
    pub converged: bool,
}

/// Fits a parametric model `y ≈ f(x, θ)` to observations `(xs, ys)` under box constraints.
///
/// This is the Rust analogue of `scipy.optimize.curve_fit(..., method="dogbox")` used by the
/// paper: a bounded nonlinear least-squares solve starting from `initial`, followed by a
/// Nelder–Mead polish when the gradient-based solver stalls early.
pub fn curve_fit<F>(
    model: F,
    xs: &[f64],
    ys: &[f64],
    initial: &[f64],
    bounds: &Bounds,
    options: &LeastSquaresOptions,
) -> Result<CurveFitReport>
where
    F: Fn(f64, &[f64]) -> f64,
{
    if xs.len() != ys.len() {
        return Err(NumericsError::invalid("xs and ys must have equal length"));
    }
    if xs.is_empty() {
        return Err(NumericsError::invalid(
            "curve_fit requires at least one observation",
        ));
    }
    if initial.is_empty() {
        return Err(NumericsError::invalid(
            "curve_fit requires at least one parameter",
        ));
    }

    let residuals = |theta: &[f64], out: &mut Vec<f64>| {
        out.clear();
        for (&x, &y) in xs.iter().zip(ys) {
            out.push(model(x, theta) - y);
        }
    };

    let report = least_squares(&residuals, initial, bounds, options)?;
    let mut best_params = report.params.clone();
    let mut best_rss = report.rss;
    let mut iterations = report.iterations;
    let mut converged = report.converged;

    // Polish with Nelder–Mead if the LM solve did not converge cleanly; the simplex method
    // is slow but extremely robust for the small parameter counts we deal with.
    if !report.converged {
        let objective = |theta: &[f64]| {
            let mut rss = 0.0;
            for (&x, &y) in xs.iter().zip(ys) {
                let r = model(x, theta) - y;
                rss += r * r;
            }
            rss
        };
        let nm = nelder_mead(
            &objective,
            &best_params,
            bounds,
            &NelderMeadOptions::default(),
        )?;
        iterations += nm.iterations;
        if nm.objective < best_rss {
            best_rss = nm.objective;
            best_params = nm.params;
            converged = nm.converged;
        }
    }

    // Fit-quality diagnostics.
    let predictions: Vec<f64> = xs.iter().map(|&x| model(x, &best_params)).collect();
    let r2 = crate::stats::r_squared(ys, &predictions)?;
    let rmse = crate::stats::rmse(ys, &predictions)?;

    Ok(CurveFitReport {
        params: best_params,
        rss: best_rss,
        r_squared: r2,
        rmse,
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn curve_fit_recovers_exponential_cdf() {
        // y = 1 - exp(-x / tau) with tau = 3.0
        let tau_true = 3.0;
        let xs: Vec<f64> = (0..100).map(|i| i as f64 * 0.25).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 1.0 - (-x / tau_true).exp()).collect();
        let model = |x: f64, p: &[f64]| 1.0 - (-x / p[0]).exp();
        let bounds = Bounds::new(vec![1e-3], vec![100.0]).unwrap();
        let report = curve_fit(
            model,
            &xs,
            &ys,
            &[1.0],
            &bounds,
            &LeastSquaresOptions::default(),
        )
        .unwrap();
        assert!(
            (report.params[0] - tau_true).abs() < 1e-4,
            "tau = {}",
            report.params[0]
        );
        assert!(report.r_squared > 0.999999);
    }

    #[test]
    fn curve_fit_two_parameter_line() {
        let xs: Vec<f64> = (0..50).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.5 * x - 7.0).collect();
        let model = |x: f64, p: &[f64]| p[0] * x + p[1];
        let bounds = Bounds::unbounded(2);
        let report = curve_fit(
            model,
            &xs,
            &ys,
            &[0.0, 0.0],
            &bounds,
            &LeastSquaresOptions::default(),
        )
        .unwrap();
        assert!((report.params[0] - 2.5).abs() < 1e-6);
        assert!((report.params[1] + 7.0).abs() < 1e-5);
        assert!(report.converged);
    }

    #[test]
    fn curve_fit_respects_bounds() {
        // True slope is 2.0 but we constrain it to <= 1.0
        let xs: Vec<f64> = (0..20).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 2.0 * x).collect();
        let model = |x: f64, p: &[f64]| p[0] * x;
        let bounds = Bounds::new(vec![0.0], vec![1.0]).unwrap();
        let report = curve_fit(
            model,
            &xs,
            &ys,
            &[0.5],
            &bounds,
            &LeastSquaresOptions::default(),
        )
        .unwrap();
        assert!(report.params[0] <= 1.0 + 1e-12);
        assert!(report.params[0] > 0.99);
    }

    #[test]
    fn curve_fit_validates_inputs() {
        let model = |x: f64, p: &[f64]| p[0] * x;
        let bounds = Bounds::unbounded(1);
        assert!(curve_fit(
            model,
            &[1.0],
            &[1.0, 2.0],
            &[0.0],
            &bounds,
            &LeastSquaresOptions::default()
        )
        .is_err());
        assert!(curve_fit(
            model,
            &[],
            &[],
            &[0.0],
            &bounds,
            &LeastSquaresOptions::default()
        )
        .is_err());
        assert!(curve_fit(
            model,
            &[1.0],
            &[1.0],
            &[],
            &bounds,
            &LeastSquaresOptions::default()
        )
        .is_err());
    }

    #[test]
    fn curve_fit_noisy_data_reasonable_r2() {
        // Deterministic pseudo-noise so the test is stable.
        let xs: Vec<f64> = (0..200).map(|i| i as f64 * 0.12).collect();
        let ys: Vec<f64> = xs
            .iter()
            .enumerate()
            .map(|(i, &x)| 1.0 - (-x / 2.0).exp() + 0.01 * ((i as f64 * 12.9898).sin()))
            .collect();
        let model = |x: f64, p: &[f64]| 1.0 - (-x / p[0]).exp();
        let bounds = Bounds::new(vec![0.01], vec![50.0]).unwrap();
        let report = curve_fit(
            model,
            &xs,
            &ys,
            &[0.5],
            &bounds,
            &LeastSquaresOptions::default(),
        )
        .unwrap();
        assert!((report.params[0] - 2.0).abs() < 0.1);
        assert!(report.r_squared > 0.99);
        assert!(report.rmse < 0.05);
    }
}
