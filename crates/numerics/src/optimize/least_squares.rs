//! Bounded nonlinear least squares via damped Gauss–Newton (Levenberg–Marquardt) with
//! projection onto box constraints.
//!
//! This is the fitting engine behind every distribution fit in the workspace.  It follows
//! the classic Levenberg–Marquardt recipe:
//!
//! 1. build a finite-difference Jacobian of the residual vector,
//! 2. solve the damped normal equations `(JᵀJ + λ diag(JᵀJ)) δ = −Jᵀr`,
//! 3. project the trial point onto the box constraints (the "dogbox" flavour used by the
//!    paper clips steps at the feasible region boundary; projection achieves the same
//!    feasibility guarantee for the well-conditioned 2–4 parameter fits we perform),
//! 4. accept/reject the step and adapt the damping parameter λ.

use crate::linalg::{norm2, solve, Matrix};
use crate::{clamp_interval, NumericsError, Result};

/// Box constraints on the parameter vector.
#[derive(Debug, Clone)]
pub struct Bounds {
    lower: Vec<f64>,
    upper: Vec<f64>,
}

impl Bounds {
    /// Creates bounds from lower/upper vectors.  Each lower bound must not exceed the
    /// corresponding upper bound.
    pub fn new(lower: Vec<f64>, upper: Vec<f64>) -> Result<Self> {
        if lower.len() != upper.len() {
            return Err(NumericsError::invalid("bounds must have equal length"));
        }
        for (lo, hi) in lower.iter().zip(&upper) {
            if lo > hi {
                return Err(NumericsError::invalid(format!(
                    "lower bound {lo} exceeds upper bound {hi}"
                )));
            }
        }
        Ok(Bounds { lower, upper })
    }

    /// Unbounded box of dimension `n` (±∞ on every coordinate).
    pub fn unbounded(n: usize) -> Self {
        Bounds {
            lower: vec![f64::NEG_INFINITY; n],
            upper: vec![f64::INFINITY; n],
        }
    }

    /// Number of parameters the bounds constrain.
    pub fn dim(&self) -> usize {
        self.lower.len()
    }

    /// Lower bounds.
    pub fn lower(&self) -> &[f64] {
        &self.lower
    }

    /// Upper bounds.
    pub fn upper(&self) -> &[f64] {
        &self.upper
    }

    /// Projects a parameter vector onto the box.
    pub fn project(&self, theta: &mut [f64]) {
        for (i, t) in theta.iter_mut().enumerate() {
            *t = clamp_interval(*t, self.lower[i], self.upper[i]);
        }
    }

    /// Returns true when `theta` lies inside the box (inclusive).
    pub fn contains(&self, theta: &[f64]) -> bool {
        theta
            .iter()
            .enumerate()
            .all(|(i, &t)| t >= self.lower[i] && t <= self.upper[i])
    }
}

/// Options controlling the Levenberg–Marquardt iteration.
#[derive(Debug, Clone)]
pub struct LeastSquaresOptions {
    /// Maximum number of outer iterations.
    pub max_iterations: usize,
    /// Convergence tolerance on the relative reduction of the residual sum of squares.
    pub rss_tol: f64,
    /// Convergence tolerance on the step norm (relative to the parameter norm).
    pub step_tol: f64,
    /// Convergence tolerance on the gradient infinity-norm.
    pub gradient_tol: f64,
    /// Initial damping parameter λ.
    pub initial_lambda: f64,
    /// Multiplicative factor applied to λ on step rejection (and divided on acceptance).
    pub lambda_factor: f64,
    /// Relative step used by the finite-difference Jacobian.
    pub fd_rel_step: f64,
}

impl Default for LeastSquaresOptions {
    fn default() -> Self {
        LeastSquaresOptions {
            max_iterations: 200,
            rss_tol: 1e-12,
            step_tol: 1e-12,
            gradient_tol: 1e-10,
            initial_lambda: 1e-3,
            lambda_factor: 3.0,
            fd_rel_step: 1e-6,
        }
    }
}

/// Diagnostics returned by [`least_squares`].
#[derive(Debug, Clone)]
pub struct LeastSquaresReport {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Residual sum of squares at `params`.
    pub rss: f64,
    /// Number of iterations performed.
    pub iterations: usize,
    /// Whether a convergence criterion was met (vs. exhausting the iteration budget).
    pub converged: bool,
    /// Infinity norm of the gradient at the solution.
    pub gradient_norm: f64,
}

fn compute_residuals<F>(residual_fn: &F, theta: &[f64], buf: &mut Vec<f64>) -> Result<f64>
where
    F: Fn(&[f64], &mut Vec<f64>),
{
    residual_fn(theta, buf);
    if buf.is_empty() {
        return Err(NumericsError::invalid(
            "residual function returned no residuals",
        ));
    }
    let mut rss = 0.0;
    for r in buf.iter() {
        if !r.is_finite() {
            return Err(NumericsError::non_finite("residual"));
        }
        rss += r * r;
    }
    Ok(rss)
}

fn finite_difference_jacobian<F>(
    residual_fn: &F,
    theta: &[f64],
    base_residuals: &[f64],
    bounds: &Bounds,
    rel_step: f64,
) -> Result<Matrix>
where
    F: Fn(&[f64], &mut Vec<f64>),
{
    let m = base_residuals.len();
    let n = theta.len();
    let mut jac = Matrix::zeros(m, n);
    let mut perturbed = theta.to_vec();
    let mut buf = Vec::with_capacity(m);

    for j in 0..n {
        let step = rel_step * theta[j].abs().max(1e-4);
        // Forward difference, switching to backward at the upper bound so evaluations stay
        // feasible (important for parameters like A that must stay within [0, 1]).
        let upper = bounds.upper()[j];
        let lower = bounds.lower()[j];
        let (eval_point, sign) = if theta[j] + step <= upper {
            (theta[j] + step, 1.0)
        } else if theta[j] - step >= lower {
            (theta[j] - step, -1.0)
        } else {
            (theta[j] + step, 1.0)
        };
        perturbed[j] = eval_point;
        compute_residuals(residual_fn, &perturbed, &mut buf)?;
        let denom = sign * (eval_point - theta[j]);
        if denom == 0.0 {
            return Err(NumericsError::invalid(
                "finite-difference step collapsed to zero",
            ));
        }
        for i in 0..m {
            jac[(i, j)] = sign * (buf[i] - base_residuals[i]) / denom;
        }
        perturbed[j] = theta[j];
    }
    Ok(jac)
}

/// Minimises `‖r(θ)‖²` subject to box constraints.
///
/// `residual_fn(θ, out)` must fill `out` with the residual vector at `θ`.  The residual
/// count must stay constant across calls.
pub fn least_squares<F>(
    residual_fn: &F,
    initial: &[f64],
    bounds: &Bounds,
    options: &LeastSquaresOptions,
) -> Result<LeastSquaresReport>
where
    F: Fn(&[f64], &mut Vec<f64>),
{
    if initial.is_empty() {
        return Err(NumericsError::invalid(
            "least_squares requires at least one parameter",
        ));
    }
    if bounds.dim() != initial.len() {
        return Err(NumericsError::invalid(
            "bounds dimension does not match parameter count",
        ));
    }

    let mut theta = initial.to_vec();
    bounds.project(&mut theta);

    let mut residuals = Vec::new();
    let mut rss = compute_residuals(residual_fn, &theta, &mut residuals)?;

    let mut lambda = options.initial_lambda;
    let mut converged = false;
    let mut gradient_norm = f64::INFINITY;
    let mut iterations = 0;

    for iter in 0..options.max_iterations {
        iterations = iter + 1;
        let jac = finite_difference_jacobian(
            residual_fn,
            &theta,
            &residuals,
            bounds,
            options.fd_rel_step,
        )?;
        let mut jtj = jac.gram();
        let jtr = jac.gram_rhs(&residuals)?;

        gradient_norm = jtr.iter().fold(0.0f64, |acc, g| acc.max(g.abs()));
        if gradient_norm <= options.gradient_tol {
            converged = true;
            break;
        }

        // Try steps with increasing damping until one reduces the RSS.
        let mut accepted = false;
        for _ in 0..30 {
            let mut damped = jtj.clone();
            // Marquardt scaling: damp relative to the diagonal so badly scaled parameters
            // (τ in hours vs A in [0,1]) are treated uniformly.
            for d in 0..damped.rows() {
                let diag = jtj[(d, d)].max(1e-12);
                damped[(d, d)] = diag + lambda * diag;
            }
            let neg_grad: Vec<f64> = jtr.iter().map(|g| -g).collect();
            let step = match solve(&damped, &neg_grad) {
                Ok(s) => s,
                Err(_) => {
                    lambda *= options.lambda_factor;
                    continue;
                }
            };

            let mut trial: Vec<f64> = theta.iter().zip(&step).map(|(t, s)| t + s).collect();
            bounds.project(&mut trial);

            let mut trial_residuals = Vec::with_capacity(residuals.len());
            let trial_rss = match compute_residuals(residual_fn, &trial, &mut trial_residuals) {
                Ok(v) => v,
                Err(_) => {
                    lambda *= options.lambda_factor;
                    continue;
                }
            };

            if trial_rss < rss {
                // Accept.
                let step_norm = norm2(
                    &trial
                        .iter()
                        .zip(&theta)
                        .map(|(a, b)| a - b)
                        .collect::<Vec<f64>>(),
                );
                let rel_reduction = (rss - trial_rss) / rss.max(1e-300);
                theta = trial;
                residuals = trial_residuals;
                rss = trial_rss;
                lambda = (lambda / options.lambda_factor).max(1e-12);
                accepted = true;

                let theta_norm = norm2(&theta).max(1e-12);
                if rel_reduction < options.rss_tol || step_norm < options.step_tol * theta_norm {
                    converged = true;
                }
                break;
            } else {
                lambda *= options.lambda_factor;
            }
        }

        if converged {
            break;
        }
        if !accepted {
            // Could not find a descent step even with heavy damping: treat as converged to a
            // (possibly constrained) stationary point.
            converged = gradient_norm < 1e-3;
            break;
        }
        jtj.add_diagonal(0.0); // keep borrow checker happy about jtj usage; no-op
    }

    Ok(LeastSquaresReport {
        params: theta,
        rss,
        iterations,
        converged,
        gradient_norm,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rosenbrock_residuals(theta: &[f64], out: &mut Vec<f64>) {
        out.clear();
        out.push(10.0 * (theta[1] - theta[0] * theta[0]));
        out.push(1.0 - theta[0]);
    }

    #[test]
    fn bounds_construction_and_projection() {
        let b = Bounds::new(vec![0.0, -1.0], vec![1.0, 1.0]).unwrap();
        assert_eq!(b.dim(), 2);
        let mut theta = vec![2.0, -5.0];
        b.project(&mut theta);
        assert_eq!(theta, vec![1.0, -1.0]);
        assert!(b.contains(&[0.5, 0.0]));
        assert!(!b.contains(&[1.5, 0.0]));
        assert!(Bounds::new(vec![1.0], vec![0.0]).is_err());
        assert!(Bounds::new(vec![0.0, 1.0], vec![1.0]).is_err());
    }

    #[test]
    fn solves_rosenbrock_unbounded() {
        let report = least_squares(
            &rosenbrock_residuals,
            &[-1.2, 1.0],
            &Bounds::unbounded(2),
            &LeastSquaresOptions::default(),
        )
        .unwrap();
        assert!((report.params[0] - 1.0).abs() < 1e-5, "{:?}", report.params);
        assert!((report.params[1] - 1.0).abs() < 1e-5);
        assert!(report.rss < 1e-10);
    }

    #[test]
    fn respects_active_bound() {
        // minimum of (x-3)^2 restricted to x <= 1 is at x = 1
        let resid = |theta: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.push(theta[0] - 3.0);
        };
        let bounds = Bounds::new(vec![-10.0], vec![1.0]).unwrap();
        let report =
            least_squares(&resid, &[0.0], &bounds, &LeastSquaresOptions::default()).unwrap();
        assert!((report.params[0] - 1.0).abs() < 1e-8);
    }

    #[test]
    fn multi_parameter_exponential_fit() {
        // residuals of y = a * exp(-x / tau) against synthetic data
        let a_true = 0.45;
        let tau_true = 1.2;
        let xs: Vec<f64> = (0..80).map(|i| i as f64 * 0.1).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| a_true * (-x / tau_true).exp()).collect();
        let resid = move |theta: &[f64], out: &mut Vec<f64>| {
            out.clear();
            for (&x, &y) in xs.iter().zip(&ys) {
                out.push(theta[0] * (-x / theta[1]).exp() - y);
            }
        };
        let bounds = Bounds::new(vec![0.0, 1e-3], vec![1.0, 100.0]).unwrap();
        let report = least_squares(
            &resid,
            &[0.1, 5.0],
            &bounds,
            &LeastSquaresOptions::default(),
        )
        .unwrap();
        assert!((report.params[0] - a_true).abs() < 1e-5);
        assert!((report.params[1] - tau_true).abs() < 1e-4);
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let resid = |theta: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.push(theta[0]);
        };
        let bounds = Bounds::unbounded(2);
        assert!(least_squares(&resid, &[0.0], &bounds, &LeastSquaresOptions::default()).is_err());
        assert!(least_squares(
            &resid,
            &[],
            &Bounds::unbounded(0),
            &LeastSquaresOptions::default()
        )
        .is_err());
    }

    #[test]
    fn rejects_empty_residuals() {
        let resid = |_theta: &[f64], out: &mut Vec<f64>| {
            out.clear();
        };
        assert!(least_squares(
            &resid,
            &[1.0],
            &Bounds::unbounded(1),
            &LeastSquaresOptions::default()
        )
        .is_err());
    }

    #[test]
    fn rejects_non_finite_residuals() {
        let resid = |_theta: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.push(f64::NAN);
        };
        assert!(least_squares(
            &resid,
            &[1.0],
            &Bounds::unbounded(1),
            &LeastSquaresOptions::default()
        )
        .is_err());
    }

    #[test]
    fn starting_point_outside_bounds_is_projected() {
        let resid = |theta: &[f64], out: &mut Vec<f64>| {
            out.clear();
            out.push(theta[0] - 0.5);
        };
        let bounds = Bounds::new(vec![0.0], vec![1.0]).unwrap();
        let report =
            least_squares(&resid, &[100.0], &bounds, &LeastSquaresOptions::default()).unwrap();
        assert!((report.params[0] - 0.5).abs() < 1e-8);
    }
}
