//! Derivative-free simplex minimisation (Nelder–Mead) with box constraints.
//!
//! Used as a robust fallback/polish step for the distribution fits: when the Jacobian of
//! the bathtub CDF becomes nearly singular (τ2 → 0 makes the deadline term a step function)
//! the damped Gauss–Newton solver can stall, whereas the simplex method keeps making
//! progress using only function values.

use super::least_squares::Bounds;
use crate::{NumericsError, Result};

/// Options controlling the Nelder–Mead iteration.
#[derive(Debug, Clone)]
pub struct NelderMeadOptions {
    /// Maximum number of iterations (simplex updates).
    pub max_iterations: usize,
    /// Convergence tolerance on the spread of function values across the simplex.
    pub f_tol: f64,
    /// Convergence tolerance on the simplex diameter.
    pub x_tol: f64,
    /// Relative size of the initial simplex.
    pub initial_step: f64,
}

impl Default for NelderMeadOptions {
    fn default() -> Self {
        NelderMeadOptions {
            max_iterations: 2000,
            f_tol: 1e-12,
            x_tol: 1e-10,
            initial_step: 0.1,
        }
    }
}

/// Result of a Nelder–Mead minimisation.
#[derive(Debug, Clone)]
pub struct NelderMeadReport {
    /// Best parameter vector found.
    pub params: Vec<f64>,
    /// Objective value at `params`.
    pub objective: f64,
    /// Iterations performed.
    pub iterations: usize,
    /// Whether the convergence criteria were met.
    pub converged: bool,
}

/// Minimises `objective` over the box `bounds` starting from `initial`.
pub fn nelder_mead<F>(
    objective: &F,
    initial: &[f64],
    bounds: &Bounds,
    options: &NelderMeadOptions,
) -> Result<NelderMeadReport>
where
    F: Fn(&[f64]) -> f64,
{
    let n = initial.len();
    if n == 0 {
        return Err(NumericsError::invalid(
            "nelder_mead requires at least one parameter",
        ));
    }
    if bounds.dim() != n {
        return Err(NumericsError::invalid("bounds dimension mismatch"));
    }

    let eval = |theta: &[f64]| -> f64 {
        let v = objective(theta);
        if v.is_finite() {
            v
        } else {
            f64::MAX
        }
    };

    // Build the initial simplex: the start point plus one vertex perturbed per coordinate.
    let mut start = initial.to_vec();
    bounds.project(&mut start);
    let mut simplex: Vec<Vec<f64>> = Vec::with_capacity(n + 1);
    simplex.push(start.clone());
    for i in 0..n {
        let mut v = start.clone();
        let span = if bounds.upper()[i].is_finite() && bounds.lower()[i].is_finite() {
            (bounds.upper()[i] - bounds.lower()[i]).max(1e-8)
        } else {
            1.0
        };
        let step = options.initial_step * v[i].abs().max(0.1 * span).max(1e-4);
        v[i] += step;
        bounds.project(&mut v);
        // if projection collapsed the step (start on the upper bound) go the other way
        if (v[i] - start[i]).abs() < 1e-15 {
            v[i] = start[i] - step;
            bounds.project(&mut v);
        }
        simplex.push(v);
    }
    let mut values: Vec<f64> = simplex.iter().map(|v| eval(v)).collect();

    const ALPHA: f64 = 1.0; // reflection
    const GAMMA: f64 = 2.0; // expansion
    const RHO: f64 = 0.5; // contraction
    const SIGMA: f64 = 0.5; // shrink

    let mut iterations = 0;
    let mut converged = false;

    for iter in 0..options.max_iterations {
        iterations = iter + 1;

        // Order the simplex by objective value.
        let mut order: Vec<usize> = (0..=n).collect();
        order.sort_by(|&a, &b| values[a].partial_cmp(&values[b]).unwrap());
        let best = order[0];
        let worst = order[n];
        let second_worst = order[n - 1];

        // Convergence: spread of function values and simplex size.
        let f_spread = (values[worst] - values[best]).abs();
        let x_spread = simplex
            .iter()
            .map(|v| {
                v.iter()
                    .zip(&simplex[best])
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0f64, f64::max)
            })
            .fold(0.0f64, f64::max);
        if f_spread <= options.f_tol && x_spread <= options.x_tol {
            converged = true;
            break;
        }

        // Centroid of all but the worst vertex.
        let mut centroid = vec![0.0; n];
        for (idx, v) in simplex.iter().enumerate() {
            if idx == worst {
                continue;
            }
            for (c, x) in centroid.iter_mut().zip(v) {
                *c += x / n as f64;
            }
        }

        // Reflection.
        let mut reflected: Vec<f64> = centroid
            .iter()
            .zip(&simplex[worst])
            .map(|(c, w)| c + ALPHA * (c - w))
            .collect();
        bounds.project(&mut reflected);
        let f_reflected = eval(&reflected);

        if f_reflected < values[best] {
            // Expansion.
            let mut expanded: Vec<f64> = centroid
                .iter()
                .zip(&reflected)
                .map(|(c, r)| c + GAMMA * (r - c))
                .collect();
            bounds.project(&mut expanded);
            let f_expanded = eval(&expanded);
            if f_expanded < f_reflected {
                simplex[worst] = expanded;
                values[worst] = f_expanded;
            } else {
                simplex[worst] = reflected;
                values[worst] = f_reflected;
            }
        } else if f_reflected < values[second_worst] {
            simplex[worst] = reflected;
            values[worst] = f_reflected;
        } else {
            // Contraction.
            let mut contracted: Vec<f64> = centroid
                .iter()
                .zip(&simplex[worst])
                .map(|(c, w)| c + RHO * (w - c))
                .collect();
            bounds.project(&mut contracted);
            let f_contracted = eval(&contracted);
            if f_contracted < values[worst] {
                simplex[worst] = contracted;
                values[worst] = f_contracted;
            } else {
                // Shrink towards the best vertex.
                let best_vertex = simplex[best].clone();
                for (idx, v) in simplex.iter_mut().enumerate() {
                    if idx == best {
                        continue;
                    }
                    for (x, b) in v.iter_mut().zip(&best_vertex) {
                        *x = b + SIGMA * (*x - b);
                    }
                    bounds.project(v);
                    values[idx] = eval(v);
                }
            }
        }
    }

    let (best_idx, _) = values
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.partial_cmp(b.1).unwrap())
        .unwrap();

    Ok(NelderMeadReport {
        params: simplex[best_idx].clone(),
        objective: values[best_idx],
        iterations,
        converged,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimises_quadratic() {
        let obj = |x: &[f64]| (x[0] - 2.0).powi(2) + (x[1] + 1.0).powi(2);
        let report = nelder_mead(
            &obj,
            &[0.0, 0.0],
            &Bounds::unbounded(2),
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((report.params[0] - 2.0).abs() < 1e-4);
        assert!((report.params[1] + 1.0).abs() < 1e-4);
        assert!(report.converged);
    }

    #[test]
    fn minimises_rosenbrock() {
        let obj = |x: &[f64]| 100.0 * (x[1] - x[0] * x[0]).powi(2) + (1.0 - x[0]).powi(2);
        let report = nelder_mead(
            &obj,
            &[-1.2, 1.0],
            &Bounds::unbounded(2),
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((report.params[0] - 1.0).abs() < 1e-3, "{:?}", report.params);
        assert!((report.params[1] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn respects_bounds() {
        let obj = |x: &[f64]| (x[0] - 5.0).powi(2);
        let bounds = Bounds::new(vec![0.0], vec![1.0]).unwrap();
        let report = nelder_mead(&obj, &[0.5], &bounds, &NelderMeadOptions::default()).unwrap();
        assert!(report.params[0] <= 1.0 + 1e-12);
        assert!((report.params[0] - 1.0).abs() < 1e-6);
    }

    #[test]
    fn starts_on_upper_bound() {
        let obj = |x: &[f64]| (x[0] - 0.2).powi(2);
        let bounds = Bounds::new(vec![0.0], vec![1.0]).unwrap();
        let report = nelder_mead(&obj, &[1.0], &bounds, &NelderMeadOptions::default()).unwrap();
        assert!((report.params[0] - 0.2).abs() < 1e-5);
    }

    #[test]
    fn handles_non_finite_objective_values() {
        // objective returns NaN outside a small region; solver should still find the minimum
        let obj = |x: &[f64]| {
            if x[0] < -10.0 {
                f64::NAN
            } else {
                (x[0] - 1.0).powi(2)
            }
        };
        let report = nelder_mead(
            &obj,
            &[0.0],
            &Bounds::unbounded(1),
            &NelderMeadOptions::default(),
        )
        .unwrap();
        assert!((report.params[0] - 1.0).abs() < 1e-4);
    }

    #[test]
    fn validates_arguments() {
        let obj = |x: &[f64]| x[0];
        assert!(nelder_mead(
            &obj,
            &[],
            &Bounds::unbounded(0),
            &NelderMeadOptions::default()
        )
        .is_err());
        assert!(nelder_mead(
            &obj,
            &[1.0],
            &Bounds::unbounded(2),
            &NelderMeadOptions::default()
        )
        .is_err());
    }
}
