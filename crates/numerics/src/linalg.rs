//! Small dense-matrix kernels used by the least-squares optimizers.
//!
//! The fitting problems in this workspace are tiny (2–4 parameters, a few hundred
//! residuals), so a simple row-major `Matrix` with Gaussian elimination and Cholesky
//! factorisation is all that is required.  Nothing here is intended to compete with a
//! BLAS; clarity and robustness for small systems are the goals.

use crate::{NumericsError, Result};

/// A dense, row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows x cols` matrix filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates an identity matrix of size `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a row-major data vector.
    ///
    /// Returns an error if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f64>) -> Result<Self> {
        if data.len() != rows * cols {
            return Err(NumericsError::invalid(format!(
                "matrix data length {} does not match {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Matrix { rows, cols, data })
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Returns the transpose of this matrix.
    pub fn transpose(&self) -> Matrix {
        let mut t = Matrix::zeros(self.cols, self.rows);
        for i in 0..self.rows {
            for j in 0..self.cols {
                t[(j, i)] = self[(i, j)];
            }
        }
        t
    }

    /// Matrix-matrix product `self * other`.
    pub fn matmul(&self, other: &Matrix) -> Result<Matrix> {
        if self.cols != other.rows {
            return Err(NumericsError::invalid(format!(
                "cannot multiply {}x{} by {}x{}",
                self.rows, self.cols, other.rows, other.cols
            )));
        }
        let mut out = Matrix::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Matrix-vector product `self * v`.
    pub fn matvec(&self, v: &[f64]) -> Result<Vec<f64>> {
        if self.cols != v.len() {
            return Err(NumericsError::invalid(format!(
                "cannot multiply {}x{} by vector of length {}",
                self.rows,
                self.cols,
                v.len()
            )));
        }
        let mut out = vec![0.0; self.rows];
        for i in 0..self.rows {
            let mut acc = 0.0;
            for j in 0..self.cols {
                acc += self[(i, j)] * v[j];
            }
            out[i] = acc;
        }
        Ok(out)
    }

    /// Computes `Jᵀ J` for a Jacobian `J` (self), the normal-equations matrix.
    pub fn gram(&self) -> Matrix {
        let mut g = Matrix::zeros(self.cols, self.cols);
        for i in 0..self.rows {
            for a in 0..self.cols {
                let ja = self[(i, a)];
                if ja == 0.0 {
                    continue;
                }
                for b in a..self.cols {
                    g[(a, b)] += ja * self[(i, b)];
                }
            }
        }
        // mirror the upper triangle
        for a in 0..self.cols {
            for b in 0..a {
                g[(a, b)] = g[(b, a)];
            }
        }
        g
    }

    /// Computes `Jᵀ r` for a Jacobian `J` (self) and residual vector `r`.
    pub fn gram_rhs(&self, r: &[f64]) -> Result<Vec<f64>> {
        if r.len() != self.rows {
            return Err(NumericsError::invalid(format!(
                "residual length {} does not match row count {}",
                r.len(),
                self.rows
            )));
        }
        let mut out = vec![0.0; self.cols];
        for i in 0..self.rows {
            for j in 0..self.cols {
                out[j] += self[(i, j)] * r[i];
            }
        }
        Ok(out)
    }

    /// Adds `lambda` to every diagonal entry (Levenberg–Marquardt damping).
    pub fn add_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] += lambda;
        }
    }

    /// Scales the diagonal by `1 + lambda` (Marquardt-style relative damping).
    pub fn scale_diagonal(&mut self, lambda: f64) {
        let n = self.rows.min(self.cols);
        for i in 0..n {
            self[(i, i)] *= 1.0 + lambda;
        }
    }

    /// Frobenius norm of the matrix.
    pub fn frobenius_norm(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        &self.data[i * self.cols + j]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        &mut self.data[i * self.cols + j]
    }
}

/// Solves the square linear system `A x = b` via Gaussian elimination with partial pivoting.
///
/// `A` is consumed as a copy; the original matrix is untouched.  Returns
/// [`NumericsError::SingularMatrix`] when a pivot falls below `1e-14` of the largest entry.
pub fn solve(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    if a.rows() != a.cols() {
        return Err(NumericsError::invalid(format!(
            "solve requires a square matrix, got {}x{}",
            a.rows(),
            a.cols()
        )));
    }
    if b.len() != a.rows() {
        return Err(NumericsError::invalid(format!(
            "rhs length {} does not match matrix size {}",
            b.len(),
            a.rows()
        )));
    }
    let n = a.rows();
    let mut m = a.clone();
    let mut x = b.to_vec();
    let scale = m.frobenius_norm().max(1e-300);

    for col in 0..n {
        // partial pivoting
        let mut pivot_row = col;
        let mut pivot_val = m[(col, col)].abs();
        for row in (col + 1)..n {
            let v = m[(row, col)].abs();
            if v > pivot_val {
                pivot_val = v;
                pivot_row = row;
            }
        }
        if pivot_val < 1e-14 * scale {
            return Err(NumericsError::SingularMatrix);
        }
        if pivot_row != col {
            for j in 0..n {
                let tmp = m[(col, j)];
                m[(col, j)] = m[(pivot_row, j)];
                m[(pivot_row, j)] = tmp;
            }
            x.swap(col, pivot_row);
        }
        // elimination
        let pivot = m[(col, col)];
        for row in (col + 1)..n {
            let factor = m[(row, col)] / pivot;
            if factor == 0.0 {
                continue;
            }
            for j in col..n {
                let v = m[(col, j)];
                m[(row, j)] -= factor * v;
            }
            x[row] -= factor * x[col];
        }
    }

    // back substitution
    for col in (0..n).rev() {
        let mut acc = x[col];
        for j in (col + 1)..n {
            acc -= m[(col, j)] * x[j];
        }
        x[col] = acc / m[(col, col)];
    }
    Ok(x)
}

/// Cholesky factorisation of a symmetric positive-definite matrix: returns lower-triangular `L`
/// with `A = L Lᵀ`.
pub fn cholesky(a: &Matrix) -> Result<Matrix> {
    if a.rows() != a.cols() {
        return Err(NumericsError::invalid("cholesky requires a square matrix"));
    }
    let n = a.rows();
    let mut l = Matrix::zeros(n, n);
    for i in 0..n {
        for j in 0..=i {
            let mut sum = a[(i, j)];
            for k in 0..j {
                sum -= l[(i, k)] * l[(j, k)];
            }
            if i == j {
                if sum <= 0.0 {
                    return Err(NumericsError::SingularMatrix);
                }
                l[(i, j)] = sum.sqrt();
            } else {
                l[(i, j)] = sum / l[(j, j)];
            }
        }
    }
    Ok(l)
}

/// Solves `A x = b` for symmetric positive-definite `A` using a Cholesky factorisation.
pub fn solve_spd(a: &Matrix, b: &[f64]) -> Result<Vec<f64>> {
    let l = cholesky(a)?;
    let n = a.rows();
    if b.len() != n {
        return Err(NumericsError::invalid("rhs length mismatch in solve_spd"));
    }
    // forward: L y = b
    let mut y = vec![0.0; n];
    for i in 0..n {
        let mut acc = b[i];
        for k in 0..i {
            acc -= l[(i, k)] * y[k];
        }
        y[i] = acc / l[(i, i)];
    }
    // backward: Lᵀ x = y
    let mut x = vec![0.0; n];
    for i in (0..n).rev() {
        let mut acc = y[i];
        for k in (i + 1)..n {
            acc -= l[(k, i)] * x[k];
        }
        x[i] = acc / l[(i, i)];
    }
    Ok(x)
}

/// Euclidean norm of a vector.
pub fn norm2(v: &[f64]) -> f64 {
    v.iter().map(|x| x * x).sum::<f64>().sqrt()
}

/// Dot product of two equal-length vectors.
pub fn dot(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn identity_solve_returns_rhs() {
        let a = Matrix::identity(3);
        let b = vec![1.0, 2.0, 3.0];
        let x = solve(&a, &b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn solve_known_system() {
        // [2 1; 1 3] x = [3; 5] -> x = [0.8, 1.4]
        let a = Matrix::from_vec(2, 2, vec![2.0, 1.0, 1.0, 3.0]).unwrap();
        let x = solve(&a, &[3.0, 5.0]).unwrap();
        assert!(approx_eq(x[0], 0.8, 1e-12, 1e-12));
        assert!(approx_eq(x[1], 1.4, 1e-12, 1e-12));
    }

    #[test]
    fn solve_requires_square() {
        let a = Matrix::zeros(2, 3);
        assert!(matches!(
            solve(&a, &[1.0, 2.0]),
            Err(NumericsError::InvalidArgument(_))
        ));
    }

    #[test]
    fn singular_matrix_detected() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 4.0]).unwrap();
        assert_eq!(solve(&a, &[1.0, 2.0]), Err(NumericsError::SingularMatrix));
    }

    #[test]
    fn solve_with_pivoting() {
        // leading zero pivot forces a row swap
        let a = Matrix::from_vec(2, 2, vec![0.0, 1.0, 1.0, 0.0]).unwrap();
        let x = solve(&a, &[2.0, 3.0]).unwrap();
        assert!(approx_eq(x[0], 3.0, 1e-12, 0.0));
        assert!(approx_eq(x[1], 2.0, 1e-12, 0.0));
    }

    #[test]
    fn cholesky_reconstructs() {
        let a = Matrix::from_vec(2, 2, vec![4.0, 2.0, 2.0, 3.0]).unwrap();
        let l = cholesky(&a).unwrap();
        let lt = l.transpose();
        let back = l.matmul(&lt).unwrap();
        for i in 0..2 {
            for j in 0..2 {
                assert!(approx_eq(back[(i, j)], a[(i, j)], 1e-12, 1e-12));
            }
        }
    }

    #[test]
    fn cholesky_rejects_indefinite() {
        let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 2.0, 1.0]).unwrap();
        assert_eq!(cholesky(&a), Err(NumericsError::SingularMatrix));
    }

    #[test]
    fn spd_solve_matches_general_solve() {
        let a = Matrix::from_vec(3, 3, vec![4.0, 1.0, 0.5, 1.0, 3.0, 0.2, 0.5, 0.2, 2.0]).unwrap();
        let b = [1.0, 2.0, 3.0];
        let x1 = solve(&a, &b).unwrap();
        let x2 = solve_spd(&a, &b).unwrap();
        for (u, v) in x1.iter().zip(&x2) {
            assert!(approx_eq(*u, *v, 1e-10, 1e-10));
        }
    }

    #[test]
    fn matmul_and_matvec() {
        let a = Matrix::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let b = Matrix::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 58.0);
        assert_eq!(c[(1, 1)], 154.0);

        let v = a.matvec(&[1.0, 1.0, 1.0]).unwrap();
        assert_eq!(v, vec![6.0, 15.0]);
    }

    #[test]
    fn gram_matches_explicit_product() {
        let j = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let g = j.gram();
        let jt = j.transpose();
        let explicit = jt.matmul(&j).unwrap();
        for i in 0..2 {
            for k in 0..2 {
                assert!(approx_eq(g[(i, k)], explicit[(i, k)], 1e-12, 1e-12));
            }
        }
    }

    #[test]
    fn gram_rhs_matches_explicit_product() {
        let j = Matrix::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]).unwrap();
        let r = [1.0, -1.0, 2.0];
        let g = j.gram_rhs(&r).unwrap();
        let jt = j.transpose();
        let explicit = jt.matvec(&r).unwrap();
        assert_eq!(g, explicit);
    }

    #[test]
    fn diagonal_damping() {
        let mut a = Matrix::identity(2);
        a.add_diagonal(0.5);
        assert_eq!(a[(0, 0)], 1.5);
        let mut b = Matrix::identity(2);
        b.scale_diagonal(0.5);
        assert_eq!(b[(1, 1)], 1.5);
    }

    #[test]
    fn from_vec_length_checked() {
        assert!(Matrix::from_vec(2, 2, vec![1.0]).is_err());
    }

    #[test]
    fn norms_and_dot() {
        assert!(approx_eq(norm2(&[3.0, 4.0]), 5.0, 1e-15, 0.0));
        assert_eq!(dot(&[1.0, 2.0], &[3.0, 4.0]), 11.0);
    }
}
