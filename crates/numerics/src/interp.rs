//! Piecewise-linear interpolation over tabulated functions.
//!
//! Interpolators are used to evaluate empirical CDFs at arbitrary points, to invert
//! tabulated CDFs during sampling, and to look up precomputed DP value tables inside the
//! checkpointing policy without re-running the dynamic program.

use crate::{NumericsError, Result};

/// A piecewise-linear interpolant over strictly increasing knots.
#[derive(Debug, Clone)]
pub struct LinearInterp {
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl LinearInterp {
    /// Builds an interpolant from knot positions `xs` (strictly increasing) and values `ys`.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>) -> Result<Self> {
        if xs.len() != ys.len() {
            return Err(NumericsError::invalid("xs and ys must have equal length"));
        }
        if xs.len() < 2 {
            return Err(NumericsError::invalid("need at least two knots"));
        }
        for w in xs.windows(2) {
            if !(w[1] > w[0]) {
                return Err(NumericsError::invalid("knots must be strictly increasing"));
            }
        }
        if xs.iter().chain(ys.iter()).any(|v| !v.is_finite()) {
            return Err(NumericsError::non_finite("interpolation knots"));
        }
        Ok(LinearInterp { xs, ys })
    }

    /// Number of knots.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Returns true when the interpolant has no knots (never true for a constructed value).
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Domain of the interpolant as `(min_x, max_x)`.
    pub fn domain(&self) -> (f64, f64) {
        (self.xs[0], *self.xs.last().unwrap())
    }

    /// Knot abscissae.
    pub fn knots(&self) -> &[f64] {
        &self.xs
    }

    /// Knot ordinates.
    pub fn values(&self) -> &[f64] {
        &self.ys
    }

    /// Evaluates the interpolant at `x`, clamping to the end values outside the domain.
    pub fn eval(&self, x: f64) -> f64 {
        let n = self.xs.len();
        if x <= self.xs[0] {
            return self.ys[0];
        }
        if x >= self.xs[n - 1] {
            return self.ys[n - 1];
        }
        let idx = match self.xs.binary_search_by(|v| v.partial_cmp(&x).unwrap()) {
            Ok(i) => return self.ys[i],
            Err(i) => i,
        };
        let (x0, x1) = (self.xs[idx - 1], self.xs[idx]);
        let (y0, y1) = (self.ys[idx - 1], self.ys[idx]);
        let w = (x - x0) / (x1 - x0);
        y0 + w * (y1 - y0)
    }

    /// Evaluates the interpolant at many points.
    pub fn eval_many(&self, xs: &[f64]) -> Vec<f64> {
        xs.iter().map(|&x| self.eval(x)).collect()
    }

    /// Inverts a monotone non-decreasing interpolant: finds `x` with `eval(x) = y`.
    ///
    /// Values outside the range are clamped to the domain endpoints.  Returns an error if the
    /// tabulated values are not monotone non-decreasing.
    pub fn inverse(&self, y: f64) -> Result<f64> {
        for w in self.ys.windows(2) {
            if w[1] < w[0] - 1e-12 {
                return Err(NumericsError::invalid(
                    "inverse interpolation requires non-decreasing values",
                ));
            }
        }
        let n = self.ys.len();
        if y <= self.ys[0] {
            return Ok(self.xs[0]);
        }
        if y >= self.ys[n - 1] {
            return Ok(self.xs[n - 1]);
        }
        // binary search for the containing segment
        let mut lo = 0usize;
        let mut hi = n - 1;
        while hi - lo > 1 {
            let mid = (lo + hi) / 2;
            if self.ys[mid] <= y {
                lo = mid;
            } else {
                hi = mid;
            }
        }
        let (y0, y1) = (self.ys[lo], self.ys[hi]);
        let (x0, x1) = (self.xs[lo], self.xs[hi]);
        if (y1 - y0).abs() < 1e-300 {
            return Ok(x0);
        }
        Ok(x0 + (y - y0) / (y1 - y0) * (x1 - x0))
    }

    /// Numerically differentiates the interpolant at segment midpoints, returning
    /// `(midpoints, slopes)`.  This is how empirical hazard/density estimates are produced
    /// from empirical CDFs in the statistics pipeline.
    pub fn derivative(&self) -> (Vec<f64>, Vec<f64>) {
        let mut mids = Vec::with_capacity(self.xs.len() - 1);
        let mut slopes = Vec::with_capacity(self.xs.len() - 1);
        for i in 1..self.xs.len() {
            let dx = self.xs[i] - self.xs[i - 1];
            mids.push(0.5 * (self.xs[i] + self.xs[i - 1]));
            slopes.push((self.ys[i] - self.ys[i - 1]) / dx);
        }
        (mids, slopes)
    }
}

/// Builds a uniform grid of `points` values covering `[a, b]` inclusive.
pub fn linspace(a: f64, b: f64, points: usize) -> Vec<f64> {
    if points == 0 {
        return Vec::new();
    }
    if points == 1 {
        return vec![a];
    }
    let h = (b - a) / (points - 1) as f64;
    (0..points).map(|i| a + i as f64 * h).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    fn interp() -> LinearInterp {
        LinearInterp::new(vec![0.0, 1.0, 2.0, 4.0], vec![0.0, 2.0, 3.0, 3.5]).unwrap()
    }

    #[test]
    fn construction_validation() {
        assert!(LinearInterp::new(vec![0.0], vec![0.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 0.0], vec![0.0, 1.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(LinearInterp::new(vec![0.0, f64::NAN], vec![0.0, 1.0]).is_err());
    }

    #[test]
    fn eval_at_knots_and_between() {
        let it = interp();
        assert_eq!(it.eval(1.0), 2.0);
        assert!(approx_eq(it.eval(0.5), 1.0, 1e-12, 0.0));
        assert!(approx_eq(it.eval(3.0), 3.25, 1e-12, 0.0));
    }

    #[test]
    fn eval_clamps_outside_domain() {
        let it = interp();
        assert_eq!(it.eval(-10.0), 0.0);
        assert_eq!(it.eval(10.0), 3.5);
    }

    #[test]
    fn eval_many_matches_eval() {
        let it = interp();
        let xs = [0.0, 0.5, 3.0];
        let ys = it.eval_many(&xs);
        for (x, y) in xs.iter().zip(&ys) {
            assert_eq!(it.eval(*x), *y);
        }
    }

    #[test]
    fn inverse_round_trip() {
        let it = interp();
        for &x in &[0.0, 0.3, 1.0, 1.7, 3.9] {
            let y = it.eval(x);
            let back = it.inverse(y).unwrap();
            assert!(approx_eq(it.eval(back), y, 1e-10, 0.0));
        }
    }

    #[test]
    fn inverse_clamps() {
        let it = interp();
        assert_eq!(it.inverse(-1.0).unwrap(), 0.0);
        assert_eq!(it.inverse(100.0).unwrap(), 4.0);
    }

    #[test]
    fn inverse_rejects_decreasing() {
        let it = LinearInterp::new(vec![0.0, 1.0, 2.0], vec![0.0, 2.0, 1.0]).unwrap();
        assert!(it.inverse(0.5).is_err());
    }

    #[test]
    fn derivative_recovers_slopes() {
        let it = interp();
        let (mids, slopes) = it.derivative();
        assert_eq!(mids.len(), 3);
        assert!(approx_eq(slopes[0], 2.0, 1e-12, 0.0));
        assert!(approx_eq(slopes[2], 0.25, 1e-12, 0.0));
    }

    #[test]
    fn linspace_endpoints() {
        let g = linspace(0.0, 24.0, 25);
        assert_eq!(g.len(), 25);
        assert_eq!(g[0], 0.0);
        assert!(approx_eq(g[24], 24.0, 1e-12, 0.0));
        assert!(linspace(0.0, 1.0, 0).is_empty());
        assert_eq!(linspace(5.0, 9.0, 1), vec![5.0]);
    }

    #[test]
    fn domain_and_accessors() {
        let it = interp();
        assert_eq!(it.domain(), (0.0, 4.0));
        assert_eq!(it.len(), 4);
        assert!(!it.is_empty());
        assert_eq!(it.knots().len(), it.values().len());
    }
}
