//! Inverse-transform sampling helpers.
//!
//! Fitted preemption models only expose a CDF; to drive Monte-Carlo simulation we need to
//! draw lifetimes from them.  This module inverts arbitrary monotone CDFs numerically
//! (Brent's method on `F(t) − u`), with an optional tabulated fast path for hot loops.

use crate::interp::{linspace, LinearInterp};
use crate::roots::{brent, RootConfig};
use crate::{NumericsError, Result};
use rand::Rng;

/// Draws one sample from a distribution with CDF `cdf` supported on `[lo, hi]`.
///
/// `cdf` must be non-decreasing with `cdf(lo) <= u <= cdf(hi)` for the drawn `u`; values of
/// `u` outside the attainable range are clamped to the support endpoints, which is the
/// behaviour wanted for truncated lifetime distributions (every VM dies by the deadline).
pub fn sample_inverse_cdf<F, R>(cdf: &F, lo: f64, hi: f64, rng: &mut R) -> Result<f64>
where
    F: Fn(f64) -> f64,
    R: Rng + ?Sized,
{
    let u: f64 = rng.gen::<f64>();
    invert_cdf(cdf, lo, hi, u)
}

/// Inverts a monotone CDF at probability `u` over the support `[lo, hi]`.
pub fn invert_cdf<F>(cdf: &F, lo: f64, hi: f64, u: f64) -> Result<f64>
where
    F: Fn(f64) -> f64,
{
    if !(hi > lo) {
        return Err(NumericsError::invalid("invert_cdf requires hi > lo"));
    }
    if !u.is_finite() {
        return Err(NumericsError::non_finite("probability"));
    }
    let u = u.clamp(0.0, 1.0);
    let flo = cdf(lo);
    let fhi = cdf(hi);
    if u <= flo {
        return Ok(lo);
    }
    if u >= fhi {
        return Ok(hi);
    }
    let g = |t: f64| cdf(t) - u;
    brent(
        g,
        lo,
        hi,
        RootConfig {
            x_tol: 1e-10,
            f_tol: 1e-12,
            max_iter: 200,
        },
    )
}

/// A tabulated inverse-CDF sampler: pre-computes the CDF on a grid once and then samples in
/// O(log n) per draw.  Accuracy is bounded by the grid resolution, which is ample for the
/// simulation experiments (lifetimes resolved to well under a second on a 24-hour horizon
/// with the default 4096 points).
#[derive(Debug, Clone)]
pub struct TabulatedSampler {
    inverse: LinearInterp,
    support: (f64, f64),
}

impl TabulatedSampler {
    /// Builds a sampler for a CDF supported on `[lo, hi]` using `points` tabulation points.
    pub fn new<F: Fn(f64) -> f64>(cdf: F, lo: f64, hi: f64, points: usize) -> Result<Self> {
        if points < 8 {
            return Err(NumericsError::invalid(
                "TabulatedSampler requires at least 8 points",
            ));
        }
        if !(hi > lo) {
            return Err(NumericsError::invalid("TabulatedSampler requires hi > lo"));
        }
        let xs = linspace(lo, hi, points);
        let mut us: Vec<f64> = xs.iter().map(|&x| cdf(x)).collect();
        // Normalise so the table spans [0, 1]; enforce monotonicity against tiny numerical
        // wobbles so that the (u -> x) interpolant is well-defined.
        let f_lo = us[0];
        let f_hi = *us.last().unwrap();
        if !(f_hi > f_lo) {
            return Err(NumericsError::invalid(
                "CDF is flat on the requested support",
            ));
        }
        for u in us.iter_mut() {
            *u = (*u - f_lo) / (f_hi - f_lo);
        }
        for i in 1..us.len() {
            if us[i] < us[i - 1] {
                us[i] = us[i - 1];
            }
        }
        // Build the inverse map u -> x.  Duplicate u values (flat CDF regions) are nudged by
        // a tiny epsilon to keep knots strictly increasing.
        let mut u_knots = Vec::with_capacity(points);
        let mut x_knots = Vec::with_capacity(points);
        let mut prev = f64::NEG_INFINITY;
        for (u, x) in us.iter().zip(&xs) {
            let mut u = *u;
            if u <= prev {
                u = prev + 1e-12;
            }
            prev = u;
            u_knots.push(u);
            x_knots.push(*x);
        }
        let inverse = LinearInterp::new(u_knots, x_knots)?;
        Ok(TabulatedSampler {
            inverse,
            support: (lo, hi),
        })
    }

    /// The support `[lo, hi]` the sampler was built over.
    pub fn support(&self) -> (f64, f64) {
        self.support
    }

    /// Maps a probability `u ∈ [0, 1]` to the corresponding quantile.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        self.inverse.eval(u).clamp(self.support.0, self.support.1)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        self.quantile(rng.gen::<f64>())
    }

    /// Draws `n` samples.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;
    use crate::stats::Ecdf;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn exp_cdf(lambda: f64) -> impl Fn(f64) -> f64 {
        move |t: f64| 1.0 - (-lambda * t).exp()
    }

    #[test]
    fn invert_cdf_round_trip() {
        let cdf = exp_cdf(0.5);
        for &u in &[0.01, 0.1, 0.5, 0.9, 0.99] {
            let t = invert_cdf(&cdf, 0.0, 100.0, u).unwrap();
            assert!(approx_eq(cdf(t), u, 1e-8, 1e-8));
        }
    }

    #[test]
    fn invert_cdf_clamps_extremes() {
        let cdf = exp_cdf(1.0);
        assert_eq!(invert_cdf(&cdf, 0.0, 10.0, 0.0).unwrap(), 0.0);
        assert_eq!(invert_cdf(&cdf, 0.0, 10.0, 1.0).unwrap(), 10.0);
    }

    #[test]
    fn invert_cdf_validates() {
        let cdf = exp_cdf(1.0);
        assert!(invert_cdf(&cdf, 1.0, 1.0, 0.5).is_err());
        assert!(invert_cdf(&cdf, 0.0, 1.0, f64::NAN).is_err());
    }

    #[test]
    fn sample_inverse_cdf_matches_distribution() {
        let mut rng = StdRng::seed_from_u64(7);
        let cdf = exp_cdf(1.0);
        let samples: Vec<f64> = (0..2000)
            .map(|_| sample_inverse_cdf(&cdf, 0.0, 50.0, &mut rng).unwrap())
            .collect();
        let ecdf = Ecdf::new(&samples).unwrap();
        let d = ecdf.ks_statistic(&cdf);
        assert!(d < 0.05, "KS statistic too large: {d}");
    }

    #[test]
    fn tabulated_sampler_quantiles() {
        let cdf = exp_cdf(2.0);
        let sampler = TabulatedSampler::new(&cdf, 0.0, 20.0, 2048).unwrap();
        for &u in &[0.1f64, 0.25, 0.5, 0.75, 0.9] {
            let exact = -(1.0 - u).ln() / 2.0;
            assert!(approx_eq(sampler.quantile(u), exact, 1e-3, 1e-2));
        }
        assert_eq!(sampler.support(), (0.0, 20.0));
    }

    #[test]
    fn tabulated_sampler_agrees_with_exact_inversion() {
        let cdf = exp_cdf(0.7);
        let sampler = TabulatedSampler::new(&cdf, 0.0, 30.0, 4096).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let samples = sampler.sample_n(&mut rng, 3000);
        let ecdf = Ecdf::new(&samples).unwrap();
        // compare against the truncated analytic CDF on [0, 30]
        let norm = cdf(30.0);
        let d = ecdf.ks_statistic(|t| cdf(t) / norm);
        assert!(d < 0.05, "KS statistic too large: {d}");
    }

    #[test]
    fn tabulated_sampler_validation() {
        let cdf = exp_cdf(1.0);
        assert!(TabulatedSampler::new(&cdf, 0.0, 10.0, 4).is_err());
        assert!(TabulatedSampler::new(&cdf, 10.0, 0.0, 64).is_err());
        assert!(TabulatedSampler::new(|_| 0.3, 0.0, 1.0, 64).is_err());
    }

    #[test]
    fn tabulated_sampler_handles_flat_regions() {
        // CDF flat in the middle (no mass between 1 and 2)
        let cdf = |t: f64| {
            if t < 1.0 {
                0.5 * t
            } else if t < 2.0 {
                0.5
            } else {
                (0.5 + 0.5 * (t - 2.0)).min(1.0)
            }
        };
        let sampler = TabulatedSampler::new(cdf, 0.0, 3.0, 512).unwrap();
        let q_low = sampler.quantile(0.25);
        let q_high = sampler.quantile(0.75);
        assert!(q_low < 1.0 + 1e-6);
        assert!(q_high > 2.0 - 1e-2);
    }
}
