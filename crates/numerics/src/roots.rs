//! Scalar root finding.
//!
//! Root finding is used for inverse-transform sampling from fitted CDFs (find `t` such that
//! `F(t) = u`), for locating the job-length crossover point between the bathtub and uniform
//! preemption regimes (Figure 4b), and for the reuse-threshold age `s*` of the scheduling
//! policy.

use crate::{NumericsError, Result};

/// Configuration for the bracketing root finders.
#[derive(Debug, Clone, Copy)]
pub struct RootConfig {
    /// Absolute tolerance on the root location.
    pub x_tol: f64,
    /// Absolute tolerance on the function value.
    pub f_tol: f64,
    /// Maximum number of iterations.
    pub max_iter: usize,
}

impl Default for RootConfig {
    fn default() -> Self {
        RootConfig {
            x_tol: 1e-12,
            f_tol: 1e-12,
            max_iter: 200,
        }
    }
}

/// Finds a root of `f` on `[a, b]` by bisection.  Requires a sign change on the interval.
pub fn bisect<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, cfg: RootConfig) -> Result<f64> {
    let (mut lo, mut hi) = (a.min(b), a.max(b));
    let mut flo = f(lo);
    let fhi = f(hi);
    if flo == 0.0 {
        return Ok(lo);
    }
    if fhi == 0.0 {
        return Ok(hi);
    }
    if flo * fhi > 0.0 {
        return Err(NumericsError::RootNotBracketed {
            a: lo,
            b: hi,
            fa: flo,
            fb: fhi,
        });
    }
    for _ in 0..cfg.max_iter {
        let mid = 0.5 * (lo + hi);
        let fmid = f(mid);
        if fmid.abs() <= cfg.f_tol || (hi - lo) <= cfg.x_tol {
            return Ok(mid);
        }
        if flo * fmid < 0.0 {
            hi = mid;
        } else {
            lo = mid;
            flo = fmid;
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Brent's method: inverse-quadratic interpolation with a bisection fallback.
///
/// This mirrors the classic Brent–Dekker algorithm and converges superlinearly for the
/// smooth CDFs used throughout the workspace.
pub fn brent<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, cfg: RootConfig) -> Result<f64> {
    let mut a = a;
    let mut b = b;
    let mut fa = f(a);
    let mut fb = f(b);

    if fa == 0.0 {
        return Ok(a);
    }
    if fb == 0.0 {
        return Ok(b);
    }
    if fa * fb > 0.0 {
        return Err(NumericsError::RootNotBracketed { a, b, fa, fb });
    }
    if fa.abs() < fb.abs() {
        std::mem::swap(&mut a, &mut b);
        std::mem::swap(&mut fa, &mut fb);
    }

    let mut c = a;
    let mut fc = fa;
    let mut d = b - a;
    let mut mflag = true;

    for _ in 0..cfg.max_iter {
        if fb.abs() <= cfg.f_tol || (b - a).abs() <= cfg.x_tol {
            return Ok(b);
        }
        let mut s = if fa != fc && fb != fc {
            // inverse quadratic interpolation
            a * fb * fc / ((fa - fb) * (fa - fc))
                + b * fa * fc / ((fb - fa) * (fb - fc))
                + c * fa * fb / ((fc - fa) * (fc - fb))
        } else {
            // secant
            b - fb * (b - a) / (fb - fa)
        };

        let lo = (3.0 * a + b) / 4.0;
        let hi = b;
        let (lo, hi) = (lo.min(hi), lo.max(hi));
        let cond1 = s < lo || s > hi;
        let cond2 = mflag && (s - b).abs() >= (b - c).abs() / 2.0;
        let cond3 = !mflag && (s - b).abs() >= (c - d).abs() / 2.0;
        let cond4 = mflag && (b - c).abs() < cfg.x_tol;
        let cond5 = !mflag && (c - d).abs() < cfg.x_tol;

        if cond1 || cond2 || cond3 || cond4 || cond5 {
            s = 0.5 * (a + b);
            mflag = true;
        } else {
            mflag = false;
        }

        let fs = f(s);
        d = c;
        c = b;
        fc = fb;

        if fa * fs < 0.0 {
            b = s;
            fb = fs;
        } else {
            a = s;
            fa = fs;
        }
        if fa.abs() < fb.abs() {
            std::mem::swap(&mut a, &mut b);
            std::mem::swap(&mut fa, &mut fb);
        }
    }
    Ok(b)
}

/// Finds the minimizer of a unimodal scalar function on `[a, b]` by golden-section search.
///
/// Used for one-dimensional policy tuning (e.g. the best single checkpoint interval when a
/// uniform schedule is forced) and for sanity-checking the DP optimizer.
pub fn golden_section_min<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> Result<f64> {
    if !(a < b) {
        return Err(NumericsError::invalid("golden_section_min requires a < b"));
    }
    if tol <= 0.0 {
        return Err(NumericsError::invalid("tolerance must be positive"));
    }
    const INV_PHI: f64 = 0.618_033_988_749_894_8;
    let mut lo = a;
    let mut hi = b;
    let mut c = hi - INV_PHI * (hi - lo);
    let mut d = lo + INV_PHI * (hi - lo);
    let mut fc = f(c);
    let mut fd = f(d);
    for _ in 0..max_iter {
        if (hi - lo).abs() <= tol {
            break;
        }
        if fc < fd {
            hi = d;
            d = c;
            fd = fc;
            c = hi - INV_PHI * (hi - lo);
            fc = f(c);
        } else {
            lo = c;
            c = d;
            fc = fd;
            d = lo + INV_PHI * (hi - lo);
            fd = f(d);
        }
    }
    Ok(0.5 * (lo + hi))
}

/// Expands an initial guess interval until it brackets a root (or gives up).
///
/// `f` is evaluated at geometrically spaced points to the right of `a`; useful when the
/// caller only knows a lower bound of the root (e.g. the crossover job length).
pub fn bracket_root<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    initial_step: f64,
    max_expansions: usize,
) -> Result<(f64, f64)> {
    if initial_step <= 0.0 {
        return Err(NumericsError::invalid("initial_step must be positive"));
    }
    let fa = f(a);
    if fa == 0.0 {
        return Ok((a, a));
    }
    let mut step = initial_step;
    let mut lo = a;
    let mut flo = fa;
    for _ in 0..max_expansions {
        let hi = lo + step;
        let fhi = f(hi);
        if flo * fhi <= 0.0 {
            return Ok((lo, hi));
        }
        lo = hi;
        flo = fhi;
        step *= 2.0;
    }
    Err(NumericsError::DidNotConverge {
        what: "bracket_root".into(),
        iterations: max_expansions,
        residual: flo.abs(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn bisect_finds_sqrt2() {
        let r = bisect(|x| x * x - 2.0, 0.0, 2.0, RootConfig::default()).unwrap();
        assert!(approx_eq(r, std::f64::consts::SQRT_2, 1e-9, 0.0));
    }

    #[test]
    fn bisect_endpoint_roots() {
        assert_eq!(bisect(|x| x, 0.0, 1.0, RootConfig::default()).unwrap(), 0.0);
        assert_eq!(
            bisect(|x| x - 1.0, 0.0, 1.0, RootConfig::default()).unwrap(),
            1.0
        );
    }

    #[test]
    fn bisect_requires_bracket() {
        assert!(matches!(
            bisect(|x| x * x + 1.0, -1.0, 1.0, RootConfig::default()),
            Err(NumericsError::RootNotBracketed { .. })
        ));
    }

    #[test]
    fn brent_finds_cos_root() {
        let r = brent(|x| x.cos(), 0.0, 3.0, RootConfig::default()).unwrap();
        assert!(approx_eq(r, std::f64::consts::FRAC_PI_2, 1e-10, 0.0));
    }

    #[test]
    fn brent_cdf_style_inversion() {
        // invert a steep CDF-like function: F(t) = 1 - exp(-(t/0.8)) shifted near 24
        let target = 0.5;
        let f = |t: f64| 1.0 - (-(t / 3.0)).exp() - target;
        let r = brent(f, 0.0, 24.0, RootConfig::default()).unwrap();
        assert!(approx_eq(1.0 - (-(r / 3.0)).exp(), target, 1e-10, 0.0));
    }

    #[test]
    fn brent_requires_bracket() {
        assert!(brent(|x| x * x + 1.0, -1.0, 1.0, RootConfig::default()).is_err());
    }

    #[test]
    fn brent_matches_bisect() {
        let f = |x: f64| x.exp() - 3.0;
        let cfg = RootConfig::default();
        let r1 = brent(f, 0.0, 2.0, cfg).unwrap();
        let r2 = bisect(f, 0.0, 2.0, cfg).unwrap();
        assert!(approx_eq(r1, r2, 1e-8, 0.0));
        assert!(approx_eq(r1, 3.0f64.ln(), 1e-10, 0.0));
    }

    #[test]
    fn golden_section_minimizes_parabola() {
        let m = golden_section_min(|x| (x - 1.3).powi(2), -5.0, 5.0, 1e-8, 200).unwrap();
        assert!(approx_eq(m, 1.3, 1e-6, 0.0));
    }

    #[test]
    fn golden_section_validates_args() {
        assert!(golden_section_min(|x| x, 1.0, 0.0, 1e-8, 10).is_err());
        assert!(golden_section_min(|x| x, 0.0, 1.0, 0.0, 10).is_err());
    }

    #[test]
    fn bracket_root_expands() {
        let (lo, hi) = bracket_root(|x| x - 10.0, 0.0, 1.0, 20).unwrap();
        assert!(lo <= 10.0 && 10.0 <= hi);
    }

    #[test]
    fn bracket_root_gives_up() {
        assert!(bracket_root(|_| 1.0, 0.0, 1.0, 5).is_err());
    }
}
