//! Error types shared by all numerical routines.

use std::fmt;

/// Errors produced by the numerical routines in this crate.
#[derive(Debug, Clone, PartialEq)]
pub enum NumericsError {
    /// An argument was outside its valid domain (empty slice, negative tolerance, ...).
    InvalidArgument(String),
    /// An iterative solver exhausted its iteration budget before converging.
    DidNotConverge {
        /// Human-readable description of the solver that failed.
        what: String,
        /// Number of iterations performed before giving up.
        iterations: usize,
        /// Best residual / error measure achieved.
        residual: f64,
    },
    /// A root-bracketing routine was given an interval that does not bracket a root.
    RootNotBracketed {
        /// Left end of the interval.
        a: f64,
        /// Right end of the interval.
        b: f64,
        /// Function value at `a`.
        fa: f64,
        /// Function value at `b`.
        fb: f64,
    },
    /// A linear system was singular (or numerically indistinguishable from singular).
    SingularMatrix,
    /// A computation produced a NaN or infinity where a finite value was required.
    NonFinite(String),
}

impl fmt::Display for NumericsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NumericsError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            NumericsError::DidNotConverge {
                what,
                iterations,
                residual,
            } => write!(
                f,
                "{what} did not converge after {iterations} iterations (residual {residual:.3e})"
            ),
            NumericsError::RootNotBracketed { a, b, fa, fb } => write!(
                f,
                "root not bracketed on [{a}, {b}]: f(a) = {fa:.3e}, f(b) = {fb:.3e}"
            ),
            NumericsError::SingularMatrix => write!(f, "singular matrix in linear solve"),
            NumericsError::NonFinite(msg) => write!(f, "non-finite value encountered: {msg}"),
        }
    }
}

impl std::error::Error for NumericsError {}

impl NumericsError {
    /// Shorthand for constructing an [`NumericsError::InvalidArgument`].
    pub fn invalid(msg: impl Into<String>) -> Self {
        NumericsError::InvalidArgument(msg.into())
    }

    /// Shorthand for constructing a [`NumericsError::NonFinite`].
    pub fn non_finite(msg: impl Into<String>) -> Self {
        NumericsError::NonFinite(msg.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_informative() {
        let e = NumericsError::invalid("empty data");
        assert!(e.to_string().contains("empty data"));

        let e = NumericsError::DidNotConverge {
            what: "levenberg-marquardt".into(),
            iterations: 100,
            residual: 1e-3,
        };
        assert!(e.to_string().contains("levenberg-marquardt"));
        assert!(e.to_string().contains("100"));

        let e = NumericsError::RootNotBracketed {
            a: 0.0,
            b: 1.0,
            fa: 1.0,
            fb: 2.0,
        };
        assert!(e.to_string().contains("not bracketed"));

        assert!(NumericsError::SingularMatrix
            .to_string()
            .contains("singular"));
        assert!(NumericsError::non_finite("cdf").to_string().contains("cdf"));
    }

    #[test]
    fn errors_are_clonable_and_comparable() {
        let e = NumericsError::SingularMatrix;
        assert_eq!(e.clone(), e);
    }
}
