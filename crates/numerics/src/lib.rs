//! Numerical substrate for the constrained-preemption model.
//!
//! The paper relies on scipy's `optimize.curve_fit` (dogbox trust region), numerical
//! integration, and simple statistics.  The Rust ecosystem for bounded nonlinear least
//! squares is thin, so this crate implements the required numerics from scratch:
//!
//! * [`optimize`] — bounded Levenberg–Marquardt ("dogbox"-style projection onto box
//!   constraints) and Nelder–Mead simplex for curve fitting.
//! * [`integrate`] — adaptive Simpson and Gauss–Legendre quadrature.
//! * [`roots`] — Brent's method and bisection.
//! * [`stats`] — empirical CDFs, goodness of fit (R², RMSE, Kolmogorov–Smirnov),
//!   histograms and summary statistics.
//! * [`interp`] — piecewise-linear and monotone interpolation.
//! * [`linalg`] — the small dense-matrix kernels needed by the optimizers.
//! * [`sampling`] — inverse-transform sampling from arbitrary CDFs.
//!
//! Everything operates on `f64` and is deterministic given a seeded RNG.

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` style comparisons are used deliberately throughout: unlike `x <= 0.0`
// they are false for NaN, which is exactly the validation we want for config values.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod error;
pub mod integrate;
pub mod interp;
pub mod linalg;
pub mod optimize;
pub mod roots;
pub mod sampling;
pub mod stats;

pub use error::NumericsError;

/// Convenience result alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NumericsError>;

/// Machine-epsilon-scaled tolerance used as a default across solvers.
pub const DEFAULT_TOL: f64 = 1e-10;

/// Returns `true` when two floats agree to within `abs_tol` or `rel_tol` (whichever is looser).
#[inline]
pub fn approx_eq(a: f64, b: f64, abs_tol: f64, rel_tol: f64) -> bool {
    let diff = (a - b).abs();
    if diff <= abs_tol {
        return true;
    }
    let scale = a.abs().max(b.abs());
    diff <= rel_tol * scale
}

/// Clamps `x` into the inclusive interval `[lo, hi]`.
///
/// Unlike `f64::clamp` this tolerates `lo > hi` by returning the midpoint, which is the
/// behaviour we want when box constraints collapse during fitting.
#[inline]
pub fn clamp_interval(x: f64, lo: f64, hi: f64) -> f64 {
    if lo > hi {
        return 0.5 * (lo + hi);
    }
    x.max(lo).min(hi)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn approx_eq_absolute() {
        assert!(approx_eq(1.0, 1.0 + 1e-12, 1e-9, 0.0));
        assert!(!approx_eq(1.0, 1.1, 1e-9, 1e-9));
    }

    #[test]
    fn approx_eq_relative() {
        assert!(approx_eq(1e12, 1e12 + 1.0, 0.0, 1e-9));
        assert!(!approx_eq(1e12, 1.01e12, 0.0, 1e-9));
    }

    #[test]
    fn clamp_interval_basic() {
        assert_eq!(clamp_interval(5.0, 0.0, 1.0), 1.0);
        assert_eq!(clamp_interval(-5.0, 0.0, 1.0), 0.0);
        assert_eq!(clamp_interval(0.5, 0.0, 1.0), 0.5);
    }

    #[test]
    fn clamp_interval_degenerate() {
        // lo > hi collapses to the midpoint rather than panicking.
        assert_eq!(clamp_interval(3.0, 2.0, 1.0), 1.5);
    }
}
