//! Numerical quadrature.
//!
//! The constrained-preemption analysis needs many integrals of the form
//! `∫ t f(t) dt` (expected wasted work, expected lost work per checkpoint interval) over
//! sub-intervals of the 24-hour horizon.  Adaptive Simpson handles the smooth-but-steep
//! integrands that arise near the deadline, and fixed-order Gauss–Legendre is used where a
//! cheap, non-adaptive rule is preferred (inner loops of the dynamic program).

use crate::{NumericsError, Result};

/// Integration of `f` over `[a, b]` with the composite trapezoid rule using `n` panels.
pub fn trapezoid<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> Result<f64> {
    if n == 0 {
        return Err(NumericsError::invalid(
            "trapezoid requires at least 1 panel",
        ));
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::non_finite("trapezoid bounds"));
    }
    if a == b {
        return Ok(0.0);
    }
    let h = (b - a) / n as f64;
    let mut acc = 0.5 * (f(a) + f(b));
    for i in 1..n {
        acc += f(a + i as f64 * h);
    }
    Ok(acc * h)
}

/// Composite Simpson rule with `n` panels (`n` is rounded up to an even number).
pub fn simpson<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, n: usize) -> Result<f64> {
    if n == 0 {
        return Err(NumericsError::invalid("simpson requires at least 1 panel"));
    }
    if !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::non_finite("simpson bounds"));
    }
    if a == b {
        return Ok(0.0);
    }
    let n = if n.is_multiple_of(2) { n } else { n + 1 };
    let h = (b - a) / n as f64;
    let mut acc = f(a) + f(b);
    for i in 1..n {
        let x = a + i as f64 * h;
        acc += if i % 2 == 1 { 4.0 * f(x) } else { 2.0 * f(x) };
    }
    Ok(acc * h / 3.0)
}

/// Adaptive Simpson quadrature with an absolute error tolerance.
///
/// This is the work-horse integrator for all expectation integrals in the workspace.  The
/// recursion depth is capped at `max_depth`; when the cap is reached the best local estimate
/// is used rather than failing, because the integrands we care about (bathtub PDFs) are
/// bounded on the closed interval.
pub fn adaptive_simpson<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    tol: f64,
    max_depth: usize,
) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::non_finite("adaptive_simpson bounds"));
    }
    if tol <= 0.0 {
        return Err(NumericsError::invalid("tolerance must be positive"));
    }
    if a == b {
        return Ok(0.0);
    }
    if b < a {
        return Ok(-adaptive_simpson(f, b, a, tol, max_depth)?);
    }
    let fa = f(a);
    let fb = f(b);
    let m = 0.5 * (a + b);
    let fm = f(m);
    let whole = simpson_segment(a, b, fa, fm, fb);
    let value = adaptive_inner(f, a, b, fa, fm, fb, whole, tol, max_depth);
    if value.is_finite() {
        Ok(value)
    } else {
        Err(NumericsError::non_finite("adaptive_simpson result"))
    }
}

fn simpson_segment(a: f64, b: f64, fa: f64, fm: f64, fb: f64) -> f64 {
    (b - a) / 6.0 * (fa + 4.0 * fm + fb)
}

#[allow(clippy::too_many_arguments)]
fn adaptive_inner<F: Fn(f64) -> f64>(
    f: &F,
    a: f64,
    b: f64,
    fa: f64,
    fm: f64,
    fb: f64,
    whole: f64,
    tol: f64,
    depth: usize,
) -> f64 {
    let m = 0.5 * (a + b);
    let lm = 0.5 * (a + m);
    let rm = 0.5 * (m + b);
    let flm = f(lm);
    let frm = f(rm);
    let left = simpson_segment(a, m, fa, flm, fm);
    let right = simpson_segment(m, b, fm, frm, fb);
    let delta = left + right - whole;
    if depth == 0 || delta.abs() <= 15.0 * tol {
        left + right + delta / 15.0
    } else {
        adaptive_inner(f, a, m, fa, flm, fm, left, 0.5 * tol, depth - 1)
            + adaptive_inner(f, m, b, fm, frm, fb, right, 0.5 * tol, depth - 1)
    }
}

/// Nodes and weights for Gauss–Legendre quadrature on `[-1, 1]`.
///
/// Supported orders: 2–8, 16, 32.  Higher orders fall back to 32.
fn gauss_legendre_nodes(order: usize) -> (&'static [f64], &'static [f64]) {
    // Node/weight tables for the standard interval [-1, 1].
    const N2: [f64; 2] = [-0.5773502691896257, 0.5773502691896257];
    const W2: [f64; 2] = [1.0, 1.0];
    const N3: [f64; 3] = [-0.7745966692414834, 0.0, 0.7745966692414834];
    const W3: [f64; 3] = [0.5555555555555556, 0.8888888888888888, 0.5555555555555556];
    const N4: [f64; 4] = [
        -0.8611363115940526,
        -0.3399810435848563,
        0.3399810435848563,
        0.8611363115940526,
    ];
    const W4: [f64; 4] = [
        0.3478548451374538,
        0.6521451548625461,
        0.6521451548625461,
        0.3478548451374538,
    ];
    const N5: [f64; 5] = [
        -0.906_179_845_938_664,
        -0.5384693101056831,
        0.0,
        0.5384693101056831,
        0.906_179_845_938_664,
    ];
    const W5: [f64; 5] = [
        0.2369268850561891,
        0.4786286704993665,
        0.5688888888888889,
        0.4786286704993665,
        0.2369268850561891,
    ];
    const N8: [f64; 8] = [
        -0.9602898564975363,
        -0.7966664774136267,
        -0.525_532_409_916_329,
        -0.1834346424956498,
        0.1834346424956498,
        0.525_532_409_916_329,
        0.7966664774136267,
        0.9602898564975363,
    ];
    const W8: [f64; 8] = [
        0.1012285362903763,
        0.2223810344533745,
        0.3137066458778873,
        0.362_683_783_378_362,
        0.362_683_783_378_362,
        0.3137066458778873,
        0.2223810344533745,
        0.1012285362903763,
    ];
    const N16: [f64; 16] = [
        -0.9894009349916499,
        -0.9445750230732326,
        -0.8656312023878318,
        -0.755_404_408_355_003,
        -0.6178762444026438,
        -0.4580167776572274,
        -0.2816035507792589,
        -0.0950125098376374,
        0.0950125098376374,
        0.2816035507792589,
        0.4580167776572274,
        0.6178762444026438,
        0.755_404_408_355_003,
        0.8656312023878318,
        0.9445750230732326,
        0.9894009349916499,
    ];
    const W16: [f64; 16] = [
        0.0271524594117541,
        0.0622535239386479,
        0.0951585116824928,
        0.1246289712555339,
        0.1495959888165767,
        0.1691565193950025,
        0.1826034150449236,
        0.1894506104550685,
        0.1894506104550685,
        0.1826034150449236,
        0.1691565193950025,
        0.1495959888165767,
        0.1246289712555339,
        0.0951585116824928,
        0.0622535239386479,
        0.0271524594117541,
    ];
    match order {
        0..=2 => (&N2, &W2),
        3 => (&N3, &W3),
        4 => (&N4, &W4),
        5 => (&N5, &W5),
        6..=8 => (&N8, &W8),
        _ => (&N16, &W16),
    }
}

/// Gauss–Legendre quadrature of `f` over `[a, b]` with the given order (2–16).
pub fn gauss_legendre<F: Fn(f64) -> f64>(f: F, a: f64, b: f64, order: usize) -> Result<f64> {
    if !a.is_finite() || !b.is_finite() {
        return Err(NumericsError::non_finite("gauss_legendre bounds"));
    }
    if a == b {
        return Ok(0.0);
    }
    let (nodes, weights) = gauss_legendre_nodes(order);
    let half = 0.5 * (b - a);
    let mid = 0.5 * (a + b);
    let mut acc = 0.0;
    for (x, w) in nodes.iter().zip(weights) {
        acc += w * f(mid + half * x);
    }
    Ok(acc * half)
}

/// Composite Gauss–Legendre rule: splits `[a, b]` into `panels` sub-intervals and applies
/// the `order`-point rule on each.  Useful for integrands with a sharp boundary layer (the
/// near-deadline spike of the bathtub PDF).
pub fn composite_gauss_legendre<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    order: usize,
    panels: usize,
) -> Result<f64> {
    if panels == 0 {
        return Err(NumericsError::invalid(
            "composite rule requires at least one panel",
        ));
    }
    let h = (b - a) / panels as f64;
    let mut acc = 0.0;
    for i in 0..panels {
        let lo = a + i as f64 * h;
        let hi = lo + h;
        acc += gauss_legendre(&f, lo, hi, order)?;
    }
    Ok(acc)
}

/// Cumulative integral of `f` evaluated on a uniform grid: returns `(grid, F)` where
/// `F[i] = ∫_a^{grid[i]} f`.  Uses the composite trapezoid rule between grid points, which
/// keeps the result exactly consistent with the grid used elsewhere (e.g. for DP tables).
pub fn cumulative_integral<F: Fn(f64) -> f64>(
    f: F,
    a: f64,
    b: f64,
    points: usize,
) -> Result<(Vec<f64>, Vec<f64>)> {
    if points < 2 {
        return Err(NumericsError::invalid(
            "cumulative_integral requires at least 2 points",
        ));
    }
    if b <= a {
        return Err(NumericsError::invalid("cumulative_integral requires b > a"));
    }
    let h = (b - a) / (points - 1) as f64;
    let mut grid = Vec::with_capacity(points);
    let mut values = Vec::with_capacity(points);
    let mut acc = 0.0;
    let mut prev = f(a);
    grid.push(a);
    values.push(0.0);
    for i in 1..points {
        let x = a + i as f64 * h;
        let cur = f(x);
        acc += 0.5 * (prev + cur) * h;
        grid.push(x);
        values.push(acc);
        prev = cur;
    }
    Ok((grid, values))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx_eq;

    #[test]
    fn trapezoid_linear_exact() {
        // ∫0^1 (2x + 1) dx = 2
        let v = trapezoid(|x| 2.0 * x + 1.0, 0.0, 1.0, 4).unwrap();
        assert!(approx_eq(v, 2.0, 1e-12, 0.0));
    }

    #[test]
    fn simpson_cubic_exact() {
        // Simpson is exact for cubics: ∫0^2 x^3 dx = 4
        let v = simpson(|x| x.powi(3), 0.0, 2.0, 2).unwrap();
        assert!(approx_eq(v, 4.0, 1e-12, 0.0));
    }

    #[test]
    fn simpson_odd_panels_rounded_up() {
        let v = simpson(|x| x.powi(3), 0.0, 2.0, 3).unwrap();
        assert!(approx_eq(v, 4.0, 1e-12, 0.0));
    }

    #[test]
    fn adaptive_simpson_exponential() {
        // ∫0^1 e^x dx = e - 1
        let v = adaptive_simpson(&|x: f64| x.exp(), 0.0, 1.0, 1e-12, 40).unwrap();
        assert!(approx_eq(v, std::f64::consts::E - 1.0, 1e-10, 0.0));
    }

    #[test]
    fn adaptive_simpson_reversed_bounds() {
        let forward = adaptive_simpson(&|x: f64| x.sin(), 0.0, 2.0, 1e-10, 40).unwrap();
        let backward = adaptive_simpson(&|x: f64| x.sin(), 2.0, 0.0, 1e-10, 40).unwrap();
        assert!(approx_eq(forward, -backward, 1e-12, 0.0));
    }

    #[test]
    fn adaptive_simpson_sharp_peak() {
        // Steep exponential boundary layer similar to the near-deadline preemption spike.
        let f = |x: f64| ((x - 24.0) / 0.8).exp() / 0.8;
        let v = adaptive_simpson(&f, 0.0, 24.0, 1e-10, 50).unwrap();
        // analytic: 1 - e^{-30}
        assert!(approx_eq(v, 1.0 - (-30.0f64).exp(), 1e-8, 1e-8));
    }

    #[test]
    fn adaptive_simpson_zero_width() {
        assert_eq!(
            adaptive_simpson(&|x: f64| x, 1.0, 1.0, 1e-8, 10).unwrap(),
            0.0
        );
    }

    #[test]
    fn adaptive_rejects_bad_tolerance() {
        assert!(adaptive_simpson(&|x: f64| x, 0.0, 1.0, 0.0, 10).is_err());
    }

    #[test]
    fn gauss_legendre_polynomial_exactness() {
        // order-n GL is exact for polynomials of degree 2n-1
        let v = gauss_legendre(|x| x.powi(5) + x.powi(2), -1.0, 1.0, 4).unwrap();
        assert!(approx_eq(v, 2.0 / 3.0, 1e-12, 0.0));
        let v8 = gauss_legendre(|x| x.powi(7), 0.0, 1.0, 8).unwrap();
        assert!(approx_eq(v8, 0.125, 1e-12, 0.0));
    }

    #[test]
    fn gauss_legendre_matches_adaptive_on_smooth() {
        let f = |x: f64| (-x / 1.5).exp();
        let gl = composite_gauss_legendre(f, 0.0, 10.0, 8, 8).unwrap();
        let asimp = adaptive_simpson(&f, 0.0, 10.0, 1e-12, 40).unwrap();
        assert!(approx_eq(gl, asimp, 1e-9, 1e-9));
    }

    #[test]
    fn composite_requires_panels() {
        assert!(composite_gauss_legendre(|x| x, 0.0, 1.0, 4, 0).is_err());
    }

    #[test]
    fn cumulative_integral_monotone_for_positive_integrand() {
        let (grid, cum) = cumulative_integral(|x| x.exp(), 0.0, 2.0, 64).unwrap();
        assert_eq!(grid.len(), cum.len());
        for w in cum.windows(2) {
            assert!(w[1] >= w[0]);
        }
        assert!(approx_eq(
            *cum.last().unwrap(),
            2.0f64.exp() - 1.0,
            1e-2,
            1e-2
        ));
    }

    #[test]
    fn cumulative_integral_argument_validation() {
        assert!(cumulative_integral(|x| x, 0.0, 1.0, 1).is_err());
        assert!(cumulative_integral(|x| x, 1.0, 0.0, 16).is_err());
    }

    #[test]
    fn trapezoid_and_simpson_validate_args() {
        assert!(trapezoid(|x| x, 0.0, 1.0, 0).is_err());
        assert!(simpson(|x| x, 0.0, 1.0, 0).is_err());
        assert!(trapezoid(|x| x, f64::NAN, 1.0, 4).is_err());
    }
}
