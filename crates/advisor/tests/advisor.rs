//! Integration and property tests for the advisor: table answers must match direct
//! `tcp_core::analysis` / `tcp_policy` evaluation within interpolation tolerance, tables
//! must be monotone where the math says they must be, and the serving path must be
//! byte-deterministic across thread counts.

use proptest::prelude::*;
use std::sync::OnceLock;
use tcp_advisor::{
    generate_requests, requests_to_ndjson, serve_ndjson, AdviceRequest, Advisor, Decision,
    ModelPack, PackBuilder,
};
use tcp_core::analysis::expected_makespan_from_age;
use tcp_core::BathtubModel;
use tcp_policy::{CheckpointConfig, DpCheckpointPolicy};
use tcp_scenarios::SweepSpec;

/// The reference model behind the `paper` regime of the test pack.
fn model() -> BathtubModel {
    BathtubModel::paper_representative()
}

fn test_spec() -> SweepSpec {
    SweepSpec::from_toml(
        r#"
[sweep]
name = "advisor-test"
base_seed = 2020

[[regime]]
name = "paper"
kind = "bathtub"
a = 0.45
tau1 = 1.0
tau2 = 0.8

[[regime]]
name = "exp8"
kind = "exponential"
mean_hours = 8.0

[workload]
checkpoint_cost_minutes = [1.0]
dp_step_minutes = 15.0
"#,
    )
    .unwrap()
}

fn pack() -> &'static ModelPack {
    static PACK: OnceLock<ModelPack> = OnceLock::new();
    PACK.get_or_init(|| {
        PackBuilder {
            max_checkpoint_job_hours: 6.0,
            ..PackBuilder::default()
        }
        .build_from_spec(&test_spec())
        .unwrap()
    })
}

/// One-minute age knots make the 1-D interpolation error tiny; the curvature of
/// `t·f(t)` bounds it near 1e-3 hours for the makespan and well below that for
/// probabilities.
const TOLERANCE: f64 = 5e-3;

fn advisor() -> Advisor {
    Advisor::new(pack().clone()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn makespan_table_matches_equation8(age in 0.0f64..23.99, job in 0.1f64..14.0) {
        // The whole live-VM domain, *including* the deadline-crossing region
        // `age + job >= 24`: the first-moment decomposition handles the kink
        // analytically.  (Ages at or past the horizon get no makespan at all — see
        // `past_horizon_vms_get_no_makespan_or_cost`.)
        let a = advisor();
        let response = a
            .advise(&AdviceRequest::expected_cost_makespan("paper", age, job))
            .unwrap();
        let tabled = response.expected_makespan_hours.unwrap();
        let direct = expected_makespan_from_age(model().dist(), age, job);
        prop_assert!(
            (tabled - direct).abs() < TOLERANCE,
            "age {age} job {job}: tabled {tabled} direct {direct}"
        );
    }

    #[test]
    fn failure_table_matches_direct_probability(age in 0.0f64..24.0, job in 0.1f64..14.0) {
        let a = advisor();
        let response = a
            .advise(&AdviceRequest::expected_cost_makespan("paper", age, job))
            .unwrap();
        let tabled = response.failure_probability.unwrap();
        let direct = model().conditional_failure_probability(age, job);
        prop_assert!(
            (tabled - direct).abs() < TOLERANCE,
            "age {age} job {job}: tabled {tabled} direct {direct}"
        );
        prop_assert!((0.0..=1.0).contains(&tabled));
    }

    #[test]
    fn survival_table_matches_and_is_monotone_in_age(age1 in 0.0f64..24.0, age2 in 0.0f64..24.0) {
        let a = advisor();
        let survival_at = |age: f64| {
            a.advise(&AdviceRequest::expected_cost_makespan("paper", age, 1.0))
                .unwrap()
                .survival_probability
                .unwrap()
        };
        let s1 = survival_at(age1);
        prop_assert!((s1 - model().survival(age1)).abs() < TOLERANCE, "age {age1}: {s1}");
        // Survival must not increase with age.
        let (young, old) = if age1 <= age2 { (age1, age2) } else { (age2, age1) };
        prop_assert!(
            survival_at(young) >= survival_at(old) - 1e-9,
            "S({young}) < S({old})"
        );
    }

    #[test]
    fn makespan_table_is_monotone_in_job_length(age in 0.0f64..23.0, job1 in 0.1f64..12.0, job2 in 0.1f64..12.0) {
        // E[T_s] = T + ∫ is strictly increasing in T; linear interpolation over a
        // monotone grid must preserve (weak) monotonicity.
        let a = advisor();
        let makespan_at = |job: f64| {
            a.advise(&AdviceRequest::expected_cost_makespan("paper", age, job))
                .unwrap()
                .expected_makespan_hours
                .unwrap()
        };
        let (short, long) = if job1 <= job2 { (job1, job2) } else { (job2, job1) };
        prop_assert!(
            makespan_at(short) <= makespan_at(long) + 1e-9,
            "E[T] decreased from job {short} to {long} at age {age}"
        );
    }

    #[test]
    fn failure_probability_is_monotone_in_job_length(age in 0.0f64..23.0, job1 in 0.1f64..12.0, job2 in 0.1f64..12.0) {
        let a = advisor();
        let failure_at = |job: f64| {
            a.advise(&AdviceRequest::expected_cost_makespan("paper", age, job))
                .unwrap()
                .failure_probability
                .unwrap()
        };
        let (short, long) = if job1 <= job2 { (job1, job2) } else { (job2, job1) };
        prop_assert!(failure_at(short) <= failure_at(long) + 1e-9);
    }

    #[test]
    fn reuse_decisions_match_the_direct_policy_away_from_ties(age in 0.0f64..23.9, job in 0.5f64..10.0) {
        let a = advisor();
        let response = a
            .advise(&AdviceRequest::should_reuse("paper", age, job))
            .unwrap();
        let dist = model();
        let fresh = expected_makespan_from_age(dist.dist(), 0.0, job);
        let reuse = expected_makespan_from_age(dist.dist(), age, job);
        // Near the decision boundary interpolation may legitimately flip the choice;
        // away from it (margin > table tolerance) the decisions must agree.
        if (reuse - fresh).abs() > 2.0 * TOLERANCE {
            let expected = if reuse <= fresh {
                Decision::Reuse
            } else {
                Decision::LaunchFresh
            };
            prop_assert!(
                response.decision.unwrap() == expected,
                "age {age} job {job}: reuse {reuse} fresh {fresh}"
            );
        }
    }
}

#[test]
fn checkpoint_tables_are_exact_at_grid_points() {
    // At grid points no interpolation happens, so the pack must reproduce a freshly
    // solved DP exactly.
    let regime = &pack().regimes[0];
    let cell = &regime.checkpoint_cells[0];
    let config = CheckpointConfig {
        checkpoint_cost_hours: cell.checkpoint_cost_minutes / 60.0,
        step_hours: cell.dp_step_minutes / 60.0,
        restart_overhead_hours: cell.restart_overhead_minutes / 60.0,
    };
    let policy =
        DpCheckpointPolicy::new(regime.model.expect("bathtub reference fit"), config).unwrap();
    for (i, &age) in cell.ages.iter().enumerate() {
        for (j, &job) in cell.job_lens.iter().enumerate() {
            let tabled = cell.expected_makespan[i * cell.job_lens.len() + j];
            let direct = policy.expected_makespan(job, age).unwrap();
            assert!(
                (tabled - direct).abs() < 1e-9,
                "age {age} job {job}: tabled {tabled} direct {direct}"
            );
        }
    }
    // The stored fresh-VM schedules match direct planning too.
    for (j, schedule) in cell.schedules.iter().enumerate() {
        let direct = policy.schedule(cell.job_lens[j], 0.0).unwrap();
        assert_eq!(schedule.intervals_hours, direct.intervals_hours);
    }
}

#[test]
fn checkpoint_plan_interpolates_between_grid_points() {
    let a = advisor();
    let regime = &pack().regimes[0];
    let cell = &regime.checkpoint_cells[0];
    let config = CheckpointConfig {
        checkpoint_cost_hours: cell.checkpoint_cost_minutes / 60.0,
        step_hours: cell.dp_step_minutes / 60.0,
        restart_overhead_hours: cell.restart_overhead_minutes / 60.0,
    };
    let policy =
        DpCheckpointPolicy::new(regime.model.expect("bathtub reference fit"), config).unwrap();
    for &(job, age) in &[(2.2, 0.0), (3.7, 5.0), (5.1, 10.0)] {
        let response = a
            .advise(&AdviceRequest::checkpoint_plan("paper", age, job))
            .unwrap();
        let tabled = response.expected_makespan_hours.unwrap();
        let direct = policy.expected_makespan(job, age).unwrap();
        // The DP value function is piecewise-flat in job length (step quantisation), so
        // the tolerance is a couple of DP steps, not the fine-table tolerance.
        assert!(
            (tabled - direct).abs() < 3.0 * config.step_hours,
            "job {job} age {age}: tabled {tabled} direct {direct}"
        );
        assert!(response.checkpoint_count.unwrap() >= 1);
    }
}

#[test]
fn past_horizon_vms_get_no_makespan_or_cost() {
    // A VM at or past the reclamation deadline cannot run anything: both the reuse
    // path and the cost path must refuse to invent a finite makespan for it.
    let a = advisor();
    let r = a
        .advise(&AdviceRequest::expected_cost_makespan("paper", 25.0, 4.0))
        .unwrap();
    assert_eq!(r.expected_makespan_hours, None);
    assert_eq!(r.expected_cost_usd, None);
    assert_eq!(r.failure_probability, Some(1.0));
    assert_eq!(r.survival_probability, Some(0.0));
    // The on-demand comparator is still meaningful (a fresh on-demand VM runs the job).
    assert!(r.on_demand_cost_usd.unwrap() > 0.0);
}

#[test]
fn pack_round_trips_through_json_with_identical_answers() {
    let original = advisor();
    let rehydrated = Advisor::from_json(&pack().to_json().unwrap()).unwrap();
    let requests = generate_requests(pack(), 400, 99);
    let a = original.advise_batch(&requests, 1);
    let b = rehydrated.advise_batch(&requests, 1);
    assert_eq!(a, b);
}

#[test]
fn shipped_v2_example_pack_round_trips() {
    // `examples/advisor/pack_v2.json` is a format-2 pack (built from
    // `advisor_pack.toml` by the pre-redesign schema: bathtub-driven DP, no
    // `dp_family`).  The loader must upgrade it, record `dp_family = "bathtub"`, and
    // round-trip it through the current format with identical answers.
    let path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../examples/advisor/pack_v2.json"
    );
    let json = std::fs::read_to_string(path).expect("shipped v2 example pack");
    assert!(json.contains("\"format_version\":2"));
    assert!(!json.contains("dp_family"));
    let upgraded = ModelPack::from_json(&json).unwrap();
    assert_eq!(upgraded.name, "advisor-smoke");
    for regime in &upgraded.regimes {
        assert_eq!(regime.dp_family, "bathtub");
        assert!(regime.model.is_some(), "v2 packs always carried the fit");
    }
    // Round trip at the current version.
    let rewritten = upgraded.to_json().unwrap();
    assert!(rewritten.contains("\"dp_family\":\"bathtub\""));
    let reloaded = ModelPack::from_json(&rewritten).unwrap();
    assert_eq!(reloaded, upgraded);
    // The upgraded pack serves: same answers before and after the round trip.
    let a = Advisor::new(upgraded.clone()).unwrap();
    let b = Advisor::new(reloaded).unwrap();
    let requests = generate_requests(&upgraded, 200, 17);
    assert_eq!(a.advise_batch(&requests, 1), b.advise_batch(&requests, 1));
}

#[test]
fn serving_10k_requests_is_thread_invariant() {
    let router = tcp_advisor::MultiAdvisor::from_pack(pack().clone()).unwrap();
    let requests = generate_requests(pack(), 10_000, 2020);
    let input = requests_to_ndjson(&requests);
    let one = serve_ndjson(&router, &input, 1);
    let four = serve_ndjson(&router, &input, 4);
    assert_eq!(one, four, "NDJSON output must be byte-identical");
    assert_eq!(one.lines().count(), 10_000);
}
