//! Dense interpolation tables backing the query engine.
//!
//! One-dimensional curves (survival vs age) are served by
//! [`tcp_numerics::interp::LinearInterp`]; this module adds [`Table2D`], a bilinear
//! interpolant over an `age × job-length` grid with the same clamping semantics.
//! Bilinear interpolation is *monotone-safe*: it never overshoots the grid values, so a
//! table built from a function that is monotone along an axis stays monotone along that
//! axis — the property the advisor's correctness tests rely on.

use crate::error::{AdvisorError, Result};

/// A bilinear interpolant over a rectangular grid.
///
/// Values are stored row-major: `values[i * ys.len() + j]` is the sample at
/// `(xs[i], ys[j])`.  Evaluation clamps to the grid boundary, mirroring
/// [`LinearInterp::eval`](tcp_numerics::interp::LinearInterp::eval).
#[derive(Debug, Clone, PartialEq)]
pub struct Table2D {
    xs: Vec<f64>,
    ys: Vec<f64>,
    values: Vec<f64>,
}

/// Locates `x` within the knot vector: returns the left index `i` and the interpolation
/// weight `w ∈ [0, 1]` toward knot `i + 1`, clamped at the ends.
fn bracket(knots: &[f64], x: f64) -> (usize, f64) {
    let n = knots.len();
    // lint:allow(panic-policy) private helper: Table2D::new guarantees ≥2 finite, strictly increasing knots
    if x <= knots[0] {
        return (0, 0.0);
    }
    if x >= knots[n - 1] {
        return (n - 2, 1.0);
    }
    let idx = match knots.binary_search_by(|v| v.total_cmp(&x)) {
        Ok(i) => return (i.min(n - 2), if i == n - 1 { 1.0 } else { 0.0 }),
        Err(i) => i,
    };
    let (x0, x1) = (knots[idx - 1], knots[idx]);
    (idx - 1, (x - x0) / (x1 - x0))
}

impl Table2D {
    /// Builds a table from strictly increasing knot vectors and a row-major value grid.
    pub fn new(xs: Vec<f64>, ys: Vec<f64>, values: Vec<f64>) -> Result<Self> {
        if xs.len() < 2 || ys.len() < 2 {
            return Err(AdvisorError::Pack(
                "Table2D needs at least two knots per axis".to_string(),
            ));
        }
        if values.len() != xs.len() * ys.len() {
            return Err(AdvisorError::Pack(format!(
                "Table2D value grid has {} entries, expected {} x {}",
                values.len(),
                xs.len(),
                ys.len()
            )));
        }
        for knots in [&xs, &ys] {
            for w in knots.windows(2) {
                if let [a, b] = w {
                    if !(b > a) {
                        return Err(AdvisorError::Pack(
                            "Table2D knots must be strictly increasing".to_string(),
                        ));
                    }
                }
            }
        }
        if xs
            .iter()
            .chain(ys.iter())
            .chain(values.iter())
            .any(|v| !v.is_finite())
        {
            return Err(AdvisorError::Pack(
                "Table2D knots and values must be finite".to_string(),
            ));
        }
        Ok(Table2D { xs, ys, values })
    }

    /// First-axis knots.
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// Second-axis knots.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// The sample stored at grid point `(i, j)`.
    pub fn at(&self, i: usize, j: usize) -> f64 {
        self.values[i * self.ys.len() + j]
    }

    /// Evaluates the table at `(x, y)` with bilinear interpolation, clamping outside the
    /// grid.
    pub fn eval(&self, x: f64, y: f64) -> f64 {
        let (i, wx) = bracket(&self.xs, x);
        let (j, wy) = bracket(&self.ys, y);
        let v00 = self.at(i, j);
        let v01 = self.at(i, j + 1);
        let v10 = self.at(i + 1, j);
        let v11 = self.at(i + 1, j + 1);
        let lo = v00 + wy * (v01 - v00);
        let hi = v10 + wy * (v11 - v10);
        lo + wx * (hi - lo)
    }
}

/// Builds a [`Table2D`] by sampling `f(x, y)` on the given grids.
pub fn tabulate2d(xs: Vec<f64>, ys: Vec<f64>, f: impl Fn(f64, f64) -> f64) -> Result<Table2D> {
    let mut values = Vec::with_capacity(xs.len() * ys.len());
    for &x in &xs {
        for &y in &ys {
            values.push(f(x, y));
        }
    }
    Table2D::new(xs, ys, values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_numerics::interp::linspace;

    fn plane() -> Table2D {
        // f(x, y) = 2x + 3y sampled on [0,4] x [0,2]; bilinear interp is exact on planes.
        tabulate2d(linspace(0.0, 4.0, 5), linspace(0.0, 2.0, 5), |x, y| {
            2.0 * x + 3.0 * y
        })
        .unwrap()
    }

    #[test]
    fn exact_on_planes() {
        let t = plane();
        for &(x, y) in &[(0.0, 0.0), (1.3, 0.7), (3.99, 1.01), (4.0, 2.0)] {
            assert!(
                (t.eval(x, y) - (2.0 * x + 3.0 * y)).abs() < 1e-12,
                "({x}, {y})"
            );
        }
    }

    #[test]
    fn clamps_outside_the_grid() {
        let t = plane();
        assert_eq!(t.eval(-5.0, -5.0), 0.0);
        assert_eq!(t.eval(100.0, 100.0), 2.0 * 4.0 + 3.0 * 2.0);
        assert_eq!(t.eval(-1.0, 1.0), 3.0);
    }

    #[test]
    fn eval_hits_grid_points_exactly() {
        let t = plane();
        for (i, &x) in t.xs().iter().enumerate() {
            for (j, &y) in t.ys().iter().enumerate() {
                assert_eq!(t.eval(x, y), t.at(i, j));
            }
        }
    }

    #[test]
    fn never_overshoots_grid_values() {
        // Monotone-safety: interpolated values stay within the cell's corner range.
        let t = tabulate2d(linspace(0.0, 1.0, 4), linspace(0.0, 1.0, 4), |x, y| {
            (8.0 * x).sin() + (5.0 * y).cos()
        })
        .unwrap();
        let (lo, hi) = t
            .values
            .iter()
            .fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), &v| {
                (lo.min(v), hi.max(v))
            });
        for i in 0..=20 {
            for j in 0..=20 {
                let v = t.eval(i as f64 / 20.0, j as f64 / 20.0);
                assert!(v >= lo - 1e-12 && v <= hi + 1e-12);
            }
        }
    }

    #[test]
    fn construction_validation() {
        assert!(Table2D::new(vec![0.0], vec![0.0, 1.0], vec![0.0, 1.0]).is_err());
        assert!(Table2D::new(vec![0.0, 1.0], vec![0.0, 1.0], vec![0.0]).is_err());
        assert!(Table2D::new(vec![0.0, 0.0], vec![0.0, 1.0], vec![0.0; 4]).is_err());
        assert!(Table2D::new(
            vec![0.0, 1.0],
            vec![0.0, 1.0],
            vec![0.0, 1.0, 2.0, f64::NAN]
        )
        .is_err());
    }
}
