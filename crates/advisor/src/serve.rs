//! NDJSON serving: request streams in, response streams out.
//!
//! Each input line is one [`AdviceRequest`] in JSON; each output line is either the
//! matching [`AdviceResponse`] or an `{"error": ..., "id": ...}` line.  Lines are parsed,
//! answered, and serialized inside the worker tasks and emitted in input order, so the
//! byte output is identical for every thread count — a malformed line never stalls or
//! reorders the stream.

use crate::engine::{AdviceRequest, Advisor};
use crate::pack::ModelPack;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tcp_cloudsim::run_tasks;

/// The error line emitted for requests that could not be answered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorLine {
    /// What went wrong (parse error or advisor error).
    pub error: String,
    /// Correlation id of the failing request, when it could be parsed.
    pub id: Option<u64>,
}

/// Answers one NDJSON request line, returning the response (or error) line without a
/// trailing newline.
pub fn respond_line(advisor: &Advisor, line: &str) -> String {
    let emit_error = |error: String, id: Option<u64>| {
        serde_json::to_string(&ErrorLine { error, id }).expect("error lines serialize")
    };
    match serde_json::from_str::<AdviceRequest>(line) {
        Err(e) => emit_error(format!("parse error: {e}"), None),
        Ok(request) => match advisor.advise(&request) {
            Ok(response) => serde_json::to_string(&response).expect("responses serialize"),
            Err(e) => emit_error(e.to_string(), request.id),
        },
    }
}

/// Serves a whole NDJSON request stream over `threads` worker threads (`0` = all CPUs).
///
/// Blank lines are skipped; every other input line produces exactly one output line, in
/// input order.  The returned string is newline-terminated unless empty.
pub fn serve_ndjson(advisor: &Advisor, input: &str, threads: usize) -> String {
    let lines: Vec<&str> = input.lines().filter(|l| !l.trim().is_empty()).collect();
    let responses = run_tasks(lines.len(), threads, |i| respond_line(advisor, lines[i]));
    let mut out = responses.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// Deterministically generates a mixed request workload against `pack` — the load
/// generator behind `advise gen` and the throughput benchmarks.
///
/// The mix is 40 % reuse decisions, 25 % cost estimates, 25 % checkpoint plans and 10 %
/// best-policy lookups, spread across every regime in the pack, with ages across the
/// whole horizon and job lengths up to half the horizon.
pub fn generate_requests(pack: &ModelPack, count: usize, seed: u64) -> Vec<AdviceRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::with_capacity(count);
    for i in 0..count {
        let regime = &pack.regimes[rng.gen_range(0..pack.regimes.len())];
        let horizon = regime.horizon_hours;
        let vm_age = rng.gen_range(0.0..horizon);
        let job_len = rng.gen_range(0.1..0.5 * horizon);
        let roll: f64 = rng.gen();
        let mut request = if roll < 0.40 {
            AdviceRequest::should_reuse(regime.name.clone(), vm_age, job_len)
        } else if roll < 0.65 {
            AdviceRequest::expected_cost_makespan(regime.name.clone(), vm_age, job_len)
        } else if roll < 0.90 {
            let mut req = AdviceRequest::checkpoint_plan(regime.name.clone(), vm_age, job_len);
            let cells = &regime.checkpoint_cells;
            req.overhead_minutes =
                Some(cells[rng.gen_range(0..cells.len())].checkpoint_cost_minutes);
            req
        } else {
            AdviceRequest::best_policy(regime.name.clone())
        };
        request.id = Some(i as u64);
        requests.push(request);
    }
    requests
}

/// Renders requests as an NDJSON document (newline-terminated).
pub fn requests_to_ndjson(requests: &[AdviceRequest]) -> String {
    let mut out = String::new();
    for request in requests {
        out.push_str(&serde_json::to_string(request).expect("requests serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::{tiny_builder, tiny_spec};
    use crate::engine::RequestKind;

    fn advisor() -> Advisor {
        Advisor::new(tiny_builder().build_from_spec(&tiny_spec()).unwrap()).unwrap()
    }

    #[test]
    fn serves_requests_and_reports_errors_in_place() {
        let a = advisor();
        let input = r#"
{"kind": "should-reuse", "regime": "gcp-day", "vm_age": 8.0, "job_len": 6.0, "id": 1}
{"kind": "should-reuse", "vm_age": -3.0, "job_len": 6.0, "id": 2}
not json at all
{"kind": "best-policy", "regime": "exp8", "id": 4}
"#;
        let out = serve_ndjson(&a, input, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"id\":1"), "{}", lines[0]);
        assert!(lines[0].contains("\"decision\":\"reuse\""), "{}", lines[0]);
        assert!(
            lines[1].contains("error") && lines[1].contains("vm_age"),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("parse error"), "{}", lines[2]);
        assert!(lines[3].contains("best-policy"), "{}", lines[3]);
    }

    #[test]
    fn output_is_byte_identical_for_any_thread_count() {
        let a = advisor();
        let requests = generate_requests(a.pack(), 500, 7);
        let input = requests_to_ndjson(&requests);
        let one = serve_ndjson(&a, &input, 1);
        let four = serve_ndjson(&a, &input, 4);
        let eight = serve_ndjson(&a, &input, 8);
        assert_eq!(one, four);
        assert_eq!(one, eight);
        assert_eq!(one.lines().count(), 500);
    }

    #[test]
    fn generator_is_deterministic_and_covers_every_kind() {
        let a = advisor();
        let r1 = generate_requests(a.pack(), 300, 11);
        let r2 = generate_requests(a.pack(), 300, 11);
        assert_eq!(r1, r2);
        let r3 = generate_requests(a.pack(), 300, 12);
        assert_ne!(r1, r3);
        for kind in [
            RequestKind::ShouldReuse,
            RequestKind::CheckpointPlan,
            RequestKind::ExpectedCostMakespan,
            RequestKind::BestPolicy,
        ] {
            assert!(r1.iter().any(|r| r.kind == kind), "mix is missing {kind}");
        }
        // Every generated request is answerable.
        for result in a.advise_batch(&r1, 0) {
            result.unwrap();
        }
    }

    #[test]
    fn request_round_trips_through_ndjson() {
        let requests = generate_requests(advisor().pack(), 20, 3);
        let text = requests_to_ndjson(&requests);
        for (line, original) in text.lines().zip(&requests) {
            let parsed: AdviceRequest = serde_json::from_str(line).unwrap();
            assert_eq!(&parsed, original);
        }
    }
}
