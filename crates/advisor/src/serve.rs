//! NDJSON serving: request streams in, response streams out.
//!
//! Each input line is one [`AdviceRequest`] in JSON; each output line is either the
//! matching [`crate::AdviceResponse`] or an `{"error": ..., "id": ...}` line.  Lines are parsed,
//! answered, and serialized inside the worker tasks and emitted in input order, so the
//! byte output is identical for every thread count — a malformed line never stalls or
//! reorders the stream.
//!
//! Control lines start with `!`.  `!reload <path>` swaps the served pack (single or
//! multi) through the [`AdvisorHandle`]'s `Arc` swap: lines before the control line are
//! answered by the old pack, lines after it by the new one, and any batch already
//! holding a snapshot keeps answering from it unaffected.  The control line itself
//! produces one `{"control": "reload", ...}` (or `{"error": ...}`) line in place.
//! `!stats` emits the sharded query counters as a one-line JSON health report with
//! deterministically sorted keys, `!metrics` dumps the process-global
//! [`tcp_obs::Registry`] (latency histograms included) as one line of sorted-key JSON,
//! and `!health` reports the SLO evaluator's verdict (Healthy/Degraded/Unhealthy),
//! per-rule states, pack version/age, uptime, and the recent warn/error event ring.
//!
//! The line-level state machine lives in [`Session`], which is front-end agnostic: the
//! file/stdin path below feeds it a whole document at once, while the TCP server in
//! `tcp-serve` feeds it whatever slice of lines has arrived on the socket.  Both produce
//! byte-identical output for the same line sequence because a [`Session`] only depends
//! on the lines themselves and the packs they load.

use crate::engine::{AdviceRequest, AdvisorStats, FamilyStats};
use crate::pack::{ModelPack, MultiPack};
use crate::router::{AdvisorHandle, MultiAdvisor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tcp_cloudsim::run_tasks;

/// The error line emitted for requests that could not be answered.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ErrorLine {
    /// What went wrong (parse error or advisor error).
    pub error: String,
    /// Correlation id of the failing request, when it could be parsed.
    pub id: Option<u64>,
}

/// The acknowledgement line emitted for a successful `!reload`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ControlLine {
    /// The control verb (`reload`).
    pub control: String,
    /// Name of the pack (set) now being served.
    pub pack: String,
    /// Number of routable cell packs now loaded.
    pub cells: usize,
}

/// The health line emitted for a `!stats` control line: the sharded query counters,
/// aggregated and rendered as JSON.
///
/// Fields are declared in alphabetical order on purpose: derived serialization emits
/// fields in declaration order (and nested maps are `BTreeMap`s), so the `!stats`
/// line's JSON keys are deterministically sorted at every nesting level.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StatsLine {
    /// Number of routable cell packs currently loaded.
    pub cells: usize,
    /// The control verb (`stats`).
    pub control: String,
    /// Counters of the pack currently being served — under TCP, the server-wide
    /// figure since the reload (every connection shares the pack).
    pub current: AdvisorStats,
    /// Queries per *DP table* family (`dp_family` of the answering regime), same
    /// scope as `served_families`; equals it for packs built at format v3, and pins
    /// `bathtub` for upgraded v2 packs.
    pub dp_families: std::collections::BTreeMap<String, u64>,
    /// Name of the pack (set) currently being served.
    pub pack: String,
    /// Seconds since the served pack was swapped in (from the
    /// `advisor.pack.loaded_at_secs` gauge stamped at load/reload time) — the
    /// staleness figure `age`-kind SLO rules alert on.
    pub pack_age_secs: f64,
    /// Pack format version of the served pack.
    pub pack_format_version: u32,
    /// Counters summed over every pack this session has served from — the figure that
    /// survives a `!reload` (which swaps the live counters).  Pack counters are shared
    /// by every session serving the same packs, so under a multi-connection server
    /// this equals the session's own counts only for the sole connection; otherwise it
    /// covers all traffic on the packs this session touched.
    pub served: AdvisorStats,
    /// Queries per *served curve* family (`served_family` of the answering regime)
    /// for the pack currently being served — like `current`, the server-wide figure
    /// since the last reload, so a fresh health-probe connection sees real traffic.
    /// This is the histogram that shows which models a pack is actually serving.
    pub served_families: std::collections::BTreeMap<String, u64>,
    /// Seconds since the process's observability epoch — the same monotonic
    /// clock `!health` reports, so the two probes agree on process age.
    pub uptime_secs: f64,
}

/// Seconds since the served pack was stamped into the `advisor.pack.loaded_at_secs`
/// gauge (see `AdvisorHandle::new`/`reload`); clamped non-negative.
fn pack_age_secs() -> f64 {
    let loaded_at = tcp_obs::gauge("advisor.pack.loaded_at_secs").get();
    (tcp_obs::log::now_monotonic_secs() - loaded_at).max(0.0)
}

/// Serializes one NDJSON reply line.  A serializer failure is impossible for the
/// line types used here, but a serving worker must never abort on a response
/// path, so it degrades to a well-formed error line instead of panicking.
fn render_line<T: Serialize>(value: &T) -> String {
    serde_json::to_string(value)
        .unwrap_or_else(|_| "{\"error\":\"internal: response serialization failed\"}".to_string())
}

/// Serializes one JSON string fragment for hand-assembled control lines; the
/// empty-string fallback keeps the surrounding line well-formed JSON.
fn render_json_str(value: &str) -> String {
    serde_json::to_string(value).unwrap_or_else(|_| "\"\"".to_string())
}

/// Serializes one float for hand-assembled control lines through the sanctioned
/// serde_json float writer (finite values render as `{:?}` would; NaN and
/// infinities become `null`, keeping the line valid JSON).
fn render_f64(value: f64) -> String {
    serde_json::to_string(&value).unwrap_or_else(|_| "null".to_string())
}

/// Answers one NDJSON request line, returning the response (or error) line without a
/// trailing newline.
pub fn respond_line(advisor: &MultiAdvisor, line: &str) -> String {
    let emit_error = |error: String, id: Option<u64>| render_line(&ErrorLine { error, id });
    match serde_json::from_str::<AdviceRequest>(line) {
        Err(e) => emit_error(format!("parse error: {e}"), None),
        Ok(request) => match advisor.advise(&request) {
            Ok(response) => render_line(&response),
            Err(e) => emit_error(e.to_string(), request.id),
        },
    }
}

/// Serves a whole NDJSON request stream over `threads` worker threads (`0` = all CPUs).
///
/// Blank lines are skipped; every other input line produces exactly one output line, in
/// input order.  The returned string is newline-terminated unless empty.  Control lines
/// are *not* interpreted here — use [`serve_session`] for a reloadable stream.
pub fn serve_ndjson(advisor: &MultiAdvisor, input: &str, threads: usize) -> String {
    let lines: Vec<&str> = input.lines().filter(|l| !l.trim().is_empty()).collect();
    let responses = run_tasks(lines.len(), threads, |i| respond_line(advisor, lines[i]));
    let mut out = responses.join("\n");
    if !out.is_empty() {
        out.push('\n');
    }
    out
}

/// The front-end-agnostic serving state machine: lines in, lines out.
///
/// A session wraps an [`AdvisorHandle`] and answers any mix of request lines and `!`
/// control lines, preserving input order.  Request runs are answered in parallel over
/// `threads` workers (`0` = all CPUs) by a snapshot of the current advisor; `!reload`
/// swaps the pack between runs; `!stats` reports the sharded counters; `!metrics`
/// dumps the process-global metric registry (`!metrics prom` as a Prometheus text
/// exposition); `!trace` returns the flight recorder's recent spans; `!health`
/// reports the SLO verdict, pack age/version, and recent errors.  The output for
/// a given line sequence does not depend on how the lines are sliced across
/// [`Session::process`] calls, which is what makes the file front end
/// ([`serve_session`]) and the TCP front end (`tcp-serve`) byte-identical.
pub struct Session<'a> {
    handle: &'a AdvisorHandle,
    threads: usize,
    /// Every advisor that answered part of this session, for reload-surviving stats.
    used: Vec<Arc<MultiAdvisor>>,
    /// Request lines answered so far: the per-request trace-sampling seed.  Purely
    /// observational — responses never depend on it.
    requests_seen: u64,
}

impl<'a> Session<'a> {
    /// Creates a session serving from `handle` with `threads` batch workers.
    pub fn new(handle: &'a AdvisorHandle, threads: usize) -> Self {
        Session {
            handle,
            threads,
            used: Vec::new(),
            requests_seen: 0,
        }
    }

    /// Processes a slice of lines, appending one newline-terminated output line per
    /// non-blank input line to `out`.  Blank lines are skipped.
    pub fn process(&mut self, lines: &[&str], out: &mut String) {
        let mut segment: Vec<&str> = Vec::new();
        for line in lines {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if trimmed.starts_with('!') {
                self.flush(&mut segment, out);
                out.push_str(&self.control(trimmed));
                out.push('\n');
            } else {
                segment.push(line);
            }
        }
        self.flush(&mut segment, out);
    }

    /// Answers one run of request lines in parallel, preserving order.
    fn flush(&mut self, segment: &mut Vec<&str>, out: &mut String) {
        if segment.is_empty() {
            return;
        }
        let advisor = self.snapshot();
        // Each request line gets a trace root seeded by its session-wide ordinal:
        // deterministic sampling, and the root opens *inside* the worker closure so
        // nesting works on whichever thread executes the task.  With inline batches
        // (threads = 1) under an enclosing connection trace, the root nests as a
        // child span instead.  Inert (one atomic load) when tracing is off.
        let base_ordinal = self.requests_seen;
        self.requests_seen += segment.len() as u64;
        let responses = run_tasks(segment.len(), self.threads, |i| {
            let ordinal = base_ordinal + i as u64;
            let _root = tcp_obs::root_span!("serve.request", ordinal, ordinal);
            respond_line(&advisor, segment[i])
        });
        for response in responses {
            out.push_str(&response);
            out.push('\n');
        }
        segment.clear();
    }

    /// Snapshots the current advisor, remembering it for [`Session::stats`].
    fn snapshot(&mut self) -> Arc<MultiAdvisor> {
        let advisor = self.handle.current();
        if !self.used.iter().any(|u| Arc::ptr_eq(u, &advisor)) {
            self.used.push(advisor.clone());
        }
        advisor
    }

    /// Handles one `!` control line (leading `!` included), returning the response line
    /// without its trailing newline.
    pub fn control(&mut self, line: &str) -> String {
        // Strip exactly one `!`: a doubled prefix (`!!reload …`) is a malformed
        // control line that must get the typed unknown-control error, not execute.
        let trimmed = line.trim();
        let control = trimmed.strip_prefix('!').unwrap_or(trimmed);
        let emit_error = |error: String| render_line(&ErrorLine { error, id: None });
        match control.split_once(char::is_whitespace) {
            Some(("reload", path)) => {
                match self
                    .handle
                    .reload_from_path(std::path::Path::new(path.trim()))
                {
                    Ok(advisor) => {
                        // Reloads are rare enough that the registry lookup (a short
                        // mutex) is fine here, unlike the per-query hot path.
                        tcp_obs::counter("advisor.reload.success").incr();
                        render_line(&ControlLine {
                            control: "reload".to_string(),
                            pack: advisor.name().to_string(),
                            cells: advisor.cell_names().len(),
                        })
                    }
                    Err(e) => {
                        tcp_obs::counter("advisor.reload.failed").incr();
                        emit_error(format!("reload failed (previous pack kept): {e}"))
                    }
                }
            }
            None if control == "stats" => {
                let advisor = self.handle.current();
                // Family histograms answer "what is this pack serving?", so they take
                // the live pack's (server-wide) scope, like `current` — a session that
                // has answered nothing itself still reports real traffic.
                let families = advisor.family_stats();
                render_line(&StatsLine {
                    cells: advisor.cell_names().len(),
                    control: "stats".to_string(),
                    current: advisor.stats(),
                    dp_families: families.dp,
                    pack: advisor.name().to_string(),
                    pack_age_secs: pack_age_secs(),
                    pack_format_version: advisor.pooled().pack().format_version,
                    served: self.stats(),
                    served_families: families.served,
                    uptime_secs: tcp_obs::log::now_monotonic_secs(),
                })
            }
            Some(("metrics", arg)) if arg.trim() == "prom" => Self::metrics_prometheus_line(),
            None if control == "metrics" => Self::metrics_line(),
            None if control == "trace" => Self::trace_line(),
            None if control == "health" => self.health_line(),
            None if control == "profile" => Self::profile_line(),
            _ => emit_error(format!(
                "unknown control line `!{control}` (expected `!reload <path>`, `!stats`, \
                 `!metrics`, `!metrics prom`, `!trace`, `!health`, or `!profile`)"
            )),
        }
    }

    /// The one-line JSON answer to a `!metrics` control line: the process-global
    /// [`tcp_obs::Registry`] snapshot (counters, gauges, and latency histograms with
    /// pre-computed p50/p90/p99/max) nested under a `"metrics"` key.  Keys are
    /// deterministically sorted at both levels (`"control"` < `"metrics"`, and the
    /// registry snapshot iterates a `BTreeMap`).  Unlike `!stats`, the scope is the
    /// whole process across reloads — the two surfaces share the same `tcp-obs`
    /// recording machinery, so their counts agree where their scopes overlap.
    pub fn metrics_line() -> String {
        format!(
            "{{\"control\":\"metrics\",\"metrics\":{}}}",
            tcp_obs::Registry::global().snapshot().to_json_line()
        )
    }

    /// The one-line JSON answer to `!metrics prom`: the same process-global registry
    /// snapshot rendered as a Prometheus text exposition (format 0.0.4) and carried
    /// as an escaped string under `"text"`, so scrapers can poll over the socket
    /// without the `--metrics-file` sidecar.  Keys are sorted
    /// (`"control"` < `"encoding"` < `"text"`); unescaping `text` yields the exact
    /// bytes `--metrics-file` would have written.
    pub fn metrics_prometheus_line() -> String {
        format!(
            "{{\"control\":\"metrics\",\"encoding\":\"prometheus-0.0.4\",\"text\":{}}}",
            render_json_str(&tcp_obs::Registry::global().snapshot().to_prometheus())
        )
    }

    /// The one-line JSON answer to a `!trace` control line: the flight recorder's
    /// recent contents as `{"control":"trace","spans":[…]}` — each span a flat
    /// sorted-key object with its site name resolved ([`tcp_obs::trace::spans_json`]).
    /// The recorder is a bounded sliding window per thread, so the reply is bounded
    /// too, and probing copies rather than drains: repeated `!trace` lines and a
    /// later `--trace-file` export see the same records.
    pub fn trace_line() -> String {
        format!(
            "{{\"control\":\"trace\",\"spans\":{}}}",
            tcp_obs::trace::spans_json(&tcp_obs::trace::recent_spans())
        )
    }

    /// The one-line JSON answer to a `!health` control line:
    /// `{"control":"health","health":{...}}` with the health object's keys sorted
    /// (`"pack"` < `"recent_errors"` < `"rules"` < `"uptime_secs"` < `"verdict"`).
    ///
    /// The verdict and per-rule states come from the most recent
    /// [`tcp_obs::health::HealthReport`] published by the SLO evaluator
    /// (`advise listen --slo`); with no evaluator armed the verdict is `"healthy"`
    /// with an empty rule list.  `pack` carries the served pack's name, cell
    /// count, format version, and age in seconds (from the gauges stamped at swap
    /// time); `recent_errors` is the event log's bounded ring of recent
    /// warn/error records; `uptime_secs` is time since the process's
    /// observability epoch.
    pub fn health_line(&self) -> String {
        let advisor = self.handle.current();
        let report = tcp_obs::health::current();
        let (verdict, rules) = match &report {
            Some(r) => (r.verdict.as_str(), r.rules_json()),
            None => ("healthy", "[]".to_string()),
        };
        let recent: Vec<String> = tcp_obs::log::recent_errors()
            .iter()
            .map(|e| e.to_json_line())
            .collect();
        format!(
            "{{\"control\":\"health\",\"health\":{{\"pack\":{{\"age_secs\":{},\
             \"cells\":{},\"format_version\":{},\"name\":{}}},\"recent_errors\":[{}],\
             \"rules\":{},\"uptime_secs\":{},\"verdict\":\"{}\"}}}}",
            render_f64(pack_age_secs()),
            advisor.cell_names().len(),
            advisor.pooled().pack().format_version,
            render_json_str(advisor.name()),
            recent.join(","),
            rules,
            render_f64(tcp_obs::log::now_monotonic_secs()),
            verdict,
        )
    }

    /// The one-line JSON answer to a `!profile` control line:
    /// `{"control":"profile","profile":{...}}` with the profile object's keys
    /// sorted at every level ([`tcp_obs::profile::profile_json`]): `"alloc"`
    /// (allocation totals plus per-site attribution from the counting
    /// allocator, when the serving binary installed one) and `"wall"` (the
    /// continuous sampler's collapsed stacks keyed by `;`-joined site paths,
    /// plus tick/sample/torn counters).  With the profiler never armed the
    /// wall object is empty but the line still answers — probes need no
    /// capability negotiation.
    pub fn profile_line() -> String {
        format!(
            "{{\"control\":\"profile\",\"profile\":{}}}",
            tcp_obs::profile::profile_json(&tcp_obs::profile::snapshot())
        )
    }

    /// Query counters aggregated across *every* advisor that served part of this
    /// session — a `!reload` swaps the advisor (and with it the live counters), so
    /// reading only the final advisor's stats would drop everything answered before
    /// the swap.  Pack counters are shared across sessions serving the same packs,
    /// so with concurrent sessions this includes their traffic too.
    pub fn stats(&self) -> AdvisorStats {
        let mut stats = AdvisorStats {
            should_reuse: 0,
            checkpoint_plan: 0,
            expected_cost_makespan: 0,
            best_policy: 0,
        };
        for advisor in &self.used {
            let s = advisor.stats();
            stats.should_reuse += s.should_reuse;
            stats.checkpoint_plan += s.checkpoint_plan;
            stats.expected_cost_makespan += s.expected_cost_makespan;
            stats.best_policy += s.best_policy;
        }
        stats
    }

    /// Per-family counters aggregated across every advisor that served part of this
    /// session (same reload-surviving semantics as [`Session::stats`]).
    pub fn family_stats(&self) -> FamilyStats {
        let mut families = FamilyStats::default();
        for advisor in &self.used {
            families.merge(&advisor.family_stats());
        }
        families
    }
}

/// Serves an NDJSON stream with `!reload <path>` / `!stats` control-line support.
///
/// The stream is processed in segments: each run of request lines is answered in
/// parallel by a snapshot of the current advisor, and each control line swaps the
/// served pack before the next segment starts.  Output order matches input order, and
/// for a fixed set of pack files the bytes are identical for every thread count.
pub fn serve_session(handle: &AdvisorHandle, input: &str, threads: usize) -> String {
    serve_session_with_stats(handle, input, threads).0
}

/// [`serve_session`], additionally returning the query counters aggregated across
/// every advisor that served part of the stream (see [`Session::stats`]).
pub fn serve_session_with_stats(
    handle: &AdvisorHandle,
    input: &str,
    threads: usize,
) -> (String, AdvisorStats) {
    let mut session = Session::new(handle, threads);
    let lines: Vec<&str> = input.lines().collect();
    let mut out = String::new();
    session.process(&lines, &mut out);
    let stats = session.stats();
    (out, stats)
}

/// One draw of the standard request mix against `regime`: 40 % reuse decisions, 25 %
/// cost estimates, 25 % checkpoint plans and 10 % best-policy lookups, with ages
/// across the whole horizon and job lengths up to half the horizon.  Shared by the
/// single-pack and multi-pack load generators so their workloads stay comparable.
fn mixed_request(rng: &mut StdRng, regime: &crate::pack::RegimePack, id: u64) -> AdviceRequest {
    let horizon = regime.horizon_hours;
    let vm_age = rng.gen_range(0.0..horizon);
    let job_len = rng.gen_range(0.1..0.5 * horizon);
    let roll: f64 = rng.gen();
    let mut request = if roll < 0.40 {
        AdviceRequest::should_reuse(regime.name.clone(), vm_age, job_len)
    } else if roll < 0.65 {
        AdviceRequest::expected_cost_makespan(regime.name.clone(), vm_age, job_len)
    } else if roll < 0.90 {
        let mut req = AdviceRequest::checkpoint_plan(regime.name.clone(), vm_age, job_len);
        let cells = &regime.checkpoint_cells;
        req.overhead_minutes = Some(cells[rng.gen_range(0..cells.len())].checkpoint_cost_minutes);
        req
    } else {
        AdviceRequest::best_policy(regime.name.clone())
    };
    request.id = Some(id);
    request
}

/// Deterministically generates a mixed request workload against `pack` — the load
/// generator behind `advise gen` and the throughput benchmarks (see `mixed_request`
/// for the mix), spread across every regime in the pack.
pub fn generate_requests(pack: &ModelPack, count: usize, seed: u64) -> Vec<AdviceRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::with_capacity(count);
    for i in 0..count {
        let regime = &pack.regimes[rng.gen_range(0..pack.regimes.len())];
        requests.push(mixed_request(&mut rng, regime, i as u64));
    }
    requests
}

/// Deterministically generates a mixed workload against a per-cell pack set: the same
/// request mix as [`generate_requests`], spread across the pooled pack *and* every
/// routable cell pack (requests carry the `cell` field the router dispatches on), so
/// serving it exercises each cell's own winner-family tables — including the
/// generic-hazard DP of non-bathtub cells.
pub fn generate_multi_requests(multi: &MultiPack, count: usize, seed: u64) -> Vec<AdviceRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut requests = Vec::with_capacity(count);
    for i in 0..count {
        // Target 0 is the pooled pack; 1.. are the cell packs in routing order.
        let target = rng.gen_range(0..multi.cells.len() + 1);
        let (cell_name, pack) = match target {
            0 => (None, &multi.pooled),
            t => {
                let entry = &multi.cells[t - 1];
                (Some(entry.cell.clone()), &entry.pack)
            }
        };
        // lint:allow(panic-policy) load-generator helper, not a request path: packs are validated non-empty before generation
        let mut request = mixed_request(&mut rng, &pack.regimes[0], i as u64);
        request.cell = cell_name;
        requests.push(request);
    }
    requests
}

/// Renders requests as an NDJSON document (newline-terminated).
pub fn requests_to_ndjson(requests: &[AdviceRequest]) -> String {
    let mut out = String::new();
    for request in requests {
        // lint:allow(panic-policy) load-generator helper, not a request path: requests it just built always serialize
        out.push_str(&serde_json::to_string(request).expect("requests serialize"));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::{tiny_builder, tiny_spec};
    use crate::engine::RequestKind;

    fn advisor() -> MultiAdvisor {
        MultiAdvisor::from_pack(tiny_builder().build_from_spec(&tiny_spec()).unwrap()).unwrap()
    }

    fn pack() -> ModelPack {
        tiny_builder().build_from_spec(&tiny_spec()).unwrap()
    }

    #[test]
    fn serves_requests_and_reports_errors_in_place() {
        let a = advisor();
        let input = r#"
{"kind": "should-reuse", "regime": "gcp-day", "vm_age": 8.0, "job_len": 6.0, "id": 1}
{"kind": "should-reuse", "vm_age": -3.0, "job_len": 6.0, "id": 2}
not json at all
{"kind": "best-policy", "regime": "exp8", "id": 4}
"#;
        let out = serve_ndjson(&a, input, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("\"id\":1"), "{}", lines[0]);
        assert!(lines[0].contains("\"decision\":\"reuse\""), "{}", lines[0]);
        assert!(
            lines[1].contains("error") && lines[1].contains("vm_age"),
            "{}",
            lines[1]
        );
        assert!(lines[2].contains("parse error"), "{}", lines[2]);
        assert!(lines[3].contains("best-policy"), "{}", lines[3]);
    }

    #[test]
    fn output_is_byte_identical_for_any_thread_count() {
        let a = advisor();
        let requests = generate_requests(a.pooled().pack(), 500, 7);
        let input = requests_to_ndjson(&requests);
        let one = serve_ndjson(&a, &input, 1);
        let four = serve_ndjson(&a, &input, 4);
        let eight = serve_ndjson(&a, &input, 8);
        assert_eq!(one, four);
        assert_eq!(one, eight);
        assert_eq!(one.lines().count(), 500);
    }

    #[test]
    fn generator_is_deterministic_and_covers_every_kind() {
        let a = advisor();
        let r1 = generate_requests(a.pooled().pack(), 300, 11);
        let r2 = generate_requests(a.pooled().pack(), 300, 11);
        assert_eq!(r1, r2);
        let r3 = generate_requests(a.pooled().pack(), 300, 12);
        assert_ne!(r1, r3);
        for kind in [
            RequestKind::ShouldReuse,
            RequestKind::CheckpointPlan,
            RequestKind::ExpectedCostMakespan,
            RequestKind::BestPolicy,
        ] {
            assert!(r1.iter().any(|r| r.kind == kind), "mix is missing {kind}");
        }
        // Every generated request is answerable.
        for result in a.advise_batch(&r1, 0) {
            result.unwrap();
        }
    }

    #[test]
    fn request_round_trips_through_ndjson() {
        let requests = generate_requests(&pack(), 20, 3);
        let text = requests_to_ndjson(&requests);
        for (line, original) in text.lines().zip(&requests) {
            let parsed: AdviceRequest = serde_json::from_str(line).unwrap();
            assert_eq!(&parsed, original);
        }
    }

    #[test]
    fn reload_control_line_swaps_the_pack_mid_stream() {
        // Two packs on disk with different regime names.
        let dir = std::env::temp_dir().join("tcp_advisor_serve_reload_test");
        std::fs::create_dir_all(&dir).unwrap();
        let pack_b_path = dir.join("pack-b.json");
        let spec_b = tcp_scenarios::SweepSpec::from_toml(
            r#"
[sweep]
name = "pack-b"

[[regime]]
name = "exp6"
kind = "exponential"
mean_hours = 6.0

[workload]
dp_step_minutes = 30.0
"#,
        )
        .unwrap();
        let pack_b = tiny_builder().build_from_spec(&spec_b).unwrap();
        std::fs::write(&pack_b_path, pack_b.to_json().unwrap()).unwrap();

        let handle = AdvisorHandle::new(advisor());
        let input = format!(
            "{}\n!reload {}\n{}\n{}\n",
            r#"{"kind": "best-policy", "regime": "gcp-day", "id": 1}"#,
            pack_b_path.display(),
            r#"{"kind": "best-policy", "regime": "exp6", "id": 2}"#,
            r#"{"kind": "best-policy", "regime": "gcp-day", "id": 3}"#,
        );
        let out = serve_session(&handle, &input, 2);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        // Before the reload the old pack answers; its regimes exist.
        assert!(lines[0].contains("\"regime\":\"gcp-day\""), "{}", lines[0]);
        // The control line acknowledges the swap.
        assert!(
            lines[1].contains("\"control\":\"reload\"") && lines[1].contains("pack-b"),
            "{}",
            lines[1]
        );
        // After the reload the new pack answers, and the old regime is gone.
        assert!(lines[2].contains("\"regime\":\"exp6\""), "{}", lines[2]);
        assert!(
            lines[3].contains("error") && lines[3].contains("gcp-day"),
            "{}",
            lines[3]
        );
    }

    #[test]
    fn failed_reload_keeps_serving_the_old_pack() {
        let handle = AdvisorHandle::new(advisor());
        let input = "\
!reload /nonexistent/pack.json
{\"kind\": \"best-policy\", \"regime\": \"gcp-day\", \"id\": 1}
!bogus control
!!stats
";
        let out = serve_session(&handle, input, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(
            lines[0].contains("reload failed") && lines[0].contains("previous pack kept"),
            "{}",
            lines[0]
        );
        assert!(lines[1].contains("\"regime\":\"gcp-day\""), "{}", lines[1]);
        assert!(lines[2].contains("unknown control"), "{}", lines[2]);
        // A doubled `!` is malformed, never an executed control.
        assert!(lines[3].contains("unknown control"), "{}", lines[3]);
    }

    #[test]
    fn session_stats_survive_a_reload() {
        let dir = std::env::temp_dir().join("tcp_advisor_serve_stats_test");
        std::fs::create_dir_all(&dir).unwrap();
        let pack_path = dir.join("pack.json");
        std::fs::write(&pack_path, pack().to_json().unwrap()).unwrap();

        let handle = AdvisorHandle::new(advisor());
        let query = r#"{"kind": "best-policy", "regime": "gcp-day"}"#;
        let input = format!(
            "{query}\n{query}\n!reload {}\n{query}\n",
            pack_path.display()
        );
        let (out, stats) = serve_session_with_stats(&handle, &input, 1);
        assert_eq!(out.lines().count(), 4);
        // Two queries before the swap, one after: all three must be counted even
        // though the swap replaced the advisor (and its live counters) mid-stream.
        assert_eq!(stats.best_policy, 3);
        assert_eq!(stats.total(), 3);
        // The final advisor alone only saw the post-reload query.
        assert_eq!(handle.current().stats().total(), 1);
    }

    #[test]
    fn stats_control_line_reports_the_sharded_counters() {
        let handle = AdvisorHandle::new(advisor());
        let query = r#"{"kind": "best-policy", "regime": "gcp-day"}"#;
        let input = format!("{query}\n{query}\n!stats\n{query}\n!stats\n");
        let out = serve_session(&handle, &input, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 5);
        let first: StatsLine = serde_json::from_str(lines[2]).unwrap();
        assert_eq!(first.control, "stats");
        assert_eq!(first.pack, "tiny-pack");
        assert_eq!(first.cells, 0);
        assert_eq!(first.served.best_policy, 2);
        assert_eq!(first.current.best_policy, 2);
        let second: StatsLine = serde_json::from_str(lines[4]).unwrap();
        assert_eq!(second.served.best_policy, 3);
        assert_eq!(second.served.total(), 3);
        // The per-family histograms ride along: the tiny pack serves bathtub curves
        // and bathtub DP tables, so all three queries land there.
        assert_eq!(second.served_families.get("bathtub"), Some(&3));
        assert_eq!(second.dp_families.get("bathtub"), Some(&3));
    }

    #[test]
    fn metrics_control_line_reports_the_global_registry() {
        let handle = AdvisorHandle::new(advisor());
        let query = r#"{"kind": "best-policy", "regime": "gcp-day"}"#;
        let input = format!("{query}\n!metrics\n");
        let out = serve_session(&handle, &input, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        // The metrics line is valid one-line JSON with the control/metrics envelope.
        let value = serde_json::parse_value(lines[1]).unwrap();
        assert_eq!(
            value.get("control").and_then(|v| v.as_str()),
            Some("metrics")
        );
        let metrics = value.get("metrics").expect("metrics object");
        // The advisor registered its latency histograms at load time; the query above
        // recorded into best_policy (count >= 1 — the registry is process-global, so
        // other tests in this binary may have recorded too).
        let best = metrics
            .get("advisor.latency.best_policy")
            .expect("latency family present");
        assert!(best.get("count").and_then(|v| v.as_u64()).unwrap() >= 1);
        for key in ["p50", "p90", "p99", "p999", "max", "mean", "sum"] {
            assert!(best.get(key).is_some(), "missing {key}");
        }
        // Top-level metric keys are sorted.
        let keys: Vec<&str> = metrics
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted);
    }

    #[test]
    fn metrics_prom_control_line_carries_the_text_exposition() {
        let handle = AdvisorHandle::new(advisor());
        let query = r#"{"kind": "best-policy", "regime": "gcp-day"}"#;
        let input = format!("{query}\n!metrics prom\n");
        let out = serve_session(&handle, &input, 1);
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2, "one response line per input line");
        let value = serde_json::parse_value(lines[1]).unwrap();
        assert_eq!(
            value.get("control").and_then(|v| v.as_str()),
            Some("metrics")
        );
        assert_eq!(
            value.get("encoding").and_then(|v| v.as_str()),
            Some("prometheus-0.0.4")
        );
        // Unescaping `text` yields real multi-line Prometheus exposition with the
        // advisor's latency families.
        let text = value.get("text").and_then(|v| v.as_str()).unwrap();
        assert!(text.contains("# TYPE advisor_latency_best_policy histogram"));
        assert!(text.contains("advisor_latency_best_policy_bucket{le=\"+Inf\"}"));
        assert!(text.contains("advisor_latency_best_policy_count"));
        assert!(text.lines().count() > 3, "text must be a full exposition");
    }

    #[test]
    fn trace_control_line_returns_recent_ring_contents() {
        let handle = AdvisorHandle::new(advisor());
        // Without configuration the recorder is off: still a valid, empty-or-not
        // envelope (the ring is process-global, so other tests may have committed).
        let out = serve_session(&handle, "!trace\n", 1);
        let value = serde_json::parse_value(out.lines().next().unwrap()).unwrap();
        assert_eq!(value.get("control").and_then(|v| v.as_str()), Some("trace"));
        assert!(value.get("spans").is_some(), "spans array present");
    }

    #[test]
    fn health_control_line_tracks_the_published_report() {
        // One test owns the process-global published report end-to-end (parallel
        // tests in this binary must not touch it): no report → healthy with empty
        // rules; a published degraded report → degraded with the rule states; and
        // clearing restores the default.
        tcp_obs::health::clear_current();
        let handle = AdvisorHandle::new(advisor());
        let out = serve_session(&handle, "!health\n", 1);
        let value = serde_json::parse_value(out.lines().next().unwrap()).unwrap();
        assert_eq!(
            value.get("control").and_then(|v| v.as_str()),
            Some("health")
        );
        let health = value.get("health").expect("health object");
        assert_eq!(
            health.get("verdict").and_then(|v| v.as_str()),
            Some("healthy")
        );
        assert_eq!(
            health.get("rules").and_then(|v| v.as_seq()).unwrap().len(),
            0
        );
        assert!(health
            .get("recent_errors")
            .and_then(|v| v.as_seq())
            .is_some());
        assert!(health.get("uptime_secs").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        let pack = health.get("pack").expect("pack object");
        assert_eq!(pack.get("name").and_then(|v| v.as_str()), Some("tiny-pack"));
        assert_eq!(pack.get("cells").and_then(|v| v.as_u64()), Some(0));
        assert_eq!(
            pack.get("format_version").and_then(|v| v.as_u64()),
            Some(crate::pack::PACK_FORMAT_VERSION as u64)
        );
        assert!(pack.get("age_secs").and_then(|v| v.as_f64()).unwrap() >= 0.0);
        // Health object keys are sorted.
        let keys: Vec<&str> = health
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "health keys must be sorted");

        // A published firing report flips the verdict and carries rule states.
        tcp_obs::health::publish(tcp_obs::health::HealthReport {
            verdict: tcp_obs::health::Verdict::Degraded,
            t_secs: 1.0,
            rules: vec![tcp_obs::health::RuleReport {
                name: "shed-ratio".to_string(),
                severity: tcp_obs::health::Severity::Warn,
                firing: true,
                short_value: 0.5,
                long_value: 0.4,
                threshold: 0.1,
            }],
        });
        let out = serve_session(&handle, "!health\n", 1);
        let value = serde_json::parse_value(out.lines().next().unwrap()).unwrap();
        let health = value.get("health").unwrap();
        assert_eq!(
            health.get("verdict").and_then(|v| v.as_str()),
            Some("degraded")
        );
        let rules = health.get("rules").and_then(|v| v.as_seq()).unwrap();
        assert_eq!(rules.len(), 1);
        assert_eq!(
            rules[0].get("name").and_then(|v| v.as_str()),
            Some("shed-ratio")
        );
        assert_eq!(rules[0].get("firing").and_then(|v| v.as_bool()), Some(true));
        tcp_obs::health::clear_current();
    }

    #[test]
    fn stats_line_reports_pack_age_and_version() {
        let handle = AdvisorHandle::new(advisor());
        let out = serve_session(&handle, "!stats\n", 1);
        let stats: StatsLine = serde_json::from_str(out.lines().next().unwrap()).unwrap();
        assert!(stats.pack_age_secs >= 0.0);
        // A fresh handle stamped the gauge moments ago.
        assert!(stats.pack_age_secs < 60.0, "{}", stats.pack_age_secs);
        assert_eq!(stats.pack_format_version, crate::pack::PACK_FORMAT_VERSION);
    }

    #[test]
    fn stats_line_keys_are_sorted() {
        let handle = AdvisorHandle::new(advisor());
        let out = serve_session(&handle, "!stats\n", 1);
        let line = out.lines().next().unwrap();
        let value = serde_json::parse_value(line).unwrap();
        let keys: Vec<&str> = value
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "top-level !stats keys must be sorted");
        for stats_key in ["current", "served"] {
            let nested: Vec<&str> = value
                .get(stats_key)
                .unwrap()
                .as_map()
                .unwrap()
                .iter()
                .map(|(k, _)| k.as_str())
                .collect();
            let mut nested_sorted = nested.clone();
            nested_sorted.sort_unstable();
            assert_eq!(nested, nested_sorted, "{stats_key} keys must be sorted");
        }
    }

    #[test]
    fn stats_uptime_agrees_with_health_epoch() {
        let handle = AdvisorHandle::new(advisor());
        let out = serve_session(&handle, "!stats\n!health\n", 1);
        let lines: Vec<&str> = out.lines().collect();
        let stats: StatsLine = serde_json::from_str(lines[0]).unwrap();
        assert!(stats.uptime_secs >= 0.0);
        let health = serde_json::parse_value(lines[1]).unwrap();
        let health_uptime = health
            .get("health")
            .and_then(|h| h.get("uptime_secs"))
            .and_then(|v| v.as_f64())
            .unwrap();
        // Same shared monotonic epoch: the later probe reads a larger-or-equal
        // offset, and the two can only differ by the time between the probes.
        assert!(health_uptime >= stats.uptime_secs);
        assert!(health_uptime - stats.uptime_secs < 60.0);
    }

    #[test]
    fn profile_control_line_reports_wall_and_alloc_with_sorted_keys() {
        let handle = AdvisorHandle::new(advisor());
        let out = serve_session(&handle, "!profile\n", 1);
        let line = out.lines().next().unwrap();
        let value = serde_json::parse_value(line).unwrap();
        assert_eq!(
            value.get("control").and_then(|v| v.as_str()),
            Some("profile")
        );
        let profile = value.get("profile").unwrap();
        for (outer, inner) in [("alloc", "allocs"), ("wall", "ticks")] {
            assert!(
                profile
                    .get(outer)
                    .and_then(|o| o.get(inner))
                    .and_then(|v| v.as_u64())
                    .is_some(),
                "missing {outer}.{inner} in {line}"
            );
        }
        let keys: Vec<&str> = profile
            .as_map()
            .unwrap()
            .iter()
            .map(|(k, _)| k.as_str())
            .collect();
        let mut sorted = keys.clone();
        sorted.sort_unstable();
        assert_eq!(keys, sorted, "!profile keys must be sorted");
    }

    #[test]
    fn multi_request_generator_spreads_over_cells_deterministically() {
        let records = tcp_trace::TraceGenerator::new(11)
            .generate_study(600, 90)
            .unwrap();
        let catalog = tcp_calibrate::Calibrator::new("gen-test")
            .calibrate(&records, "synthetic", 0)
            .unwrap();
        let multi = crate::builder::PackBuilder {
            age_points: 121,
            checkpoint_age_points: 3,
            checkpoint_job_points: 4,
            max_checkpoint_job_hours: 4.0,
            ..Default::default()
        }
        .build_from_catalog(&catalog, &[5.0], 30.0, 0)
        .unwrap();
        let requests = generate_multi_requests(&multi, 400, 7);
        assert_eq!(requests, generate_multi_requests(&multi, 400, 7));
        // The load touches the pooled pack and at least one real cell.
        assert!(requests.iter().any(|r| r.cell.is_none()));
        assert!(requests.iter().any(|r| r.cell.is_some()));
        // Every generated request is answerable by the router, and serving them is
        // byte-identical across thread counts (the determinism smoke's contract).
        let router = MultiAdvisor::from_multi(multi).unwrap();
        let input = requests_to_ndjson(&requests);
        let one = serve_ndjson(&router, &input, 1);
        let four = serve_ndjson(&router, &input, 4);
        assert_eq!(one, four);
        assert!(!one.contains("\"error\""), "all requests answerable");
        // Per-family counters cover more than one family (per-cell winners differ).
        assert!(router.family_stats().served.len() > 1);
    }

    #[test]
    fn session_output_does_not_depend_on_how_lines_are_sliced() {
        // The TCP front end feeds a Session whatever slice of lines arrived on the
        // socket; the bytes must match the file front end, which feeds everything at
        // once.
        let requests = generate_requests(&pack(), 120, 23);
        let input = requests_to_ndjson(&requests);
        let lines: Vec<&str> = input.lines().collect();
        let whole = serve_session(&AdvisorHandle::new(advisor()), &input, 2);
        let handle = AdvisorHandle::new(advisor());
        let mut session = Session::new(&handle, 2);
        let mut sliced = String::new();
        for chunk in lines.chunks(7) {
            session.process(chunk, &mut sliced);
        }
        assert_eq!(whole, sliced);
        assert_eq!(session.stats().total(), 120);
    }

    #[test]
    fn session_and_plain_serving_agree_without_control_lines() {
        let requests = generate_requests(&pack(), 200, 17);
        let input = requests_to_ndjson(&requests);
        let plain = serve_ndjson(&advisor(), &input, 2);
        let session = serve_session(&AdvisorHandle::new(advisor()), &input, 2);
        assert_eq!(plain, session);
    }
}
