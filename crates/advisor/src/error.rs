//! Typed advisor errors and the strict input-validation boundary.
//!
//! The offline analysis code in `tcp_core::analysis` silently clamps bad inputs
//! (`job_len.max(0.0)`), which is forgiving for plotting sweeps but wrong for a serving
//! API: a NaN age or a negative job length in a request is a caller bug that must be
//! reported, not absorbed.  Every advisor entry point funnels its numeric inputs through
//! the validators below before touching a table.

use std::fmt;

/// Errors produced by the advisor.
#[derive(Debug, Clone, PartialEq)]
pub enum AdvisorError {
    /// A numeric request parameter failed validation (NaN, infinite, or out of range).
    InvalidInput {
        /// Name of the offending parameter.
        field: &'static str,
        /// The rejected value, rendered to text (NaN survives formatting, unlike JSON).
        value: String,
        /// Why the value was rejected.
        reason: &'static str,
    },
    /// A required request parameter was missing.
    MissingInput {
        /// Name of the missing parameter.
        field: &'static str,
    },
    /// The request named a regime the model pack does not contain.
    UnknownRegime {
        /// The requested regime name.
        regime: String,
        /// Regimes the pack does contain.
        available: Vec<String>,
    },
    /// The request named a calibration cell the loaded pack set does not contain.
    UnknownCell {
        /// The requested cell name.
        cell: String,
        /// Cells the pack set does contain (empty for a single-pack advisor).
        available: Vec<String>,
    },
    /// The model pack is malformed (bad tables, version mismatch, build failure).
    Pack(String),
}

impl fmt::Display for AdvisorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AdvisorError::InvalidInput {
                field,
                value,
                reason,
            } => {
                write!(f, "invalid `{field}`: {value} ({reason})")
            }
            AdvisorError::MissingInput { field } => {
                write!(f, "request is missing required field `{field}`")
            }
            AdvisorError::UnknownRegime { regime, available } => {
                write!(
                    f,
                    "unknown regime `{regime}` (pack contains: {})",
                    available.join(", ")
                )
            }
            AdvisorError::UnknownCell { cell, available } => {
                if available.is_empty() {
                    write!(
                        f,
                        "unknown cell `{cell}` (no per-cell packs are loaded; \
                         build one with `advise build --per-cell`)"
                    )
                } else {
                    write!(
                        f,
                        "unknown cell `{cell}` (loaded cells: {})",
                        available.join(", ")
                    )
                }
            }
            AdvisorError::Pack(msg) => write!(f, "model pack: {msg}"),
        }
    }
}

impl std::error::Error for AdvisorError {}

impl From<tcp_numerics::NumericsError> for AdvisorError {
    fn from(e: tcp_numerics::NumericsError) -> Self {
        AdvisorError::Pack(e.to_string())
    }
}

/// Advisor result type.
pub type Result<T> = std::result::Result<T, AdvisorError>;

/// Unwraps a required request field.
pub fn require(field: &'static str, value: Option<f64>) -> Result<f64> {
    value.ok_or(AdvisorError::MissingInput { field })
}

/// Validates a finite, non-negative parameter (VM ages). Rejects NaN, ±inf, and
/// negatives with a typed error instead of clamping.
pub fn validate_non_negative(field: &'static str, value: f64) -> Result<f64> {
    if !value.is_finite() {
        return Err(AdvisorError::InvalidInput {
            field,
            value: format!("{value}"),
            reason: "must be a finite number",
        });
    }
    if value < 0.0 {
        return Err(AdvisorError::InvalidInput {
            field,
            value: format!("{value}"),
            reason: "must be non-negative",
        });
    }
    Ok(value)
}

/// Validates a finite, strictly positive parameter (job lengths, checkpoint overheads).
pub fn validate_positive(field: &'static str, value: f64) -> Result<f64> {
    if !value.is_finite() {
        return Err(AdvisorError::InvalidInput {
            field,
            value: format!("{value}"),
            reason: "must be a finite number",
        });
    }
    if value <= 0.0 {
        return Err(AdvisorError::InvalidInput {
            field,
            value: format!("{value}"),
            reason: "must be positive",
        });
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nan_and_negative_are_rejected_with_typed_errors() {
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY, -1.0] {
            let err = validate_non_negative("vm_age", bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    AdvisorError::InvalidInput {
                        field: "vm_age",
                        ..
                    }
                ),
                "{err}"
            );
        }
        for bad in [f64::NAN, f64::INFINITY, -0.5, 0.0] {
            let err = validate_positive("job_len", bad).unwrap_err();
            assert!(
                matches!(
                    err,
                    AdvisorError::InvalidInput {
                        field: "job_len",
                        ..
                    }
                ),
                "{err}"
            );
        }
    }

    #[test]
    fn valid_values_pass_through_unchanged() {
        assert_eq!(validate_non_negative("vm_age", 0.0).unwrap(), 0.0);
        assert_eq!(validate_non_negative("vm_age", 23.5).unwrap(), 23.5);
        assert_eq!(validate_positive("job_len", 6.0).unwrap(), 6.0);
    }

    #[test]
    fn missing_field_is_typed() {
        assert_eq!(require("job_len", Some(2.0)).unwrap(), 2.0);
        let err = require("job_len", None).unwrap_err();
        assert_eq!(err, AdvisorError::MissingInput { field: "job_len" });
        assert!(err.to_string().contains("job_len"));
    }

    #[test]
    fn error_messages_name_the_problem() {
        let err = validate_positive("overhead_minutes", f64::NAN).unwrap_err();
        let msg = err.to_string();
        assert!(
            msg.contains("overhead_minutes") && msg.contains("NaN"),
            "{msg}"
        );
    }
}
