//! `tcp-advisor` — the online preemption-advisory query engine.
//!
//! The paper's bathtub model yields actionable answers — "reuse this aged VM or launch
//! fresh?" (Equation 8), "what checkpoint schedule?" (Section 4.3), "what will this job
//! cost?" — but computing them from scratch means quadrature and dynamic programming per
//! query.  This crate moves that work offline, in three layers:
//!
//! * [`builder`] — precomputes dense grids of survival probability, Equation 8 expected
//!   makespan, conditional job-failure probability, expected cost, and the DP checkpoint
//!   value function for every regime of a sweep spec, packaged as a versioned JSON
//!   [`ModelPack`];
//! * [`engine`] — [`Advisor`], the lock-free query engine: an `Arc`-shared immutable
//!   pack behind monotone-safe linear interpolation
//!   ([`tcp_numerics::interp::LinearInterp`] + bilinear [`table::Table2D`]), answering
//!   typed requests in microseconds, individually or in batches fanned over the
//!   [`tcp_cloudsim::run_tasks`] work-stealing driver;
//! * [`router`] — [`MultiAdvisor`], per-cell routing over a pack set built from a
//!   `calibrate fit` regime catalog (requests carrying a `cell` go to that cell's
//!   pack, the rest fall back to the pooled pack), and [`AdvisorHandle`], the
//!   hot-reload slot behind the `!reload` control line;
//! * [`serve`] — the NDJSON front end behind the `advise` binary (`advise build` /
//!   `gen` / `serve` / `bench`), with a deterministic load generator.
//!
//! Offline sweeps (`tcp-scenarios`) and online advice share one vocabulary: a pack is
//! built *from a sweep spec*, so the regimes you swept yesterday are the regimes you can
//! query today.
//!
//! ```text
//! spec.toml ──sweep──▶ Monte-Carlo reports        (offline, minutes)
//!     │
//!     └───advise build──▶ pack.json ──advise serve──▶ answers (online, microseconds)
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` style comparisons are used deliberately throughout: unlike `x <= 0.0`
// they are false for NaN, which is exactly the validation we want for config values.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod builder;
pub mod engine;
pub mod error;
pub mod pack;
pub mod router;
pub mod serve;
pub mod table;

pub use builder::PackBuilder;
pub use engine::{
    AdviceRequest, AdviceResponse, Advisor, AdvisorStats, Decision, FamilyStats, RequestKind,
    VmPhase,
};
pub use error::{AdvisorError, Result};
pub use pack::{
    CellPackEntry, CheckpointCell, ModelPack, MultiPack, PackSchedule, PolicyCard, RegimePack,
};
pub use router::{AdvisorHandle, MultiAdvisor};
pub use serve::{
    generate_multi_requests, generate_requests, requests_to_ndjson, respond_line, serve_ndjson,
    serve_session, serve_session_with_stats, ControlLine, ErrorLine, Session, StatsLine,
};
pub use table::Table2D;
