//! The online query engine.
//!
//! An [`Advisor`] wraps an immutable, `Arc`-shared [`ModelPack`] with per-regime
//! interpolants rebuilt at load time.  The read path is lock-free: every query touches
//! only shared immutable tables, so any number of threads can serve concurrently; the
//! only mutable state is a set of sharded [`tcp_obs::Counter`]s (pack-scoped query
//! stats behind [`Advisor::stats`]) plus global `advisor.latency.*` histograms in the
//! [`tcp_obs::Registry`], so `!stats` and `!metrics` read the same recording machinery.
//! Batches fan out over the workspace's work-stealing driver
//! ([`tcp_cloudsim::run_tasks`]) and are returned in request order, which makes batch
//! output bit-identical for every thread count.

use crate::error::{require, validate_non_negative, validate_positive, AdvisorError, Result};
use crate::pack::{ModelPack, PackSchedule, PolicyCard, RegimePack};
use crate::table::Table2D;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::Arc;
use std::time::Instant;
use tcp_cloudsim::run_tasks;
use tcp_numerics::interp::LinearInterp;
use tcp_obs::{Counter, Histogram};

/// The kinds of questions the advisor answers.
///
/// Serializes to the kebab-case wire names (`should-reuse`, `checkpoint-plan`,
/// `expected-cost-makespan`, `best-policy`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RequestKind {
    /// "Reuse this aged VM or launch fresh?" (Equation 8, Section 4.2.)
    ShouldReuse,
    /// "What checkpoint schedule should this job use?" (Section 4.3.)
    CheckpointPlan,
    /// "What will this job cost and how long will it take?"
    ExpectedCostMakespan,
    /// "Which policies win in this regime?"
    BestPolicy,
}

impl RequestKind {
    fn index(self) -> usize {
        match self {
            RequestKind::ShouldReuse => 0,
            RequestKind::CheckpointPlan => 1,
            RequestKind::ExpectedCostMakespan => 2,
            RequestKind::BestPolicy => 3,
        }
    }
}

/// Implements kebab-case string (de)serialization for a fieldless enum, so the NDJSON
/// wire format reads `"decision": "launch-fresh"` rather than Rust variant names.  The
/// single variant↔name list also feeds `as_str` and `Display`, so the wire names live
/// in exactly one place per type.
macro_rules! wire_enum {
    ($ty:ident { $($variant:ident => $name:literal),+ $(,)? }) => {
        impl $ty {
            /// The wire name of this value.
            pub fn as_str(self) -> &'static str {
                match self { $($ty::$variant => $name),+ }
            }
        }
        impl serde::Serialize for $ty {
            fn serialize(&self) -> serde::Value {
                serde::Value::Str(self.as_str().to_string())
            }
        }
        impl serde::Deserialize for $ty {
            fn deserialize(value: &serde::Value) -> std::result::Result<Self, serde::Error> {
                let s = value
                    .as_str()
                    .ok_or_else(|| serde::Error::expected("a string", stringify!($ty), value))?;
                match s {
                    $($name => Ok($ty::$variant),)+
                    other => Err(serde::Error::custom(format!(
                        concat!("unknown ", stringify!($ty), " `{}` (expected one of: {})"),
                        other,
                        [$($name),+].join(", ")
                    ))),
                }
            }
        }
        impl std::fmt::Display for $ty {
            fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                f.write_str(self.as_str())
            }
        }
    };
}

wire_enum!(RequestKind {
    ShouldReuse => "should-reuse",
    CheckpointPlan => "checkpoint-plan",
    ExpectedCostMakespan => "expected-cost-makespan",
    BestPolicy => "best-policy",
});

/// One advisory request (one NDJSON line of `advise serve`).
///
/// `kind` selects the question; the remaining fields parameterise it.  Unused fields are
/// ignored, missing required fields produce
/// [`crate::AdvisorError::MissingInput`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdviceRequest {
    /// The question being asked.
    pub kind: RequestKind,
    /// Opaque correlation id, echoed in the response.
    pub id: Option<u64>,
    /// Regime to answer under; defaults to the pack's first regime.
    pub regime: Option<String>,
    /// Calibration cell to route to (`vm-type/zone/time-of-day`).  Interpreted by the
    /// multi-pack router ([`crate::router::MultiAdvisor`]): requests carrying a cell go
    /// to that cell's pack, requests without one fall back to the pooled pack.  A plain
    /// [`Advisor`] ignores the field (its single pack *is* the routing target).
    pub cell: Option<String>,
    /// Age of the candidate VM, hours.
    pub vm_age: Option<f64>,
    /// Uninterrupted job length, hours.
    pub job_len: Option<f64>,
    /// Checkpoint overhead, minutes (selects the closest checkpoint cell).
    pub overhead_minutes: Option<f64>,
}

impl AdviceRequest {
    fn bare(kind: RequestKind) -> Self {
        AdviceRequest {
            kind,
            id: None,
            regime: None,
            cell: None,
            vm_age: None,
            job_len: None,
            overhead_minutes: None,
        }
    }

    /// Tags the request with a calibration cell for multi-pack routing.
    pub fn with_cell(mut self, cell: impl Into<String>) -> Self {
        self.cell = Some(cell.into());
        self
    }

    /// A reuse-or-launch-fresh question.
    pub fn should_reuse(regime: impl Into<String>, vm_age: f64, job_len: f64) -> Self {
        AdviceRequest {
            regime: Some(regime.into()),
            vm_age: Some(vm_age),
            job_len: Some(job_len),
            ..Self::bare(RequestKind::ShouldReuse)
        }
    }

    /// A checkpoint-schedule question for a job of length `job_len` starting at `vm_age`.
    pub fn checkpoint_plan(regime: impl Into<String>, vm_age: f64, job_len: f64) -> Self {
        AdviceRequest {
            regime: Some(regime.into()),
            vm_age: Some(vm_age),
            job_len: Some(job_len),
            ..Self::bare(RequestKind::CheckpointPlan)
        }
    }

    /// A cost/makespan estimate question.
    pub fn expected_cost_makespan(regime: impl Into<String>, vm_age: f64, job_len: f64) -> Self {
        AdviceRequest {
            regime: Some(regime.into()),
            vm_age: Some(vm_age),
            job_len: Some(job_len),
            ..Self::bare(RequestKind::ExpectedCostMakespan)
        }
    }

    /// A best-policy question.
    pub fn best_policy(regime: impl Into<String>) -> Self {
        AdviceRequest {
            regime: Some(regime.into()),
            ..Self::bare(RequestKind::BestPolicy)
        }
    }
}

/// The VM life phase an age falls into (Section 3.2's bathtub walls).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VmPhase {
    /// High early hazard.
    Early,
    /// The stable middle of the bathtub.
    Stable,
    /// Approaching the 24 h reclamation deadline.
    Deadline,
}

wire_enum!(VmPhase {
    Early => "early",
    Stable => "stable",
    Deadline => "deadline",
});

/// A reuse-or-launch decision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Run the job on the existing VM.
    Reuse,
    /// Relinquish the VM and launch a fresh one.
    LaunchFresh,
}

wire_enum!(Decision {
    Reuse => "reuse",
    LaunchFresh => "launch-fresh",
});

/// One advisory response (one NDJSON line of `advise serve`).
///
/// Flat by design: `kind` says which fields are populated, everything else is `null`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AdviceResponse {
    /// Mirrors the request kind.
    pub kind: RequestKind,
    /// Echoed correlation id.
    pub id: Option<u64>,
    /// The regime that answered.
    pub regime: String,
    /// The calibration cell that answered (multi-pack routing only; `null` for answers
    /// from the pooled pack or a single-pack advisor).
    pub cell: Option<String>,
    /// `should-reuse`: the decision.
    pub decision: Option<Decision>,
    /// `should-reuse`: which bathtub phase the queried age falls into.
    pub vm_phase: Option<VmPhase>,
    /// `should-reuse`: expected makespan on the aged VM (absent past the deadline).
    pub reuse_makespan_hours: Option<f64>,
    /// `should-reuse`: expected makespan on a fresh VM.
    pub fresh_makespan_hours: Option<f64>,
    /// `checkpoint-plan` / `expected-cost-makespan`: expected makespan at the query point.
    pub expected_makespan_hours: Option<f64>,
    /// `expected-cost-makespan`: probability the job is interrupted before finishing.
    pub failure_probability: Option<f64>,
    /// `expected-cost-makespan`: VM survival probability at the queried age.
    pub survival_probability: Option<f64>,
    /// `expected-cost-makespan`: expected preemptible cost of the job, USD.
    pub expected_cost_usd: Option<f64>,
    /// `expected-cost-makespan`: on-demand comparison cost (no preemptions), USD.
    pub on_demand_cost_usd: Option<f64>,
    /// `checkpoint-plan`: checkpoint cost of the cell that answered, minutes.
    pub checkpoint_cost_minutes: Option<f64>,
    /// `checkpoint-plan`: work before each checkpoint, hours (fresh-VM schedule of the
    /// nearest tabulated job length).
    pub intervals_hours: Option<Vec<f64>>,
    /// `checkpoint-plan`: number of checkpoints in the schedule.
    pub checkpoint_count: Option<usize>,
    /// `best-policy`: recommended scheduling policy.
    pub scheduling: Option<String>,
    /// `best-policy`: recommended checkpointing policy.
    pub checkpointing: Option<String>,
    /// `best-policy`: the full precomputed ranking card.
    pub card: Option<PolicyCard>,
}

impl AdviceResponse {
    fn bare(kind: RequestKind, id: Option<u64>, regime: &str) -> Self {
        AdviceResponse {
            kind,
            id,
            regime: regime.to_string(),
            cell: None,
            decision: None,
            vm_phase: None,
            reuse_makespan_hours: None,
            fresh_makespan_hours: None,
            expected_makespan_hours: None,
            failure_probability: None,
            survival_probability: None,
            expected_cost_usd: None,
            on_demand_cost_usd: None,
            checkpoint_cost_minutes: None,
            intervals_hours: None,
            checkpoint_count: None,
            scheduling: None,
            checkpointing: None,
            card: None,
        }
    }
}

/// Runtime interpolants for one regime.
struct RegimeEngine {
    horizon: f64,
    survival: LinearInterp,
    first_moment: LinearInterp,
    checkpoints: Vec<CheckpointEngine>,
}

impl RegimeEngine {
    /// Equation 8 from the tabulated first moment:
    /// `E[T_s] = T + W(min(s+T, L)) − W(s)`.
    ///
    /// The `min` resolves the deadline kink exactly — jobs that would cross the horizon
    /// pay the full remaining preemption mass and then grow linearly in `T`, which is
    /// what the closed form does too.
    fn makespan(&self, vm_age: f64, job_len: f64) -> f64 {
        let s = vm_age.min(self.horizon);
        let u = (vm_age + job_len).min(self.horizon);
        job_len + self.first_moment.eval(u) - self.first_moment.eval(s)
    }

    /// Conditional job-failure probability from the tabulated survival curve:
    /// `1 − S(s+T)/S(s)`, with jobs crossing the deadline failing with certainty.
    fn failure_probability(&self, vm_age: f64, job_len: f64) -> f64 {
        if vm_age + job_len >= self.horizon {
            return 1.0;
        }
        let alive = self.survival.eval(vm_age);
        if alive <= 1e-12 {
            return 1.0;
        }
        ((alive - self.survival.eval(vm_age + job_len)) / alive).clamp(0.0, 1.0)
    }
}

struct CheckpointEngine {
    cost_minutes: f64,
    expected: Table2D,
    job_lens: Vec<f64>,
    schedules: Vec<PackSchedule>,
}

/// The model families tracked by the per-family serving counters; anything new lands
/// in the trailing `other` bucket until it gets a slot of its own.
const FAMILIES: [&str; 7] = [
    "bathtub",
    "weibull",
    "exponential",
    "phased",
    "empirical",
    "mixture",
    "other",
];

fn family_index(family: &str) -> usize {
    FAMILIES
        .iter()
        .position(|f| *f == family)
        .unwrap_or(FAMILIES.len() - 1)
}

/// Pack-scoped query counters, one sharded [`Counter`] per request kind and family.
///
/// These belong to the [`Advisor`] instance (they reset when a `!reload` swaps the
/// pack in), while the latency histograms live in the global [`tcp_obs::Registry`]
/// (process lifetime): the two surfaces share the same sharded recording machinery
/// from `tcp-obs`, so `!stats` and `!metrics` cannot drift apart.
struct AdvisorCounters {
    kinds: [Counter; 4],
    /// Queries answered per served curve family (`served_family` of the regime).
    served: [Counter; FAMILIES.len()],
    /// Queries answered per DP-table family (`dp_family` of the regime).
    dp: [Counter; FAMILIES.len()],
}

impl AdvisorCounters {
    fn new() -> Self {
        AdvisorCounters {
            kinds: std::array::from_fn(|_| Counter::new()),
            served: std::array::from_fn(|_| Counter::new()),
            dp: std::array::from_fn(|_| Counter::new()),
        }
    }
}

/// Aggregated serving statistics.
///
/// Field order is alphabetical on purpose: derived serialization emits fields in
/// declaration order, and the `!stats` wire contract promises deterministically
/// sorted JSON keys.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AdvisorStats {
    /// `best-policy` queries answered.
    pub best_policy: u64,
    /// `checkpoint-plan` queries answered.
    pub checkpoint_plan: u64,
    /// `expected-cost-makespan` queries answered.
    pub expected_cost_makespan: u64,
    /// `should-reuse` queries answered.
    pub should_reuse: u64,
}

impl AdvisorStats {
    /// Total queries answered.
    pub fn total(&self) -> u64 {
        self.should_reuse + self.checkpoint_plan + self.expected_cost_makespan + self.best_policy
    }
}

/// Per-family serving counters: how many queries each model family actually answered,
/// keyed by the answering regime's `served_family` (the Equation 8 curves) and
/// `dp_family` (the checkpoint tables / policy card).  Only families with non-zero
/// counts appear, in sorted order — the `!stats` histogram operators read to see which
/// models a pack is really serving.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct FamilyStats {
    /// Queries per DP-table family.  (Fields are declared alphabetically so derived
    /// serialization emits sorted keys, matching the `!stats` contract.)
    pub dp: BTreeMap<String, u64>,
    /// Queries per served curve family.
    pub served: BTreeMap<String, u64>,
}

impl FamilyStats {
    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &FamilyStats) {
        for (family, count) in &other.served {
            *self.served.entry(family.clone()).or_default() += count;
        }
        for (family, count) in &other.dp {
            *self.dp.entry(family.clone()).or_default() += count;
        }
    }
}

/// The online advisory query engine.
pub struct Advisor {
    pack: Arc<ModelPack>,
    engines: Vec<RegimeEngine>,
    /// Per-regime `(served_family, dp_family)` counter slots, resolved at load time so
    /// the nanosecond record path indexes fixed arrays instead of hashing strings.
    families: Vec<(usize, usize)>,
    counters: AdvisorCounters,
    /// Global per-kind latency histograms (`advisor.latency.*`), resolved from the
    /// registry once at load time.
    latency: [&'static Histogram; 4],
    /// Per-kind trace sites (`advisor.lookup.*`), interned once at load time so the
    /// per-query span carries no string hashing — these are the *warm* table-lookup
    /// spans, in contrast to the builder's cold `advisor.build.dp` spans.
    trace_sites: [u32; 4],
}

impl Advisor {
    /// Builds an advisor from a model pack, rebuilding the fast interpolants.
    pub fn new(pack: ModelPack) -> Result<Self> {
        pack.validate()?;
        let engines = pack
            .regimes
            .iter()
            .map(RegimeEngine::new)
            .collect::<Result<Vec<_>>>()?;
        let families = pack
            .regimes
            .iter()
            .map(|r| (family_index(&r.served_family), family_index(&r.dp_family)))
            .collect();
        Ok(Advisor {
            pack: Arc::new(pack),
            engines,
            families,
            counters: AdvisorCounters::new(),
            latency: [
                tcp_obs::histogram("advisor.latency.should_reuse"),
                tcp_obs::histogram("advisor.latency.checkpoint_plan"),
                tcp_obs::histogram("advisor.latency.expected_cost_makespan"),
                tcp_obs::histogram("advisor.latency.best_policy"),
            ],
            trace_sites: [
                tcp_obs::trace::site_id("advisor.lookup.should_reuse"),
                tcp_obs::trace::site_id("advisor.lookup.checkpoint_plan"),
                tcp_obs::trace::site_id("advisor.lookup.expected_cost_makespan"),
                tcp_obs::trace::site_id("advisor.lookup.best_policy"),
            ],
        })
    }

    /// Loads an advisor straight from pack JSON.
    pub fn from_json(text: &str) -> Result<Self> {
        Advisor::new(ModelPack::from_json(text)?)
    }

    /// The underlying pack.
    pub fn pack(&self) -> &ModelPack {
        &self.pack
    }

    /// Aggregated query counters across all statistics shards.
    pub fn stats(&self) -> AdvisorStats {
        AdvisorStats {
            best_policy: self.counters.kinds[RequestKind::BestPolicy.index()].get(),
            checkpoint_plan: self.counters.kinds[RequestKind::CheckpointPlan.index()].get(),
            expected_cost_makespan: self.counters.kinds[RequestKind::ExpectedCostMakespan.index()]
                .get(),
            should_reuse: self.counters.kinds[RequestKind::ShouldReuse.index()].get(),
        }
    }

    /// Per-family query counters across all statistics shards (non-zero entries only).
    pub fn family_stats(&self) -> FamilyStats {
        let mut out = FamilyStats::default();
        for (i, family) in FAMILIES.iter().enumerate() {
            let served = self.counters.served[i].get();
            let dp = self.counters.dp[i].get();
            if served > 0 {
                out.served.insert(family.to_string(), served);
            }
            if dp > 0 {
                out.dp.insert(family.to_string(), dp);
            }
        }
        out
    }

    fn record(&self, kind: RequestKind, regime_index: usize, started: Instant) {
        // Counters scatter across cache-line-padded shards inside `tcp_obs::Counter`
        // (the shard is a pure per-thread function) — record() sits on the nanosecond
        // path and must never contend.
        self.counters.kinds[kind.index()].incr();
        let (served, dp) = self.families[regime_index];
        self.counters.served[served].incr();
        self.counters.dp[dp].incr();
        // Latency lands in the global registry, subject to the process-wide
        // `tcp_obs::set_enabled` gate.
        self.latency[kind.index()].record_duration(started.elapsed());
    }

    fn resolve_regime(&self, requested: Option<&str>) -> Result<usize> {
        match requested {
            None => Ok(0),
            Some(name) => self
                .pack
                .regimes
                .iter()
                .position(|r| r.name == name)
                .ok_or_else(|| AdvisorError::UnknownRegime {
                    regime: name.to_string(),
                    available: self.pack.regime_names(),
                }),
        }
    }

    /// Answers one request.
    pub fn advise(&self, request: &AdviceRequest) -> Result<AdviceResponse> {
        // lint:allow(determinism) latency metric only: `started` feeds the query-stats histogram, never a response field
        let started = Instant::now();
        // The per-kind warm-lookup span (inert unless this thread is tracing a
        // request); the site id is pre-interned so this is pointer work only.
        let _span = tcp_obs::trace::Span::enter(self.trace_sites[request.kind.index()], 0);
        let index = self.resolve_regime(request.regime.as_deref())?;
        let regime = &self.pack.regimes[index];
        let engine = &self.engines[index];
        let response = match request.kind {
            RequestKind::ShouldReuse => Self::should_reuse(regime, engine, request),
            RequestKind::CheckpointPlan => Self::checkpoint_plan(regime, engine, request),
            RequestKind::ExpectedCostMakespan => Self::cost_makespan(regime, engine, request),
            RequestKind::BestPolicy => Ok(Self::best_policy(regime, request)),
        }?;
        // Count (and time) only successfully answered queries, after validation: every
        // error class (parse, unknown regime, invalid input) is excluded uniformly, so
        // the serving counters and latency histograms mean one thing.
        self.record(request.kind, index, started);
        Ok(response)
    }

    /// Answers a batch of requests over `threads` worker threads (`0` = all CPUs),
    /// returning responses in request order — bit-identical for every thread count.
    pub fn advise_batch(
        &self,
        requests: &[AdviceRequest],
        threads: usize,
    ) -> Vec<Result<AdviceResponse>> {
        run_tasks(requests.len(), threads, |i| self.advise(&requests[i]))
    }

    fn phase_of(regime: &RegimePack, age: f64) -> VmPhase {
        if age < regime.phase_early_end_hours {
            VmPhase::Early
        } else if age < regime.phase_deadline_start_hours {
            VmPhase::Stable
        } else {
            VmPhase::Deadline
        }
    }

    fn should_reuse(
        regime: &RegimePack,
        engine: &RegimeEngine,
        request: &AdviceRequest,
    ) -> Result<AdviceResponse> {
        let vm_age = validate_non_negative("vm_age", require("vm_age", request.vm_age)?)?;
        let job_len = validate_positive("job_len", require("job_len", request.job_len)?)?;
        let mut response = AdviceResponse::bare(request.kind, request.id, &regime.name);
        let fresh = engine.makespan(0.0, job_len);
        response.fresh_makespan_hours = Some(fresh);
        response.vm_phase = Some(Self::phase_of(regime, vm_age));
        if vm_age >= regime.horizon_hours {
            // A VM at (or past) the reclamation deadline cannot run anything.
            response.decision = Some(Decision::LaunchFresh);
            return Ok(response);
        }
        let reuse = engine.makespan(vm_age, job_len);
        response.reuse_makespan_hours = Some(reuse);
        response.decision = Some(if reuse <= fresh {
            Decision::Reuse
        } else {
            Decision::LaunchFresh
        });
        Ok(response)
    }

    fn checkpoint_plan(
        regime: &RegimePack,
        engine: &RegimeEngine,
        request: &AdviceRequest,
    ) -> Result<AdviceResponse> {
        let job_len = validate_positive("job_len", require("job_len", request.job_len)?)?;
        let vm_age = match request.vm_age {
            Some(age) => validate_non_negative("vm_age", age)?,
            None => 0.0,
        };
        let cell = match request.overhead_minutes {
            Some(overhead) => {
                let overhead = validate_positive("overhead_minutes", overhead)?;
                engine
                    .checkpoints
                    .iter()
                    .min_by(|a, b| {
                        let da = (a.cost_minutes - overhead).abs();
                        let db = (b.cost_minutes - overhead).abs();
                        da.total_cmp(&db)
                            .then(a.cost_minutes.total_cmp(&b.cost_minutes))
                    })
                    .ok_or_else(|| {
                        AdvisorError::Pack("pack regime carries no checkpoint cells".to_string())
                    })?
            }
            None => engine.checkpoints.first().ok_or_else(|| {
                AdvisorError::Pack("pack regime carries no checkpoint cells".to_string())
            })?,
        };
        // Nearest tabulated job length carries the concrete fresh-VM schedule; ties
        // resolve toward the shorter job for determinism.
        let nearest = cell
            .job_lens
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| {
                let da = (*a - job_len).abs();
                let db = (*b - job_len).abs();
                da.total_cmp(&db).then(a.total_cmp(b))
            })
            .map(|(i, _)| i)
            .ok_or_else(|| {
                AdvisorError::Pack("checkpoint cell carries an empty job grid".to_string())
            })?;
        let schedule = &cell.schedules[nearest];
        let mut response = AdviceResponse::bare(request.kind, request.id, &regime.name);
        response.checkpoint_cost_minutes = Some(cell.cost_minutes);
        response.expected_makespan_hours = Some(cell.expected.eval(vm_age, job_len));
        response.intervals_hours = Some(schedule.intervals_hours.clone());
        response.checkpoint_count = Some(schedule.intervals_hours.len());
        Ok(response)
    }

    fn cost_makespan(
        regime: &RegimePack,
        engine: &RegimeEngine,
        request: &AdviceRequest,
    ) -> Result<AdviceResponse> {
        let vm_age = validate_non_negative("vm_age", require("vm_age", request.vm_age)?)?;
        let job_len = validate_positive("job_len", require("job_len", request.job_len)?)?;
        let vcpus = regime.vcpus as f64;
        let mut response = AdviceResponse::bare(request.kind, request.id, &regime.name);
        response.failure_probability = Some(engine.failure_probability(vm_age, job_len));
        response.survival_probability = Some(engine.survival.eval(vm_age));
        response.on_demand_cost_usd = Some(regime.on_demand_per_vcpu_hour * vcpus * job_len);
        // A VM at (or past) the reclamation deadline cannot run anything: no finite
        // makespan or preemptible cost exists, matching should_reuse's treatment.
        if vm_age < regime.horizon_hours {
            let makespan = engine.makespan(vm_age, job_len);
            response.expected_makespan_hours = Some(makespan);
            response.expected_cost_usd = Some(regime.preemptible_per_vcpu_hour * vcpus * makespan);
        }
        Ok(response)
    }

    fn best_policy(regime: &RegimePack, request: &AdviceRequest) -> AdviceResponse {
        let mut response = AdviceResponse::bare(request.kind, request.id, &regime.name);
        response.scheduling = Some(regime.policy_card.recommended_scheduling.clone());
        response.checkpointing = Some(regime.policy_card.recommended_checkpointing.clone());
        response.card = Some(regime.policy_card.clone());
        response
    }
}

impl RegimeEngine {
    fn new(regime: &RegimePack) -> Result<Self> {
        let survival = LinearInterp::new(regime.ages.clone(), regime.survival.clone())
            .map_err(|e| AdvisorError::Pack(format!("regime `{}`: {e}", regime.name)))?;
        let first_moment = LinearInterp::new(regime.ages.clone(), regime.first_moment.clone())
            .map_err(|e| AdvisorError::Pack(format!("regime `{}`: {e}", regime.name)))?;
        let checkpoints = regime
            .checkpoint_cells
            .iter()
            .map(|cell| {
                Ok(CheckpointEngine {
                    cost_minutes: cell.checkpoint_cost_minutes,
                    expected: Table2D::new(
                        cell.ages.clone(),
                        cell.job_lens.clone(),
                        cell.expected_makespan.clone(),
                    )?,
                    job_lens: cell.job_lens.clone(),
                    schedules: cell.schedules.clone(),
                })
            })
            .collect::<Result<Vec<_>>>()?;
        Ok(RegimeEngine {
            horizon: regime.horizon_hours,
            survival,
            first_moment,
            checkpoints,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::{tiny_builder, tiny_spec};

    fn advisor() -> Advisor {
        Advisor::new(tiny_builder().build_from_spec(&tiny_spec()).unwrap()).unwrap()
    }

    #[test]
    fn should_reuse_matches_the_scheduling_policy() {
        let a = advisor();
        // Stable mid-life VM: reuse (Figure 5's story).
        let r = a
            .advise(&AdviceRequest::should_reuse("gcp-day", 8.0, 6.0))
            .unwrap();
        assert_eq!(r.decision, Some(Decision::Reuse));
        assert_eq!(r.vm_phase, Some(VmPhase::Stable));
        assert!(r.reuse_makespan_hours.unwrap() <= r.fresh_makespan_hours.unwrap());
        // Near the deadline: launch fresh.
        let r = a
            .advise(&AdviceRequest::should_reuse("gcp-day", 21.0, 6.0))
            .unwrap();
        assert_eq!(r.decision, Some(Decision::LaunchFresh));
        // Past the deadline: launch fresh with no reuse estimate.
        let r = a
            .advise(&AdviceRequest::should_reuse("gcp-day", 30.0, 6.0))
            .unwrap();
        assert_eq!(r.decision, Some(Decision::LaunchFresh));
        assert_eq!(r.reuse_makespan_hours, None);
    }

    #[test]
    fn invalid_inputs_are_rejected_not_clamped() {
        let a = advisor();
        for request in [
            AdviceRequest::should_reuse("gcp-day", f64::NAN, 6.0),
            AdviceRequest::should_reuse("gcp-day", -1.0, 6.0),
            AdviceRequest::should_reuse("gcp-day", 3.0, -6.0),
            AdviceRequest::should_reuse("gcp-day", 3.0, f64::INFINITY),
            AdviceRequest::checkpoint_plan("gcp-day", 0.0, f64::NAN),
            AdviceRequest::expected_cost_makespan("gcp-day", 3.0, 0.0),
        ] {
            let err = a.advise(&request).unwrap_err();
            assert!(
                matches!(err, AdvisorError::InvalidInput { .. }),
                "{request:?} -> {err}"
            );
        }
        let mut bad_overhead = AdviceRequest::checkpoint_plan("gcp-day", 0.0, 4.0);
        bad_overhead.overhead_minutes = Some(-2.0);
        assert!(matches!(
            a.advise(&bad_overhead).unwrap_err(),
            AdvisorError::InvalidInput {
                field: "overhead_minutes",
                ..
            }
        ));
        // Rejected queries are not counted as served.
        assert_eq!(a.stats().total(), 0);
    }

    #[test]
    fn missing_required_fields_are_typed_errors() {
        let a = advisor();
        let req = AdviceRequest::bare(RequestKind::ShouldReuse);
        assert!(matches!(
            a.advise(&req).unwrap_err(),
            AdvisorError::MissingInput { field: "vm_age" }
        ));
    }

    #[test]
    fn unknown_regime_lists_available() {
        let a = advisor();
        let err = a
            .advise(&AdviceRequest::best_policy("mars-east1"))
            .unwrap_err();
        match err {
            AdvisorError::UnknownRegime { regime, available } => {
                assert_eq!(regime, "mars-east1");
                assert_eq!(available, vec!["gcp-day", "exp8"]);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn default_regime_is_the_packs_first() {
        let a = advisor();
        let mut req = AdviceRequest::bare(RequestKind::BestPolicy);
        req.regime = None;
        let r = a.advise(&req).unwrap();
        assert_eq!(r.regime, "gcp-day");
    }

    #[test]
    fn checkpoint_plan_selects_the_nearest_overhead_cell() {
        let a = advisor();
        let mut req = AdviceRequest::checkpoint_plan("gcp-day", 0.0, 4.0);
        req.overhead_minutes = Some(4.2);
        let r = a.advise(&req).unwrap();
        assert_eq!(r.checkpoint_cost_minutes, Some(5.0));
        req.overhead_minutes = Some(1.4);
        let r = a.advise(&req).unwrap();
        assert_eq!(r.checkpoint_cost_minutes, Some(1.0));
        assert!(r.checkpoint_count.unwrap() >= 1);
        let total: f64 = r.intervals_hours.unwrap().iter().sum();
        assert!(total > 0.0);
    }

    #[test]
    fn cost_makespan_reports_the_five_x_story() {
        let a = advisor();
        let r = a
            .advise(&AdviceRequest::expected_cost_makespan("gcp-day", 8.0, 4.0))
            .unwrap();
        let expected = r.expected_cost_usd.unwrap();
        let on_demand = r.on_demand_cost_usd.unwrap();
        // Preemptible at ~5x discount beats on-demand even with preemption overhead.
        assert!(expected < on_demand, "{expected} vs {on_demand}");
        let p = r.failure_probability.unwrap();
        assert!((0.0..=1.0).contains(&p));
        let s = r.survival_probability.unwrap();
        assert!((0.0..=1.0).contains(&s));
    }

    #[test]
    fn batch_is_order_preserving_and_thread_invariant() {
        let a = advisor();
        let requests: Vec<AdviceRequest> = (0..200)
            .map(|i| {
                let age = (i % 24) as f64;
                let job = 1.0 + (i % 8) as f64;
                let regime = if i % 2 == 0 { "gcp-day" } else { "exp8" };
                let mut req = match i % 4 {
                    0 => AdviceRequest::should_reuse(regime, age, job),
                    1 => AdviceRequest::checkpoint_plan(regime, age, job),
                    2 => AdviceRequest::expected_cost_makespan(regime, age, job),
                    _ => AdviceRequest::best_policy(regime),
                };
                req.id = Some(i as u64);
                req
            })
            .collect();
        let one = a.advise_batch(&requests, 1);
        let many = a.advise_batch(&requests, 4);
        assert_eq!(one, many);
        for (i, r) in one.iter().enumerate() {
            assert_eq!(r.as_ref().unwrap().id, Some(i as u64));
        }
    }

    #[test]
    fn stats_count_served_queries_across_threads() {
        let a = advisor();
        assert_eq!(a.stats().total(), 0);
        let requests: Vec<AdviceRequest> = (0..64)
            .map(|_| AdviceRequest::should_reuse("gcp-day", 5.0, 4.0))
            .collect();
        a.advise_batch(&requests, 4);
        let stats = a.stats();
        assert_eq!(stats.should_reuse, 64);
        assert_eq!(stats.total(), 64);
    }
}
