//! `advise` — build and serve preemption-advisory model packs.
//!
//! ```text
//! advise build <spec.toml|spec.json> --out pack.json [resolution knobs]
//! advise gen   --pack pack.json --count N [--seed S] [--out requests.ndjson]
//! advise serve --pack pack.json --input requests.ndjson [--output FILE] [--threads N]
//! advise bench --pack pack.json [--requests N] [--threads N] [--seed S]
//! ```
//!
//! `build` precomputes the tables offline; `serve` answers an NDJSON request stream with
//! byte-identical output for every `--threads` value; `gen` emits a deterministic load;
//! `bench` reports throughput and latency percentiles of the serving path.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tcp_advisor::{
    generate_requests, requests_to_ndjson, serve_ndjson, Advisor, ModelPack, PackBuilder,
};
use tcp_scenarios::SweepSpec;

const USAGE: &str = "usage: advise <command> [options]

commands:
  build <spec.toml|spec.json>  precompute a model pack from a sweep spec
      --out FILE                 pack output path (default pack.json)
      --age-points N             age-grid resolution (default 1441, one knot per minute)
      --checkpoint-age-points N  DP age-grid resolution (default 9)
      --checkpoint-job-points N  DP job-grid resolution (default 10)
      --max-checkpoint-job H     largest DP job length, hours (default 8)

  gen                          generate a deterministic NDJSON request load
      --pack FILE                model pack (required)
      --count N                  number of requests (default 10000)
      --seed S                   generator seed (default 2020)
      --out FILE                 output path (default stdout)

  serve                        answer an NDJSON request stream
      --pack FILE                model pack (required)
      --input FILE               NDJSON requests (required)
      --output FILE              NDJSON responses (default stdout)
      --threads N                worker threads (default 0 = all CPUs)

  bench                        measure serving throughput and latency
      --pack FILE                model pack (required)
      --requests N               batch size (default 100000)
      --threads N                worker threads for throughput (default 0)
      --seed S                   load-generator seed (default 2020)";

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {flag} value `{v}`"))
}

fn load_advisor(pack_path: &Option<PathBuf>) -> Result<Advisor, String> {
    let path = pack_path.as_ref().ok_or("--pack is required")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Advisor::from_json(&text).map_err(|e| e.to_string())
}

fn cmd_build(argv: &[String]) -> Result<(), String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut out = PathBuf::from("pack.json");
    let mut builder = PackBuilder::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(next_value(&mut it, "--out")?),
            "--age-points" => builder.age_points = parse(next_value(&mut it, arg)?, arg)?,
            "--checkpoint-age-points" => {
                builder.checkpoint_age_points = parse(next_value(&mut it, arg)?, arg)?
            }
            "--checkpoint-job-points" => {
                builder.checkpoint_job_points = parse(next_value(&mut it, arg)?, arg)?
            }
            "--max-checkpoint-job" => {
                builder.max_checkpoint_job_hours = parse(next_value(&mut it, arg)?, arg)?
            }
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if spec_path.is_some() {
                    return Err(format!("unexpected extra argument `{other}`"));
                }
                spec_path = Some(PathBuf::from(other));
            }
        }
    }
    let spec_path = spec_path.ok_or("build needs a sweep spec file")?;
    let spec = SweepSpec::from_path(&spec_path).map_err(|e| e.to_string())?;
    let started = Instant::now();
    let pack = builder.build_from_spec(&spec).map_err(|e| e.to_string())?;
    let json = pack.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "built pack `{}`: {} regimes, {} bytes, {:.2}s -> {}",
        pack.name,
        pack.regimes.len(),
        json.len(),
        started.elapsed().as_secs_f64(),
        out.display()
    );
    Ok(())
}

struct IoArgs {
    pack: Option<PathBuf>,
    input: Option<PathBuf>,
    output: Option<PathBuf>,
    count: usize,
    requests: usize,
    threads: usize,
    seed: u64,
}

fn parse_io_args(argv: &[String]) -> Result<IoArgs, String> {
    let mut args = IoArgs {
        pack: None,
        input: None,
        output: None,
        count: 10_000,
        requests: 100_000,
        threads: 0,
        seed: 2020,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pack" => args.pack = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--input" => args.input = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--output" | "--out" => args.output = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--count" => args.count = parse(next_value(&mut it, arg)?, arg)?,
            "--requests" => args.requests = parse(next_value(&mut it, arg)?, arg)?,
            "--threads" => args.threads = parse(next_value(&mut it, arg)?, arg)?,
            "--seed" => args.seed = parse(next_value(&mut it, arg)?, arg)?,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn write_or_print(output: &Option<PathBuf>, text: &str) -> Result<(), String> {
    match output {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_gen(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    let path = args.pack.as_ref().ok_or("--pack is required")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let pack = ModelPack::from_json(&text).map_err(|e| e.to_string())?;
    let requests = generate_requests(&pack, args.count, args.seed);
    write_or_print(&args.output, &requests_to_ndjson(&requests))
}

fn cmd_serve(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    let advisor = load_advisor(&args.pack)?;
    let input_path = args.input.as_ref().ok_or("--input is required")?;
    let input = std::fs::read_to_string(input_path)
        .map_err(|e| format!("cannot read {}: {e}", input_path.display()))?;
    let started = Instant::now();
    let output = serve_ndjson(&advisor, &input, args.threads);
    let elapsed = started.elapsed().as_secs_f64();
    write_or_print(&args.output, &output)?;
    let stats = advisor.stats();
    eprintln!(
        "served {} queries in {elapsed:.3}s ({:.0} q/s; {} reuse, {} plan, {} cost, {} policy)",
        stats.total(),
        stats.total() as f64 / elapsed.max(1e-9),
        stats.should_reuse,
        stats.checkpoint_plan,
        stats.expected_cost_makespan,
        stats.best_policy,
    );
    Ok(())
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn cmd_bench(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    let advisor = load_advisor(&args.pack)?;
    let requests = generate_requests(advisor.pack(), args.requests, args.seed);

    // Throughput: one big batch over the worker pool.
    let started = Instant::now();
    let responses = advisor.advise_batch(&requests, args.threads);
    let elapsed = started.elapsed().as_secs_f64();
    let failures = responses.iter().filter(|r| r.is_err()).count();

    // Latency: per-query timing on one thread (no batching overhead in the numbers).
    let sample = &requests[..requests.len().min(20_000)];
    let mut latencies = Vec::with_capacity(sample.len());
    for request in sample {
        let t0 = Instant::now();
        let _ = advisor.advise(request);
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    println!(
        "batch: {} queries in {elapsed:.3}s -> {:.0} queries/sec ({failures} failures)",
        requests.len(),
        requests.len() as f64 / elapsed.max(1e-9),
    );
    println!(
        "latency (single-thread, {} samples): p50 {:.2}us  p90 {:.2}us  p99 {:.2}us  max {:.2}us",
        latencies.len(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        percentile(&latencies, 1.0),
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match argv.first().map(String::as_str) {
        Some("build") => cmd_build(&argv[1..]),
        Some("gen") => cmd_gen(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("bench") => cmd_bench(&argv[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
