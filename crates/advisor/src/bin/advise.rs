//! `advise` — build and serve preemption-advisory model packs.
//!
//! ```text
//! advise build <spec.toml|spec.json> --out pack.json [resolution knobs]
//! advise build --per-cell --catalog catalog.json --out multi.json [knobs]
//! advise gen   --pack pack.json --count N [--seed S] [--out requests.ndjson]
//! advise serve --pack pack.json --input requests.ndjson [--output FILE] [--threads N]
//! advise bench --pack pack.json [--requests N] [--threads N] [--seed S]
//! ```
//!
//! `build` precomputes the tables offline — from a sweep spec (single pack) or, with
//! `--per-cell`, from a `calibrate fit` regime catalog (a multi-pack: pooled fallback
//! plus one pack per calibration cell, routed by the requests' `cell` field); `serve`
//! answers an NDJSON request stream with byte-identical output for every `--threads`
//! value, honouring `!reload <path>` control lines via a lock-free `Arc` swap; `gen`
//! emits a deterministic load; `bench` reports throughput and latency percentiles of
//! the serving path.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;
use tcp_advisor::{
    generate_requests, requests_to_ndjson, serve_session_with_stats, AdvisorHandle, ModelPack,
    MultiAdvisor, MultiPack, PackBuilder,
};
use tcp_calibrate::RegimeCatalog;
use tcp_scenarios::SweepSpec;

const USAGE: &str = "usage: advise <command> [options]

commands:
  build <spec.toml|spec.json>  precompute a model pack from a sweep spec
      --out FILE                 pack output path (default pack.json)
      --age-points N             age-grid resolution (default 1441, one knot per minute)
      --checkpoint-age-points N  DP age-grid resolution (default 9)
      --checkpoint-job-points N  DP job-grid resolution (default 10)
      --max-checkpoint-job H     largest DP job length, hours (default 8)
      --per-cell                 build a per-cell multi-pack from a regime catalog
      --catalog FILE             `calibrate fit` catalog (required with --per-cell)
      --checkpoint-cost M        checkpoint cost axis, minutes (repeatable; default 1)
      --dp-step M                DP step, minutes (default 5)
      --threads T                worker threads for --per-cell builds (default 0)

  gen                          generate a deterministic NDJSON request load
      --pack FILE                model pack (required)
      --count N                  number of requests (default 10000)
      --seed S                   generator seed (default 2020)
      --out FILE                 output path (default stdout)

  serve                        answer an NDJSON request stream
      --pack FILE                model pack (required)
      --input FILE               NDJSON requests (required)
      --output FILE              NDJSON responses (default stdout)
      --threads N                worker threads (default 0 = all CPUs)

  bench                        measure serving throughput and latency
      --pack FILE                model pack (required)
      --requests N               batch size (default 100000)
      --threads N                worker threads for throughput (default 0)
      --seed S                   load-generator seed (default 2020)";

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {flag} value `{v}`"))
}

fn load_advisor(pack_path: &Option<PathBuf>) -> Result<MultiAdvisor, String> {
    let path = pack_path.as_ref().ok_or("--pack is required")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    MultiAdvisor::from_json(&text).map_err(|e| e.to_string())
}

fn cmd_build(argv: &[String]) -> Result<(), String> {
    let mut spec_path: Option<PathBuf> = None;
    let mut catalog_path: Option<PathBuf> = None;
    let mut per_cell = false;
    let mut out = PathBuf::from("pack.json");
    let mut builder = PackBuilder::default();
    let mut checkpoint_costs: Vec<f64> = Vec::new();
    let mut dp_step_minutes = 5.0f64;
    let mut threads = 0usize;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(next_value(&mut it, "--out")?),
            "--age-points" => builder.age_points = parse(next_value(&mut it, arg)?, arg)?,
            "--checkpoint-age-points" => {
                builder.checkpoint_age_points = parse(next_value(&mut it, arg)?, arg)?
            }
            "--checkpoint-job-points" => {
                builder.checkpoint_job_points = parse(next_value(&mut it, arg)?, arg)?
            }
            "--max-checkpoint-job" => {
                builder.max_checkpoint_job_hours = parse(next_value(&mut it, arg)?, arg)?
            }
            "--per-cell" => per_cell = true,
            "--catalog" => catalog_path = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--checkpoint-cost" => checkpoint_costs.push(parse(next_value(&mut it, arg)?, arg)?),
            "--dp-step" => dp_step_minutes = parse(next_value(&mut it, arg)?, arg)?,
            "--threads" => threads = parse(next_value(&mut it, arg)?, arg)?,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if spec_path.is_some() {
                    return Err(format!("unexpected extra argument `{other}`"));
                }
                spec_path = Some(PathBuf::from(other));
            }
        }
    }
    let started = Instant::now();
    if per_cell {
        let catalog_path = catalog_path.ok_or("--per-cell needs --catalog <catalog.json>")?;
        if spec_path.is_some() {
            return Err("--per-cell builds from a catalog, not a sweep spec".to_string());
        }
        let catalog = RegimeCatalog::load(&catalog_path).map_err(|e| e.to_string())?;
        if checkpoint_costs.is_empty() {
            checkpoint_costs.push(1.0);
        }
        let multi = builder
            .build_from_catalog(&catalog, &checkpoint_costs, dp_step_minutes, threads)
            .map_err(|e| e.to_string())?;
        let json = multi.to_json().map_err(|e| e.to_string())?;
        std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
        println!(
            "built multi-pack `{}`: pooled + {} cell packs, {} bytes, {:.2}s -> {}",
            multi.name,
            multi.cells.len(),
            json.len(),
            started.elapsed().as_secs_f64(),
            out.display()
        );
        return Ok(());
    }
    if catalog_path.is_some() {
        return Err("--catalog requires --per-cell".to_string());
    }
    let spec_path = spec_path.ok_or("build needs a sweep spec file")?;
    let spec = SweepSpec::from_path(&spec_path).map_err(|e| e.to_string())?;
    let pack = builder.build_from_spec(&spec).map_err(|e| e.to_string())?;
    let json = pack.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    println!(
        "built pack `{}`: {} regimes, {} bytes, {:.2}s -> {}",
        pack.name,
        pack.regimes.len(),
        json.len(),
        started.elapsed().as_secs_f64(),
        out.display()
    );
    Ok(())
}

struct IoArgs {
    pack: Option<PathBuf>,
    input: Option<PathBuf>,
    output: Option<PathBuf>,
    count: usize,
    requests: usize,
    threads: usize,
    seed: u64,
}

fn parse_io_args(argv: &[String]) -> Result<IoArgs, String> {
    let mut args = IoArgs {
        pack: None,
        input: None,
        output: None,
        count: 10_000,
        requests: 100_000,
        threads: 0,
        seed: 2020,
    };
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--pack" => args.pack = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--input" => args.input = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--output" | "--out" => args.output = Some(PathBuf::from(next_value(&mut it, arg)?)),
            "--count" => args.count = parse(next_value(&mut it, arg)?, arg)?,
            "--requests" => args.requests = parse(next_value(&mut it, arg)?, arg)?,
            "--threads" => args.threads = parse(next_value(&mut it, arg)?, arg)?,
            "--seed" => args.seed = parse(next_value(&mut it, arg)?, arg)?,
            other => return Err(format!("unknown option `{other}`")),
        }
    }
    Ok(args)
}

fn write_or_print(output: &Option<PathBuf>, text: &str) -> Result<(), String> {
    match output {
        Some(path) => {
            std::fs::write(path, text).map_err(|e| format!("cannot write {}: {e}", path.display()))
        }
        None => {
            print!("{text}");
            Ok(())
        }
    }
}

fn cmd_gen(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    // Multi-packs generate against their pooled pack (cell routing is opt-in per
    // request via the `cell` field).  Only the pack metadata is needed here, so no
    // interpolation engines are built.
    let path = args.pack.as_ref().ok_or("--pack is required")?;
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    let pooled = match MultiPack::from_json(&text) {
        Ok(multi) => multi.pooled,
        Err(_) => ModelPack::from_json(&text).map_err(|e| e.to_string())?,
    };
    let requests = generate_requests(&pooled, args.count, args.seed);
    write_or_print(&args.output, &requests_to_ndjson(&requests))
}

fn cmd_serve(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    let handle = AdvisorHandle::new(load_advisor(&args.pack)?);
    let input_path = args.input.as_ref().ok_or("--input is required")?;
    let input = std::fs::read_to_string(input_path)
        .map_err(|e| format!("cannot read {}: {e}", input_path.display()))?;
    let started = Instant::now();
    // Stats are aggregated across every advisor that served part of the stream —
    // reading only the final advisor would drop counts from before a `!reload`.
    let (output, stats) = serve_session_with_stats(&handle, &input, args.threads);
    let elapsed = started.elapsed().as_secs_f64();
    write_or_print(&args.output, &output)?;
    eprintln!(
        "served {} queries in {elapsed:.3}s ({:.0} q/s; {} reuse, {} plan, {} cost, {} policy)",
        stats.total(),
        stats.total() as f64 / elapsed.max(1e-9),
        stats.should_reuse,
        stats.checkpoint_plan,
        stats.expected_cost_makespan,
        stats.best_policy,
    );
    Ok(())
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

fn cmd_bench(argv: &[String]) -> Result<(), String> {
    let args = parse_io_args(argv)?;
    let advisor = load_advisor(&args.pack)?;
    let requests = generate_requests(advisor.pooled().pack(), args.requests, args.seed);

    // Throughput: one big batch over the worker pool.
    let started = Instant::now();
    let responses = advisor.advise_batch(&requests, args.threads);
    let elapsed = started.elapsed().as_secs_f64();
    let failures = responses.iter().filter(|r| r.is_err()).count();

    // Latency: per-query timing on one thread (no batching overhead in the numbers).
    let sample = &requests[..requests.len().min(20_000)];
    let mut latencies = Vec::with_capacity(sample.len());
    for request in sample {
        let t0 = Instant::now();
        let _ = advisor.advise(request);
        latencies.push(t0.elapsed().as_secs_f64() * 1e6);
    }
    latencies.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));

    println!(
        "batch: {} queries in {elapsed:.3}s -> {:.0} queries/sec ({failures} failures)",
        requests.len(),
        requests.len() as f64 / elapsed.max(1e-9),
    );
    println!(
        "latency (single-thread, {} samples): p50 {:.2}us  p90 {:.2}us  p99 {:.2}us  max {:.2}us",
        latencies.len(),
        percentile(&latencies, 0.50),
        percentile(&latencies, 0.90),
        percentile(&latencies, 0.99),
        percentile(&latencies, 1.0),
    );
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match argv.first().map(String::as_str) {
        Some("build") => cmd_build(&argv[1..]),
        Some("gen") => cmd_gen(&argv[1..]),
        Some("serve") => cmd_serve(&argv[1..]),
        Some("bench") => cmd_bench(&argv[1..]),
        Some("--help" | "-h") | None => {
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
        Some(other) => Err(format!("unknown command `{other}`\n\n{USAGE}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}
