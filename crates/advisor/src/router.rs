//! Multi-pack routing and hot reload.
//!
//! [`MultiAdvisor`] holds one [`Advisor`] per calibration cell plus the pooled
//! fallback and routes each request by its optional `cell` field: a request carrying a
//! cell goes to that cell's pack, a request without one falls back to the pooled pack,
//! and an unknown cell is a typed error listing what is loaded.  A single [`ModelPack`]
//! loads as a pooled-only router, so every serving path speaks the same type.
//!
//! [`AdvisorHandle`] adds hot reload on top: the current router lives behind an
//! `RwLock<Arc<…>>`, readers snapshot the `Arc` (lock held only for the clone), and a
//! reload swaps the `Arc` — in-flight batches keep answering from the snapshot they
//! took, untouched by the swap.

use crate::engine::{AdviceRequest, AdviceResponse, Advisor, AdvisorStats, FamilyStats};
use crate::error::{AdvisorError, Result};
use crate::pack::{ModelPack, MultiPack};
use std::sync::{Arc, RwLock};
use tcp_cloudsim::run_tasks;

/// The cell-routing query engine: pooled fallback plus per-cell advisors.
pub struct MultiAdvisor {
    name: String,
    pooled: Advisor,
    /// `(cell name, advisor)`, sorted by cell name for binary-search routing.
    cells: Vec<(String, Advisor)>,
}

impl MultiAdvisor {
    /// Builds a router from a per-cell pack set.
    pub fn from_multi(multi: MultiPack) -> Result<Self> {
        // Only the routing invariant (strictly sorted cell names, for binary search)
        // is checked here; per-pack table validation happens inside `Advisor::new`,
        // and documents arriving through `from_json` were already fully validated.
        if !multi.cells.windows(2).all(|w| match w {
            [a, b] => a.cell < b.cell,
            _ => true,
        }) {
            return Err(AdvisorError::Pack(
                "cell packs must be unique and sorted by cell name".to_string(),
            ));
        }
        let name = multi.name.clone();
        let pooled = Advisor::new(multi.pooled)?;
        let cells = multi
            .cells
            .into_iter()
            .map(|entry| Ok((entry.cell, Advisor::new(entry.pack)?)))
            .collect::<Result<Vec<_>>>()?;
        Ok(MultiAdvisor {
            name,
            pooled,
            cells,
        })
    }

    /// Wraps a single pack as a pooled-only router (no routable cells).
    pub fn from_pack(pack: ModelPack) -> Result<Self> {
        let name = pack.name.clone();
        Ok(MultiAdvisor {
            name,
            pooled: Advisor::new(pack)?,
            cells: Vec::new(),
        })
    }

    /// Loads a router from JSON, accepting either a [`MultiPack`] or a plain
    /// [`ModelPack`] document.
    pub fn from_json(text: &str) -> Result<Self> {
        match MultiPack::from_json(text) {
            Ok(multi) => MultiAdvisor::from_multi(multi),
            Err(multi_err) => match ModelPack::from_json(text) {
                Ok(pack) => MultiAdvisor::from_pack(pack),
                Err(pack_err) => Err(AdvisorError::Pack(format!(
                    "not a loadable pack (as a multi-pack: {multi_err}; as a single \
                     pack: {pack_err})"
                ))),
            },
        }
    }

    /// The pack-set name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The pooled (fallback) advisor.
    pub fn pooled(&self) -> &Advisor {
        &self.pooled
    }

    /// Names of the routable cells, in sorted order.
    pub fn cell_names(&self) -> Vec<String> {
        self.cells.iter().map(|(cell, _)| cell.clone()).collect()
    }

    /// Answers one request, routing by its `cell` field.
    pub fn advise(&self, request: &AdviceRequest) -> Result<AdviceResponse> {
        // Pack/cell resolution span: arg 0 = pooled fallback, arg = cell index + 1
        // for a routed request (inert unless this thread is tracing a request).
        match request.cell.as_deref() {
            None => {
                let _span = tcp_obs::span!("advisor.route", 0u64);
                self.pooled.advise(request)
            }
            Some(cell) => {
                let index = self
                    .cells
                    .binary_search_by(|(name, _)| name.as_str().cmp(cell))
                    .map_err(|_| AdvisorError::UnknownCell {
                        cell: cell.to_string(),
                        available: self.cell_names(),
                    })?;
                let _span = tcp_obs::span!("advisor.route", index as u64 + 1);
                let mut response = self.cells[index].1.advise(request)?;
                response.cell = Some(cell.to_string());
                Ok(response)
            }
        }
    }

    /// Answers a batch over `threads` worker threads (`0` = all CPUs), preserving
    /// request order — bit-identical for every thread count.
    pub fn advise_batch(
        &self,
        requests: &[AdviceRequest],
        threads: usize,
    ) -> Vec<Result<AdviceResponse>> {
        run_tasks(requests.len(), threads, |i| self.advise(&requests[i]))
    }

    /// Aggregated per-family counters across the pooled pack and every cell pack.
    pub fn family_stats(&self) -> FamilyStats {
        let mut total = self.pooled.family_stats();
        for (_, advisor) in &self.cells {
            total.merge(&advisor.family_stats());
        }
        total
    }

    /// Aggregated serving statistics across the pooled pack and every cell pack.
    pub fn stats(&self) -> AdvisorStats {
        let mut total = self.pooled.stats();
        for (_, advisor) in &self.cells {
            let s = advisor.stats();
            total.should_reuse += s.should_reuse;
            total.checkpoint_plan += s.checkpoint_plan;
            total.expected_cost_makespan += s.expected_cost_makespan;
            total.best_policy += s.best_policy;
        }
        total
    }
}

/// A hot-reloadable slot holding the current [`MultiAdvisor`].
///
/// Readers call [`AdvisorHandle::current`] to snapshot an `Arc` and serve from it; a
/// [`AdvisorHandle::reload`] swaps the slot without disturbing snapshots already taken.
pub struct AdvisorHandle {
    current: RwLock<Arc<MultiAdvisor>>,
}

/// Records the pack swap in gauges: `advisor.pack.loaded_at_secs` (monotonic
/// timestamp, the basis for `pack_age_secs` in `!health`/`!stats` and for
/// `age`-kind SLO rules) and `advisor.pack.format_version`.
fn publish_pack_gauges(advisor: &MultiAdvisor) {
    tcp_obs::gauge("advisor.pack.loaded_at_secs").set(tcp_obs::log::now_monotonic_secs());
    tcp_obs::gauge("advisor.pack.format_version")
        .set(advisor.pooled().pack().format_version as f64);
}

impl AdvisorHandle {
    /// Creates a handle serving `advisor`.  Stamps the pack gauges, so serving
    /// starts with a fresh `pack_age_secs`.
    pub fn new(advisor: MultiAdvisor) -> Self {
        publish_pack_gauges(&advisor);
        AdvisorHandle {
            current: RwLock::new(Arc::new(advisor)),
        }
    }

    /// Snapshots the advisor currently being served.
    pub fn current(&self) -> Arc<MultiAdvisor> {
        // A writer can only panic between the lock and the store, in which case the
        // previous advisor snapshot is still intact: recover it rather than abort.
        self.current
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Atomically replaces the served advisor.  In-flight work keeps the snapshot it
    /// already holds; only requests routed after the swap see the new packs.  The
    /// pack gauges are re-stamped, resetting `pack_age_secs` to zero.
    pub fn reload(&self, advisor: MultiAdvisor) {
        publish_pack_gauges(&advisor);
        *self.current.write().unwrap_or_else(|e| e.into_inner()) = Arc::new(advisor);
    }

    /// Loads a pack (single or multi) from a JSON file and swaps it in.  On failure the
    /// previous advisor keeps serving.
    pub fn reload_from_path(&self, path: &std::path::Path) -> Result<Arc<MultiAdvisor>> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| AdvisorError::Pack(format!("cannot read {}: {e}", path.display())))?;
        self.reload(MultiAdvisor::from_json(&text)?);
        Ok(self.current())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::{tiny_builder, tiny_spec};
    use tcp_calibrate::Calibrator;
    use tcp_trace::TraceGenerator;

    fn catalog() -> tcp_calibrate::RegimeCatalog {
        let records = TraceGenerator::new(11).generate_study(600, 90).unwrap();
        Calibrator::new("router-test")
            .calibrate(&records, "synthetic", 0)
            .unwrap()
    }

    fn multi() -> MultiAdvisor {
        let builder = crate::builder::PackBuilder {
            age_points: 121,
            checkpoint_age_points: 3,
            checkpoint_job_points: 4,
            max_checkpoint_job_hours: 4.0,
            ..Default::default()
        };
        let multi = builder
            .build_from_catalog(&catalog(), &[5.0], 30.0, 0)
            .unwrap();
        MultiAdvisor::from_multi(multi).unwrap()
    }

    #[test]
    fn requests_route_by_cell_and_fall_back_to_pooled() {
        let m = multi();
        let cells = m.cell_names();
        assert!(!cells.is_empty());
        // No cell: pooled pack answers.
        let mut req = AdviceRequest::should_reuse("pooled", 8.0, 3.0);
        req.regime = None;
        let pooled = m.advise(&req).unwrap();
        assert_eq!(pooled.regime, "pooled");
        assert_eq!(pooled.cell, None);
        // Cell-tagged: the cell's pack answers and echoes the cell.
        let routed = m.advise(&req.clone().with_cell(cells[0].clone())).unwrap();
        assert_eq!(routed.regime, cells[0]);
        assert_eq!(routed.cell.as_deref(), Some(cells[0].as_str()));
        // Unknown cells are typed errors listing what is loaded.
        let err = m
            .advise(&req.clone().with_cell("n1-highcpu-16/mars-east1-z/day"))
            .unwrap_err();
        match err {
            AdvisorError::UnknownCell { cell, available } => {
                assert_eq!(cell, "n1-highcpu-16/mars-east1-z/day");
                assert_eq!(available, cells);
            }
            other => panic!("unexpected error {other}"),
        }
    }

    #[test]
    fn routed_answers_differ_across_cells() {
        // Observation 4: the 32-vCPU day cell must look riskier than the 2-vCPU night
        // cell — routing to different cells must actually change the answer.
        let m = multi();
        let cells = m.cell_names();
        let risky = "n1-highcpu-32/us-central1-f/day";
        let calm = "n1-highcpu-2/us-west1-a/night";
        if !cells.iter().any(|c| c == risky) || !cells.iter().any(|c| c == calm) {
            // Cell sampling is uneven; skip quietly when either cell lacked records.
            return;
        }
        let query = |cell: &str| {
            let mut req = AdviceRequest::expected_cost_makespan("x", 6.0, 4.0);
            req.regime = None;
            m.advise(&req.with_cell(cell)).unwrap()
        };
        let risky_resp = query(risky);
        let calm_resp = query(calm);
        assert_ne!(
            risky_resp.failure_probability, calm_resp.failure_probability,
            "per-cell packs must answer from different models"
        );
    }

    #[test]
    fn single_pack_loads_as_pooled_only_router() {
        let pack = tiny_builder().build_from_spec(&tiny_spec()).unwrap();
        let m = MultiAdvisor::from_json(&pack.to_json().unwrap()).unwrap();
        assert!(m.cell_names().is_empty());
        let mut req = AdviceRequest::should_reuse("gcp-day", 8.0, 3.0);
        assert!(m.advise(&req).is_ok());
        req = req.with_cell("n1-highcpu-2/us-west1-a/night");
        let err = m.advise(&req).unwrap_err();
        assert!(err.to_string().contains("no per-cell packs"), "{err}");
    }

    #[test]
    fn multi_pack_json_round_trips_with_identical_answers() {
        let builder = crate::builder::PackBuilder {
            age_points: 121,
            checkpoint_age_points: 3,
            checkpoint_job_points: 4,
            max_checkpoint_job_hours: 4.0,
            ..Default::default()
        };
        let multi_pack = builder
            .build_from_catalog(&catalog(), &[5.0], 30.0, 2)
            .unwrap();
        let json = multi_pack.to_json().unwrap();
        let reparsed = MultiPack::from_json(&json).unwrap();
        assert_eq!(reparsed, multi_pack);
        let a = MultiAdvisor::from_multi(multi_pack).unwrap();
        let b = MultiAdvisor::from_json(&json).unwrap();
        let mut requests = Vec::new();
        for (i, cell) in a.cell_names().into_iter().enumerate() {
            let mut req = AdviceRequest::expected_cost_makespan("x", i as f64, 2.0);
            req.regime = None;
            requests.push(req.with_cell(cell));
        }
        assert_eq!(a.advise_batch(&requests, 1), b.advise_batch(&requests, 2));
    }

    #[test]
    fn hot_reload_leaves_in_flight_snapshots_untouched() {
        let pack_a = tiny_builder().build_from_spec(&tiny_spec()).unwrap();
        let handle = AdvisorHandle::new(MultiAdvisor::from_pack(pack_a.clone()).unwrap());

        // An in-flight batch snapshots the advisor before the reload...
        let snapshot = handle.current();
        let requests: Vec<AdviceRequest> = (0..64)
            .map(|i| AdviceRequest::should_reuse("gcp-day", (i % 24) as f64, 3.0))
            .collect();

        // ...then the pack is swapped for one with different regimes...
        let spec_b = tcp_scenarios::SweepSpec::from_toml(
            r#"
[sweep]
name = "reloaded"

[[regime]]
name = "exp12"
kind = "exponential"
mean_hours = 12.0

[workload]
dp_step_minutes = 30.0
"#,
        )
        .unwrap();
        let pack_b = tiny_builder().build_from_spec(&spec_b).unwrap();
        handle.reload(MultiAdvisor::from_pack(pack_b).unwrap());

        // ...and the snapshot still answers exactly like a fresh advisor on the old
        // pack, while new lookups see the new one.
        let expected = MultiAdvisor::from_pack(pack_a).unwrap();
        assert_eq!(
            snapshot.advise_batch(&requests, 2),
            expected.advise_batch(&requests, 1)
        );
        assert_eq!(handle.current().pooled().pack().name, "reloaded");
        let old_regime = snapshot.advise(&requests[0]).unwrap().regime;
        assert_eq!(old_regime, "gcp-day");
        assert!(
            handle.current().advise(&requests[0]).is_err(),
            "gcp-day is gone"
        );
    }

    #[test]
    fn v2_multi_packs_load_with_bathtub_dp_families() {
        // A multi-pack written by a v2 build: inner packs at format 2, no dp_family.
        let builder = crate::builder::PackBuilder {
            age_points: 121,
            checkpoint_age_points: 3,
            checkpoint_job_points: 4,
            max_checkpoint_job_hours: 4.0,
            ..Default::default()
        };
        let multi_pack = builder
            .build_from_catalog(&catalog(), &[5.0], 30.0, 0)
            .unwrap();
        let mut v2 = multi_pack.to_json().unwrap().replace(
            &format!("\"format_version\":{}", crate::pack::PACK_FORMAT_VERSION),
            "\"format_version\":2",
        );
        for family in [
            "bathtub",
            "weibull",
            "exponential",
            "phased",
            "empirical",
            "mixture",
        ] {
            v2 = v2.replace(&format!("\"dp_family\":\"{family}\","), "");
        }
        assert!(!v2.contains("dp_family"));
        let upgraded = MultiPack::from_json(&v2).unwrap();
        assert_eq!(upgraded.pooled.regimes[0].dp_family, "bathtub");
        for entry in &upgraded.cells {
            assert_eq!(entry.pack.regimes[0].dp_family, "bathtub");
            // The served family survives the upgrade untouched.
            assert_eq!(
                entry.pack.regimes[0].served_family,
                multi_pack
                    .cells
                    .iter()
                    .find(|c| c.cell == entry.cell)
                    .unwrap()
                    .pack
                    .regimes[0]
                    .served_family
            );
        }
        // The upgraded set routes and answers.
        let m = MultiAdvisor::from_multi(upgraded).unwrap();
        let mut req = AdviceRequest::should_reuse("pooled", 6.0, 3.0);
        req.regime = None;
        assert!(m.advise(&req).is_ok());
    }

    #[test]
    fn family_stats_follow_the_answering_regime() {
        let m = multi();
        assert_eq!(m.family_stats(), tcp_advisor_family_default());
        let cells = m.cell_names();
        let mut req = AdviceRequest::expected_cost_makespan("x", 5.0, 2.0);
        req.regime = None;
        // Two pooled answers (mixture curves) and one per-cell answer.
        m.advise(&req).unwrap();
        m.advise(&req).unwrap();
        m.advise(&req.clone().with_cell(cells[0].clone())).unwrap();
        let stats = m.family_stats();
        assert_eq!(stats.served.get("mixture"), Some(&2));
        assert_eq!(stats.dp.get("mixture"), Some(&2));
        let per_cell_total: u64 = stats
            .served
            .iter()
            .filter(|(family, _)| family.as_str() != "mixture")
            .map(|(_, n)| n)
            .sum();
        assert_eq!(per_cell_total, 1);
        // dp histograms mirror served histograms for v3 packs.
        assert_eq!(stats.served, stats.dp);
    }

    fn tcp_advisor_family_default() -> crate::engine::FamilyStats {
        crate::engine::FamilyStats::default()
    }

    #[test]
    fn reload_from_a_bad_path_keeps_the_old_advisor() {
        let pack = tiny_builder().build_from_spec(&tiny_spec()).unwrap();
        let handle = AdvisorHandle::new(MultiAdvisor::from_pack(pack).unwrap());
        let before = handle.current().pooled().pack().name.clone();
        assert!(handle
            .reload_from_path(std::path::Path::new("/nonexistent/pack.json"))
            .is_err());
        assert_eq!(handle.current().pooled().pack().name, before);
    }

    #[test]
    fn stats_aggregate_across_packs() {
        let m = multi();
        let cells = m.cell_names();
        let mut req = AdviceRequest::best_policy("pooled");
        req.regime = None;
        m.advise(&req).unwrap();
        m.advise(&req.clone().with_cell(cells[0].clone())).unwrap();
        let stats = m.stats();
        assert_eq!(stats.best_policy, 2);
        assert_eq!(stats.total(), 2);
    }
}
