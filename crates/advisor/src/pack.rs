//! The versioned, serializable "model pack" — the artifact `advise build` produces and
//! `advise serve` loads.
//!
//! A pack holds one [`RegimePack`] per preemption regime (distribution × pricing), each
//! with dense grids of the quantities the paper's policies are built on: VM survival
//! (Equation 1), expected makespan from age (Equation 8), conditional job-failure
//! probability (Section 4.2), and the DP checkpoint value function (Section 4.3), plus a
//! precomputed policy-ranking card.  Grids are plain `Vec<f64>` so the pack serializes to
//! self-contained JSON; the query engine rebuilds fast interpolants on load.

use crate::error::{AdvisorError, Result};
use serde::{Deserialize, Serialize};
use tcp_core::BathtubModel;

/// Current pack format version. Bumped whenever the schema changes shape.
/// Version 2 added [`RegimePack::served_family`]; version 3 added
/// [`RegimePack::dp_family`] (the DP checkpoint tables and policy card now come from
/// the same winner family as the served curves) and made the bathtub reference fit
/// optional.  Version 2 documents still load: see [`ModelPack::from_json`].
pub const PACK_FORMAT_VERSION: u32 = 3;

/// Oldest pack format version the loader still accepts (upgraded in place on load).
pub const MIN_PACK_FORMAT_VERSION: u32 = 2;

/// A complete serialized advisory model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelPack {
    /// Schema version; [`ModelPack::from_json`] rejects mismatches.
    pub format_version: u32,
    /// Pack name (from the sweep spec it was built from).
    pub name: String,
    /// Base seed used for any fitted models inside the pack.
    pub base_seed: u64,
    /// How the per-regime models were obtained (`paper-representative` or `fitted`).
    pub model_mode: String,
    /// One table set per preemption regime, in spec order.
    pub regimes: Vec<RegimePack>,
}

/// Precomputed tables for one preemption regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimePack {
    /// Regime name (the request routing key).
    pub name: String,
    /// The cell's bathtub candidate fit (Equation 1), kept as a reference point for
    /// audits and drift comparisons.  `None` when the cell had no bathtub candidate
    /// (e.g. too few records for parametric fits) — since format v3 the policy tables
    /// no longer need one.
    pub model: Option<BathtubModel>,
    /// Which distribution family the `survival`/`first_moment` curves were tabulated
    /// from: `bathtub` for spec-built packs, the cell's goodness-of-fit winner
    /// (`empirical`, `phased`, `weibull`, `exponential`, `bathtub`) for catalog-built
    /// cell packs, and `mixture` for the record-weighted pooled fallback.
    pub served_family: String,
    /// Which family the DP checkpoint tables and the policy card were computed from.
    /// Equal to [`RegimePack::served_family`] for every pack built at format v3 (the
    /// generic-hazard DP runs on the winner); `bathtub` for upgraded v2 packs, whose
    /// DP tables were always bathtub-driven.
    pub dp_family: String,
    /// Temporal constraint `L` in hours (24 for GCP preemptible VMs).
    pub horizon_hours: f64,
    /// End of the early high-hazard phase (hours), from the fitted parameters.
    pub phase_early_end_hours: f64,
    /// Start of the deadline phase (hours).
    pub phase_deadline_start_hours: f64,
    /// VM type the cost tables assume (GCP name).
    pub vm_type: String,
    /// vCPUs of that VM type.
    pub vcpus: u32,
    /// On-demand price per vCPU-hour, USD.
    pub on_demand_per_vcpu_hour: f64,
    /// Preemptible price per vCPU-hour, USD.
    pub preemptible_per_vcpu_hour: f64,
    /// Age grid (hours), strictly increasing, covering `[0, horizon]`, dense (default
    /// one-minute spacing).
    pub ages: Vec<f64>,
    /// VM survival probability `S(age)` on the age grid.
    pub survival: Vec<f64>,
    /// First-moment table `W(age) = ∫_0^age t f(t) dt` on the age grid (the deadline
    /// atom included once `age` reaches the horizon).
    ///
    /// Every age/job-length query decomposes over this 1-D curve: Equation 8's makespan
    /// is `E[T_s] = T + W(min(s+T, L)) − W(s)` and the conditional failure probability
    /// is `1 − S(min(s+T, L⁻))/S(s)` — so the kink along `s + T = L` (where jobs start
    /// crossing the deadline) is handled *analytically* instead of being smeared by a
    /// rectangular 2-D interpolation across the diagonal.
    pub first_moment: Vec<f64>,
    /// DP checkpoint tables, one cell per checkpoint-cost value.
    pub checkpoint_cells: Vec<CheckpointCell>,
    /// Precomputed best-policy ranking for this regime.
    pub policy_card: PolicyCard,
}

/// DP checkpoint tables for one checkpoint-cost setting.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CheckpointCell {
    /// Cost of writing one checkpoint, minutes.
    pub checkpoint_cost_minutes: f64,
    /// DP work-step granularity, minutes.
    pub dp_step_minutes: f64,
    /// Restart overhead after a preemption, minutes.
    pub restart_overhead_minutes: f64,
    /// Start-age grid (hours) of the expected-makespan table.
    pub ages: Vec<f64>,
    /// Job-length grid (hours).
    pub job_lens: Vec<f64>,
    /// DP expected makespan, row-major over `ages × job_lens`.
    pub expected_makespan: Vec<f64>,
    /// Fresh-VM checkpoint schedules, one per job-length grid point.
    pub schedules: Vec<PackSchedule>,
}

/// One precomputed checkpoint schedule (fresh VM).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PackSchedule {
    /// Job length the schedule covers (hours, after DP step quantisation).
    pub job_len_hours: f64,
    /// Work executed before each checkpoint, in order (hours).
    pub intervals_hours: Vec<f64>,
    /// DP expected makespan of the job under this schedule (hours).
    pub expected_makespan_hours: f64,
}

/// One policy's standing in a [`PolicyCard`] ranking.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyScore {
    /// Policy name (e.g. `model-driven`, `memoryless`, `young-daly`, `none`).
    pub name: String,
    /// Ranking score; lower is better. Scheduling scores are average job-failure
    /// probabilities, checkpointing scores are expected makespans in hours.
    pub score: f64,
}

/// Precomputed best-policy answer for one regime.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyCard {
    /// Job length (hours) the comparison was evaluated at.
    pub reference_job_len_hours: f64,
    /// Scheduling policies ranked by average failure probability (ascending).
    pub scheduling: Vec<PolicyScore>,
    /// Checkpointing policies ranked by expected makespan (ascending).
    pub checkpointing: Vec<PolicyScore>,
    /// The winning scheduling policy.
    pub recommended_scheduling: String,
    /// The winning checkpointing policy.
    pub recommended_checkpointing: String,
}

/// Upgrades a format-v2 pack document in place: v2 packs always computed their DP
/// checkpoint tables and policy cards from the bathtub fit, so each regime gains an
/// explicit `dp_family = "bathtub"` and the version advances to the current one.
/// Documents at any other version pass through untouched (and fail version validation
/// later if unsupported).
fn upgrade_pack_value(value: &mut serde::Value) -> Result<()> {
    let is_v2 = value
        .get("format_version")
        .and_then(|v| v.as_u64())
        .map(|v| v == 2)
        .unwrap_or(false);
    if !is_v2 {
        return Ok(());
    }
    let serde::Value::Map(entries) = value else {
        return Ok(());
    };
    for (key, entry) in entries.iter_mut() {
        match key.as_str() {
            "format_version" => *entry = serde::Value::Int(PACK_FORMAT_VERSION as i64),
            "regimes" => {
                if let serde::Value::Seq(regimes) = entry {
                    for regime in regimes.iter_mut() {
                        if let serde::Value::Map(fields) = regime {
                            if !fields.iter().any(|(k, _)| k == "dp_family") {
                                fields.push((
                                    "dp_family".to_string(),
                                    serde::Value::Str("bathtub".to_string()),
                                ));
                            }
                        }
                    }
                }
            }
            _ => {}
        }
    }
    Ok(())
}

impl ModelPack {
    /// Serializes the pack to compact JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| AdvisorError::Pack(e.to_string()))
    }

    /// Parses a pack from JSON, rejecting format-version mismatches.
    ///
    /// Format v2 packs (whose DP tables were always computed from the bathtub fit)
    /// are upgraded in place: each regime gains `dp_family = "bathtub"` and the
    /// document re-serializes at the current version.
    pub fn from_json(text: &str) -> Result<Self> {
        let mut value: serde::Value =
            serde_json::from_str(text).map_err(|e| AdvisorError::Pack(e.to_string()))?;
        upgrade_pack_value(&mut value)?;
        let pack: ModelPack = serde::Deserialize::deserialize(&value)
            .map_err(|e| AdvisorError::Pack(e.to_string()))?;
        if pack.format_version != PACK_FORMAT_VERSION {
            return Err(AdvisorError::Pack(format!(
                "pack format version {} is not supported (this build reads versions \
                 {MIN_PACK_FORMAT_VERSION}-{PACK_FORMAT_VERSION})",
                pack.format_version
            )));
        }
        pack.validate()?;
        Ok(pack)
    }

    /// Structural sanity checks shared by the builder and the loader.
    pub fn validate(&self) -> Result<()> {
        if self.regimes.is_empty() {
            return Err(AdvisorError::Pack("pack contains no regimes".to_string()));
        }
        let mut names: Vec<&str> = self.regimes.iter().map(|r| r.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        if names.len() != self.regimes.len() {
            return Err(AdvisorError::Pack(
                "regime names must be unique".to_string(),
            ));
        }
        for regime in &self.regimes {
            regime.validate()?;
        }
        Ok(())
    }

    /// Names of the regimes in the pack, in pack order.
    pub fn regime_names(&self) -> Vec<String> {
        self.regimes.iter().map(|r| r.name.clone()).collect()
    }
}

impl RegimePack {
    fn validate(&self) -> Result<()> {
        let grid = |name: &str, len: usize, expected: usize| -> Result<()> {
            if len != expected {
                return Err(AdvisorError::Pack(format!(
                    "regime `{}`: {name} has {len} entries, expected {expected}",
                    self.name
                )));
            }
            Ok(())
        };
        if self.ages.len() < 2 {
            return Err(AdvisorError::Pack(format!(
                "regime `{}`: age grid needs at least two knots",
                self.name
            )));
        }
        if self.served_family.is_empty() {
            return Err(AdvisorError::Pack(format!(
                "regime `{}` does not record its served family",
                self.name
            )));
        }
        if self.dp_family.is_empty() {
            return Err(AdvisorError::Pack(format!(
                "regime `{}` does not record its DP family",
                self.name
            )));
        }
        grid("survival", self.survival.len(), self.ages.len())?;
        grid("first_moment", self.first_moment.len(), self.ages.len())?;
        if self.checkpoint_cells.is_empty() {
            return Err(AdvisorError::Pack(format!(
                "regime `{}` has no checkpoint cells",
                self.name
            )));
        }
        for cell in &self.checkpoint_cells {
            let dp_cells = cell.ages.len() * cell.job_lens.len();
            if cell.expected_makespan.len() != dp_cells {
                return Err(AdvisorError::Pack(format!(
                    "regime `{}`: checkpoint cell has {} makespan entries, expected {dp_cells}",
                    self.name,
                    cell.expected_makespan.len()
                )));
            }
            if cell.schedules.len() != cell.job_lens.len() {
                return Err(AdvisorError::Pack(format!(
                    "regime `{}`: checkpoint cell has {} schedules for {} job lengths",
                    self.name,
                    cell.schedules.len(),
                    cell.job_lens.len()
                )));
            }
        }
        Ok(())
    }
}

/// Current multi-pack format version. Bumped whenever the schema changes shape.
pub const MULTI_PACK_FORMAT_VERSION: u32 = 1;

/// One per-cell pack inside a [`MultiPack`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellPackEntry {
    /// Calibration cell name (`vm-type/zone/time-of-day`) — the routing key.
    pub cell: String,
    /// The cell's model pack (one regime, named after the cell).
    pub pack: ModelPack,
}

/// A pack set for per-cell routing: the pooled all-records pack plus one pack per
/// calibration cell, built from a `calibrate fit` regime catalog.
///
/// The query engine routes requests carrying a `cell` field to the matching cell's
/// pack and everything else to the pooled pack.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MultiPack {
    /// Schema version; [`MultiPack::from_json`] rejects mismatches.
    pub format_version: u32,
    /// Pack-set name (the catalog name).
    pub name: String,
    /// Name of the catalog the packs were built from.
    pub catalog: String,
    /// The pooled (all-records) pack — the routing fallback.
    pub pooled: ModelPack,
    /// Per-cell packs, sorted by cell name.
    pub cells: Vec<CellPackEntry>,
}

impl MultiPack {
    /// Serializes the pack set to compact JSON.
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| AdvisorError::Pack(e.to_string()))
    }

    /// Parses a pack set from JSON, rejecting format-version mismatches.  Inner packs
    /// written at format v2 are upgraded exactly like [`ModelPack::from_json`] does.
    pub fn from_json(text: &str) -> Result<Self> {
        let mut value: serde::Value =
            serde_json::from_str(text).map_err(|e| AdvisorError::Pack(e.to_string()))?;
        if let serde::Value::Map(entries) = &mut value {
            for (key, entry) in entries.iter_mut() {
                match key.as_str() {
                    "pooled" => upgrade_pack_value(entry)?,
                    "cells" => {
                        if let serde::Value::Seq(cells) = entry {
                            for cell in cells.iter_mut() {
                                if let serde::Value::Map(cell_fields) = cell {
                                    for (field, pack) in cell_fields.iter_mut() {
                                        if field == "pack" {
                                            upgrade_pack_value(pack)?;
                                        }
                                    }
                                }
                            }
                        }
                    }
                    _ => {}
                }
            }
        }
        let multi: MultiPack = serde::Deserialize::deserialize(&value)
            .map_err(|e| AdvisorError::Pack(e.to_string()))?;
        if multi.format_version != MULTI_PACK_FORMAT_VERSION {
            return Err(AdvisorError::Pack(format!(
                "multi-pack format version {} is not supported (this build reads version {})",
                multi.format_version, MULTI_PACK_FORMAT_VERSION
            )));
        }
        multi.validate()?;
        Ok(multi)
    }

    /// Structural sanity checks shared by the builder and the loader.
    pub fn validate(&self) -> Result<()> {
        self.pooled.validate()?;
        if self.cells.is_empty() {
            return Err(AdvisorError::Pack(
                "multi-pack contains no cell packs".to_string(),
            ));
        }
        let names: Vec<&str> = self.cells.iter().map(|c| c.cell.as_str()).collect();
        if !names.windows(2).all(|w| w[0] < w[1]) {
            return Err(AdvisorError::Pack(
                "cell packs must be unique and sorted by cell name".to_string(),
            ));
        }
        for entry in &self.cells {
            entry
                .pack
                .validate()
                .map_err(|e| AdvisorError::Pack(format!("cell `{}`: {e}", entry.cell)))?;
        }
        Ok(())
    }

    /// Names of the routable cells, in pack order.
    pub fn cell_names(&self) -> Vec<String> {
        self.cells.iter().map(|c| c.cell.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::tests::{tiny_builder, tiny_spec};

    /// Rewrites a current-format pack JSON into the exact shape a v2 build produced:
    /// version 2, no `dp_family` field (v2 DP tables were always bathtub-driven).
    pub(crate) fn downgrade_to_v2(json: &str) -> String {
        json.replace(
            &format!("\"format_version\":{PACK_FORMAT_VERSION}"),
            "\"format_version\":2",
        )
        .replace("\"dp_family\":\"bathtub\",", "")
    }

    #[test]
    fn v2_packs_load_with_a_bathtub_dp_family() {
        let pack = tiny_builder().build_from_spec(&tiny_spec()).unwrap();
        let v2 = downgrade_to_v2(&pack.to_json().unwrap());
        assert!(v2.contains("\"format_version\":2"));
        assert!(!v2.contains("dp_family"));
        let upgraded = ModelPack::from_json(&v2).unwrap();
        assert_eq!(upgraded.format_version, PACK_FORMAT_VERSION);
        for regime in &upgraded.regimes {
            assert_eq!(regime.dp_family, "bathtub");
        }
        // Round trip: the upgraded pack re-serializes at the current version and
        // reloads to the same document.
        let rewritten = upgraded.to_json().unwrap();
        assert_eq!(ModelPack::from_json(&rewritten).unwrap(), upgraded);
        // And it answers queries identically to the original (same tables).
        let a = crate::Advisor::new(pack.clone()).unwrap();
        let b = crate::Advisor::new(upgraded).unwrap();
        let requests = crate::serve::generate_requests(&pack, 200, 4);
        assert_eq!(a.advise_batch(&requests, 1), b.advise_batch(&requests, 1));
    }

    #[test]
    fn unsupported_versions_are_still_rejected() {
        let pack = tiny_builder().build_from_spec(&tiny_spec()).unwrap();
        let v1 = pack.to_json().unwrap().replace(
            &format!("\"format_version\":{PACK_FORMAT_VERSION}"),
            "\"format_version\":1",
        );
        let err = ModelPack::from_json(&v1).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");
    }

    #[test]
    fn version_mismatch_is_rejected() {
        let json = format!(
            "{{\"format_version\":{},\"name\":\"x\",\"base_seed\":1,\"model_mode\":\"m\",\"regimes\":[]}}",
            PACK_FORMAT_VERSION + 1
        );
        let err = ModelPack::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("format version"), "{err}");
    }

    #[test]
    fn empty_pack_is_rejected() {
        let json = format!(
            "{{\"format_version\":{PACK_FORMAT_VERSION},\"name\":\"x\",\"base_seed\":1,\"model_mode\":\"m\",\"regimes\":[]}}"
        );
        let err = ModelPack::from_json(&json).unwrap_err();
        assert!(err.to_string().contains("no regimes"), "{err}");
    }
}
