//! The offline table builder: sweep spec in, [`ModelPack`] out.
//!
//! Reuses the scenario-sweep vocabulary end to end: the pack's regimes are the spec's
//! `[[regime]]` tables (distribution family, pricing, provisioning), its checkpoint
//! cells follow the spec's `workload.checkpoint_cost_minutes` axis, and fitted models
//! come from the same seeded pipeline as the sweep runner
//! ([`tcp_scenarios::regime_model`]) — so an `advise build` pack and a `sweep` run over
//! the same spec answer from byte-identical models.

use crate::error::{AdvisorError, Result};
use crate::pack::{
    CellPackEntry, CheckpointCell, ModelPack, MultiPack, PackSchedule, PolicyCard, PolicyScore,
    RegimePack, MULTI_PACK_FORMAT_VERSION, PACK_FORMAT_VERSION,
};
use std::sync::Arc;
use tcp_calibrate::RegimeCatalog;
use tcp_cloudsim::{run_tasks, PricingModel};
use tcp_core::{LifetimeModel, TabulatedLifetime};
use tcp_dists::LifetimeDistribution;
use tcp_numerics::interp::linspace;
use tcp_policy::{
    average_failure_probability, CheckpointConfig, DpCheckpointPolicy, MemorylessScheduler,
    ModelDrivenScheduler, YoungDalyPolicy,
};
use tcp_scenarios::spec::RegimeSpec;
use tcp_scenarios::{regime_model, resolve_regimes, SweepSpec};
use tcp_trace::VmType;

/// Resolution and scope knobs for pack construction.
///
/// The defaults give one-minute age resolution on the 1-D curves (a few hundred KB of
/// JSON per regime, interpolation error well below a tenth of a percent); shrink the
/// point counts for faster builds and smaller packs at reduced accuracy.
#[derive(Debug, Clone)]
pub struct PackBuilder {
    /// Knots on the dense age grid behind the survival and first-moment curves
    /// (default 1441 — one-minute spacing over a 24 h horizon).
    pub age_points: usize,
    /// Knots on the start-age axis of the DP checkpoint tables (coarser: the DP value
    /// function varies slowly in age).
    pub checkpoint_age_points: usize,
    /// Knots on the job-length axis of the DP checkpoint tables.
    pub checkpoint_job_points: usize,
    /// Largest job length in the DP checkpoint tables, hours.
    pub max_checkpoint_job_hours: f64,
    /// VM type the cost tables assume.
    pub vm_type: VmType,
    /// Job length (hours) at which the best-policy card compares policies.
    pub reference_job_len: f64,
}

impl Default for PackBuilder {
    fn default() -> Self {
        PackBuilder {
            age_points: 1441,
            checkpoint_age_points: 9,
            checkpoint_job_points: 10,
            max_checkpoint_job_hours: 8.0,
            vm_type: VmType::N1HighCpu16,
            reference_job_len: 6.0,
        }
    }
}

impl PackBuilder {
    fn validate(&self) -> Result<()> {
        if self.age_points < 8 {
            return Err(AdvisorError::Pack(
                "age_points must be at least 8".to_string(),
            ));
        }
        if self.checkpoint_age_points < 2 || self.checkpoint_job_points < 2 {
            return Err(AdvisorError::Pack(
                "checkpoint grids need at least 2 points per axis".to_string(),
            ));
        }
        if !(self.max_checkpoint_job_hours > 0.0) || !self.max_checkpoint_job_hours.is_finite() {
            return Err(AdvisorError::Pack(
                "max_checkpoint_job_hours must be positive".to_string(),
            ));
        }
        if !(self.reference_job_len > 0.0) || !self.reference_job_len.is_finite() {
            return Err(AdvisorError::Pack(
                "reference_job_len must be positive".to_string(),
            ));
        }
        Ok(())
    }

    /// Builds a pack from a sweep spec: one [`RegimePack`] per `[[regime]]` table (the
    /// paper's default catalog regime when the spec lists none), with checkpoint cells
    /// following the spec's checkpoint-cost axis.
    pub fn build_from_spec(&self, spec: &SweepSpec) -> Result<ModelPack> {
        self.validate()?;
        spec.validate()?;
        // Resolved exactly like the sweep grid, so calibrated regimes without a pinned
        // cell become one regime pack per catalog cell here too.
        let regime_specs: Vec<RegimeSpec> = resolve_regimes(spec)?;
        let checkpoint_costs: Vec<f64> = spec
            .workload
            .as_ref()
            .and_then(|w| w.checkpoint_cost_minutes.clone())
            .unwrap_or_else(|| vec![1.0]);
        let dp_step_minutes = spec
            .workload
            .as_ref()
            .and_then(|w| w.dp_step_minutes)
            .unwrap_or(5.0);

        let mut regimes = Vec::with_capacity(regime_specs.len());
        for (i, regime_spec) in regime_specs.iter().enumerate() {
            let model = regime_model(spec, regime_spec, i)?;
            regimes.push(self.build_regime(
                regime_spec,
                &model,
                &checkpoint_costs,
                dp_step_minutes,
            )?);
        }
        let pack = ModelPack {
            format_version: PACK_FORMAT_VERSION,
            name: spec.sweep.name.clone(),
            base_seed: spec.base_seed(),
            model_mode: spec
                .sweep
                .model
                .clone()
                .unwrap_or_else(|| "paper-representative".to_string()),
            regimes,
        };
        pack.validate()?;
        Ok(pack)
    }

    /// Builds a per-cell pack set from a calibrated regime catalog: the pooled
    /// record-weighted winner mixture becomes the fallback pack, and *every* catalog
    /// cell becomes its own single-regime pack (named after the cell), with cost
    /// tables priced for the cell's actual VM type.
    ///
    /// Each cell pack is built end to end from the cell's goodness-of-fit winner
    /// (empirical, phased, Weibull, exponential or bathtub): the survival and `W(t)`
    /// curves, the DP checkpoint tables *and* the policy card all come from the same
    /// [`LifetimeModel`], so `dp_family == served_family` for every cell — the
    /// generic-hazard DP removed the old bathtub-only restriction, and cells too small
    /// for parametric fits now ship packs driven by their empirical fallback.  The
    /// pooled pack is driven by the record-count-weighted mixture of every cell's
    /// winner.
    ///
    /// Table construction fans out over `threads` worker threads (`0` = all CPUs);
    /// assembly is in catalog order, so the pack set is byte-identical for every thread
    /// count.
    pub fn build_from_catalog(
        &self,
        catalog: &RegimeCatalog,
        checkpoint_costs: &[f64],
        dp_step_minutes: f64,
        threads: usize,
    ) -> Result<MultiPack> {
        self.validate()?;
        if checkpoint_costs.is_empty() {
            return Err(AdvisorError::Pack(
                "at least one checkpoint cost is required".to_string(),
            ));
        }
        if !(dp_step_minutes > 0.0) || !dp_step_minutes.is_finite() {
            return Err(AdvisorError::Pack(
                "dp_step_minutes must be positive".to_string(),
            ));
        }
        let horizon = catalog.horizon_hours;
        struct CellPlan {
            name: String,
            model: Arc<dyn LifetimeModel>,
            /// The cell's bathtub candidate fit, recorded in the pack for audits.
            reference: Option<tcp_core::BathtubModel>,
            vm_type: VmType,
        }
        let mut cells: Vec<CellPlan> = Vec::new();
        for cell in &catalog.cells {
            let Some(vm_type) = cell.vm_type else {
                continue; // only the pooled pseudo-cell lacks dimensions
            };
            cells.push(CellPlan {
                name: cell.cell.clone(),
                model: cell
                    .model
                    .to_lifetime_model(horizon, self.age_points)
                    .map_err(|e| AdvisorError::Pack(format!("cell `{}`: {e}", cell.cell)))?,
                reference: cell.bathtub_model(),
                vm_type,
            });
        }
        if cells.is_empty() {
            return Err(AdvisorError::Pack(
                "the catalog has no per-cell fits to build packs from".to_string(),
            ));
        }
        // The pooled fallback: every catalog cell's winner (including cells too small
        // for parametric fits), weighted by its share of the records.
        let mut components: Vec<(f64, Arc<dyn LifetimeDistribution>)> =
            Vec::with_capacity(catalog.cells.len());
        for cell in &catalog.cells {
            let weight = cell.records as f64 / catalog.total_records as f64;
            components.push((weight, cell.model.to_distribution(horizon)?));
        }
        let pooled_model: Arc<dyn LifetimeModel> = Arc::new(TabulatedLifetime::from_mixture(
            &components,
            horizon,
            self.age_points,
        )?);
        let pooled_bathtub = catalog.pooled.bathtub_model();
        // Per-vCPU GCP pricing; each pack's absolute costs follow its cell's VM type.
        let pricing = PricingModel::gcp_n1_highcpu();

        // Task 0 builds the pooled pack's tables; tasks 1.. the cells in catalog order.
        let outcomes: Vec<Result<RegimePack>> =
            run_tasks(cells.len() + 1, threads, |task| match task {
                0 => self.build_regime_tables(
                    "pooled",
                    &pooled_model,
                    pooled_bathtub,
                    pricing,
                    self.vm_type,
                    checkpoint_costs,
                    dp_step_minutes,
                ),
                i => {
                    let cell = &cells[i - 1];
                    self.build_regime_tables(
                        &cell.name,
                        &cell.model,
                        cell.reference,
                        pricing,
                        cell.vm_type,
                        checkpoint_costs,
                        dp_step_minutes,
                    )
                }
            });
        let mut outcomes = outcomes.into_iter();
        let wrap = |name: &str, regime: RegimePack| ModelPack {
            format_version: PACK_FORMAT_VERSION,
            name: name.to_string(),
            base_seed: 0,
            model_mode: "calibrated".to_string(),
            regimes: vec![regime],
        };
        let pooled = wrap("pooled", outcomes.next().expect("pooled task")?);
        let mut entries = Vec::with_capacity(cells.len());
        for (cell, outcome) in cells.iter().zip(outcomes) {
            entries.push(CellPackEntry {
                cell: cell.name.clone(),
                pack: wrap(&cell.name, outcome?),
            });
        }
        // The catalog orders cells by typed key; the router binary-searches by *name*,
        // so the serialized entries are name-sorted (still deterministic).
        entries.sort_by(|a, b| a.cell.cmp(&b.cell));
        let multi = MultiPack {
            format_version: MULTI_PACK_FORMAT_VERSION,
            name: catalog.name.clone(),
            catalog: catalog.name.clone(),
            pooled,
            cells: entries,
        };
        multi.validate()?;
        Ok(multi)
    }

    fn build_regime(
        &self,
        regime_spec: &RegimeSpec,
        model: &Arc<dyn LifetimeModel>,
        checkpoint_costs: &[f64],
        dp_step_minutes: f64,
    ) -> Result<RegimePack> {
        let pricing = regime_spec.build_template()?.config.pricing;
        // Calibrated regimes pinned to a cell are priced for the cell's actual VM
        // type, matching `build_from_catalog` answers for the same cell; every other
        // regime (and the `pooled` pseudo-cell) uses the builder's VM type.
        let vm_type = regime_spec
            .cell
            .as_deref()
            .filter(|_| regime_spec.kind == "calibrated")
            .and_then(|cell| cell.parse::<tcp_calibrate::CellKey>().ok())
            .map(|key| key.vm_type)
            .unwrap_or(self.vm_type);
        let reference = model.as_bathtub().copied();
        self.build_regime_tables(
            &regime_spec.name,
            model,
            reference,
            pricing,
            vm_type,
            checkpoint_costs,
            dp_step_minutes,
        )
    }

    /// The table-construction core shared by the spec path and the catalog path: every
    /// grid in a [`RegimePack`] — the Equation 8 curves, the DP checkpoint tables and
    /// the policy card — derives from one [`LifetimeModel`], the pricing and the VM
    /// type.  `reference` is the bathtub candidate fit recorded for audits (the model
    /// itself when the winner *is* the bathtub family).
    #[allow(clippy::too_many_arguments)]
    fn build_regime_tables(
        &self,
        name: &str,
        model: &Arc<dyn LifetimeModel>,
        reference: Option<tcp_core::BathtubModel>,
        pricing: PricingModel,
        vm_type: VmType,
        checkpoint_costs: &[f64],
        dp_step_minutes: f64,
    ) -> Result<RegimePack> {
        // The cold-DP counterpart of the advisor's warm `advisor.lookup.*` spans:
        // when a build runs under an active trace, the per-regime table
        // construction shows up as one span per regime.
        let _span = tcp_obs::span!("advisor.build.dp", checkpoint_costs.len() as u64);
        let horizon = model.horizon();
        let (early_end, deadline_start) = model.phase_boundaries();

        // W(age) = ∫_0^age t f(t) dt — partial_expectation is additive, so every
        // Equation 8 makespan becomes two lookups: E[T_s] = T + W(min(s+T, L)) − W(s).
        let ages = linspace(0.0, horizon, self.age_points);
        let curves = model.tabulate(&ages);
        let family = model.family().to_string();

        let mut checkpoint_cells = Vec::with_capacity(checkpoint_costs.len());
        for &cost_minutes in checkpoint_costs {
            checkpoint_cells.push(self.build_checkpoint_cell(
                model,
                cost_minutes,
                dp_step_minutes,
            )?);
        }

        let policy_card = self.build_policy_card(model, &checkpoint_cells[0])?;

        Ok(RegimePack {
            name: name.to_string(),
            model: reference,
            served_family: family.clone(),
            dp_family: family,
            horizon_hours: horizon,
            phase_early_end_hours: early_end,
            phase_deadline_start_hours: deadline_start,
            vm_type: vm_type.to_string(),
            vcpus: vm_type.vcpus(),
            on_demand_per_vcpu_hour: pricing.on_demand_per_vcpu_hour,
            preemptible_per_vcpu_hour: pricing.preemptible_per_vcpu_hour,
            ages,
            survival: curves.survival,
            first_moment: curves.first_moment,
            checkpoint_cells,
            policy_card,
        })
    }

    fn checkpoint_config(cost_minutes: f64, dp_step_minutes: f64) -> CheckpointConfig {
        CheckpointConfig {
            checkpoint_cost_hours: cost_minutes / 60.0,
            step_hours: dp_step_minutes / 60.0,
            // Same restart overhead as the sweep grid (1 minute, the paper's setting).
            restart_overhead_hours: 1.0 / 60.0,
        }
    }

    fn build_checkpoint_cell(
        &self,
        model: &Arc<dyn LifetimeModel>,
        cost_minutes: f64,
        dp_step_minutes: f64,
    ) -> Result<CheckpointCell> {
        let config = Self::checkpoint_config(cost_minutes, dp_step_minutes);
        let policy = DpCheckpointPolicy::from_model(model.clone(), config)?;
        let horizon = model.horizon();
        // `DpCheckpointPolicy::schedule` requires start ages strictly inside the horizon;
        // queries past the last knot clamp to it, which is the right answer there anyway.
        let ages = linspace(0.0, 0.9 * horizon, self.checkpoint_age_points);
        let min_job = (2.0 * config.step_hours).min(self.max_checkpoint_job_hours * 0.5);
        let job_lens = linspace(
            min_job,
            self.max_checkpoint_job_hours,
            self.checkpoint_job_points,
        );

        // Solve the DP once for the largest job; every smaller job and later age reads
        // the same cached tables.
        let largest = *job_lens.last().expect("non-empty job grid");
        policy.expected_makespan(largest, 0.0)?;

        let mut expected = Vec::with_capacity(ages.len() * job_lens.len());
        for &age in &ages {
            for &job in &job_lens {
                expected.push(policy.expected_makespan(job, age)?);
            }
        }
        let mut schedules = Vec::with_capacity(job_lens.len());
        for &job in &job_lens {
            let sched = policy.schedule(job, 0.0)?;
            schedules.push(PackSchedule {
                job_len_hours: sched.job_len,
                intervals_hours: sched.intervals_hours,
                expected_makespan_hours: sched.expected_makespan,
            });
        }
        Ok(CheckpointCell {
            checkpoint_cost_minutes: cost_minutes,
            dp_step_minutes,
            restart_overhead_minutes: config.restart_overhead_hours * 60.0,
            ages,
            job_lens,
            expected_makespan: expected,
            schedules,
        })
    }

    /// Precomputes the best-policy ranking: scheduling policies by average job-failure
    /// probability over uniformly distributed start ages (the Figure 6 metric), and
    /// checkpointing policies by expected makespan of the reference job on a fresh VM.
    fn build_policy_card(
        &self,
        model: &Arc<dyn LifetimeModel>,
        cell: &CheckpointCell,
    ) -> Result<PolicyCard> {
        let job = self.reference_job_len;
        let model_driven = ModelDrivenScheduler::from_model(model.clone());
        let memoryless = MemorylessScheduler;
        let mut scheduling = vec![
            PolicyScore {
                name: "model-driven".to_string(),
                score: average_failure_probability(&model_driven, model.as_ref(), job, 96)?,
            },
            PolicyScore {
                name: "memoryless".to_string(),
                score: average_failure_probability(&memoryless, model.as_ref(), job, 96)?,
            },
        ];

        let config = Self::checkpoint_config(cell.checkpoint_cost_minutes, cell.dp_step_minutes);
        let dp = DpCheckpointPolicy::from_model(model.clone(), config)?;
        let young_daly = YoungDalyPolicy::from_initial_failure_rate(
            model.as_ref(),
            config.checkpoint_cost_hours,
        )?;
        let mut checkpointing = vec![
            PolicyScore {
                name: "model-driven".to_string(),
                score: dp.expected_makespan(job, 0.0)?,
            },
            PolicyScore {
                name: "young-daly".to_string(),
                score: young_daly.schedule(job, 0.0)?.expected_makespan,
            },
            PolicyScore {
                // Without checkpointing, the single-preemption makespan of Equation 7 is
                // the (optimistic) comparison point the paper's Figure 8 uses.
                name: "none".to_string(),
                score: model.makespan_from_age(0.0, job),
            },
        ];

        let sort = |scores: &mut Vec<PolicyScore>| {
            scores.sort_by(|a, b| {
                a.score
                    .partial_cmp(&b.score)
                    .expect("scores are finite")
                    .then_with(|| a.name.cmp(&b.name))
            });
        };
        sort(&mut scheduling);
        sort(&mut checkpointing);
        Ok(PolicyCard {
            reference_job_len_hours: job,
            recommended_scheduling: scheduling[0].name.clone(),
            recommended_checkpointing: checkpointing[0].name.clone(),
            scheduling,
            checkpointing,
        })
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// A fast-building spec: coarse DP step, short job range.
    pub(crate) fn tiny_spec() -> SweepSpec {
        SweepSpec::from_toml(
            r#"
[sweep]
name = "tiny-pack"
base_seed = 42

[[regime]]
name = "gcp-day"
kind = "catalog"

[[regime]]
name = "exp8"
kind = "exponential"
mean_hours = 8.0
preemptible_discount = 4.0

[workload]
checkpoint_cost_minutes = [1.0, 5.0]
dp_step_minutes = 15.0
"#,
        )
        .unwrap()
    }

    pub(crate) fn tiny_builder() -> PackBuilder {
        PackBuilder {
            age_points: 241,
            ..PackBuilder::default()
        }
    }

    #[test]
    fn builds_a_pack_with_one_regime_per_spec_regime() {
        let pack = tiny_builder().build_from_spec(&tiny_spec()).unwrap();
        assert_eq!(pack.regimes.len(), 2);
        assert_eq!(pack.regime_names(), vec!["gcp-day", "exp8"]);
        assert_eq!(pack.format_version, PACK_FORMAT_VERSION);
        for regime in &pack.regimes {
            assert_eq!(regime.checkpoint_cells.len(), 2);
            assert_eq!(regime.survival.len(), regime.ages.len());
            assert_eq!(regime.first_moment.len(), regime.ages.len());
            // W is a CDF-like accumulator: non-decreasing from zero.
            assert_eq!(regime.first_moment[0], 0.0);
            assert!(regime.first_moment.windows(2).all(|w| w[1] >= w[0] - 1e-12));
            // Pricing knobs flowed through from the regime spec.
            assert!(regime.on_demand_per_vcpu_hour > regime.preemptible_per_vcpu_hour);
        }
        // The exp8 regime carried its custom 4x discount.
        let exp8 = &pack.regimes[1];
        let discount = exp8.on_demand_per_vcpu_hour / exp8.preemptible_per_vcpu_hour;
        assert!((discount - 4.0).abs() < 1e-9, "discount = {discount}");
    }

    #[test]
    fn policy_card_prefers_the_model_driven_policies() {
        let pack = tiny_builder().build_from_spec(&tiny_spec()).unwrap();
        let card = &pack.regimes[0].policy_card;
        // Under a bathtub regime the paper's policies win their comparisons.
        assert_eq!(card.recommended_scheduling, "model-driven");
        assert!(card.scheduling[0].score <= card.scheduling[1].score);
        assert!(!card.checkpointing.is_empty());
    }

    #[test]
    fn spec_packs_serve_the_bathtub_curves() {
        let pack = tiny_builder().build_from_spec(&tiny_spec()).unwrap();
        for regime in &pack.regimes {
            assert_eq!(regime.served_family, "bathtub");
            assert_eq!(regime.dp_family, "bathtub");
            // Spec packs keep the bathtub reference fit for audits.
            assert!(regime.model.is_some());
        }
    }

    fn winner_test_catalog(min_records: usize) -> tcp_calibrate::RegimeCatalog {
        let records = tcp_trace::TraceGenerator::new(11)
            .generate_study(600, 90)
            .unwrap();
        let mut calibrator = tcp_calibrate::Calibrator::new("winner-test");
        calibrator.options.min_records = min_records;
        calibrator.calibrate(&records, "synthetic", 0).unwrap()
    }

    fn small_catalog_builder() -> PackBuilder {
        PackBuilder {
            age_points: 121,
            checkpoint_age_points: 3,
            checkpoint_job_points: 4,
            max_checkpoint_job_hours: 4.0,
            ..Default::default()
        }
    }

    #[test]
    fn catalog_cells_serve_their_winner_family_curves() {
        // A sky-high min_records forces every cell's winner to the empirical fallback
        // (parametric candidates still exist, so the cells keep their bathtub policy
        // models): the packs must now *serve* the empirical curves, not the bathtub fit.
        let catalog = winner_test_catalog(10_000);
        let multi = small_catalog_builder()
            .build_from_catalog(&catalog, &[5.0], 30.0, 0)
            .unwrap();
        assert!(!multi.cells.is_empty());
        let horizon = catalog.horizon_hours;
        for entry in &multi.cells {
            let regime = &entry.pack.regimes[0];
            let fit = catalog.find(&entry.cell).unwrap();
            assert_eq!(fit.model.family, "empirical");
            assert_eq!(regime.served_family, "empirical");
            // Winner-family policies end to end: the DP tables follow the winner too.
            assert_eq!(regime.dp_family, "empirical");
            let dist = fit.model.to_distribution(horizon).unwrap();
            // The tabulated survival is the winner's, not the bathtub candidate's.
            for (i, &age) in regime.ages.iter().enumerate() {
                let expected = if age >= horizon {
                    0.0
                } else {
                    dist.survival(age)
                };
                assert!(
                    (regime.survival[i] - expected).abs() < 1e-9,
                    "cell {} survival at {age}: {} vs {expected}",
                    entry.cell,
                    regime.survival[i]
                );
            }
            // W accumulates monotonically and its tail equals E[T], which for a
            // non-negative constrained lifetime is ∫_0^L S(t) dt — evaluated by
            // trapezoid on the pack's own (dense) survival grid.
            assert!(regime.first_moment.windows(2).all(|w| w[1] >= w[0] - 1e-12));
            let expected_mean: f64 = regime
                .ages
                .windows(2)
                .zip(regime.survival.windows(2))
                .map(|(a, s)| 0.5 * (s[0] + s[1]) * (a[1] - a[0]))
                .sum();
            let got = *regime.first_moment.last().unwrap();
            assert!(
                (got - expected_mean).abs() < 0.05,
                "cell {} W(L) {got} vs ∫S {expected_mean}",
                entry.cell
            );
            // The DP tables exist and were computed from the winner family.
            assert!(!regime.checkpoint_cells.is_empty());
        }
    }

    #[test]
    fn pooled_fallback_is_the_record_weighted_mixture() {
        let catalog = winner_test_catalog(15);
        let multi = small_catalog_builder()
            .build_from_catalog(&catalog, &[5.0], 30.0, 0)
            .unwrap();
        let pooled = &multi.pooled.regimes[0];
        assert_eq!(pooled.served_family, "mixture");
        let horizon = catalog.horizon_hours;
        // The pooled survival curve equals the per-cell record-share weighted sum of
        // every catalog cell's winner survival — heavily sampled cells dominate.
        let dists: Vec<(f64, std::sync::Arc<dyn LifetimeDistribution>)> = catalog
            .cells
            .iter()
            .map(|cell| {
                (
                    cell.records as f64 / catalog.total_records as f64,
                    cell.model.to_distribution(horizon).unwrap(),
                )
            })
            .collect();
        for &i in &[0usize, 13, pooled.ages.len() / 2, pooled.ages.len() - 1] {
            let age = pooled.ages[i];
            let expected: f64 = if age >= horizon {
                0.0
            } else {
                dists.iter().map(|(w, d)| w * d.survival(age)).sum()
            };
            assert!(
                (pooled.survival[i] - expected).abs() < 1e-9,
                "pooled survival at {age}: {} vs {expected}",
                pooled.survival[i]
            );
        }
        // Weights sum to one, so the curve starts at certainty.
        assert!((pooled.survival[0] - 1.0).abs() < 1e-9);
        assert!(pooled.first_moment.windows(2).all(|w| w[1] >= w[0] - 1e-12));
    }

    #[test]
    fn showcase_catalog_builds_winner_driven_packs_for_every_cell() {
        // The family-showcase layout gives each cell a different ground-truth family
        // plus a five-record runt cell; the builder must ship a pack for *every* cell
        // (the runt included — it has no bathtub candidate at all) with the DP tables
        // and policy card computed from the cell's own winner.
        // Seed 8 is a verified full-spread draw: all four parametric families win
        // their cell and the runt keeps the empirical fallback (fitting is
        // deterministic, so this is stable, not flaky).
        let records = tcp_trace::TraceGenerator::new(8)
            .generate_family_showcase(300)
            .unwrap();
        let catalog = tcp_calibrate::Calibrator::new("showcase")
            .calibrate(&records, "showcase", 0)
            .unwrap();
        let multi = small_catalog_builder()
            .build_from_catalog(&catalog, &[5.0], 30.0, 0)
            .unwrap();
        assert_eq!(multi.cells.len(), catalog.cells.len());
        let mut families = std::collections::BTreeSet::new();
        for entry in &multi.cells {
            let regime = &entry.pack.regimes[0];
            let fit = catalog.find(&entry.cell).unwrap();
            assert_eq!(regime.served_family, fit.model.family);
            assert_eq!(regime.dp_family, regime.served_family, "{}", entry.cell);
            assert!(!regime.checkpoint_cells.is_empty());
            families.insert(regime.served_family.clone());
            if fit.candidates.is_empty() {
                // The runt cell: no parametric candidates, so no bathtub reference —
                // and still a full pack, driven by the empirical fallback.
                assert_eq!(regime.served_family, "empirical");
                assert!(regime.model.is_none());
            }
        }
        // The winners genuinely span every family (the layout's whole point): all four
        // parametric families plus the empirical fallback.
        for family in ["bathtub", "weibull", "exponential", "phased", "empirical"] {
            assert!(families.contains(family), "missing {family}: {families:?}");
        }
        // The pooled fallback is the winner mixture, with the pooled bathtub fit
        // recorded as the reference.
        let pooled = &multi.pooled.regimes[0];
        assert_eq!(pooled.served_family, "mixture");
        assert_eq!(pooled.dp_family, "mixture");
    }

    #[test]
    fn builder_knob_validation() {
        let spec = tiny_spec();
        let mut b = tiny_builder();
        b.age_points = 2;
        assert!(b.build_from_spec(&spec).is_err());
        let mut b = tiny_builder();
        b.max_checkpoint_job_hours = f64::NAN;
        assert!(b.build_from_spec(&spec).is_err());
    }
}
