//! `tcp-calibrate` — trace-calibrated regime catalogs.
//!
//! The paper's pipeline starts from *measured* preemption data: 870 Preemptible VMs
//! whose lifetimes, broken down by VM type, zone and time of day (Figures 1–2), are fit
//! to the bathtub model of Equation 1 before any policy analysis happens.  This crate is
//! that step for the workspace: it turns a recorded preemption CSV (the
//! [`tcp_trace`] schema) into a **calibrated regime catalog** that the scenario sweeps
//! (`kind = "calibrated"`) and the advisor's per-cell model packs consume.
//!
//! The pipeline, in layers:
//!
//! * [`cell`] — the calibration cell key `(VM type, zone, time of day)`, the grouping the
//!   paper's Figure 2 uses (idle and non-idle records are pooled per cell);
//! * [`fit`] — per-cell candidate fitting: the paper's constrained bathtub (Equation 1,
//!   via [`tcp_core`]'s fitter), Weibull and exponential baselines, a piecewise
//!   three-phase hazard (Section 8's sketch, fitted by closed-form exposure MLE), and a
//!   raw empirical fallback; winners are selected by Kolmogorov–Smirnov statistic with
//!   log-likelihood/AIC reported alongside;
//! * [`catalog`] — the versioned, deterministic JSON artifact ([`RegimeCatalog`]): one
//!   [`CellFit`] per cell plus a pooled all-records fit, self-contained (each cell
//!   carries its observed lifetimes) so downstream consumers never re-read the CSV;
//! * [`pipeline`] — the streaming calibration driver: records are partitioned into cells
//!   in one pass, and per-cell fitting fans out over the workspace's work-stealing
//!   driver ([`tcp_cloudsim::run_tasks`]) with byte-identical catalogs for every thread
//!   count;
//! * [`drift`] — catalog-vs-catalog drift detection: a two-sample Kolmogorov–Smirnov
//!   test per shared cell, judged against the `alpha`-level critical value or a fixed
//!   distance, powering `calibrate compare`.
//!
//! The `calibrate` binary wraps it into a CLI (`fit` / `inspect` / `compare`).

#![forbid(unsafe_code)]
#![deny(missing_docs)]
#![warn(clippy::all)]
// `!(x > 0.0)` style comparisons are used deliberately throughout: unlike `x <= 0.0`
// they are false for NaN, which is exactly the validation we want for config values.
#![allow(clippy::neg_cmp_op_on_partial_ord)]

pub mod catalog;
pub mod cell;
pub mod drift;
pub mod fit;
pub mod pipeline;

pub use catalog::{CellFit, RegimeCatalog, CATALOG_FORMAT_VERSION};
pub use cell::{CellKey, TodSlot};
pub use drift::{drift_report, CellDrift, DriftOptions};
pub use fit::{fit_cell, CalibratedModel, CandidateFit, FitOptions};
pub use pipeline::{Calibrator, CellPartition};
