//! The streaming calibration pipeline.
//!
//! [`CellPartition`] ingests records one at a time (or from any iterator) and buckets
//! their lifetimes into calibration cells in a single pass — no per-group re-scan of the
//! dataset.  [`Calibrator`] then fans the per-cell fitting out over the workspace's
//! work-stealing driver ([`tcp_cloudsim::run_tasks`]): the task list is `pooled` plus
//! the cells in canonical (sorted) order, results are collected in task order, and the
//! fitting itself is randomness-free — so the emitted catalog is byte-identical for
//! every thread count.
//!
//! Both stages are timed into the process-global [`tcp_obs`] registry
//! (`calibrate.stage.bucketing`, `calibrate.stage.fitting`; winner selection is timed
//! per cell inside [`fit_cell`]).  Instrumentation is strictly out-of-band: the catalog
//! bytes never depend on whether metrics are enabled.

use crate::catalog::{CellFit, RegimeCatalog, CATALOG_FORMAT_VERSION, POOLED_CELL};
use crate::cell::CellKey;
use crate::fit::{fit_cell, FitOptions, FitOutcome};
use std::collections::BTreeMap;
use tcp_cloudsim::run_tasks;
use tcp_numerics::{NumericsError, Result};
use tcp_trace::PreemptionRecord;

/// One-pass partition of a record stream into calibration cells.
#[derive(Debug, Clone, Default)]
pub struct CellPartition {
    cells: BTreeMap<CellKey, Vec<f64>>,
    censored: BTreeMap<CellKey, usize>,
    total: usize,
    /// Launch-hour cell width (`None` = the paper's day/night split).
    tod_hours: Option<u32>,
}

impl CellPartition {
    /// Creates an empty partition over the day/night split.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty partition over launch-hour cells of `width` hours
    /// (`calibrate fit --tod-hours N`); `width` must divide 24.
    pub fn with_tod_hours(width: u32) -> Result<Self> {
        if width == 0 || width >= 24 || 24 % width != 0 {
            return Err(NumericsError::invalid(format!(
                "tod_hours must divide 24 and lie in [1, 23], got {width}"
            )));
        }
        Ok(CellPartition {
            tod_hours: Some(width),
            ..Self::default()
        })
    }

    /// Ingests one record.  Fails only in launch-hour mode, when a record carries no
    /// launch hour.
    pub fn push(&mut self, record: &PreemptionRecord) -> Result<()> {
        let key = CellKey::of_with(record, self.tod_hours).map_err(NumericsError::invalid)?;
        self.cells
            .entry(key)
            .or_default()
            .push(record.lifetime_hours);
        if !record.preempted_before_deadline {
            *self.censored.entry(key).or_default() += 1;
        }
        self.total += 1;
        Ok(())
    }

    /// Builds a day/night partition from a whole dataset in one pass.
    pub fn from_records(records: &[PreemptionRecord]) -> Self {
        let mut partition = Self::new();
        for record in records {
            partition
                .push(record)
                .expect("day/night bucketing is total");
        }
        partition
    }

    /// Builds a partition honouring an optional launch-hour split.
    pub fn from_records_with(records: &[PreemptionRecord], tod_hours: Option<u32>) -> Result<Self> {
        let mut partition = match tod_hours {
            None => Self::new(),
            Some(width) => Self::with_tod_hours(width)?,
        };
        for record in records {
            partition.push(record)?;
        }
        Ok(partition)
    }

    /// Total records ingested.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of non-empty cells.
    pub fn cell_count(&self) -> usize {
        self.cells.len()
    }

    /// The non-empty cells in canonical (sorted) order.
    pub fn keys(&self) -> Vec<CellKey> {
        self.cells.keys().copied().collect()
    }

    /// The lifetimes of one cell (insertion order).
    pub fn lifetimes(&self, key: &CellKey) -> &[f64] {
        self.cells.get(key).map(Vec::as_slice).unwrap_or(&[])
    }
}

/// The calibration driver: partition + parallel per-cell fitting + catalog assembly.
#[derive(Debug, Clone)]
pub struct Calibrator {
    /// Catalog name.
    pub name: String,
    /// Fitting and selection knobs.
    pub options: FitOptions,
}

impl Calibrator {
    /// Creates a calibrator with default options.
    pub fn new(name: impl Into<String>) -> Self {
        Calibrator {
            name: name.into(),
            options: FitOptions::default(),
        }
    }

    fn cell_fit(
        &self,
        name: String,
        key: Option<CellKey>,
        lifetimes: &[f64],
        censored: usize,
        outcome: FitOutcome,
    ) -> CellFit {
        CellFit {
            cell: name,
            vm_type: key.map(|k| k.vm_type),
            zone: key.map(|k| k.zone),
            time_of_day: key.map(|k| k.time_of_day),
            records: lifetimes.len(),
            deadline_survivals: censored,
            mean_lifetime_hours: lifetimes.iter().sum::<f64>() / lifetimes.len() as f64,
            candidates: outcome.candidates,
            selection: outcome.selection,
            model: outcome.model,
        }
    }

    /// Calibrates a partitioned dataset on `threads` worker threads (`0` = all CPUs).
    ///
    /// `source` describes where the records came from (CSV path, generator seed) and is
    /// recorded verbatim in the catalog header.
    pub fn calibrate_partition(
        &self,
        partition: &CellPartition,
        source: &str,
        threads: usize,
    ) -> Result<RegimeCatalog> {
        self.options.validate()?;
        if partition.total() == 0 {
            return Err(NumericsError::invalid("cannot calibrate an empty dataset"));
        }
        let keys = partition.keys();
        let pooled: Vec<f64> = keys
            .iter()
            .flat_map(|k| partition.lifetimes(k).iter().copied())
            .collect();
        let pooled_censored: usize = partition.censored.values().sum();

        // Task 0 fits the pooled distribution; tasks 1.. fit the cells in sorted order.
        // Collection is in task order, and fitting is deterministic, so the catalog
        // bytes do not depend on the thread count.
        let outcomes: Vec<Result<FitOutcome>> = {
            let _fitting = tcp_obs::time!("calibrate.stage.fitting");
            run_tasks(keys.len() + 1, threads, |task| {
                // One trace per cell fit, rooted inside the worker closure so it
                // lands on whichever thread runs the task; the seed is the task
                // index, so sampling is deterministic for a given partition.  Inert
                // unless tracing is configured.
                let _cell_trace = tcp_obs::root_span!("calibrate.cell", task as u64, task as u64);
                match task {
                    0 => fit_cell(&pooled, &self.options),
                    i => fit_cell(partition.lifetimes(&keys[i - 1]), &self.options),
                }
            })
        };
        let mut outcomes = outcomes.into_iter();
        let pooled_outcome = outcomes
            .next()
            .expect("pooled task always present")
            .map_err(|e| NumericsError::invalid(format!("pooled fit failed: {e}")))?;
        let pooled_fit = self.cell_fit(
            POOLED_CELL.to_string(),
            None,
            &pooled,
            pooled_censored,
            pooled_outcome,
        );

        let mut cells = Vec::with_capacity(keys.len());
        for (key, outcome) in keys.iter().zip(outcomes) {
            let outcome = outcome
                .map_err(|e| NumericsError::invalid(format!("cell `{key}` fit failed: {e}")))?;
            cells.push(self.cell_fit(
                key.to_string(),
                Some(*key),
                partition.lifetimes(key),
                partition.censored.get(key).copied().unwrap_or(0),
                outcome,
            ));
        }

        let catalog = RegimeCatalog {
            format_version: CATALOG_FORMAT_VERSION,
            name: self.name.clone(),
            source: source.to_string(),
            horizon_hours: self.options.horizon_hours,
            total_records: partition.total(),
            options: self.options,
            pooled: pooled_fit,
            cells,
        };
        catalog.validate()?;
        Ok(catalog)
    }

    /// Calibrates a dataset of records (partitioning in one pass first), honouring the
    /// options' launch-hour split.
    pub fn calibrate(
        &self,
        records: &[PreemptionRecord],
        source: &str,
        threads: usize,
    ) -> Result<RegimeCatalog> {
        let partition = {
            let _bucketing = tcp_obs::time!("calibrate.stage.bucketing");
            CellPartition::from_records_with(records, self.options.tod_hours)?
        };
        self.calibrate_partition(&partition, source, threads)
    }

    /// Calibrates a preemption CSV (the [`tcp_trace`] schema).
    pub fn calibrate_csv(&self, path: &std::path::Path, threads: usize) -> Result<RegimeCatalog> {
        let records = tcp_trace::load_records_csv(path)?;
        self.calibrate(&records, &path.display().to_string(), threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_trace::TraceGenerator;

    fn study(total: usize, seed: u64) -> Vec<PreemptionRecord> {
        TraceGenerator::new(seed).generate_study(total, 60).unwrap()
    }

    #[test]
    fn partition_covers_every_record_in_one_pass() {
        let records = study(500, 1);
        let partition = CellPartition::from_records(&records);
        assert_eq!(partition.total(), 500);
        let sum: usize = partition
            .keys()
            .iter()
            .map(|k| partition.lifetimes(k).len())
            .sum();
        assert_eq!(sum, 500);
        // Keys come out sorted.
        let keys = partition.keys();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn launch_hour_cells_partition_finer_than_day_night() {
        let records: Vec<_> = TraceGenerator::new(9)
            .with_launch_hours(true)
            .generate_study(600, 60)
            .unwrap();
        // Day/night keys are untouched by the finer mode existing.
        let coarse = CellPartition::from_records(&records);
        assert!(coarse
            .keys()
            .iter()
            .all(|k| matches!(k.time_of_day, crate::TodSlot::Named(_))));
        // Hour cells: every key is an aligned 6-hour bucket, totals preserved.
        let fine = CellPartition::from_records_with(&records, Some(6)).unwrap();
        assert_eq!(fine.total(), coarse.total());
        for key in fine.keys() {
            let crate::TodSlot::Hours { start, width } = key.time_of_day else {
                panic!("expected hour cells, got {key}");
            };
            assert_eq!(width, 6);
            assert_eq!(start % 6, 0);
        }
        assert!(fine.cell_count() >= coarse.cell_count());
        // Hour mode on an hour-free dataset is a descriptive error.
        let plain = TraceGenerator::new(9).generate_study(50, 10).unwrap();
        let err = CellPartition::from_records_with(&plain, Some(6)).unwrap_err();
        assert!(err.to_string().contains("launch_hour"), "{err}");
        // Invalid widths are rejected.
        assert!(CellPartition::with_tod_hours(0).is_err());
        assert!(CellPartition::with_tod_hours(5).is_err());
        assert!(CellPartition::with_tod_hours(24).is_err());
    }

    #[test]
    fn launch_hour_catalog_calibrates_end_to_end() {
        let records: Vec<_> = TraceGenerator::new(21)
            .with_launch_hours(true)
            .generate_study(900, 80)
            .unwrap();
        let mut calibrator = Calibrator::new("hours");
        calibrator.options.tod_hours = Some(8);
        let catalog = calibrator.calibrate(&records, "synthetic", 0).unwrap();
        assert_eq!(catalog.total_records, 900);
        assert!(catalog
            .cells
            .iter()
            .all(|c| c.cell.contains("/h") && c.cell.len() > 3));
        // Round-trips through JSON (hour slots serialize as h08-16 style strings).
        let json = catalog.to_json().unwrap();
        let reparsed = crate::RegimeCatalog::from_json(&json).unwrap();
        assert_eq!(reparsed, catalog);
        // Thread-count invariance holds for hour cells too.
        let four = calibrator.calibrate(&records, "synthetic", 4).unwrap();
        assert_eq!(four.to_json().unwrap(), json);
    }

    #[test]
    fn calibration_produces_a_valid_catalog() {
        let records = study(700, 2);
        let catalog = Calibrator::new("test")
            .calibrate(&records, "synthetic seed 2", 0)
            .unwrap();
        assert_eq!(catalog.total_records, 700);
        assert_eq!(catalog.pooled.records, 700);
        assert!(!catalog.cells.is_empty());
        assert!(catalog.validate().is_ok());
        // The pooled fit has plenty of data, so parametric candidates exist and the
        // bathtub policy model is available.
        assert!(!catalog.pooled.candidates.is_empty());
        assert!(catalog.pooled.bathtub_model().is_some());
        // Figure-1 cell is oversampled, so it gets a parametric fit too.
        let fig1 = catalog.find("n1-highcpu-16/us-east1-b/day").unwrap();
        assert!(fig1.records >= 60);
        assert!(!fig1.candidates.is_empty());
    }

    #[test]
    fn catalogs_are_thread_count_invariant() {
        let records = study(600, 3);
        let calibrator = Calibrator::new("det");
        let one = calibrator.calibrate(&records, "s", 1).unwrap();
        let four = calibrator.calibrate(&records, "s", 4).unwrap();
        assert_eq!(one, four);
        assert_eq!(one.to_json().unwrap(), four.to_json().unwrap());
    }

    #[test]
    fn calibration_times_stages_and_counts_winners_in_the_registry() {
        fn stage_count(name: &str) -> u64 {
            tcp_obs::Registry::global()
                .histogram_snapshot(name)
                .map(|s| s.count)
                .unwrap_or(0)
        }
        fn winner_total() -> u64 {
            ["bathtub", "weibull", "exponential", "phased", "empirical"]
                .iter()
                .map(|f| tcp_obs::counter(&format!("calibrate.fit.winner.{f}")).get())
                .sum()
        }
        let records = study(500, 8);
        let bucketing = stage_count("calibrate.stage.bucketing");
        let fitting = stage_count("calibrate.stage.fitting");
        let selection = stage_count("calibrate.stage.winner_selection");
        let winners = winner_total();
        let catalog = Calibrator::new("obs").calibrate(&records, "s", 0).unwrap();
        // Registry state is process-global and other tests calibrate concurrently, so
        // assert this run's minimum contribution, not exact totals.
        let fits = catalog.cells.len() as u64 + 1;
        assert!(stage_count("calibrate.stage.bucketing") > bucketing);
        assert!(stage_count("calibrate.stage.fitting") > fitting);
        assert!(stage_count("calibrate.stage.winner_selection") >= selection + fits);
        assert!(winner_total() >= winners + fits);
    }

    #[test]
    fn empty_dataset_is_rejected() {
        assert!(Calibrator::new("x").calibrate(&[], "s", 1).is_err());
    }

    #[test]
    fn catalog_json_round_trips_exactly() {
        let records = study(400, 4);
        let catalog = Calibrator::new("rt").calibrate(&records, "s", 2).unwrap();
        let json = catalog.to_json().unwrap();
        let parsed = RegimeCatalog::from_json(&json).unwrap();
        assert_eq!(parsed, catalog);
        assert_eq!(parsed.to_json().unwrap(), json);
    }
}
