//! `calibrate` — fit, inspect and compare trace-calibrated regime catalogs.
//!
//! ```text
//! calibrate fit <records.csv> [--out catalog.json] [--name N] [--threads T]
//!               [--min-records K] [--ks-threshold X]
//! calibrate inspect <catalog.json> [--cell KEY]
//! calibrate compare <a.json> <b.json>
//! ```
//!
//! `fit` partitions the CSV into `(vm-type, zone, time-of-day)` cells and fits every
//! candidate family per cell, emitting a catalog that is byte-identical for every
//! `--threads` value.  `inspect` prints the per-cell selection table (or one cell's full
//! candidate scores).  `compare` diffs two catalogs cell by cell.

use std::path::PathBuf;
use std::process::ExitCode;
use tcp_calibrate::{Calibrator, FitOptions, RegimeCatalog};

/// Counting allocator so `fit --profile-file` attributes allocations to the
/// pipeline's span sites; counting stays off (one relaxed load per alloc)
/// unless that flag arms it.
#[global_allocator]
static ALLOC: tcp_obs::profile::CountingAlloc = tcp_obs::profile::CountingAlloc::new();

const USAGE: &str = "usage: calibrate <command> [options]

commands:
  fit <records.csv>        calibrate a preemption CSV into a regime catalog
      --out FILE             catalog output path (default catalog.json)
      --name N               catalog name (default: the CSV file stem)
      --threads T            worker threads (default 0 = all CPUs)
      --min-records K        cells below K records keep the empirical fallback (default 15)
      --ks-threshold X       parametric winners above this K-S keep the fallback (default 0.15)
      --tod-hours N          launch-hour cells of N hours (divides 24) instead of the
                             day/night split; needs a CSV with a launch_hour column
      --profile-file FILE    continuously profile the fit (97 Hz wall sampler +
                             allocation counting) and dump FILE.folded / .svg / .json

  inspect <catalog.json>   print the per-cell selection table
      --cell KEY             print one cell's full candidate scores instead
                             (vm-type/zone/time-of-day, or `pooled`)

  compare <a.json> <b.json>  diff two catalogs cell by cell, with a two-sample
                             Kolmogorov-Smirnov drift test per shared cell
      --alpha A              K-S significance level for the drift threshold (default 0.05)
      --ks-threshold X       fixed drift threshold overriding the alpha-derived one
      --fail-on-drift        exit non-zero when any shared cell drifts";

fn next_value<'a>(it: &mut std::slice::Iter<'a, String>, flag: &str) -> Result<&'a String, String> {
    it.next().ok_or_else(|| format!("{flag} needs a value"))
}

fn parse<T: std::str::FromStr>(v: &str, flag: &str) -> Result<T, String> {
    v.parse().map_err(|_| format!("invalid {flag} value `{v}`"))
}

fn positional(slot: &mut Option<PathBuf>, value: &str) -> Result<(), String> {
    if slot.is_some() {
        return Err(format!("unexpected extra argument `{value}`"));
    }
    *slot = Some(PathBuf::from(value));
    Ok(())
}

fn cmd_fit(argv: &[String]) -> Result<(), String> {
    let mut csv_path: Option<PathBuf> = None;
    let mut out = PathBuf::from("catalog.json");
    let mut name: Option<String> = None;
    let mut threads = 0usize;
    let mut options = FitOptions::default();
    let mut profile_file: Option<PathBuf> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--out" => out = PathBuf::from(next_value(&mut it, arg)?),
            "--name" => name = Some(next_value(&mut it, arg)?.clone()),
            "--threads" => threads = parse(next_value(&mut it, arg)?, arg)?,
            "--min-records" => options.min_records = parse(next_value(&mut it, arg)?, arg)?,
            "--ks-threshold" => options.ks_threshold = parse(next_value(&mut it, arg)?, arg)?,
            "--tod-hours" => options.tod_hours = Some(parse(next_value(&mut it, arg)?, arg)?),
            "--profile-file" => profile_file = Some(PathBuf::from(next_value(&mut it, arg)?)),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => positional(&mut csv_path, other)?,
        }
    }
    let csv_path = csv_path.ok_or("fit needs a records CSV")?;
    if profile_file.is_some() {
        tcp_obs::profile::set_counting(true);
        tcp_obs::profile::arm(97);
    }
    let name = name.unwrap_or_else(|| {
        csv_path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "catalog".to_string())
    });
    let calibrator = Calibrator { name, options };
    let started = std::time::Instant::now();
    let catalog = calibrator
        .calibrate_csv(&csv_path, threads)
        .map_err(|e| e.to_string())?;
    let json = catalog.to_json().map_err(|e| e.to_string())?;
    std::fs::write(&out, &json).map_err(|e| format!("cannot write {}: {e}", out.display()))?;
    let parametric = catalog
        .cells
        .iter()
        .filter(|c| c.model.family != "empirical")
        .count();
    println!(
        "calibrated `{}`: {} records -> {} cells ({} parametric, {} empirical), \
         pooled winner {}, {} bytes, {:.2}s -> {}",
        catalog.name,
        catalog.total_records,
        catalog.cells.len(),
        parametric,
        catalog.cells.len() - parametric,
        catalog.pooled.model.family,
        json.len(),
        started.elapsed().as_secs_f64(),
        out.display()
    );
    // The stdout line above is the human report; this is the same summary as one
    // structured stderr event line for log scrapers (stdout stays untouched).
    tcp_obs::event!(
        info,
        "calibrate.fit.done",
        catalog = catalog.name.clone(),
        records = catalog.total_records,
        cells = catalog.cells.len(),
        parametric = parametric,
        pooled_winner = catalog.pooled.model.family.clone(),
        elapsed_secs = started.elapsed().as_secs_f64(),
    );
    if let Some(path) = &profile_file {
        tcp_obs::profile::disarm();
        let written = tcp_obs::profile::dump_to(path)
            .map_err(|e| format!("cannot write profile {}: {e}", path.display()))?;
        println!(
            "profiled fit -> {} files at {}.*",
            written.len(),
            path.with_extension("").display()
        );
    }
    Ok(())
}

fn load(path: &std::path::Path) -> Result<RegimeCatalog, String> {
    RegimeCatalog::load(path).map_err(|e| e.to_string())
}

fn print_cell_detail(fit: &tcp_calibrate::CellFit) {
    println!(
        "cell {}: {} records ({} deadline survivals), mean lifetime {:.3} h",
        fit.cell, fit.records, fit.deadline_survivals, fit.mean_lifetime_hours
    );
    println!("selection: {}", fit.selection);
    // lint:allow(json-stability) human-readable cell detail on stdout, not wire JSON
    println!("model: {} params {:?}", fit.model.family, fit.model.params);
    if fit.candidates.is_empty() {
        println!("candidates: none (cell too small for parametric fits)");
        return;
    }
    println!(
        "{:<14} {:>8} {:>12} {:>12} {:>8} {:>8}",
        "family", "K-S", "log-lik", "AIC", "r2", "rmse"
    );
    for c in &fit.candidates {
        println!(
            "{:<14} {:>8.4} {:>12.2} {:>12.2} {:>8.4} {:>8.4}",
            c.family, c.ks_statistic, c.log_likelihood, c.aic, c.r_squared, c.rmse
        );
    }
}

fn cmd_inspect(argv: &[String]) -> Result<(), String> {
    let mut catalog_path: Option<PathBuf> = None;
    let mut cell: Option<String> = None;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--cell" => cell = Some(next_value(&mut it, arg)?.clone()),
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => positional(&mut catalog_path, other)?,
        }
    }
    let catalog = load(&catalog_path.ok_or("inspect needs a catalog file")?)?;
    match cell {
        Some(cell) => {
            let fit = catalog
                .find(&cell)
                .ok_or_else(|| format!("catalog has no cell `{cell}`"))?;
            print_cell_detail(fit);
        }
        None => {
            println!(
                "catalog `{}` from {}: {} records, horizon {} h",
                catalog.name, catalog.source, catalog.total_records, catalog.horizon_hours
            );
            println!(
                "{:<36} {:>7} {:>10} {:>12} {:>8}",
                "cell", "records", "mean (h)", "model", "K-S"
            );
            for fit in std::iter::once(&catalog.pooled).chain(&catalog.cells) {
                let ks = fit
                    .candidates
                    .iter()
                    .find(|c| c.family == fit.model.family)
                    .map(|c| format!("{:.4}", c.ks_statistic))
                    .unwrap_or_else(|| "-".to_string());
                println!(
                    "{:<36} {:>7} {:>10.3} {:>12} {:>8}",
                    fit.cell, fit.records, fit.mean_lifetime_hours, fit.model.family, ks
                );
            }
        }
    }
    Ok(())
}

fn cmd_compare(argv: &[String]) -> Result<(), String> {
    let mut a_path: Option<PathBuf> = None;
    let mut b_path: Option<PathBuf> = None;
    let mut options = tcp_calibrate::DriftOptions::default();
    let mut fail_on_drift = false;
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--alpha" => options.alpha = parse(next_value(&mut it, arg)?, arg)?,
            "--ks-threshold" => {
                options.fixed_threshold = Some(parse(next_value(&mut it, arg)?, arg)?)
            }
            "--fail-on-drift" => fail_on_drift = true,
            other if other.starts_with('-') => return Err(format!("unknown option `{other}`")),
            other => {
                if a_path.is_none() {
                    a_path = Some(PathBuf::from(other));
                } else {
                    positional(&mut b_path, other)?;
                }
            }
        }
    }
    let a = load(&a_path.ok_or("compare needs two catalog files")?)?;
    let b = load(&b_path.ok_or("compare needs two catalog files")?)?;
    println!(
        "comparing `{}` ({} records) with `{}` ({} records)",
        a.name, a.total_records, b.name, b.total_records
    );
    let drift = tcp_calibrate::drift_report(&a, &b, &options).map_err(|e| e.to_string())?;
    let mut differing = 0usize;
    for fit_a in std::iter::once(&a.pooled).chain(&a.cells) {
        match b.find(&fit_a.cell) {
            None => {
                differing += 1;
                println!("  {}: only in `{}`", fit_a.cell, a.name);
            }
            Some(fit_b) => {
                let mean_delta = fit_b.mean_lifetime_hours - fit_a.mean_lifetime_hours;
                if fit_a.model.family != fit_b.model.family {
                    differing += 1;
                    println!(
                        "  {}: winner {} -> {} (mean lifetime {:+.3} h)",
                        fit_a.cell, fit_a.model.family, fit_b.model.family, mean_delta
                    );
                } else if mean_delta.abs() > 0.5 {
                    differing += 1;
                    println!(
                        "  {}: same winner {}, mean lifetime {:+.3} h",
                        fit_a.cell, fit_a.model.family, mean_delta
                    );
                }
            }
        }
    }
    for fit_b in &b.cells {
        if a.find(&fit_b.cell).is_none() {
            differing += 1;
            println!("  {}: only in `{}`", fit_b.cell, b.name);
        }
    }
    if differing == 0 {
        println!("  catalogs agree on every cell");
    } else {
        println!("  {differing} cell(s) differ");
    }
    println!(
        "drift (two-sample K-S, {}):",
        match options.fixed_threshold {
            Some(t) => format!("fixed threshold {t:.4}"),
            None => format!("alpha {:.3}", options.alpha),
        }
    );
    let mut drifted = 0usize;
    for cell in &drift {
        if cell.drifted {
            drifted += 1;
            // Drifted cells also go out as structured warn events: they are the
            // actionable signal (recalibrate this cell), and the warn level lands
            // them in the event log's recent-errors ring.
            tcp_obs::event!(
                warn,
                "calibrate.drift",
                cell = cell.cell.clone(),
                ks_statistic = cell.ks_statistic,
                threshold = cell.threshold,
                records_a = cell.records_a,
                records_b = cell.records_b,
            );
        }
        println!(
            "  {:<36} D {:.4} vs {:.4} ({} vs {} records): {}",
            cell.cell,
            cell.ks_statistic,
            cell.threshold,
            cell.records_a,
            cell.records_b,
            if cell.drifted { "DRIFT" } else { "pass" }
        );
    }
    println!("  {} of {} shared cell(s) drifted", drifted, drift.len());
    if fail_on_drift && drifted > 0 {
        return Err(format!("{drifted} cell(s) drifted"));
    }
    Ok(())
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match argv.first().map(String::as_str) {
        Some("fit") => cmd_fit(&argv[1..]),
        Some("inspect") => cmd_inspect(&argv[1..]),
        Some("compare") => cmd_compare(&argv[1..]),
        Some("--help" | "-h") | None => return tcp_obs::cli::usage_error(USAGE),
        Some(other) => {
            return tcp_obs::cli::usage_error(format_args!("unknown command `{other}`\n\n{USAGE}"))
        }
    };
    tcp_obs::cli::exit_outcome(outcome)
}
