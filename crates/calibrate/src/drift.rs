//! Catalog-vs-catalog drift detection.
//!
//! `calibrate compare` needs more than mean deltas: two catalogs of the same fleet can
//! keep their per-cell means while the lifetime *distribution* shifts underneath (a new
//! reclamation schedule, a changed early-failure mode).  Because catalogs are
//! self-contained — every cell carries its observed lifetimes — the comparison can run a
//! proper two-sample Kolmogorov–Smirnov test per shared cell, no CSV required.
//!
//! The decision rule per cell: drift is flagged when the two-sample statistic exceeds a
//! threshold that is either the asymptotic critical value at significance `alpha`
//! (scaled for the two sample sizes) or a fixed caller-supplied distance.

use crate::catalog::RegimeCatalog;
use serde::{Deserialize, Serialize};
use tcp_numerics::stats::{ks_two_sample, ks_two_sample_threshold};
use tcp_numerics::{NumericsError, Result};

/// Knobs of the per-cell drift test.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DriftOptions {
    /// Significance level of the two-sample K-S test (default 0.05).
    pub alpha: f64,
    /// Fixed distance threshold overriding the `alpha`-derived critical value, when
    /// set.  Useful for "alert me on drift bigger than X" policies independent of
    /// sample size.
    pub fixed_threshold: Option<f64>,
}

impl Default for DriftOptions {
    fn default() -> Self {
        DriftOptions {
            alpha: 0.05,
            fixed_threshold: None,
        }
    }
}

impl DriftOptions {
    fn validate(&self) -> Result<()> {
        if !(self.alpha > 0.0 && self.alpha < 1.0) {
            return Err(NumericsError::invalid("alpha must be inside (0, 1)"));
        }
        if let Some(t) = self.fixed_threshold {
            if !(t > 0.0) || !t.is_finite() {
                return Err(NumericsError::invalid(
                    "fixed drift threshold must be positive",
                ));
            }
        }
        Ok(())
    }
}

/// The drift verdict for one cell present in both catalogs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellDrift {
    /// Cell name (`vm-type/zone/time-of-day`, or `pooled`).
    pub cell: String,
    /// Records backing the cell in the first catalog.
    pub records_a: usize,
    /// Records backing the cell in the second catalog.
    pub records_b: usize,
    /// Two-sample Kolmogorov–Smirnov statistic between the cells' lifetimes.
    pub ks_statistic: f64,
    /// The threshold the statistic was judged against.
    pub threshold: f64,
    /// Whether the cell's lifetime distribution drifted (`ks_statistic > threshold`).
    pub drifted: bool,
}

/// Runs the two-sample K-S drift test on every cell present in both catalogs — the
/// pooled entry first, then the shared cells in the first catalog's order.  Cells
/// present in only one catalog are not drift-testable and are skipped (the `compare`
/// CLI reports them separately).
///
/// Every run also publishes to the process-global [`tcp_obs`] registry so a scraping
/// loop around `calibrate compare` can alert on live drift: the
/// `calibrate.drift.cells_flagged` counter advances by the number of drifted cells
/// (registered at zero even when nothing drifts), and each tested cell's statistic
/// lands in a `calibrate.drift.ks.<cell>` gauge.  Cell names are bounded by the
/// catalogs' own cell sets, so the gauge family cannot grow without bound.
pub fn drift_report(
    a: &RegimeCatalog,
    b: &RegimeCatalog,
    options: &DriftOptions,
) -> Result<Vec<CellDrift>> {
    options.validate()?;
    let mut report = Vec::new();
    for fit_a in std::iter::once(&a.pooled).chain(&a.cells) {
        let Some(fit_b) = b.find(&fit_a.cell) else {
            continue;
        };
        let ks = ks_two_sample(&fit_a.model.lifetimes, &fit_b.model.lifetimes)?;
        let threshold = match options.fixed_threshold {
            Some(fixed) => fixed,
            None => ks_two_sample_threshold(options.alpha, fit_a.records, fit_b.records)?,
        };
        report.push(CellDrift {
            cell: fit_a.cell.clone(),
            records_a: fit_a.records,
            records_b: fit_b.records,
            ks_statistic: ks,
            threshold,
            drifted: ks > threshold,
        });
    }
    let flagged = report.iter().filter(|cell| cell.drifted).count() as u64;
    tcp_obs::counter("calibrate.drift.cells_flagged").add(flagged);
    for cell in &report {
        tcp_obs::gauge(&format!("calibrate.drift.ks.{}", cell.cell)).set(cell.ks_statistic);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::Calibrator;
    use tcp_trace::{PreemptionRecord, TraceGenerator};

    fn study(seed: u64) -> Vec<PreemptionRecord> {
        TraceGenerator::new(seed).generate_study(600, 90).unwrap()
    }

    fn catalog(name: &str, records: &[PreemptionRecord]) -> RegimeCatalog {
        Calibrator::new(name)
            .calibrate(records, "synthetic", 0)
            .unwrap()
    }

    #[test]
    fn identical_catalogs_never_drift() {
        let records = study(5);
        let a = catalog("a", &records);
        let b = catalog("b", &records);
        let report = drift_report(&a, &b, &DriftOptions::default()).unwrap();
        assert!(!report.is_empty());
        assert_eq!(report[0].cell, "pooled");
        for cell in &report {
            assert_eq!(cell.ks_statistic, 0.0, "{}", cell.cell);
            assert!(!cell.drifted, "{}", cell.cell);
        }
    }

    #[test]
    fn resampling_the_same_fleet_passes_but_a_shifted_fleet_fails() {
        let a = catalog("a", &study(5));
        // A fresh draw from the same ground truth: the pooled cell (600 records) must
        // pass at alpha 0.05 by a wide margin.
        let b = catalog("b", &study(6));
        let report = drift_report(&a, &b, &DriftOptions::default()).unwrap();
        let pooled = &report[0];
        assert_eq!(pooled.cell, "pooled");
        assert!(
            !pooled.drifted,
            "same-fleet pooled drift: D={} threshold={}",
            pooled.ks_statistic, pooled.threshold
        );
        // Halving every lifetime is a gross distribution shift the mean-delta check
        // could also see — but the K-S test must flag it even though the *shape* of the
        // records is otherwise identical.
        let mut shifted = study(5);
        for record in &mut shifted {
            record.lifetime_hours *= 0.5;
        }
        let c = catalog("c", &shifted);
        let report = drift_report(&a, &c, &DriftOptions::default()).unwrap();
        assert!(
            report[0].drifted,
            "pooled must drift after halving lifetimes"
        );
    }

    #[test]
    fn fixed_threshold_overrides_the_critical_value() {
        let a = catalog("a", &study(5));
        let b = catalog("b", &study(6));
        // An absurdly tight fixed threshold flags even sampling noise...
        let tight = DriftOptions {
            alpha: 0.05,
            fixed_threshold: Some(1e-6),
        };
        let report = drift_report(&a, &b, &tight).unwrap();
        assert!(report[0].drifted);
        assert_eq!(report[0].threshold, 1e-6);
        // ...and an impossible one never fires.
        let loose = DriftOptions {
            alpha: 0.05,
            fixed_threshold: Some(1.0),
        };
        let report = drift_report(&a, &b, &loose).unwrap();
        assert!(report.iter().all(|c| !c.drifted));
    }

    #[test]
    fn drift_metrics_land_in_the_global_registry() {
        let a = catalog("a", &study(5));
        let b = catalog("b", &study(6));
        let counter = tcp_obs::counter("calibrate.drift.cells_flagged");
        let before = counter.get();
        // A near-zero fixed threshold flags every shared cell, so this run's
        // contribution to the (globally cumulative) counter is exactly `drifted`.
        let tight = DriftOptions {
            alpha: 0.05,
            fixed_threshold: Some(1e-6),
        };
        let report = drift_report(&a, &b, &tight).unwrap();
        let drifted = report.iter().filter(|c| c.drifted).count() as u64;
        assert!(drifted > 0);
        assert!(
            counter.get() >= before + drifted,
            "cells_flagged must advance by at least this run's {drifted} flags"
        );
        // Every tested cell exports its statistic as a gauge.  Other tests may run
        // drift_report concurrently on the same cell names, so assert the invariant
        // (a valid K-S value) rather than this run's exact value.
        for cell in &report {
            let value = tcp_obs::gauge(&format!("calibrate.drift.ks.{}", cell.cell)).get();
            assert!((0.0..=1.0).contains(&value), "{}: {value}", cell.cell);
        }
    }

    #[test]
    fn invalid_options_are_rejected() {
        let a = catalog("a", &study(5));
        for options in [
            DriftOptions {
                alpha: 0.0,
                fixed_threshold: None,
            },
            DriftOptions {
                alpha: 1.5,
                fixed_threshold: None,
            },
            DriftOptions {
                alpha: 0.05,
                fixed_threshold: Some(f64::NAN),
            },
        ] {
            assert!(drift_report(&a, &a, &options).is_err(), "{options:?}");
        }
    }
}
