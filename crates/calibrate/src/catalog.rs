//! The calibrated regime catalog — the versioned JSON artifact `calibrate fit` produces.
//!
//! A catalog is the dataset's model per cell plus a pooled all-records fit, with every
//! candidate's goodness-of-fit scores preserved so `calibrate inspect`/`compare` (and
//! later re-anchors) can audit the selection.  Catalogs are **self-contained**: each
//! entry carries its observed lifetimes, so consumers (sweeps, advisor packs, refits)
//! never go back to the CSV.  Serialization is deterministic — the same records and
//! options produce byte-identical JSON for every thread count.

use crate::cell::{CellKey, TodSlot};
use crate::fit::{CalibratedModel, CandidateFit, FitOptions};
use serde::{Deserialize, Serialize};
use std::path::Path;
use tcp_core::BathtubModel;
use tcp_dists::ConstrainedBathtub;
use tcp_numerics::{NumericsError, Result};
use tcp_trace::{VmType, Zone};

/// Current catalog format version; bumped whenever the schema changes shape.
pub const CATALOG_FORMAT_VERSION: u32 = 1;

/// The name of the pooled (all-records) pseudo-cell.
pub const POOLED_CELL: &str = "pooled";

/// One calibrated cell (or the pooled entry, whose dimension fields are `None`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CellFit {
    /// Cell name: `vm-type/zone/time-of-day`, or `pooled` for the all-records entry.
    pub cell: String,
    /// Machine type (absent for the pooled entry).
    pub vm_type: Option<VmType>,
    /// Zone (absent for the pooled entry).
    pub zone: Option<Zone>,
    /// Time-of-day slot — `day`/`night`, or a launch-hour bucket like `h08-12` when the
    /// catalog was fitted with `--tod-hours` (absent for the pooled entry).
    pub time_of_day: Option<TodSlot>,
    /// Number of observed records in the cell.
    pub records: usize,
    /// How many of them survived to the deadline (right-censored observations).
    pub deadline_survivals: usize,
    /// Mean observed lifetime, hours.
    pub mean_lifetime_hours: f64,
    /// Every parametric candidate that fitted, sorted by ascending K-S statistic.
    pub candidates: Vec<CandidateFit>,
    /// Why the winning model was selected.
    pub selection: String,
    /// The winning model (self-contained, lifetimes included).
    pub model: CalibratedModel,
}

impl CellFit {
    /// The cell's bathtub fit as a policy-ready [`BathtubModel`], regardless of which
    /// family won the selection (the sweep/advisor policy stack is built on Equation 1,
    /// so it consumes the bathtub candidate even when e.g. `phased` models the ground
    /// truth better).  `None` when the cell was too small for parametric fits.
    pub fn bathtub_model(&self) -> Option<BathtubModel> {
        if let Some(model) = self.model.bathtub() {
            return Some(model);
        }
        let candidate = self.candidates.iter().find(|c| c.family == "bathtub")?;
        if candidate.params.len() != 4 {
            return None;
        }
        ConstrainedBathtub::from_parts(
            candidate.params[0],
            candidate.params[1],
            candidate.params[2],
            candidate.params[3],
        )
        .ok()
        .map(BathtubModel::from_distribution)
    }

    /// The cell key, when this is a real cell (not the pooled entry).
    pub fn key(&self) -> Option<CellKey> {
        Some(CellKey {
            vm_type: self.vm_type?,
            zone: self.zone?,
            time_of_day: self.time_of_day?,
        })
    }

    fn validate(&self) -> Result<()> {
        if self.records == 0 {
            return Err(NumericsError::invalid(format!(
                "catalog cell `{}` has zero records",
                self.cell
            )));
        }
        if self.model.lifetimes.len() != self.records {
            return Err(NumericsError::invalid(format!(
                "catalog cell `{}` stores {} lifetimes for {} records",
                self.cell,
                self.model.lifetimes.len(),
                self.records
            )));
        }
        if self.cell != POOLED_CELL {
            let key = self.key().ok_or_else(|| {
                NumericsError::invalid(format!(
                    "catalog cell `{}` is missing its dimension fields",
                    self.cell
                ))
            })?;
            if key.to_string() != self.cell {
                return Err(NumericsError::invalid(format!(
                    "catalog cell name `{}` does not match its dimensions `{key}`",
                    self.cell
                )));
            }
        }
        Ok(())
    }
}

/// A complete calibrated regime catalog.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RegimeCatalog {
    /// Schema version; [`RegimeCatalog::from_json`] rejects mismatches.
    pub format_version: u32,
    /// Catalog name (CLI `--name`, defaults to the CSV stem).
    pub name: String,
    /// Where the records came from (CSV path or a generator description).
    pub source: String,
    /// Temporal constraint `L` in hours.
    pub horizon_hours: f64,
    /// Total records calibrated (across all cells).
    pub total_records: usize,
    /// The fitting options the catalog was built with.
    pub options: FitOptions,
    /// The pooled all-records fit — what `kind = "trace"` would have used, kept as the
    /// routing fallback and the baseline the per-cell fits improve on.
    pub pooled: CellFit,
    /// Per-cell fits, sorted by cell key (canonical order).
    pub cells: Vec<CellFit>,
}

impl RegimeCatalog {
    /// Serializes the catalog to compact JSON (deterministic byte-for-byte).
    pub fn to_json(&self) -> Result<String> {
        serde_json::to_string(self).map_err(|e| NumericsError::invalid(format!("catalog: {e}")))
    }

    /// Parses a catalog from JSON, rejecting format-version mismatches.
    pub fn from_json(text: &str) -> Result<Self> {
        let catalog: RegimeCatalog = serde_json::from_str(text)
            .map_err(|e| NumericsError::invalid(format!("catalog: {e}")))?;
        if catalog.format_version != CATALOG_FORMAT_VERSION {
            return Err(NumericsError::invalid(format!(
                "catalog format version {} is not supported (this build reads version {})",
                catalog.format_version, CATALOG_FORMAT_VERSION
            )));
        }
        catalog.validate()?;
        Ok(catalog)
    }

    /// Loads a catalog from a JSON file.
    pub fn load(path: &Path) -> Result<Self> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| NumericsError::invalid(format!("cannot read {}: {e}", path.display())))?;
        Self::from_json(&text)
    }

    /// Structural sanity checks shared by the builder and the loader.
    pub fn validate(&self) -> Result<()> {
        if self.cells.is_empty() {
            return Err(NumericsError::invalid("catalog contains no cells"));
        }
        if self.pooled.cell != POOLED_CELL {
            return Err(NumericsError::invalid(
                "the pooled entry must be named `pooled`",
            ));
        }
        self.pooled.validate()?;
        let mut keys = Vec::with_capacity(self.cells.len());
        for cell in &self.cells {
            cell.validate()?;
            keys.push(cell.key().expect("validated as a real cell"));
        }
        if !keys.windows(2).all(|w| w[0] < w[1]) {
            return Err(NumericsError::invalid(
                "catalog cells must be unique and sorted by cell key",
            ));
        }
        let cell_total: usize = self.cells.iter().map(|c| c.records).sum();
        if cell_total != self.total_records || self.pooled.records != self.total_records {
            return Err(NumericsError::invalid(format!(
                "catalog record counts disagree: total {} vs cells {} vs pooled {}",
                self.total_records, cell_total, self.pooled.records
            )));
        }
        Ok(())
    }

    /// Looks up a cell by name (`vm-type/zone/time-of-day`, or `pooled`).
    pub fn find(&self, cell: &str) -> Option<&CellFit> {
        if cell == POOLED_CELL {
            return Some(&self.pooled);
        }
        self.cells.iter().find(|c| c.cell == cell)
    }

    /// Names of every real cell, in catalog order.
    pub fn cell_names(&self) -> Vec<String> {
        self.cells.iter().map(|c| c.cell.clone()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn version_mismatch_is_rejected() {
        let json = format!("{{\"format_version\":{}}}", CATALOG_FORMAT_VERSION + 1);
        // Even a structurally incomplete catalog with the wrong version should fail on
        // deserialization (missing fields) or version — either way, an error.
        assert!(RegimeCatalog::from_json(&json).is_err());
    }

    #[test]
    fn loading_a_missing_file_errors() {
        assert!(RegimeCatalog::load(Path::new("/nonexistent/catalog.json")).is_err());
    }
}
