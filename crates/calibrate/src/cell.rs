//! The calibration cell key.
//!
//! Calibration partitions a dataset along the three dimensions the paper's Figure 2
//! breaks preemptions down by: VM type (2a), time of day (2b) and zone (2c).  Idle and
//! non-idle records are pooled per cell — the workload split is a property of the
//! *tenant*, not of the provider-side regime the catalog models.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use tcp_trace::{PreemptionRecord, TimeOfDay, VmType, Zone};

/// One calibration cell: `(VM type, zone, time of day)`.
///
/// Renders as (and parses from) `vm-type/zone/time-of-day` using the GCP names, e.g.
/// `n1-highcpu-16/us-east1-b/day` — the form CLIs, sweep specs and advisory requests use
/// to name cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellKey {
    /// Machine type.
    pub vm_type: VmType,
    /// Zone.
    pub zone: Zone,
    /// Time of day at launch.
    pub time_of_day: TimeOfDay,
}

impl CellKey {
    /// The cell a record falls into.
    pub fn of(record: &PreemptionRecord) -> Self {
        CellKey {
            vm_type: record.vm_type,
            zone: record.zone,
            time_of_day: record.time_of_day,
        }
    }

    /// Every cell, in the catalog's canonical (sorted) order.
    pub fn all() -> Vec<CellKey> {
        let mut out = Vec::with_capacity(5 * 4 * 2);
        for vm_type in VmType::all() {
            for zone in Zone::all() {
                for time_of_day in TimeOfDay::all() {
                    out.push(CellKey {
                        vm_type,
                        zone,
                        time_of_day,
                    });
                }
            }
        }
        out.sort();
        out
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.vm_type, self.zone, self.time_of_day)
    }
}

impl FromStr for CellKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.trim().split('/').collect();
        let [vm, zone, tod] = parts[..] else {
            return Err(format!(
                "cell key `{s}` must have the form vm-type/zone/time-of-day \
                 (e.g. n1-highcpu-16/us-east1-b/day)"
            ));
        };
        Ok(CellKey {
            vm_type: vm.parse()?,
            zone: zone.parse()?,
            time_of_day: tod.parse()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_trace::WorkloadKind;

    #[test]
    fn display_round_trips_through_from_str() {
        for cell in CellKey::all() {
            assert_eq!(cell.to_string().parse::<CellKey>().unwrap(), cell);
        }
    }

    #[test]
    fn all_cells_are_distinct_sorted_and_complete() {
        let all = CellKey::all();
        assert_eq!(all.len(), 5 * 4 * 2);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn malformed_keys_are_rejected() {
        assert!("n1-highcpu-16/us-east1-b".parse::<CellKey>().is_err());
        assert!("n1-highcpu-16/us-east1-b/day/extra"
            .parse::<CellKey>()
            .is_err());
        assert!("n9-mega-64/us-east1-b/day".parse::<CellKey>().is_err());
        assert!("n1-highcpu-16/mars-east1-z/day".parse::<CellKey>().is_err());
        assert!("n1-highcpu-16/us-east1-b/dusk".parse::<CellKey>().is_err());
    }

    #[test]
    fn records_map_to_their_cell_ignoring_workload() {
        let mk = |workload| {
            PreemptionRecord::new(
                VmType::N1HighCpu8,
                Zone::UsWest1A,
                TimeOfDay::Night,
                workload,
                2.0,
            )
            .unwrap()
        };
        let idle = CellKey::of(&mk(WorkloadKind::Idle));
        let busy = CellKey::of(&mk(WorkloadKind::NonIdle));
        assert_eq!(idle, busy);
        assert_eq!(idle.to_string(), "n1-highcpu-8/us-west1-a/night");
    }
}
