//! The calibration cell key.
//!
//! Calibration partitions a dataset along the three dimensions the paper's Figure 2
//! breaks preemptions down by: VM type (2a), time of day (2b) and zone (2c).  Idle and
//! non-idle records are pooled per cell — the workload split is a property of the
//! *tenant*, not of the provider-side regime the catalog models.
//!
//! The time-of-day dimension has two granularities: the paper's day/night split
//! ([`TodSlot::Named`]), and finer launch-hour buckets ([`TodSlot::Hours`]) produced by
//! `calibrate fit --tod-hours N` for datasets whose records carry a launch hour.  The
//! day/night cell keys are unchanged by the finer mode — `n1-highcpu-16/us-east1-b/day`
//! keeps meaning exactly what it always has — and hour cells render as
//! `n1-highcpu-16/us-east1-b/h08-12`.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;
use tcp_trace::{PreemptionRecord, TimeOfDay, VmType, Zone};

/// The time-of-day slot of a calibration cell: the paper's day/night bucket, or one of
/// the finer launch-hour buckets of `--tod-hours N`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TodSlot {
    /// The day/night split of Figure 2b (day = 8 AM – 8 PM local).
    Named(TimeOfDay),
    /// A launch-hour bucket `[start, start + width)` in local hours.
    Hours {
        /// First hour of the bucket (0–23).
        start: u32,
        /// Bucket width in hours (divides 24).
        width: u32,
    },
}

impl TodSlot {
    /// The bucket a launch hour falls into for width `width` (which must divide 24).
    pub fn hour_bucket(hour: u32, width: u32) -> TodSlot {
        let width = width.clamp(1, 24);
        TodSlot::Hours {
            start: (hour % 24) / width * width,
            width,
        }
    }
}

impl fmt::Display for TodSlot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TodSlot::Named(tod) => write!(f, "{tod}"),
            TodSlot::Hours { start, width } => write!(f, "h{:02}-{:02}", start, start + width),
        }
    }
}

impl FromStr for TodSlot {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Ok(tod) = s.parse::<TimeOfDay>() {
            return Ok(TodSlot::Named(tod));
        }
        let hours = s
            .strip_prefix('h')
            .or_else(|| s.strip_prefix('H'))
            .ok_or_else(|| format!("unknown time-of-day slot: {s}"))?;
        let (start, end) = hours
            .split_once('-')
            .ok_or_else(|| format!("hour slot `{s}` must have the form hSS-EE (e.g. h08-12)"))?;
        let start: u32 = start
            .parse()
            .map_err(|_| format!("bad start hour in slot `{s}`"))?;
        let end: u32 = end
            .parse()
            .map_err(|_| format!("bad end hour in slot `{s}`"))?;
        if start >= 24 || end <= start || end > 24 {
            return Err(format!(
                "hour slot `{s}` must satisfy 0 <= start < end <= 24"
            ));
        }
        Ok(TodSlot::Hours {
            start,
            width: end - start,
        })
    }
}

// Hand-written serde: `Named` keeps the exact encoding the old `TimeOfDay` field used
// ("Day"/"Night" variant strings), so catalogs written before the launch-hour mode
// existed load unchanged; `Hours` serializes as its display form ("h08-12").
impl Serialize for TodSlot {
    fn serialize(&self) -> serde::Value {
        serde::Value::Str(match self {
            TodSlot::Named(TimeOfDay::Day) => "Day".to_string(),
            TodSlot::Named(TimeOfDay::Night) => "Night".to_string(),
            TodSlot::Hours { .. } => self.to_string(),
        })
    }
}

impl Deserialize for TodSlot {
    fn deserialize(value: &serde::Value) -> Result<Self, serde::Error> {
        let s = value
            .as_str()
            .ok_or_else(|| serde::Error::expected("a string", "TodSlot", value))?;
        s.parse()
            .map_err(|e: String| serde::Error::custom(format!("TodSlot: {e}")))
    }
}

/// One calibration cell: `(VM type, zone, time-of-day slot)`.
///
/// Renders as (and parses from) `vm-type/zone/time-of-day` using the GCP names, e.g.
/// `n1-highcpu-16/us-east1-b/day` (or `…/h08-12` for launch-hour cells) — the form
/// CLIs, sweep specs and advisory requests use to name cells.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CellKey {
    /// Machine type.
    pub vm_type: VmType,
    /// Zone.
    pub zone: Zone,
    /// Time-of-day slot at launch.
    pub time_of_day: TodSlot,
}

impl CellKey {
    /// The day/night cell a record falls into (the paper's default split).
    pub fn of(record: &PreemptionRecord) -> Self {
        CellKey {
            vm_type: record.vm_type,
            zone: record.zone,
            time_of_day: TodSlot::Named(record.time_of_day),
        }
    }

    /// The cell a record falls into under an optional launch-hour split: `None` keeps
    /// the day/night bucket, `Some(width)` buckets by the record's `launch_hour`
    /// (an error when the record carries none).
    pub fn of_with(record: &PreemptionRecord, tod_hours: Option<u32>) -> Result<Self, String> {
        let time_of_day = match tod_hours {
            None => TodSlot::Named(record.time_of_day),
            Some(width) => {
                let hour = record.launch_hour.ok_or_else(|| {
                    "launch-hour cells need records with a launch_hour column \
                     (regenerate the dataset with hours, e.g. `trace gen --launch-hours`)"
                        .to_string()
                })?;
                TodSlot::hour_bucket(hour, width)
            }
        };
        Ok(CellKey {
            vm_type: record.vm_type,
            zone: record.zone,
            time_of_day,
        })
    }

    /// Every day/night cell, in the catalog's canonical (sorted) order.
    pub fn all() -> Vec<CellKey> {
        let mut out = Vec::with_capacity(5 * 4 * 2);
        for vm_type in VmType::all() {
            for zone in Zone::all() {
                for time_of_day in TimeOfDay::all() {
                    out.push(CellKey {
                        vm_type,
                        zone,
                        time_of_day: TodSlot::Named(time_of_day),
                    });
                }
            }
        }
        out.sort();
        out
    }
}

impl fmt::Display for CellKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}/{}", self.vm_type, self.zone, self.time_of_day)
    }
}

impl FromStr for CellKey {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let parts: Vec<&str> = s.trim().split('/').collect();
        let [vm, zone, tod] = parts[..] else {
            return Err(format!(
                "cell key `{s}` must have the form vm-type/zone/time-of-day \
                 (e.g. n1-highcpu-16/us-east1-b/day)"
            ));
        };
        Ok(CellKey {
            vm_type: vm.parse()?,
            zone: zone.parse()?,
            time_of_day: tod.parse()?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcp_trace::WorkloadKind;

    #[test]
    fn display_round_trips_through_from_str() {
        for cell in CellKey::all() {
            assert_eq!(cell.to_string().parse::<CellKey>().unwrap(), cell);
        }
        let hour_cell = CellKey {
            vm_type: VmType::N1HighCpu16,
            zone: Zone::UsEast1B,
            time_of_day: TodSlot::Hours { start: 8, width: 4 },
        };
        assert_eq!(hour_cell.to_string(), "n1-highcpu-16/us-east1-b/h08-12");
        assert_eq!(hour_cell.to_string().parse::<CellKey>().unwrap(), hour_cell);
    }

    #[test]
    fn all_cells_are_distinct_sorted_and_complete() {
        let all = CellKey::all();
        assert_eq!(all.len(), 5 * 4 * 2);
        assert!(all.windows(2).all(|w| w[0] < w[1]));
    }

    #[test]
    fn malformed_keys_are_rejected() {
        assert!("n1-highcpu-16/us-east1-b".parse::<CellKey>().is_err());
        assert!("n1-highcpu-16/us-east1-b/day/extra"
            .parse::<CellKey>()
            .is_err());
        assert!("n9-mega-64/us-east1-b/day".parse::<CellKey>().is_err());
        assert!("n1-highcpu-16/mars-east1-z/day".parse::<CellKey>().is_err());
        assert!("n1-highcpu-16/us-east1-b/dusk".parse::<CellKey>().is_err());
        assert!("n1-highcpu-16/us-east1-b/h12-08"
            .parse::<CellKey>()
            .is_err());
        assert!("n1-highcpu-16/us-east1-b/h00-25"
            .parse::<CellKey>()
            .is_err());
    }

    #[test]
    fn tod_slot_serde_is_back_compatible() {
        // Old catalogs stored the derived `TimeOfDay` encoding ("Day"/"Night").
        for (text, slot) in [
            ("Day", TodSlot::Named(TimeOfDay::Day)),
            ("day", TodSlot::Named(TimeOfDay::Day)),
            ("Night", TodSlot::Named(TimeOfDay::Night)),
            ("h00-06", TodSlot::Hours { start: 0, width: 6 }),
        ] {
            let value = serde::Value::Str(text.to_string());
            assert_eq!(TodSlot::deserialize(&value).unwrap(), slot);
        }
        // Round trip through the Serialize impl.
        for slot in [
            TodSlot::Named(TimeOfDay::Day),
            TodSlot::Named(TimeOfDay::Night),
            TodSlot::Hours {
                start: 18,
                width: 6,
            },
        ] {
            assert_eq!(TodSlot::deserialize(&slot.serialize()).unwrap(), slot);
        }
    }

    #[test]
    fn hour_buckets_partition_the_day() {
        for hour in 0..24 {
            let TodSlot::Hours { start, width } = TodSlot::hour_bucket(hour, 6) else {
                panic!("expected an hour bucket");
            };
            assert_eq!(width, 6);
            assert!(start <= hour && hour < start + width);
            assert_eq!(start % 6, 0);
        }
    }

    #[test]
    fn records_map_to_their_cell_ignoring_workload() {
        let mk = |workload| {
            PreemptionRecord::new(
                VmType::N1HighCpu8,
                Zone::UsWest1A,
                TimeOfDay::Night,
                workload,
                2.0,
            )
            .unwrap()
        };
        let idle = CellKey::of(&mk(WorkloadKind::Idle));
        let busy = CellKey::of(&mk(WorkloadKind::NonIdle));
        assert_eq!(idle, busy);
        assert_eq!(idle.to_string(), "n1-highcpu-8/us-west1-a/night");
    }

    #[test]
    fn hour_split_requires_launch_hours() {
        let record = PreemptionRecord::new(
            VmType::N1HighCpu8,
            Zone::UsWest1A,
            TimeOfDay::Night,
            WorkloadKind::Idle,
            2.0,
        )
        .unwrap();
        // Day/night split never needs hours.
        assert!(CellKey::of_with(&record, None).is_ok());
        // Hour split without a launch hour is a descriptive error.
        let err = CellKey::of_with(&record, Some(6)).unwrap_err();
        assert!(err.contains("launch_hour"), "{err}");
        // With a launch hour the record lands in its bucket, keys stay parseable.
        let with_hour = record.with_launch_hour(22).unwrap();
        let key = CellKey::of_with(&with_hour, Some(6)).unwrap();
        assert_eq!(
            key.time_of_day,
            TodSlot::Hours {
                start: 18,
                width: 6
            }
        );
        assert_eq!(key.to_string().parse::<CellKey>().unwrap(), key);
    }
}
