//! Per-cell candidate fitting and model selection.
//!
//! This is the paper's Section 3.2 methodology applied per cell instead of once: the
//! observed lifetimes of a cell are fit by every candidate family, each candidate is
//! scored by the Kolmogorov–Smirnov statistic against the cell's empirical CDF (with
//! censoring-aware log-likelihood and AIC reported alongside), and the winner becomes
//! the cell's calibrated model.  Cells that are too small to fit — or where no
//! parametric family reaches an acceptable K-S distance — fall back to the raw
//! empirical distribution, which is always available because the catalog stores each
//! cell's observed lifetimes.
//!
//! Candidate families:
//!
//! * `bathtub` — the paper's constrained-preemption model (Equation 1), fitted by the
//!   same bounded least-squares pipeline as Figure 1;
//! * `weibull`, `exponential` — the classical baselines of Figure 1;
//! * `phased` — the piecewise three-phase hazard of Section 8, fitted by closed-form
//!   per-phase exposure MLE (phase boundaries and the deadline acceleration are held at
//!   their representative values; the three phase rates are free);
//! * `empirical` — the fallback: the observed lifetimes themselves.

use serde::{Deserialize, Serialize};
use std::sync::Arc;
use tcp_core::{BathtubModel, LifetimeModel, TabulatedLifetime};
use tcp_dists::bathtub::BathtubParams;
use tcp_dists::fit::{fit_distribution, DistributionFamily};
use tcp_dists::phased::PhasedHazardParams;
use tcp_dists::{
    ConstrainedBathtub, EmpiricalLifetime, Exponential, LifetimeDistribution, PhasedHazard, Weibull,
};
use tcp_numerics::stats::{r_squared, rmse, Ecdf};
use tcp_numerics::{NumericsError, Result};

/// Fewest observations any parametric fit will be attempted on (the least-squares
/// pipeline needs a meaningful empirical CDF grid).
pub const MIN_PARAMETRIC_RECORDS: usize = 10;

/// Floor applied to MLE hazard rates so phases with zero observed events still produce
/// a valid (just extremely quiet) phase.
const RATE_FLOOR: f64 = 1e-6;

/// Knobs of the per-cell fitting and selection step.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FitOptions {
    /// Temporal constraint `L` in hours (24 for GCP Preemptible VMs).
    pub horizon_hours: f64,
    /// Cells with fewer records than this keep the empirical fallback even when the
    /// parametric candidates fit (small-sample parametric fits are noise).
    pub min_records: usize,
    /// A parametric winner whose K-S statistic exceeds this keeps the empirical
    /// fallback instead.
    pub ks_threshold: f64,
    /// Grid resolution of the empirical CDF the least-squares fits run against.
    pub grid_points: usize,
    /// Launch-hour cell width in hours (`calibrate fit --tod-hours N`): `None` keeps
    /// the paper's day/night split; `Some(n)` partitions the day into `24/n` launch-hour
    /// buckets (`h00-06`, `h06-12`, …) instead, which requires records carrying a
    /// `launch_hour`.  Must divide 24.
    pub tod_hours: Option<u32>,
}

impl Default for FitOptions {
    fn default() -> Self {
        FitOptions {
            horizon_hours: 24.0,
            min_records: 15,
            ks_threshold: 0.15,
            grid_points: 200,
            tod_hours: None,
        }
    }
}

impl FitOptions {
    /// Validates the knobs.
    pub fn validate(&self) -> Result<()> {
        if !(self.horizon_hours > 0.0) || !self.horizon_hours.is_finite() {
            return Err(NumericsError::invalid("horizon_hours must be positive"));
        }
        if !(self.ks_threshold > 0.0) || !self.ks_threshold.is_finite() {
            return Err(NumericsError::invalid("ks_threshold must be positive"));
        }
        if self.grid_points < 20 {
            return Err(NumericsError::invalid("grid_points must be at least 20"));
        }
        if let Some(n) = self.tod_hours {
            if n == 0 || n >= 24 || 24 % n != 0 {
                return Err(NumericsError::invalid(format!(
                    "tod_hours must divide 24 and lie in [1, 23], got {n}"
                )));
            }
        }
        Ok(())
    }
}

/// One fitted candidate family with its goodness-of-fit scores.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CandidateFit {
    /// Family name (`bathtub`, `weibull`, `exponential`, `phased`).
    pub family: String,
    /// Fitted parameter vector (family-specific ordering; `phased` stores the full
    /// seven-value [`PhasedHazardParams`] field order).
    pub params: Vec<f64>,
    /// Kolmogorov–Smirnov statistic against the cell's empirical CDF (lower is better).
    pub ks_statistic: f64,
    /// Censoring-aware log-likelihood: density for preempted records, surviving
    /// probability mass for records reclaimed at the deadline.
    pub log_likelihood: f64,
    /// Akaike information criterion `2k − 2·LL` (lower is better).
    pub aic: f64,
    /// Coefficient of determination of the CDF fit.
    pub r_squared: f64,
    /// Root-mean-square CDF error.
    pub rmse: f64,
}

/// The selected model of one cell — self-contained: the observed (sorted) lifetimes ride
/// along so the empirical fallback, refits and downstream samplers never need the CSV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CalibratedModel {
    /// Winning family (`bathtub`, `weibull`, `exponential`, `phased` or `empirical`).
    pub family: String,
    /// Parameters of the winning family (empty for `empirical`).
    pub params: Vec<f64>,
    /// The cell's observed lifetimes, sorted ascending.
    pub lifetimes: Vec<f64>,
}

impl CalibratedModel {
    /// Materialises the calibrated distribution.
    pub fn to_distribution(&self, horizon: f64) -> Result<Arc<dyn LifetimeDistribution>> {
        let need = |n: usize| -> Result<()> {
            if self.params.len() != n {
                return Err(NumericsError::invalid(format!(
                    "calibrated `{}` model needs {n} parameters, found {}",
                    self.family,
                    self.params.len()
                )));
            }
            Ok(())
        };
        let p = &self.params;
        Ok(match self.family.as_str() {
            "bathtub" => {
                need(4)?;
                Arc::new(ConstrainedBathtub::new(BathtubParams {
                    a: p[0],
                    tau1: p[1],
                    tau2: p[2],
                    b: p[3],
                    horizon,
                })?)
            }
            "exponential" => {
                need(1)?;
                Arc::new(Exponential::new(p[0])?)
            }
            "weibull" => {
                need(2)?;
                Arc::new(Weibull::new(p[0], p[1])?)
            }
            "phased" => {
                need(7)?;
                Arc::new(PhasedHazard::new(phased_params_from_vec(p)?)?)
            }
            "empirical" => Arc::new(EmpiricalLifetime::new(&self.lifetimes, Some(horizon))?),
            other => {
                return Err(NumericsError::invalid(format!(
                    "unknown calibrated model family `{other}`"
                )))
            }
        })
    }

    /// Materialises the calibrated winner as a policy-ready [`LifetimeModel`]: the
    /// bathtub family keeps its closed forms (the DP fast path), every other family —
    /// Weibull, exponential, phased, empirical — is tabulated by quadrature on a dense
    /// `points`-knot age grid ([`TabulatedLifetime`]), so the generic-hazard DP and
    /// Equation 8 run at table speed regardless of which family won the cell.
    pub fn to_lifetime_model(&self, horizon: f64, points: usize) -> Result<Arc<dyn LifetimeModel>> {
        if let Some(model) = self.bathtub() {
            return Ok(Arc::new(model));
        }
        let dist = self.to_distribution(horizon)?;
        Ok(Arc::new(TabulatedLifetime::from_distribution(
            self.family.clone(),
            dist.as_ref(),
            horizon,
            points,
        )?))
    }

    /// The winning model as a [`BathtubModel`], when the winner is the bathtub family.
    pub fn bathtub(&self) -> Option<BathtubModel> {
        if self.family != "bathtub" || self.params.len() != 4 {
            return None;
        }
        ConstrainedBathtub::from_parts(
            self.params[0],
            self.params[1],
            self.params[2],
            self.params[3],
        )
        .ok()
        .map(BathtubModel::from_distribution)
    }
}

/// The full outcome of fitting one cell.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FitOutcome {
    /// Every parametric candidate that fitted, sorted by ascending K-S statistic.
    pub candidates: Vec<CandidateFit>,
    /// The selected model.
    pub model: CalibratedModel,
    /// Human-readable selection rationale (which rule picked the winner).
    pub selection: String,
}

fn phased_params_from_vec(p: &[f64]) -> Result<PhasedHazardParams> {
    if p.len() != 7 {
        return Err(NumericsError::invalid(
            "phased parameter vector must have 7 entries",
        ));
    }
    Ok(PhasedHazardParams {
        early_rate: p[0],
        early_end: p[1],
        stable_rate: p[2],
        deadline_start: p[3],
        deadline_base_rate: p[4],
        deadline_acceleration: p[5],
        horizon: p[6],
    })
}

/// Censoring-aware log-likelihood: records preempted strictly before the horizon
/// contribute `ln f(t)`, records reclaimed at the deadline contribute the surviving
/// probability mass `ln S(L⁻)`.
fn log_likelihood(dist: &dyn LifetimeDistribution, lifetimes: &[f64], horizon: f64) -> f64 {
    let censor_edge = horizon - 1e-9;
    let survive = (1.0 - dist.cdf(horizon - 1e-6)).max(1e-300).ln();
    lifetimes
        .iter()
        .map(|&t| {
            if t < censor_edge {
                dist.pdf(t).max(1e-300).ln()
            } else {
                survive
            }
        })
        .sum()
}

/// Closed-form exposure MLE for the three-phase hazard: each phase's rate is its event
/// count divided by the total time at risk spent inside the phase.  The phase
/// boundaries and the deadline acceleration are held at their representative values
/// (scaled to the horizon), so the candidate has three free parameters.
fn fit_phased(lifetimes: &[f64], horizon: f64) -> Result<(Vec<f64>, PhasedHazard)> {
    let early_end = horizon * (3.0 / 24.0);
    let deadline_start = horizon * (22.0 / 24.0);
    let acceleration = 2.2;
    let censor_edge = horizon - 1e-9;

    let mut events = [0usize; 3];
    let mut exposure = [0.0f64; 3];
    for &t in lifetimes {
        exposure[0] += t.min(early_end);
        exposure[1] += (t.min(deadline_start) - early_end).max(0.0);
        // The deadline phase's hazard is base·exp(acc·(u − start)); the MLE denominator
        // is the integral of the acceleration profile over the time at risk.
        let span = (t.min(horizon) - deadline_start).max(0.0);
        exposure[2] += ((acceleration * span).exp() - 1.0) / acceleration;
        if t < censor_edge {
            if t <= early_end {
                events[0] += 1;
            } else if t <= deadline_start {
                events[1] += 1;
            } else {
                events[2] += 1;
            }
        }
    }
    let rate = |i: usize| -> f64 {
        if exposure[i] <= 0.0 {
            RATE_FLOOR
        } else {
            (events[i] as f64 / exposure[i]).max(RATE_FLOOR)
        }
    };
    let params = PhasedHazardParams {
        early_rate: rate(0),
        early_end,
        stable_rate: rate(1),
        deadline_start,
        deadline_base_rate: rate(2),
        deadline_acceleration: acceleration,
        horizon,
    };
    let dist = PhasedHazard::new(params)?;
    Ok((
        vec![
            params.early_rate,
            params.early_end,
            params.stable_rate,
            params.deadline_start,
            params.deadline_base_rate,
            params.deadline_acceleration,
            params.horizon,
        ],
        dist,
    ))
}

/// Fits every candidate family to one cell's lifetimes and selects the winner.
///
/// Deterministic: no randomness anywhere in the fitting path, so the same lifetimes and
/// options always produce the identical outcome.  Each call increments the winning
/// family's `calibrate.fit.winner.*` registry counter and times the selection step into
/// the `calibrate.stage.winner_selection` histogram — out-of-band bookkeeping that
/// never affects the outcome.
pub fn fit_cell(lifetimes: &[f64], options: &FitOptions) -> Result<FitOutcome> {
    options.validate()?;
    if lifetimes.is_empty() {
        return Err(NumericsError::invalid("cannot calibrate an empty cell"));
    }
    let horizon = options.horizon_hours;
    if lifetimes
        .iter()
        .any(|&t| !t.is_finite() || t < 0.0 || t > horizon + 1e-9)
    {
        return Err(NumericsError::invalid(
            "lifetimes must be finite and inside [0, horizon]",
        ));
    }
    let mut sorted = lifetimes.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite lifetimes"));

    let mut candidates = Vec::new();
    if sorted.len() >= MIN_PARAMETRIC_RECORDS {
        let ecdf = Ecdf::new(&sorted)?;
        let empirical = EmpiricalLifetime::new(&sorted, Some(horizon))?;
        let (xs, ys) = empirical.grid(options.grid_points)?;

        let score = |family: &str,
                     params: Vec<f64>,
                     free_params: usize,
                     dist: &dyn LifetimeDistribution,
                     r2: f64,
                     rms: f64|
         -> CandidateFit {
            let ll = log_likelihood(dist, &sorted, horizon);
            CandidateFit {
                family: family.to_string(),
                params,
                ks_statistic: ecdf.ks_statistic(|t| dist.cdf(t)),
                log_likelihood: ll,
                aic: 2.0 * free_params as f64 - 2.0 * ll,
                r_squared: r2,
                rmse: rms,
            }
        };

        for (family, name, free) in [
            (DistributionFamily::ConstrainedBathtub, "bathtub", 4usize),
            (DistributionFamily::Weibull, "weibull", 2),
            (DistributionFamily::Exponential, "exponential", 1),
        ] {
            if let Ok(fitted) = fit_distribution(family, &xs, &ys, horizon) {
                candidates.push(score(
                    name,
                    fitted.params.clone(),
                    free,
                    fitted.dist.as_ref(),
                    fitted.r_squared,
                    fitted.rmse,
                ));
            }
        }
        if let Ok((params, dist)) = fit_phased(&sorted, horizon) {
            let predictions: Vec<f64> = xs.iter().map(|&x| dist.cdf(x)).collect();
            let r2 = r_squared(&ys, &predictions)?;
            let rms = rmse(&ys, &predictions)?;
            candidates.push(score("phased", params, 3, &dist, r2, rms));
        }
        candidates.sort_by(|a, b| {
            a.ks_statistic
                .partial_cmp(&b.ks_statistic)
                .expect("finite K-S")
                .then_with(|| a.params.len().cmp(&b.params.len()))
                .then_with(|| a.family.cmp(&b.family))
        });
    }

    let empirical_model = |lifetimes: Vec<f64>| CalibratedModel {
        family: "empirical".to_string(),
        params: Vec::new(),
        lifetimes,
    };
    let _selection_span = tcp_obs::time!("calibrate.stage.winner_selection");
    let (model, selection) = match candidates.first() {
        None => (
            empirical_model(sorted),
            format!(
                "empirical fallback: {} records are too few for parametric fits",
                lifetimes.len()
            ),
        ),
        Some(best) if sorted.len() < options.min_records => (
            empirical_model(sorted.clone()),
            format!(
                "empirical fallback: {} records < min_records {} (best parametric: {} at K-S {:.4})",
                sorted.len(),
                options.min_records,
                best.family,
                best.ks_statistic
            ),
        ),
        Some(best) if best.ks_statistic > options.ks_threshold => (
            empirical_model(sorted.clone()),
            format!(
                "empirical fallback: best parametric {} has K-S {:.4} > threshold {:.4}",
                best.family, best.ks_statistic, options.ks_threshold
            ),
        ),
        Some(best) => (
            CalibratedModel {
                family: best.family.clone(),
                params: best.params.clone(),
                lifetimes: sorted.clone(),
            },
            format!("{} wins on K-S {:.4}", best.family, best.ks_statistic),
        ),
    };
    tcp_obs::counter(winner_counter(&model.family)).incr();
    Ok(FitOutcome {
        candidates,
        model,
        selection,
    })
}

/// The registry counter tracking how often `family` wins a cell.  Static names keep the
/// per-cell hot path free of allocation; an unknown family (impossible today) folds
/// into `other` rather than minting unbounded metric names.
fn winner_counter(family: &str) -> &'static str {
    match family {
        "bathtub" => "calibrate.fit.winner.bathtub",
        "weibull" => "calibrate.fit.winner.weibull",
        "exponential" => "calibrate.fit.winner.exponential",
        "phased" => "calibrate.fit.winner.phased",
        "empirical" => "calibrate.fit.winner.empirical",
        _ => "calibrate.fit.winner.other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn representative_lifetimes(n: usize, seed: u64) -> Vec<f64> {
        let truth = PhasedHazard::representative();
        let mut rng = StdRng::seed_from_u64(seed);
        truth
            .sample_n(&mut rng, n)
            .into_iter()
            .map(|t| t.clamp(0.0, 24.0))
            .collect()
    }

    #[test]
    fn bathtub_wins_on_bathtub_shaped_data() {
        let lifetimes = representative_lifetimes(600, 1);
        let outcome = fit_cell(&lifetimes, &FitOptions::default()).unwrap();
        assert!(outcome.candidates.len() >= 3, "{:?}", outcome.candidates);
        // K-S ascending.
        for w in outcome.candidates.windows(2) {
            assert!(w[0].ks_statistic <= w[1].ks_statistic);
        }
        // The constrained shape beats the memoryless baseline decisively.
        let ks = |family: &str| {
            outcome
                .candidates
                .iter()
                .find(|c| c.family == family)
                .map(|c| c.ks_statistic)
        };
        let bathtub = ks("bathtub").unwrap();
        let expo = ks("exponential").unwrap();
        assert!(bathtub < expo, "bathtub {bathtub} vs exponential {expo}");
        assert!(
            outcome.model.family == "bathtub" || outcome.model.family == "phased",
            "winner {} ({})",
            outcome.model.family,
            outcome.selection
        );
        assert!(outcome.model.bathtub().is_some() || outcome.model.family != "bathtub");
        // Lifetimes ride along, sorted.
        assert_eq!(outcome.model.lifetimes.len(), 600);
        assert!(outcome.model.lifetimes.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn tiny_cells_fall_back_to_empirical() {
        let lifetimes = vec![1.0, 2.5, 7.0];
        let outcome = fit_cell(&lifetimes, &FitOptions::default()).unwrap();
        assert_eq!(outcome.model.family, "empirical");
        assert!(outcome.candidates.is_empty());
        assert!(
            outcome.selection.contains("too few"),
            "{}",
            outcome.selection
        );
        let dist = outcome.model.to_distribution(24.0).unwrap();
        assert!(dist.cdf(24.0) > 0.999);
    }

    #[test]
    fn min_records_keeps_empirical_even_when_fits_exist() {
        let lifetimes = representative_lifetimes(12, 3);
        let options = FitOptions {
            min_records: 50,
            ..FitOptions::default()
        };
        let outcome = fit_cell(&lifetimes, &options).unwrap();
        assert_eq!(outcome.model.family, "empirical");
        assert!(!outcome.candidates.is_empty(), "fits are still reported");
        assert!(
            outcome.selection.contains("min_records"),
            "{}",
            outcome.selection
        );
    }

    #[test]
    fn log_likelihood_handles_censored_records() {
        // Half the records survive to the deadline: the LL must stay finite and the
        // candidates must still be scored.
        let mut lifetimes = vec![24.0; 30];
        lifetimes.extend(representative_lifetimes(30, 5).into_iter().map(|t| t / 2.0));
        let outcome = fit_cell(&lifetimes, &FitOptions::default()).unwrap();
        for c in &outcome.candidates {
            assert!(c.log_likelihood.is_finite(), "{c:?}");
            assert!(c.aic.is_finite(), "{c:?}");
        }
    }

    #[test]
    fn every_winner_materialises() {
        for (family, params, lifetimes) in [
            ("bathtub", vec![0.4, 1.0, 0.8, 24.0], vec![1.0, 2.0]),
            ("exponential", vec![0.2], vec![1.0]),
            ("weibull", vec![0.1, 1.5], vec![1.0]),
            (
                "phased",
                vec![0.17, 3.0, 0.015, 22.0, 0.2, 2.2, 24.0],
                vec![1.0],
            ),
            ("empirical", vec![], vec![1.0, 3.0, 24.0]),
        ] {
            let model = CalibratedModel {
                family: family.to_string(),
                params,
                lifetimes,
            };
            let dist = model.to_distribution(24.0).unwrap();
            assert!(dist.cdf(12.0) >= 0.0);
        }
        let bogus = CalibratedModel {
            family: "psychic".into(),
            params: vec![],
            lifetimes: vec![1.0],
        };
        assert!(bogus.to_distribution(24.0).is_err());
        let short = CalibratedModel {
            family: "weibull".into(),
            params: vec![0.1],
            lifetimes: vec![1.0],
        };
        assert!(short.to_distribution(24.0).is_err());
    }

    #[test]
    fn every_winner_materialises_as_a_lifetime_model() {
        // The bathtub winner keeps its closed forms; every other family tabulates.
        for (family, params, lifetimes, expect_bathtub) in [
            ("bathtub", vec![0.4, 1.0, 0.8, 24.0], vec![1.0, 2.0], true),
            ("exponential", vec![0.2], vec![1.0], false),
            ("weibull", vec![0.1, 1.5], vec![1.0], false),
            (
                "phased",
                vec![0.17, 3.0, 0.015, 22.0, 0.2, 2.2, 24.0],
                vec![1.0],
                false,
            ),
            ("empirical", vec![], vec![1.0, 3.0, 24.0], false),
        ] {
            let model = CalibratedModel {
                family: family.to_string(),
                params,
                lifetimes,
            };
            let lifetime = model.to_lifetime_model(24.0, 241).unwrap();
            assert_eq!(lifetime.family(), family);
            assert_eq!(lifetime.horizon(), 24.0);
            assert_eq!(lifetime.as_bathtub().is_some(), expect_bathtub, "{family}");
            // Survival is a proper constrained curve for every family.
            assert!((lifetime.survival(0.0) - 1.0).abs() < 0.05, "{family}");
            assert_eq!(lifetime.survival(24.0), 0.0, "{family}");
            let w = lifetime.first_moment(24.0);
            assert!(w > 0.0 && w <= 24.0, "{family}: W(L) = {w}");
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let options = FitOptions::default();
        assert!(fit_cell(&[], &options).is_err());
        assert!(fit_cell(&[f64::NAN], &options).is_err());
        assert!(fit_cell(&[-1.0], &options).is_err());
        assert!(fit_cell(&[25.0], &options).is_err());
        let bad = FitOptions {
            ks_threshold: f64::NAN,
            ..FitOptions::default()
        };
        assert!(fit_cell(&[1.0], &bad).is_err());
    }

    #[test]
    fn fitting_is_deterministic() {
        let lifetimes = representative_lifetimes(200, 9);
        let a = fit_cell(&lifetimes, &FitOptions::default()).unwrap();
        let b = fit_cell(&lifetimes, &FitOptions::default()).unwrap();
        assert_eq!(a, b);
    }
}
