//! Property tests for calibration correctness.
//!
//! The generator's ground-truth catalog encodes the paper's Observations 4 and 5
//! (larger VMs and busier hours are preempted more, i.e. have stochastically shorter
//! lifetimes).  Calibrating a dataset drawn from that generator must *recover* those
//! orderings from the data alone — and the emitted catalog must round-trip through its
//! JSON form byte-identically, independent of the thread count that produced it.

use proptest::prelude::*;
use tcp_calibrate::{Calibrator, CellKey, FitOptions, RegimeCatalog, TodSlot};
use tcp_trace::{
    ConfigKey, PreemptionRecord, TimeOfDay, TraceGenerator, VmType, WorkloadKind, Zone,
};

/// Draws `per_cell` non-idle records for each of the given configuration cells.
fn study(seed: u64, per_cell: usize, cells: &[(VmType, TimeOfDay)]) -> Vec<PreemptionRecord> {
    let mut generator = TraceGenerator::new(seed);
    let mut records = Vec::new();
    for &(vm_type, time_of_day) in cells {
        records.extend(
            generator
                .generate_for(
                    ConfigKey {
                        vm_type,
                        zone: Zone::UsEast1B,
                        time_of_day,
                        workload: WorkloadKind::NonIdle,
                    },
                    per_cell,
                )
                .unwrap(),
        );
    }
    records
}

fn calibrated_mean(catalog: &RegimeCatalog, cell: &CellKey) -> f64 {
    let fit = catalog.find(&cell.to_string()).expect("cell calibrated");
    fit.model
        .to_distribution(catalog.horizon_hours)
        .expect("model materialises")
        .mean()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    // Observation 4: the calibrated models order VM types by size — the 2-vCPU cell's
    // lifetime distribution stochastically dominates the 32-vCPU cell's.
    #[test]
    fn calibration_recovers_vm_size_ordering(seed in 0usize..10_000) {
        // Figure 2a layout: every VM type at day in one zone.  The size factors are far
        // apart (0.55 vs 1.3), so moderate cells are enough to recover the ordering.
        let cells: Vec<(VmType, TimeOfDay)> = VmType::all()
            .into_iter()
            .map(|vm| (vm, TimeOfDay::Day))
            .collect();
        let records = study(seed as u64, 320, &cells);
        let catalog = Calibrator::new("obs4")
            .calibrate(&records, "property", 0)
            .unwrap();
        let cell = |vm_type| CellKey {
            vm_type,
            zone: Zone::UsEast1B,
            time_of_day: TodSlot::Named(TimeOfDay::Day),
        };
        let small = calibrated_mean(&catalog, &cell(VmType::N1HighCpu2));
        let large = calibrated_mean(&catalog, &cell(VmType::N1HighCpu32));
        prop_assert!(
            small > large,
            "2-vCPU mean {small} must exceed 32-vCPU mean {large} (seed {seed})"
        );
        // The calibrated CDFs preserve the ordering pointwise, not just on average.
        let small_dist = catalog
            .find(&cell(VmType::N1HighCpu2).to_string())
            .unwrap()
            .model
            .to_distribution(24.0)
            .unwrap();
        let large_dist = catalog
            .find(&cell(VmType::N1HighCpu32).to_string())
            .unwrap()
            .model
            .to_distribution(24.0)
            .unwrap();
        for t in [3.0, 8.0, 16.0] {
            prop_assert!(
                small_dist.cdf(t) < large_dist.cdf(t) + 0.05,
                "CDF ordering violated at t={t} (seed {seed})"
            );
        }
    }

    // Observation 5: night launches live longer than day launches in the calibrated
    // models, matching the generator's diurnal hazard scaling.
    #[test]
    fn calibration_recovers_diurnal_ordering(seed in 0usize..10_000) {
        // Figure 2b layout: the same configuration at day vs night.  The diurnal factor
        // (0.8) separates the true means by only ~1.6 h, so this test uses larger cells
        // than the size-ordering one to keep the recovered ordering stable.
        let records = study(
            seed as u64,
            1000,
            &[
                (VmType::N1HighCpu16, TimeOfDay::Day),
                (VmType::N1HighCpu16, TimeOfDay::Night),
            ],
        );
        let catalog = Calibrator::new("obs5")
            .calibrate(&records, "property", 0)
            .unwrap();
        let cell = |time_of_day| CellKey {
            vm_type: VmType::N1HighCpu16,
            zone: Zone::UsEast1B,
            time_of_day: TodSlot::Named(time_of_day),
        };
        let day = calibrated_mean(&catalog, &cell(TimeOfDay::Day));
        let night = calibrated_mean(&catalog, &cell(TimeOfDay::Night));
        prop_assert!(
            night > day,
            "night mean {night} must exceed day mean {day} (seed {seed})"
        );
    }

    // The catalog JSON round-trips byte-identically, and the bytes do not depend on
    // how many threads fitted it.
    #[test]
    fn catalog_json_round_trips_byte_identically(seed in 0usize..10_000, total in 200usize..500) {
        let records = TraceGenerator::new(seed as u64)
            .generate_study(total, 40)
            .unwrap();
        let calibrator = Calibrator {
            name: "roundtrip".to_string(),
            options: FitOptions::default(),
        };
        let catalog = calibrator.calibrate(&records, "property", 1).unwrap();
        let json = catalog.to_json().unwrap();
        let reparsed = RegimeCatalog::from_json(&json).unwrap();
        prop_assert_eq!(&reparsed, &catalog);
        prop_assert_eq!(reparsed.to_json().unwrap(), json.clone());
        // Thread-count invariance of the emitted bytes.
        let threaded = calibrator.calibrate(&records, "property", 4).unwrap();
        prop_assert_eq!(threaded.to_json().unwrap(), json);
    }
}
