//! Synthetic preemption-trace generation.
//!
//! Draws datasets of [`PreemptionRecord`]s from the ground-truth processes in the
//! [`TraceCatalog`], standing in for the paper's two-month measurement campaign.  The
//! default study layout mirrors the paper: roughly 870 VMs spread over the VM-type, zone,
//! time-of-day and workload cells, with the Figure 1 configuration over-sampled (the paper
//! shows >100 preemption events for it).

use crate::catalog::{ConfigKey, TraceCatalog};
use crate::record::{PreemptionRecord, TimeOfDay, VmType, WorkloadKind, Zone};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tcp_dists::LifetimeDistribution;
use tcp_numerics::{NumericsError, Result};

/// Synthetic dataset generator.
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    catalog: TraceCatalog,
    rng: StdRng,
    launch_hours: bool,
}

impl TraceGenerator {
    /// Creates a generator with the default catalog and the given RNG seed.
    pub fn new(seed: u64) -> Self {
        TraceGenerator {
            catalog: TraceCatalog::new(),
            rng: StdRng::seed_from_u64(seed),
            launch_hours: false,
        }
    }

    /// Creates a generator over a custom catalog.
    pub fn with_catalog(catalog: TraceCatalog, seed: u64) -> Self {
        TraceGenerator {
            catalog,
            rng: StdRng::seed_from_u64(seed),
            launch_hours: false,
        }
    }

    /// Makes generated records carry a local launch hour sampled uniformly inside
    /// their day/night bucket, enabling launch-hour calibration cells.  Off by default
    /// so hour-free datasets (and their RNG streams) are byte-identical to earlier
    /// releases.
    pub fn with_launch_hours(mut self, enabled: bool) -> Self {
        self.launch_hours = enabled;
        self
    }

    /// The catalog backing this generator.
    pub fn catalog(&self) -> &TraceCatalog {
        &self.catalog
    }

    /// A launch hour uniform over the bucket: day is 8 AM – 8 PM, night wraps around
    /// midnight (8 PM – 8 AM).
    fn sample_launch_hour(&mut self, time_of_day: TimeOfDay) -> u32 {
        let offset = self.rng.gen_range(0..12u32);
        match time_of_day {
            TimeOfDay::Day => 8 + offset,
            TimeOfDay::Night => (20 + offset) % 24,
        }
    }

    /// Generates `count` records for a single configuration cell.
    pub fn generate_for(&mut self, key: ConfigKey, count: usize) -> Result<Vec<PreemptionRecord>> {
        if count == 0 {
            return Err(NumericsError::invalid("count must be positive"));
        }
        let truth = self.catalog.ground_truth(&key)?;
        let mut out = Vec::with_capacity(count);
        for _ in 0..count {
            let lifetime = truth.sample(&mut self.rng).clamp(0.0, 24.0);
            let mut record = PreemptionRecord::new(
                key.vm_type,
                key.zone,
                key.time_of_day,
                key.workload,
                lifetime,
            )
            .map_err(NumericsError::invalid)?;
            if self.launch_hours {
                let hour = self.sample_launch_hour(key.time_of_day);
                record = record
                    .with_launch_hour(hour)
                    .map_err(NumericsError::invalid)?;
            }
            out.push(record);
        }
        Ok(out)
    }

    /// Generates a dataset whose calibration-cell winners deliberately span the model
    /// families: one cell per ground-truth family (exponential, Weibull, phased,
    /// bathtub) with `per_cell` records each, plus a five-record runt cell that falls
    /// back to the empirical model.  Used by the CI smoke that exercises the
    /// generic-hazard DP on every family.
    pub fn generate_family_showcase(&mut self, per_cell: usize) -> Result<Vec<PreemptionRecord>> {
        use tcp_dists::phased::PhasedHazardParams;
        use tcp_dists::{ConstrainedBathtub, Exponential, PhasedHazard, Weibull};
        if per_cell < 10 {
            return Err(NumericsError::invalid(
                "family showcase needs at least 10 records per cell",
            ));
        }
        // A hazard with a hard drop at 3 h that the smooth bathtub form cannot track —
        // the phased candidate (which assumes exactly these boundaries) wins its cell
        // decisively instead of by luck.
        let sharp_phased = PhasedHazard::new(PhasedHazardParams {
            early_rate: 0.6,
            early_end: 3.0,
            stable_rate: 0.004,
            deadline_start: 22.0,
            deadline_base_rate: 0.6,
            deadline_acceleration: 2.2,
            horizon: 24.0,
        })?;
        let cells: Vec<(
            VmType,
            Zone,
            Box<dyn tcp_dists::LifetimeDistribution>,
            usize,
        )> = vec![
            (
                VmType::N1HighCpu2,
                Zone::UsCentral1C,
                Box::new(Exponential::new(1.0 / 6.0)?),
                per_cell,
            ),
            (
                VmType::N1HighCpu4,
                Zone::UsCentral1F,
                Box::new(Weibull::new(0.08, 1.7)?),
                per_cell,
            ),
            (
                VmType::N1HighCpu8,
                Zone::UsWest1A,
                Box::new(sharp_phased),
                per_cell,
            ),
            (
                VmType::N1HighCpu16,
                Zone::UsEast1B,
                Box::new(ConstrainedBathtub::from_parts(0.45, 1.0, 0.8, 24.0)?),
                per_cell,
            ),
            // Runt cell: too small for parametric fits, keeps the empirical fallback.
            (
                VmType::N1HighCpu32,
                Zone::UsEast1B,
                Box::new(PhasedHazard::representative()),
                5,
            ),
        ];
        let mut out = Vec::with_capacity(cells.iter().map(|c| c.3).sum());
        for (vm_type, zone, truth, count) in cells {
            for _ in 0..count {
                let lifetime = truth.sample(&mut self.rng).clamp(0.0, 24.0);
                let mut record = PreemptionRecord::new(
                    vm_type,
                    zone,
                    TimeOfDay::Day,
                    WorkloadKind::NonIdle,
                    lifetime,
                )
                .map_err(NumericsError::invalid)?;
                if self.launch_hours {
                    let hour = self.sample_launch_hour(TimeOfDay::Day);
                    record = record
                        .with_launch_hour(hour)
                        .map_err(NumericsError::invalid)?;
                }
                out.push(record);
            }
        }
        Ok(out)
    }

    /// Generates a full study resembling the paper's: `total` VMs (default 870) spread over
    /// all configuration cells, with the Figure 1 cell over-sampled so it has at least
    /// `figure1_minimum` observations.
    pub fn generate_study(
        &mut self,
        total: usize,
        figure1_minimum: usize,
    ) -> Result<Vec<PreemptionRecord>> {
        if total < figure1_minimum || figure1_minimum == 0 {
            return Err(NumericsError::invalid(
                "total must be at least figure1_minimum and both must be positive",
            ));
        }
        let mut records = Vec::with_capacity(total);
        records.extend(self.generate_for(ConfigKey::figure1(), figure1_minimum)?);

        let cells = ConfigKey::all();
        let remaining = total - figure1_minimum;
        for i in 0..remaining {
            // Round-robin over the cells with a random jitter so cell counts are uneven,
            // like a real measurement campaign.
            let idx = (i + self.rng.gen_range(0..cells.len())) % cells.len();
            records.extend(self.generate_for(cells[idx], 1)?);
        }
        Ok(records)
    }

    /// Generates the paper-sized study: 870 VMs with at least 120 in the Figure 1 cell.
    pub fn generate_paper_study(&mut self) -> Result<Vec<PreemptionRecord>> {
        self.generate_study(870, 120)
    }

    /// Generates records for a sweep over VM types in a fixed zone (Figure 2a layout).
    pub fn generate_vm_type_sweep(
        &mut self,
        zone: Zone,
        per_type: usize,
    ) -> Result<Vec<PreemptionRecord>> {
        let mut out = Vec::new();
        for vm_type in VmType::all() {
            let key = ConfigKey {
                vm_type,
                zone,
                time_of_day: TimeOfDay::Day,
                workload: WorkloadKind::NonIdle,
            };
            out.extend(self.generate_for(key, per_type)?);
        }
        Ok(out)
    }

    /// Generates records for a sweep over zones for a fixed VM type (Figure 2c layout).
    pub fn generate_zone_sweep(
        &mut self,
        vm_type: VmType,
        per_zone: usize,
    ) -> Result<Vec<PreemptionRecord>> {
        let mut out = Vec::new();
        for zone in Zone::all() {
            let key = ConfigKey {
                vm_type,
                zone,
                time_of_day: TimeOfDay::Day,
                workload: WorkloadKind::NonIdle,
            };
            out.extend(self.generate_for(key, per_zone)?);
        }
        Ok(out)
    }

    /// Generates records for the day/night × idle/non-idle sweep (Figure 2b layout).
    pub fn generate_diurnal_sweep(
        &mut self,
        vm_type: VmType,
        zone: Zone,
        per_cell: usize,
    ) -> Result<Vec<PreemptionRecord>> {
        let mut out = Vec::new();
        for time_of_day in TimeOfDay::all() {
            for workload in WorkloadKind::all() {
                let key = ConfigKey {
                    vm_type,
                    zone,
                    time_of_day,
                    workload,
                };
                out.extend(self.generate_for(key, per_cell)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generate_for_respects_count_and_constraint() {
        let mut gen = TraceGenerator::new(1);
        let recs = gen.generate_for(ConfigKey::figure1(), 200).unwrap();
        assert_eq!(recs.len(), 200);
        assert!(recs
            .iter()
            .all(|r| (0.0..=24.0).contains(&r.lifetime_hours)));
        assert!(recs.iter().all(|r| r.vm_type == VmType::N1HighCpu16));
        assert!(gen.generate_for(ConfigKey::figure1(), 0).is_err());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let mut a = TraceGenerator::new(7);
        let mut b = TraceGenerator::new(7);
        let ra = a.generate_for(ConfigKey::figure1(), 50).unwrap();
        let rb = b.generate_for(ConfigKey::figure1(), 50).unwrap();
        for (x, y) in ra.iter().zip(&rb) {
            assert_eq!(x.lifetime_hours, y.lifetime_hours);
        }
        let mut c = TraceGenerator::new(8);
        let rc = c.generate_for(ConfigKey::figure1(), 50).unwrap();
        assert!(ra
            .iter()
            .zip(&rc)
            .any(|(x, y)| x.lifetime_hours != y.lifetime_hours));
    }

    #[test]
    fn paper_study_size_and_composition() {
        let mut gen = TraceGenerator::new(2020);
        let recs = gen.generate_paper_study().unwrap();
        assert_eq!(recs.len(), 870);
        let fig1 = recs
            .iter()
            .filter(|r| {
                r.vm_type == VmType::N1HighCpu16
                    && r.zone == Zone::UsEast1B
                    && r.time_of_day == TimeOfDay::Day
                    && r.workload == WorkloadKind::NonIdle
            })
            .count();
        assert!(fig1 >= 120, "figure-1 cell has {fig1} records");
        // every VM type appears
        for vm_type in VmType::all() {
            assert!(
                recs.iter().any(|r| r.vm_type == vm_type),
                "{vm_type} missing"
            );
        }
    }

    #[test]
    fn launch_hours_are_opt_in_and_consistent() {
        // Default: no hours, and the RNG stream matches earlier releases exactly.
        let mut plain = TraceGenerator::new(77);
        let without = plain.generate_for(ConfigKey::figure1(), 40).unwrap();
        assert!(without.iter().all(|r| r.launch_hour.is_none()));
        // Opt-in: every record carries an hour consistent with its day/night bucket.
        let mut hours = TraceGenerator::new(77).with_launch_hours(true);
        let with = hours.generate_for(ConfigKey::figure1(), 40).unwrap();
        for r in &with {
            let hour = r.launch_hour.expect("hour requested");
            assert_eq!(crate::TimeOfDay::from_hour(hour), r.time_of_day);
        }
        let mut night = TraceGenerator::new(3).with_launch_hours(true);
        let night_key = ConfigKey {
            time_of_day: TimeOfDay::Night,
            ..ConfigKey::figure1()
        };
        for r in night.generate_for(night_key, 40).unwrap() {
            let hour = r.launch_hour.unwrap();
            assert!(!(8..20).contains(&hour), "night hour {hour}");
        }
    }

    #[test]
    fn family_showcase_layout() {
        let mut gen = TraceGenerator::new(5);
        let records = gen.generate_family_showcase(80).unwrap();
        assert_eq!(records.len(), 4 * 80 + 5);
        // Four well-sampled cells plus the five-record runt.
        let count = |vm: VmType| records.iter().filter(|r| r.vm_type == vm).count();
        assert_eq!(count(VmType::N1HighCpu2), 80);
        assert_eq!(count(VmType::N1HighCpu32), 5);
        assert!(records
            .iter()
            .all(|r| (0.0..=24.0).contains(&r.lifetime_hours)));
        assert!(gen.generate_family_showcase(5).is_err());
    }

    #[test]
    fn study_argument_validation() {
        let mut gen = TraceGenerator::new(3);
        assert!(gen.generate_study(10, 20).is_err());
        assert!(gen.generate_study(10, 0).is_err());
    }

    #[test]
    fn vm_type_sweep_reproduces_size_ordering() {
        // Figure 2a: larger VMs should show shorter average lifetimes in the sampled data.
        let mut gen = TraceGenerator::new(42);
        let recs = gen.generate_vm_type_sweep(Zone::UsCentral1C, 400).unwrap();
        let mean_of = |vm: VmType| {
            let v: Vec<f64> = recs
                .iter()
                .filter(|r| r.vm_type == vm)
                .map(|r| r.lifetime_hours)
                .collect();
            v.iter().sum::<f64>() / v.len() as f64
        };
        let small = mean_of(VmType::N1HighCpu2);
        let large = mean_of(VmType::N1HighCpu32);
        assert!(small > large, "small {small} should outlive large {large}");
    }

    #[test]
    fn diurnal_sweep_covers_all_cells() {
        let mut gen = TraceGenerator::new(5);
        let recs = gen
            .generate_diurnal_sweep(VmType::N1HighCpu16, Zone::UsEast1B, 30)
            .unwrap();
        assert_eq!(recs.len(), 4 * 30);
        for tod in TimeOfDay::all() {
            for wk in WorkloadKind::all() {
                assert!(recs
                    .iter()
                    .any(|r| r.time_of_day == tod && r.workload == wk));
            }
        }
    }

    #[test]
    fn zone_sweep_covers_all_zones() {
        let mut gen = TraceGenerator::new(6);
        let recs = gen.generate_zone_sweep(VmType::N1HighCpu16, 25).unwrap();
        assert_eq!(recs.len(), 4 * 25);
        for zone in Zone::all() {
            assert_eq!(recs.iter().filter(|r| r.zone == zone).count(), 25);
        }
    }
}
